#include "common/bitvector.h"

#include <bit>

#include "common/rng.h"

namespace relcomp {

namespace {
constexpr size_t kWordBits = 64;
inline size_t WordsFor(size_t bits) { return (bits + kWordBits - 1) / kWordBits; }
}  // namespace

BitVector::BitVector(size_t num_bits)
    : num_bits_(num_bits), words_(WordsFor(num_bits), 0) {}

void BitVector::Resize(size_t num_bits) {
  num_bits_ = num_bits;
  words_.resize(WordsFor(num_bits), 0);
  MaskTail();
}

void BitVector::Set(size_t i) { words_[i / kWordBits] |= (1ULL << (i % kWordBits)); }

void BitVector::Clear(size_t i) {
  words_[i / kWordBits] &= ~(1ULL << (i % kWordBits));
}

bool BitVector::Get(size_t i) const {
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

void BitVector::SetAll() {
  for (auto& w : words_) w = ~0ULL;
  MaskTail();
}

void BitVector::ClearAll() {
  for (auto& w : words_) w = 0;
}

size_t BitVector::Count() const {
  size_t count = 0;
  for (uint64_t w : words_) count += static_cast<size_t>(std::popcount(w));
  return count;
}

bool BitVector::OrWith(const BitVector& other) {
  bool changed = false;
  for (size_t i = 0; i < words_.size(); ++i) {
    const uint64_t next = words_[i] | other.words_[i];
    changed |= (next != words_[i]);
    words_[i] = next;
  }
  return changed;
}

bool BitVector::OrWithAnd(const BitVector& a, const BitVector& b) {
  bool changed = false;
  const size_t n = words_.size();
  const size_t rem = num_bits_ % kWordBits;
  const uint64_t tail_mask = rem == 0 ? ~0ULL : (1ULL << rem) - 1;
  for (size_t i = 0; i < n; ++i) {
    uint64_t add = a.words_[i] & b.words_[i];
    if (i + 1 == n) add &= tail_mask;
    const uint64_t next = words_[i] | add;
    changed |= (next != words_[i]);
    words_[i] = next;
  }
  return changed;
}

bool BitVector::OrWithAndOffset(const BitVector& a, const BitVector& b,
                                size_t b_offset) {
  if (b_offset == 0) return OrWithAnd(a, b);
  bool changed = false;
  const size_t n = words_.size();
  const size_t rem = num_bits_ % kWordBits;
  const uint64_t tail_mask = rem == 0 ? ~0ULL : (1ULL << rem) - 1;
  const size_t word_offset = b_offset / kWordBits;
  const unsigned bit_offset = static_cast<unsigned>(b_offset % kWordBits);
  const std::vector<uint64_t>& bw = b.words_;
  for (size_t i = 0; i < n; ++i) {
    // Word i of (b >> b_offset), stitched across the word boundary; words
    // past b's end read as zero.
    uint64_t slice = 0;
    const size_t lo = i + word_offset;
    if (lo < bw.size()) {
      slice = bw[lo] >> bit_offset;
      if (bit_offset != 0 && lo + 1 < bw.size()) {
        slice |= bw[lo + 1] << (kWordBits - bit_offset);
      }
    }
    uint64_t add = a.words_[i] & slice;
    if (i + 1 == n) add &= tail_mask;
    const uint64_t next = words_[i] | add;
    changed |= (next != words_[i]);
    words_[i] = next;
  }
  return changed;
}

bool BitVector::WouldGainFromAnd(const BitVector& a, const BitVector& b) const {
  const size_t n = words_.size();
  const size_t rem = num_bits_ % kWordBits;
  const uint64_t tail_mask = rem == 0 ? ~0ULL : (1ULL << rem) - 1;
  for (size_t i = 0; i < n; ++i) {
    uint64_t add = a.words_[i] & b.words_[i];
    if (i + 1 == n) add &= tail_mask;
    if (add & ~words_[i]) return true;
  }
  return false;
}

void BitVector::FillBernoulli(double p, Rng& rng) {
  ClearAll();
  if (p <= 0.0) return;
  if (p >= 1.0) {
    SetAll();
    return;
  }
  // Geometric skipping: expected work O(p * num_bits) instead of O(num_bits),
  // matching how sparse most uncertain-graph edges are.
  if (p < 0.25) {
    size_t i = rng.Geometric(p);
    while (i < num_bits_) {
      Set(i);
      i += 1 + rng.Geometric(p);
    }
    return;
  }
  for (size_t i = 0; i < num_bits_; ++i) {
    if (rng.Bernoulli(p)) Set(i);
  }
}

bool BitVector::operator==(const BitVector& other) const {
  return num_bits_ == other.num_bits_ && words_ == other.words_;
}

void BitVector::MaskTail() {
  const size_t rem = num_bits_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (1ULL << rem) - 1;
  }
}

}  // namespace relcomp
