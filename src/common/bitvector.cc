#include "common/bitvector.h"

#include <bit>

#include "common/rng.h"

namespace relcomp {

namespace {
constexpr size_t kWordBits = 64;
inline size_t WordsFor(size_t bits) { return (bits + kWordBits - 1) / kWordBits; }
}  // namespace

BitVector::BitVector(size_t num_bits)
    : num_bits_(num_bits), words_(WordsFor(num_bits), 0) {}

void BitVector::Resize(size_t num_bits) {
  num_bits_ = num_bits;
  words_.resize(WordsFor(num_bits), 0);
  MaskTail();
}

void BitVector::Set(size_t i) { words_[i / kWordBits] |= (1ULL << (i % kWordBits)); }

void BitVector::Clear(size_t i) {
  words_[i / kWordBits] &= ~(1ULL << (i % kWordBits));
}

bool BitVector::Get(size_t i) const {
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

void BitVector::SetAll() {
  for (auto& w : words_) w = ~0ULL;
  MaskTail();
}

void BitVector::ClearAll() {
  for (auto& w : words_) w = 0;
}

size_t BitVector::Count() const {
  size_t count = 0;
  for (uint64_t w : words_) count += Popcount(w);
  return count;
}

bool BitVector::OrWith(const BitVector& other) {
  bool changed = false;
  for (size_t i = 0; i < words_.size(); ++i) {
    const uint64_t next = words_[i] | other.words_[i];
    changed |= (next != words_[i]);
    words_[i] = next;
  }
  return changed;
}

bool BitVector::OrWithAnd(const BitVector& a, const BitVector& b) {
  bool changed = false;
  const size_t n = words_.size();
  const size_t rem = num_bits_ % kWordBits;
  const uint64_t tail_mask = rem == 0 ? ~0ULL : (1ULL << rem) - 1;
  for (size_t i = 0; i < n; ++i) {
    uint64_t add = a.words_[i] & b.words_[i];
    if (i + 1 == n) add &= tail_mask;
    const uint64_t next = words_[i] | add;
    changed |= (next != words_[i]);
    words_[i] = next;
  }
  return changed;
}

bool BitVector::OrWithAndOffset(const BitVector& a, const BitVector& b,
                                size_t b_offset) {
  return OrWithAndWords(a, b.words_.data(), b.words_.size(), b_offset);
}

bool BitVector::OrWithAndWords(const BitVector& a, const uint64_t* b_words,
                               size_t b_num_words, size_t b_offset) {
  bool changed = false;
  const size_t n = words_.size();
  const size_t rem = num_bits_ % kWordBits;
  const uint64_t tail_mask = rem == 0 ? ~0ULL : (1ULL << rem) - 1;
  const size_t word_offset = b_offset / kWordBits;
  const uint32_t bit_offset = static_cast<uint32_t>(b_offset % kWordBits);
  if (bit_offset == 0) {
    // Word-aligned (b_offset == 0 is the plain OrWithAnd): no stitching.
    for (size_t i = 0; i < n; ++i) {
      const size_t lo = i + word_offset;
      uint64_t add = a.words_[i] & (lo < b_num_words ? b_words[lo] : 0);
      if (i + 1 == n) add &= tail_mask;
      const uint64_t next = words_[i] | add;
      changed |= (next != words_[i]);
      words_[i] = next;
    }
    return changed;
  }
  for (size_t i = 0; i < n; ++i) {
    // Word i of (b >> b_offset), stitched across the word boundary; words
    // past b's end read as zero.
    uint64_t add = a.words_[i] &
                   SliceWord64(b_words, b_num_words, i + word_offset, bit_offset);
    if (i + 1 == n) add &= tail_mask;
    const uint64_t next = words_[i] | add;
    changed |= (next != words_[i]);
    words_[i] = next;
  }
  return changed;
}

bool BitVector::WouldGainFromAnd(const BitVector& a, const BitVector& b) const {
  const size_t n = words_.size();
  const size_t rem = num_bits_ % kWordBits;
  const uint64_t tail_mask = rem == 0 ? ~0ULL : (1ULL << rem) - 1;
  for (size_t i = 0; i < n; ++i) {
    uint64_t add = a.words_[i] & b.words_[i];
    if (i + 1 == n) add &= tail_mask;
    if (add & ~words_[i]) return true;
  }
  return false;
}

void BitVector::FillBernoulli(double p, Rng& rng) {
  FillBernoulliWords(words_.data(), num_bits_, p, rng);
}

void BitVector::FillBernoulliWords(uint64_t* words, size_t num_bits, double p,
                                   Rng& rng) {
  const size_t num_words = WordsFor(num_bits);
  for (size_t w = 0; w < num_words; ++w) words[w] = 0;
  if (num_bits == 0 || p <= 0.0) return;
  if (p >= 1.0) {
    for (size_t w = 0; w < num_words; ++w) words[w] = ~0ULL;
    const size_t rem = num_bits % kWordBits;
    if (rem != 0) words[num_words - 1] &= (1ULL << rem) - 1;
    return;
  }
  auto set = [&](size_t i) { words[i / kWordBits] |= 1ULL << (i % kWordBits); };
  // Geometric skipping: expected work O(p * num_bits) instead of O(num_bits),
  // matching how sparse most uncertain-graph edges are.
  if (p < 0.25) {
    size_t i = rng.Geometric(p);
    while (i < num_bits) {
      set(i);
      i += 1 + rng.Geometric(p);
    }
    return;
  }
  for (size_t i = 0; i < num_bits; ++i) {
    if (rng.Bernoulli(p)) set(i);
  }
}

bool BitVector::operator==(const BitVector& other) const {
  return num_bits_ == other.num_bits_ && words_ == other.words_;
}

void BitVector::MaskTail() {
  const size_t rem = num_bits_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (1ULL << rem) - 1;
  }
}

}  // namespace relcomp
