#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace relcomp {

/// \brief Append-only byte writer over a std::string — the serialization
/// primitive of the persistence tier's section payloads and journal records.
///
/// Fixed-width fields are written by memcpy in host byte order, matching the
/// repo's existing binary formats (RELCOMPG, RELBFSIX): snapshots are
/// restart artifacts for the machine that wrote them, not an interchange
/// format.
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutBytes(&v, sizeof(v)); }
  void PutI32(int32_t v) { PutBytes(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutBytes(&v, sizeof(v)); }
  void PutF64(double v) { PutBytes(&v, sizeof(v)); }

  void PutBytes(const void* data, size_t size) {
    out_->append(static_cast<const char*>(data), size);
  }

  size_t size() const { return out_->size(); }

 private:
  std::string* out_;
};

/// \brief Bounds-checked reader over an immutable byte span.
///
/// Every Read* returns false (and reads nothing) once the span is exhausted
/// or the requested width does not fit — a truncated or bit-flipped payload
/// parses into a clean failure, never past-the-end reads. The persistence
/// tier additionally checksums every payload before parsing; the bounds
/// checks are the second line of defense.
class WireReader {
 public:
  WireReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}

  bool ReadU8(uint8_t* v) { return ReadBytes(v, sizeof(*v)); }
  bool ReadU32(uint32_t* v) { return ReadBytes(v, sizeof(*v)); }
  bool ReadI32(int32_t* v) { return ReadBytes(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadBytes(v, sizeof(*v)); }
  bool ReadF64(double* v) { return ReadBytes(v, sizeof(*v)); }

  bool ReadBytes(void* out, size_t size) {
    if (size > size_ - pos_) return false;
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return true;
  }

  bool Skip(size_t size) {
    if (size > size_ - pos_) return false;
    pos_ += size;
    return true;
  }

  /// Current read position (for zero-copy views into the span).
  const uint8_t* cursor() const { return data_ + pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace relcomp
