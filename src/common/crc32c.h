#pragma once

#include <cstddef>
#include <cstdint>

namespace relcomp {

/// \brief CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the
/// block-checksum primitive of the persistence tier (src/persist/).
///
/// Chosen over plain CRC32 for its better error-detection properties on
/// storage payloads and its hardware support (SSE4.2 crc32 instructions,
/// used automatically when the build enables them; the software slicing
/// path computes bit-identical values). Crc32c("123456789") == 0xE3069283.
///
/// `crc` chains partial computations: Crc32c(b, nb, Crc32c(a, na)) equals
/// Crc32c over the concatenation of a and b. Pass 0 to start a new sum.
uint32_t Crc32c(const void* data, size_t size, uint32_t crc = 0);

}  // namespace relcomp
