#include "common/status.h"

namespace relcomp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace relcomp
