#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "common/packed_ints.h"

namespace relcomp {

/// \brief Plain bit sequence with a two-level rank directory and sampled
/// select.
///
/// Rank1 is O(1): one superblock cumulative count (uint64 per 512 bits), one
/// in-superblock block count (uint16 per word), one Rank64. Select1 is O(1)
/// expected: a position sample every 512 ones narrows a binary search over
/// superblocks, then at most 8 block entries and one Select64 finish inside
/// the superblock. Directory overhead is ~0.28 bits per stored bit on top of
/// the raw words.
///
/// This is the offset structure of the compact graph layout: node adjacency
/// offsets are the select positions of a unary degree sequence instead of a
/// 32/64-bit offset array (see graph/compact_adjacency.h).
class RankSelectBitVector {
 public:
  RankSelectBitVector() = default;
  /// Freezes `bits` (copied) and builds the directories.
  explicit RankSelectBitVector(const BitVector& bits);

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }
  size_t num_ones() const { return num_ones_; }

  bool Get(size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1ULL;
  }

  /// Number of ones among bits [0, i); i in [0, size()].
  size_t Rank1(size_t i) const;

  /// Position of the k-th one; k is 1-based, in [1, num_ones()].
  size_t Select1(size_t k) const;

  /// Resident bytes: raw words plus both directories.
  size_t MemoryBytes() const;

 private:
  static constexpr size_t kWordsPerSuper = 8;  // 512-bit superblocks
  static constexpr size_t kSelectSample = 512;  // ones between select hints

  size_t num_bits_ = 0;
  size_t num_ones_ = 0;
  std::vector<uint64_t> words_;
  /// Cumulative ones before superblock s; one extra entry = num_ones().
  std::vector<uint64_t> super_rank_;
  /// Ones before word w within w's superblock (<= 512, fits uint16).
  std::vector<uint16_t> block_rank_;
  /// Superblock holding one #(j * kSelectSample + 1).
  std::vector<uint32_t> select_hint_;
};

/// \brief RRR-compressed bit sequence (Raman–Raman–Rao style): 15-bit blocks
/// stored as (class = popcount, offset = index of the block's pattern among
/// the C(15, class) patterns of that class), with per-superblock pointers
/// into the variable-width offset stream and cumulative ranks.
///
/// Space for a sequence with ones-density p approaches the entropy
/// n·H(p) + o(n) — a sparse sequence (p << 1/2) compresses several-fold
/// below the plain directory. Access costs one bounded block walk (< 32
/// class/offset reads) per operation, so rank/select stay near-raw speed.
/// The compact graph layout picks this variant for its offset sequence when
/// the unary degree sequence is sparse (high average degree).
class RrrBitVector {
 public:
  static constexpr uint32_t kBlockBits = 15;
  static constexpr size_t kBlocksPerSuper = 32;

  RrrBitVector() = default;
  explicit RrrBitVector(const BitVector& bits);

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }
  size_t num_ones() const { return num_ones_; }

  bool Get(size_t i) const;

  /// Number of ones among bits [0, i); i in [0, size()].
  size_t Rank1(size_t i) const;

  /// Position of the k-th one; k is 1-based, in [1, num_ones()].
  size_t Select1(size_t k) const;

  /// Resident bytes: classes, offset stream, and superblock samples.
  size_t MemoryBytes() const;

 private:
  /// Number of 15-bit blocks covering num_bits_.
  size_t num_blocks() const { return (num_bits_ + kBlockBits - 1) / kBlockBits; }

  /// Reads `width` bits of the offset stream starting at bit `pos`.
  uint32_t ReadOffset(size_t pos, uint32_t width) const;

  /// Decodes the 15-bit pattern of `block`, given the bit position of its
  /// offset within the stream (maintained by the caller's block walk).
  uint32_t DecodePattern(size_t block, size_t offset_pos) const;

  size_t num_bits_ = 0;
  size_t num_ones_ = 0;
  PackedIntVector classes_;             ///< 4-bit popcount class per block
  std::vector<uint64_t> offset_words_;  ///< concatenated variable-width offsets
  /// Bit position (into the offset stream) of block s * kBlocksPerSuper's
  /// offset, and cumulative ones before that block.
  std::vector<uint64_t> super_offset_pos_;
  std::vector<uint64_t> super_rank_;
};

}  // namespace relcomp
