#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#if defined(__BMI2__)
#include <immintrin.h>
#endif

namespace relcomp {

class Rng;

/// \name Word-level bit primitives
/// Builtin-backed (std::popcount / BMI2 PDEP where available) with portable
/// fallbacks. These are the shared building blocks of BitVector's word loops
/// and the rank/select directories in common/rank_select.h; keeping them in
/// one place lets tests oracle-check them once against naive bit loops.
/// @{

/// Number of set bits in `word`.
inline uint32_t Popcount(uint64_t word) {
  return static_cast<uint32_t>(std::popcount(word));
}

/// Number of set bits among the `i` lowest bits of `word`; i in [0, 64].
inline uint32_t Rank64(uint64_t word, uint32_t i) {
  if (i >= 64) return Popcount(word);
  return Popcount(word & ((uint64_t{1} << i) - 1));
}

/// Bit position of the k-th set bit of `word` (k is 1-based; requires
/// 1 <= k <= Popcount(word)).
inline uint32_t Select64(uint64_t word, uint32_t k) {
#if defined(__BMI2__)
  return static_cast<uint32_t>(
      std::countr_zero(_pdep_u64(uint64_t{1} << (k - 1), word)));
#else
  // Portable fallback: narrow to the byte holding the k-th one, then peel
  // the lower ones off that byte.
  uint32_t base = 0;
  for (;;) {
    const uint32_t byte_ones = Popcount(word & 0xFF);
    if (k <= byte_ones) break;
    k -= byte_ones;
    word >>= 8;
    base += 8;
  }
  uint64_t byte = word & 0xFF;
  while (--k > 0) byte &= byte - 1;  // clear the k-1 lowest ones
  return base + static_cast<uint32_t>(std::countr_zero(byte));
#endif
}

/// Word `word_index` of the shifted sequence (words >> bit_offset), with
/// words at or past `num_words` reading as zero; bit_offset in [0, 64). The
/// stitched-slice read shared by BitVector::OrWithAndOffset and the packed
/// BFS-Sharing edge blocks.
inline uint64_t SliceWord64(const uint64_t* words, size_t num_words,
                            size_t word_index, uint32_t bit_offset) {
  if (word_index >= num_words) return 0;
  uint64_t slice = words[word_index] >> bit_offset;
  if (bit_offset != 0 && word_index + 1 < num_words) {
    slice |= words[word_index + 1] << (64 - bit_offset);
  }
  return slice;
}

/// @}

/// \brief Fixed-size bit vector with the word-parallel operations needed by
/// the BFS Sharing estimator [45].
///
/// Each edge of the BFS Sharing index carries one BitVector of K bits (bit i
/// = "edge exists in pre-sampled possible world i"); each node carries one
/// BitVector Iv (bit i = "node reachable from s in world i"). The hot
/// operation is Iv |= (Iu & Ie), 64 worlds per machine word.
class BitVector {
 public:
  BitVector() = default;
  /// Creates a vector of `num_bits` bits, all zero.
  explicit BitVector(size_t num_bits);

  /// Number of addressable bits.
  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  /// Resizes to `num_bits`; newly added bits are zero.
  void Resize(size_t num_bits);

  void Set(size_t i);
  void Clear(size_t i);
  bool Get(size_t i) const;

  /// Sets every bit to one / zero.
  void SetAll();
  void ClearAll();

  /// Population count (number of set bits).
  size_t Count() const;

  /// this |= other. Returns true iff any bit of *this changed.
  bool OrWith(const BitVector& other);

  /// this |= (a & b) — the BFS Sharing propagation step (Alg. 2 line 18 /
  /// Alg. 3 line 8). Returns true iff any bit of *this changed.
  ///
  /// `a` and `b` may be longer than *this (BFS Sharing ANDs K-bit node
  /// vectors against L-bit edge vectors, K <= L); only the first size() bits
  /// participate and the tail stays masked.
  bool OrWithAnd(const BitVector& a, const BitVector& b);

  /// True iff (a & b) would add at least one new bit to *this, without
  /// mutating anything. Same length contract as OrWithAnd.
  bool WouldGainFromAnd(const BitVector& a, const BitVector& b) const;

  /// this |= (a & (b >> b_offset)): the OrWithAnd propagation step against a
  /// *bit slice* of `b` starting at `b_offset` — how a stratified BFS
  /// Sharing sweep runs one stratum's world range [b_offset, b_offset +
  /// size()) of the L-bit edge vectors without copying them. `a` must cover
  /// size() bits and `b` must cover b_offset + size() bits; bits of `b`
  /// beyond its length read as zero. Returns true iff any bit of *this*
  /// changed. b_offset == 0 is exactly OrWithAnd.
  bool OrWithAndOffset(const BitVector& a, const BitVector& b,
                       size_t b_offset);

  /// Raw-word form of OrWithAndOffset: `b` is a span of `b_num_words` words
  /// (bits past the span read as zero) instead of a BitVector — how the BFS
  /// Sharing loops propagate against the packed index's dense per-edge word
  /// blocks without materializing per-edge BitVectors. Bit-identical to
  /// OrWithAndOffset over a BitVector with the same words.
  bool OrWithAndWords(const BitVector& a, const uint64_t* b_words,
                      size_t b_num_words, size_t b_offset);

  /// Fills each bit with an independent Bernoulli(p) draw (index sampling).
  void FillBernoulli(double p, Rng& rng);

  /// Raw-word form of FillBernoulli, writing `num_bits` draws into `words`
  /// (which must span at least ceil(num_bits / 64) words; the tail of the
  /// last word is zeroed). Consumes the identical RNG stream as
  /// FillBernoulli, so packed and per-vector storage sample bit-identical
  /// worlds from equal seeds.
  static void FillBernoulliWords(uint64_t* words, size_t num_bits, double p,
                                 Rng& rng);

  bool operator==(const BitVector& other) const;
  bool operator!=(const BitVector& other) const { return !(*this == other); }

  /// Logical memory footprint in bytes (used by MemoryTracker accounting).
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Raw word access (read-only), for serialization.
  const std::vector<uint64_t>& words() const { return words_; }
  /// Mutable word access, for deserialization. Caller keeps num_bits valid.
  std::vector<uint64_t>& mutable_words() { return words_; }

 private:
  /// Zeroes the unused high bits of the last word so Count()/== stay exact.
  void MaskTail();

  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace relcomp
