#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace relcomp {

class Rng;

/// \brief Fixed-size bit vector with the word-parallel operations needed by
/// the BFS Sharing estimator [45].
///
/// Each edge of the BFS Sharing index carries one BitVector of K bits (bit i
/// = "edge exists in pre-sampled possible world i"); each node carries one
/// BitVector Iv (bit i = "node reachable from s in world i"). The hot
/// operation is Iv |= (Iu & Ie), 64 worlds per machine word.
class BitVector {
 public:
  BitVector() = default;
  /// Creates a vector of `num_bits` bits, all zero.
  explicit BitVector(size_t num_bits);

  /// Number of addressable bits.
  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  /// Resizes to `num_bits`; newly added bits are zero.
  void Resize(size_t num_bits);

  void Set(size_t i);
  void Clear(size_t i);
  bool Get(size_t i) const;

  /// Sets every bit to one / zero.
  void SetAll();
  void ClearAll();

  /// Population count (number of set bits).
  size_t Count() const;

  /// this |= other. Returns true iff any bit of *this changed.
  bool OrWith(const BitVector& other);

  /// this |= (a & b) — the BFS Sharing propagation step (Alg. 2 line 18 /
  /// Alg. 3 line 8). Returns true iff any bit of *this changed.
  ///
  /// `a` and `b` may be longer than *this (BFS Sharing ANDs K-bit node
  /// vectors against L-bit edge vectors, K <= L); only the first size() bits
  /// participate and the tail stays masked.
  bool OrWithAnd(const BitVector& a, const BitVector& b);

  /// True iff (a & b) would add at least one new bit to *this, without
  /// mutating anything. Same length contract as OrWithAnd.
  bool WouldGainFromAnd(const BitVector& a, const BitVector& b) const;

  /// this |= (a & (b >> b_offset)): the OrWithAnd propagation step against a
  /// *bit slice* of `b` starting at `b_offset` — how a stratified BFS
  /// Sharing sweep runs one stratum's world range [b_offset, b_offset +
  /// size()) of the L-bit edge vectors without copying them. `a` must cover
  /// size() bits and `b` must cover b_offset + size() bits; bits of `b`
  /// beyond its length read as zero. Returns true iff any bit of *this*
  /// changed. b_offset == 0 is exactly OrWithAnd.
  bool OrWithAndOffset(const BitVector& a, const BitVector& b,
                       size_t b_offset);

  /// Fills each bit with an independent Bernoulli(p) draw (index sampling).
  void FillBernoulli(double p, Rng& rng);

  bool operator==(const BitVector& other) const;
  bool operator!=(const BitVector& other) const { return !(*this == other); }

  /// Logical memory footprint in bytes (used by MemoryTracker accounting).
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Raw word access (read-only), for serialization.
  const std::vector<uint64_t>& words() const { return words_; }
  /// Mutable word access, for deserialization. Caller keeps num_bits valid.
  std::vector<uint64_t>& mutable_words() { return words_; }

 private:
  /// Zeroes the unused high bits of the last word so Count()/== stay exact.
  void MaskTail();

  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace relcomp
