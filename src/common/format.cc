#include "common/format.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace relcomp {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(size_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%zu B", bytes);
  return StrFormat("%.2f %s", value, kUnits[unit]);
}

std::string HumanSeconds(double seconds) {
  if (seconds < 1e-6) return StrFormat("%.1f ns", seconds * 1e9);
  if (seconds < 1e-3) return StrFormat("%.2f us", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.2f ms", seconds * 1e3);
  if (seconds < 120.0) return StrFormat("%.3f s", seconds);
  return StrFormat("%.1f min", seconds / 60.0);
}

std::vector<std::string> SplitString(const std::string& s, const char* delims) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start < s.size()) {
    const size_t end = s.find_first_of(delims, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseUint64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

}  // namespace relcomp
