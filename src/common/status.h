#pragma once

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

namespace relcomp {

/// \brief Canonical error codes used across the library (RocksDB/Arrow idiom).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kFailedPrecondition,
  kOutOfRange,
  kNotSupported,
  kInternal,
  /// Transient resource exhaustion (e.g. a full bounded queue): safe to
  /// retry later, unlike kFailedPrecondition which reflects object state.
  kUnavailable,
  /// The caller's deadline elapsed before the operation finished. Transient
  /// in the same sense as kUnavailable: the identical request succeeds given
  /// a looser deadline, so it must never be negative-cached.
  kDeadlineExceeded,
  /// The caller explicitly cancelled the operation (CancelToken::Cancel).
  /// Transient: says nothing about the request itself.
  kCancelled,
};

/// True for codes that describe the *circumstances* of a call rather than
/// its content — overload, deadlines, cancellation. A transient failure is
/// safe to retry and must never enter the negative-result cache (a cached
/// kUnavailable would keep shedding a query the engine could now serve).
inline constexpr bool IsTransientStatusCode(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled;
}

/// \brief Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// \brief Lightweight status object: either OK or an error code plus message.
///
/// The library does not throw exceptions; every fallible operation returns a
/// Status (or a Result<T> for value-producing operations).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \name Factory helpers for the canonical error codes.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// @}

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

  /// Aborts the process with a diagnostic if the status is not OK.
  /// Use only in tests, examples, and benchmark drivers.
  void CheckOK() const {
    if (!ok()) {
      std::cerr << "Status not OK: " << ToString() << std::endl;
      std::abort();
    }
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result / absl::StatusOr. A default-constructed Result is an
/// Internal error ("uninitialized").
template <typename T>
class Result {
 public:
  Result() : status_(Status::Internal("uninitialized Result")) {}
  /*implicit*/ Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status without value");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Aborts otherwise.
  const T& value() const& {
    EnsureOK();
    return *value_;
  }
  T& value() & {
    EnsureOK();
    return *value_;
  }
  /// Moves the value out. Precondition: ok().
  T MoveValue() {
    EnsureOK();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void EnsureOK() const {
    if (!ok()) {
      std::cerr << "Result accessed with non-OK status: " << status_.ToString()
                << std::endl;
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define RELCOMP_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::relcomp::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

#define RELCOMP_CONCAT_IMPL(a, b) a##b
#define RELCOMP_CONCAT(a, b) RELCOMP_CONCAT_IMPL(a, b)

#define RELCOMP_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr)   \
  auto var = (rexpr);                                    \
  if (!var.ok()) return var.status();                    \
  lhs = var.MoveValue();

/// Evaluates `rexpr` (a Result<T>), propagates its error, else assigns to lhs.
#define RELCOMP_ASSIGN_OR_RETURN(lhs, rexpr) \
  RELCOMP_ASSIGN_OR_RETURN_IMPL(RELCOMP_CONCAT(_result_, __COUNTER__), lhs, rexpr)

}  // namespace relcomp
