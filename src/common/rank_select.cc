#include "common/rank_select.h"

#include <algorithm>

namespace relcomp {

namespace {

/// C(n, k) for n, k in [0, 15] (C(15, 7) = 6435 fits comfortably).
struct BinomialTable {
  uint16_t c[16][16] = {};
  constexpr BinomialTable() {
    for (int n = 0; n < 16; ++n) {
      c[n][0] = 1;
      for (int k = 1; k <= n; ++k) {
        c[n][k] = static_cast<uint16_t>(c[n - 1][k - 1] +
                                        (k <= n - 1 ? c[n - 1][k] : 0));
      }
    }
  }
};
constexpr BinomialTable kBinomial;

constexpr uint16_t Choose(uint32_t n, uint32_t k) {
  return k > n ? 0 : kBinomial.c[n][k];
}

/// ceil(log2(C(15, cls))): bits needed for an offset of class `cls`.
struct OffsetWidthTable {
  uint8_t w[16] = {};
  constexpr OffsetWidthTable() {
    for (uint32_t cls = 0; cls <= 15; ++cls) {
      const uint32_t patterns = Choose(15, cls);
      uint32_t width = 0;
      while ((1u << width) < patterns) ++width;
      w[cls] = static_cast<uint8_t>(width);
    }
  }
};
constexpr OffsetWidthTable kOffsetWidth;

/// Offset of `pattern` (15 bits, popcount == cls) among its class: patterns
/// with bit `pos` zero enumerate before those with it one, position by
/// position.
uint32_t EncodeRrrOffset(uint32_t pattern, uint32_t cls) {
  uint32_t offset = 0;
  uint32_t remaining = cls;
  for (uint32_t pos = 0; pos < RrrBitVector::kBlockBits && remaining > 0;
       ++pos) {
    if ((pattern >> pos) & 1u) {
      offset += Choose(RrrBitVector::kBlockBits - pos - 1, remaining);
      --remaining;
    }
  }
  return offset;
}

/// Inverse of EncodeRrrOffset.
uint32_t DecodeRrrPattern(uint32_t offset, uint32_t cls) {
  uint32_t pattern = 0;
  uint32_t remaining = cls;
  for (uint32_t pos = 0; pos < RrrBitVector::kBlockBits && remaining > 0;
       ++pos) {
    const uint32_t zeros_first =
        Choose(RrrBitVector::kBlockBits - pos - 1, remaining);
    if (offset >= zeros_first) {
      pattern |= 1u << pos;
      offset -= zeros_first;
      --remaining;
    }
  }
  return pattern;
}

}  // namespace

// ---------------------------------------------------------------------------
// RankSelectBitVector
// ---------------------------------------------------------------------------

RankSelectBitVector::RankSelectBitVector(const BitVector& bits)
    : num_bits_(bits.size()), words_(bits.words()) {
  const size_t num_words = words_.size();
  const size_t num_supers = (num_words + kWordsPerSuper - 1) / kWordsPerSuper;
  super_rank_.assign(num_supers + 1, 0);
  block_rank_.assign(num_words, 0);

  uint64_t total = 0;
  for (size_t w = 0; w < num_words; ++w) {
    const size_t super = w / kWordsPerSuper;
    if (w % kWordsPerSuper == 0) super_rank_[super] = total;
    block_rank_[w] = static_cast<uint16_t>(total - super_rank_[super]);
    const uint32_t ones = Popcount(words_[w]);
    // Position samples: superblock of each one #(j * kSelectSample + 1).
    while (select_hint_.size() * kSelectSample < total + ones &&
           select_hint_.size() * kSelectSample >= total) {
      select_hint_.push_back(static_cast<uint32_t>(super));
    }
    total += ones;
  }
  super_rank_[num_supers] = total;
  num_ones_ = total;
}

size_t RankSelectBitVector::Rank1(size_t i) const {
  if (i == 0) return 0;
  const size_t word = (i - 1) / 64;  // last word with participating bits
  const size_t full_word = i / 64;
  size_t rank = super_rank_[word / kWordsPerSuper] + block_rank_[word];
  if (full_word > word) return rank + Popcount(words_[word]);
  return rank + Rank64(words_[word], static_cast<uint32_t>(i % 64));
}

size_t RankSelectBitVector::Select1(size_t k) const {
  // Hint narrows the superblock search to the sample straddling one #k.
  const size_t hint = (k - 1) / kSelectSample;
  const size_t num_supers = super_rank_.size() - 1;
  const size_t lo = select_hint_[hint];
  const size_t hi =
      hint + 1 < select_hint_.size() ? select_hint_[hint + 1] : num_supers - 1;
  // Largest superblock s in [lo, hi] with super_rank_[s] < k.
  const auto* first = super_rank_.data() + lo;
  const auto* last = super_rank_.data() + hi + 1;
  const size_t super =
      static_cast<size_t>(std::upper_bound(first, last, k - 1) -
                          super_rank_.data()) -
      1;
  const size_t target = k - super_rank_[super];  // 1-based within superblock
  // At most kWordsPerSuper block entries finish the job.
  size_t word = super * kWordsPerSuper;
  const size_t word_end = std::min(words_.size(), word + kWordsPerSuper);
  while (word + 1 < word_end && block_rank_[word + 1] < target) ++word;
  return word * 64 +
         Select64(words_[word], static_cast<uint32_t>(target - block_rank_[word]));
}

size_t RankSelectBitVector::MemoryBytes() const {
  return words_.size() * sizeof(uint64_t) +
         super_rank_.size() * sizeof(uint64_t) +
         block_rank_.size() * sizeof(uint16_t) +
         select_hint_.size() * sizeof(uint32_t);
}

// ---------------------------------------------------------------------------
// RrrBitVector
// ---------------------------------------------------------------------------

RrrBitVector::RrrBitVector(const BitVector& bits) : num_bits_(bits.size()) {
  const size_t blocks = num_blocks();
  classes_ = PackedIntVector(blocks, 4);
  const uint64_t* words = bits.words().data();
  const size_t num_words = bits.words().size();

  // Pass 1: classes and total offset-stream width.
  size_t total_offset_bits = 0;
  for (size_t b = 0; b < blocks; ++b) {
    const uint32_t pattern = static_cast<uint32_t>(
        SliceWord64(words, num_words, (b * kBlockBits) / 64,
                    static_cast<uint32_t>((b * kBlockBits) % 64)) &
        ((1u << kBlockBits) - 1));
    const uint32_t cls = Popcount(pattern);
    classes_.Set(b, cls);
    total_offset_bits += kOffsetWidth.w[cls];
    num_ones_ += cls;
  }
  offset_words_.assign(total_offset_bits / 64 + 2, 0);

  // Pass 2: encode offsets and sample every kBlocksPerSuper-th block.
  const size_t num_supers = (blocks + kBlocksPerSuper - 1) / kBlocksPerSuper;
  super_offset_pos_.assign(num_supers + 1, 0);
  super_rank_.assign(num_supers + 1, 0);
  size_t pos = 0;
  uint64_t rank = 0;
  for (size_t b = 0; b < blocks; ++b) {
    if (b % kBlocksPerSuper == 0) {
      super_offset_pos_[b / kBlocksPerSuper] = pos;
      super_rank_[b / kBlocksPerSuper] = rank;
    }
    const uint32_t pattern = static_cast<uint32_t>(
        SliceWord64(words, num_words, (b * kBlockBits) / 64,
                    static_cast<uint32_t>((b * kBlockBits) % 64)) &
        ((1u << kBlockBits) - 1));
    const uint32_t cls = Popcount(pattern);
    const uint32_t width = kOffsetWidth.w[cls];
    if (width > 0) {
      const uint64_t offset = EncodeRrrOffset(pattern, cls);
      const size_t word = pos / 64;
      const uint32_t shift = static_cast<uint32_t>(pos % 64);
      offset_words_[word] |= offset << shift;
      if (shift + width > 64) offset_words_[word + 1] |= offset >> (64 - shift);
      pos += width;
    }
    rank += cls;
  }
  super_offset_pos_[num_supers] = pos;
  super_rank_[num_supers] = rank;
}

uint32_t RrrBitVector::ReadOffset(size_t pos, uint32_t width) const {
  if (width == 0) return 0;
  return static_cast<uint32_t>(
      SliceWord64(offset_words_.data(), offset_words_.size(), pos / 64,
                  static_cast<uint32_t>(pos % 64)) &
      ((uint64_t{1} << width) - 1));
}

uint32_t RrrBitVector::DecodePattern(size_t block, size_t offset_pos) const {
  const uint32_t cls = static_cast<uint32_t>(classes_.Get(block));
  return DecodeRrrPattern(ReadOffset(offset_pos, kOffsetWidth.w[cls]), cls);
}

bool RrrBitVector::Get(size_t i) const {
  const size_t block = i / kBlockBits;
  const size_t super = block / kBlocksPerSuper;
  size_t pos = super_offset_pos_[super];
  for (size_t b = super * kBlocksPerSuper; b < block; ++b) {
    pos += kOffsetWidth.w[classes_.Get(b)];
  }
  return (DecodePattern(block, pos) >> (i % kBlockBits)) & 1u;
}

size_t RrrBitVector::Rank1(size_t i) const {
  if (i == 0) return 0;
  const size_t block = i / kBlockBits;
  const size_t super = block / kBlocksPerSuper;
  size_t rank = super_rank_[super];
  size_t pos = super_offset_pos_[super];
  for (size_t b = super * kBlocksPerSuper; b < block; ++b) {
    const uint32_t cls = static_cast<uint32_t>(classes_.Get(b));
    rank += cls;
    pos += kOffsetWidth.w[cls];
  }
  const uint32_t rem = static_cast<uint32_t>(i % kBlockBits);
  if (rem != 0) rank += Rank64(DecodePattern(block, pos), rem);
  return rank;
}

size_t RrrBitVector::Select1(size_t k) const {
  // Largest superblock with cumulative rank < k, then a bounded block walk.
  const size_t num_supers = super_rank_.size() - 1;
  const size_t super =
      static_cast<size_t>(std::upper_bound(super_rank_.data(),
                                           super_rank_.data() + num_supers,
                                           k - 1) -
                          super_rank_.data()) -
      1;
  size_t rank = super_rank_[super];
  size_t pos = super_offset_pos_[super];
  for (size_t b = super * kBlocksPerSuper;; ++b) {
    const uint32_t cls = static_cast<uint32_t>(classes_.Get(b));
    if (rank + cls >= k) {
      return b * kBlockBits +
             Select64(DecodePattern(b, pos), static_cast<uint32_t>(k - rank));
    }
    rank += cls;
    pos += kOffsetWidth.w[cls];
  }
}

size_t RrrBitVector::MemoryBytes() const {
  return classes_.MemoryBytes() + offset_words_.size() * sizeof(uint64_t) +
         super_offset_pos_.size() * sizeof(uint64_t) +
         super_rank_.size() * sizeof(uint64_t);
}

}  // namespace relcomp
