#include "common/packed_ints.h"

#include <algorithm>
#include <bit>

namespace relcomp {

PackedIntVector::PackedIntVector(size_t size, uint32_t bit_width)
    : size_(size), bit_width_(std::clamp(bit_width, 1u, 64u)) {
  mask_ = bit_width_ == 64 ? ~uint64_t{0}
                           : (uint64_t{1} << bit_width_) - 1;
  const size_t payload_bits = size_ * static_cast<size_t>(bit_width_);
  words_.assign((payload_bits + 63) / 64 + 1, 0);  // +1 guard word
}

uint32_t PackedIntVector::WidthFor(uint64_t max_value) {
  return std::max(64 - static_cast<uint32_t>(std::countl_zero(max_value)), 1u);
}

void PackedIntVector::Set(size_t i, uint64_t value) {
  value &= mask_;
  const size_t bit = i * bit_width_;
  const size_t word = bit >> 6;
  const uint32_t shift = static_cast<uint32_t>(bit & 63);
  words_[word] = (words_[word] & ~(mask_ << shift)) | (value << shift);
  if (shift + bit_width_ > 64) {
    const uint32_t spill = 64 - shift;
    words_[word + 1] =
        (words_[word + 1] & ~(mask_ >> spill)) | (value >> spill);
  }
}

}  // namespace relcomp
