#pragma once

#include <atomic>
#include <cstdint>

#include "common/status.h"
#include "common/timer.h"

namespace relcomp {

/// \brief Cooperative cancellation handle: a deadline, an explicit cancel
/// flag, or both, optionally chained to a parent token.
///
/// The engine threads one of these through EstimateOptions so long-running
/// estimator cores (MC sample loops, BFS-Sharing world slices, the sweep
/// stratum scheduler) can poll it at their natural boundaries. Cancellation
/// is strictly *cooperative and all-or-nothing*: a cancelled call abandons
/// its work and returns kDeadlineExceeded / kCancelled — it never returns a
/// partial result, so completed calls are bit-identical whether or not a
/// token was attached (polling consumes no randomness).
///
/// Thread-safe: Cancel() may race with Cancelled() from any thread. The
/// token is non-owning with respect to its parent; the parent must outlive
/// every poll (the engine links a caller-supplied token under a per-query
/// stack token whose lifetime brackets the query).
class CancelToken {
 public:
  CancelToken() = default;

  /// A token that trips once StopwatchNs::Now() passes `deadline_ns`
  /// (absolute steady-clock nanoseconds; 0 = no deadline), and whenever
  /// `parent` (optional, not owned) is cancelled.
  explicit CancelToken(uint64_t deadline_ns,
                       const CancelToken* parent = nullptr)
      : deadline_ns_(deadline_ns), parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trips the explicit cancel flag. Idempotent; callable from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once the flag is tripped, the deadline has passed, or the parent
  /// token is cancelled. The poll estimator cores place in their loops.
  bool Cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (deadline_ns_ != 0 && StopwatchNs::Now() >= deadline_ns_) return true;
    return parent_ != nullptr && parent_->Cancelled();
  }

  /// Absolute deadline in StopwatchNs nanoseconds (0 = none). Does not
  /// consult the parent; waiters combining a timed wait with a parent poll
  /// read this for the wait bound and poll Cancelled() for the rest.
  uint64_t deadline_ns() const { return deadline_ns_; }

  /// The Status a cancelled call reports: kDeadlineExceeded when the
  /// deadline tripped first, kCancelled for an explicit Cancel (directly or
  /// through the parent chain). Meaningful only once Cancelled() is true.
  Status ToStatus() const {
    if (deadline_ns_ != 0 && StopwatchNs::Now() >= deadline_ns_ &&
        !cancelled_.load(std::memory_order_relaxed)) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled by caller");
    }
    if (parent_ != nullptr && parent_->Cancelled()) {
      return parent_->ToStatus();
    }
    return Status::DeadlineExceeded("query deadline exceeded");
  }

 private:
  std::atomic<bool> cancelled_{false};
  const uint64_t deadline_ns_ = 0;
  const CancelToken* const parent_ = nullptr;
};

}  // namespace relcomp
