#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace relcomp {

/// Injection sites the harness can trip. Each site models one concrete
/// production failure the engine must degrade through, at the layer where
/// that failure would really originate.
enum class FaultSite : uint32_t {
  /// An estimator call (stratum, whole sweep, or scalar estimate) fails
  /// with an injected kInternal error at its entry — before any randomness
  /// is consumed, so non-injected calls are bit-identical to a fault-free
  /// run.
  kEstimatorFailure = 0,
  /// An estimator call is delayed by FaultPlan::latency_us before running
  /// normally. Pure latency: the answer is untouched.
  kInducedLatency,
  /// A cache insertion (ResultCache or SweepCache) is dropped as if the
  /// allocation failed. Semantically invisible by the cache contract — the
  /// next miss recomputes the identical answer.
  kAllocFailure,
  /// ThreadPool::TrySubmit reports a full queue. Hits best-effort work
  /// (scout warms, background refreshes) and the load-shedding admission
  /// path; blocking Submit is never injected (it has no rejection surface).
  kPoolReject,
  /// \name File-I/O sites (the persistence tier's crash matrix)
  /// These three are keyed by FileOpKey(path, offset/ordinal) — derived from
  /// file *content identity* (basename + position), never from temp-dir
  /// names, thread ids, or wall clock — so the injected set is identical
  /// across runs and thread counts.
  /// @{
  /// A file write persists only a prefix of the requested bytes and the
  /// operation aborts where it stands (torn tmp file / torn journal tail) —
  /// the shape a real partial write + crash leaves behind.
  kFileShortWrite,
  /// fsync reports failure; the publishing protocol must abort *before*
  /// rename so the previous snapshot stays the live one.
  kFsyncFailure,
  /// A SIGKILL-style crash point: the file operation abandons everything
  /// exactly where it is (no cleanup, no unlink, no rename). Tests enumerate
  /// these via FaultPlan::crash_point_select to kill a publish/append at
  /// every step and prove reopen recovers.
  kCrashPoint,
  /// @}
};

inline constexpr size_t kNumFaultSites = 7;

/// Short site name ("estimator_failure", "induced_latency", ...).
const char* FaultSiteName(FaultSite site);

/// Content-derived key for a file-I/O fault probe: hashes the basename of
/// `path` (temp-dir prefixes must not change the injected set) with the
/// operation's offset or ordinal. Deterministic across runs, machines, and
/// thread counts.
uint64_t FileOpKey(std::string_view path, uint64_t ordinal);

/// One deterministic injection campaign: per-site probabilities plus the
/// seed every injection decision derives from.
struct FaultPlan {
  uint64_t seed = 0;
  /// Per-site injection probability in [0, 1] (index = FaultSite).
  double probability[kNumFaultSites] = {};
  /// Delay injected at kInducedLatency sites, in microseconds.
  uint32_t latency_us = 100;
  /// Deterministic crash-point enumeration: when >= 0, the kCrashPoint site
  /// ignores its probability and trips exactly on the select-th probe since
  /// Configure (probes are counted process-wide). Persist operations probe
  /// their crash points single-threaded in a fixed order, so looping select
  /// = 0, 1, 2, ... kills a publish/append at every distinct step; an
  /// iteration that completes with zero injections proves the enumeration
  /// is exhausted. -1 (the default) uses the probability path.
  int64_t crash_point_select = -1;
};

/// \brief Process-wide deterministic fault injector — compiled in, inert by
/// default.
///
/// Every injection decision is a pure function of (plan seed, site, caller
/// key): ShouldInject hashes the three and compares against the site's
/// probability threshold. Callers pass *content-derived* keys (the engine
/// uses query seeds and per-stratum seeds), so the set of injected
/// operations is identical at 1, 2, or 8 threads — which is what lets the
/// chaos suite assert that all successful answers under injection are
/// bit-identical to the fault-free run.
///
/// Disabled (the default), the hot-path cost is one relaxed atomic load per
/// site probe. Configure/Disable are test-harness entry points, not
/// serving-path API; they must not race active probes' plan reads in
/// production code (the chaos suite configures before building each engine
/// and disables after tearing it down).
class FaultInjector {
 public:
  /// The process-wide injector every instrumented site consults.
  static FaultInjector& Global();

  /// Installs `plan` and arms the injector. Resets the per-site counters.
  void Configure(const FaultPlan& plan);

  /// Disarms the injector (probes return false at one atomic load again).
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Deterministic injection decision for (site, key); counts a hit in
  /// injected(site). False whenever the injector is disabled.
  bool ShouldInject(FaultSite site, uint64_t key);

  /// ShouldInject wrapped as a Status: an injected kInternal error naming
  /// the site and `what`, or OK.
  Status MaybeFail(FaultSite site, uint64_t key, const char* what);

  /// Sleeps FaultPlan::latency_us when the kInducedLatency site trips for
  /// `key`. Never changes results — only their timing.
  void MaybeDelay(uint64_t key);

  /// Injections performed at `site` since the last Configure.
  uint64_t injected(FaultSite site) const {
    return injected_[static_cast<size_t>(site)].load(
        std::memory_order_relaxed);
  }

  /// Total injections across all sites since the last Configure.
  uint64_t total_injected() const;

 private:
  FaultInjector() = default;

  std::atomic<bool> enabled_{false};
  FaultPlan plan_;
  std::atomic<uint64_t> injected_[kNumFaultSites] = {};
  /// kCrashPoint probes seen since Configure (crash_point_select mode).
  std::atomic<uint64_t> crash_probes_{0};
};

}  // namespace relcomp
