#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace relcomp {

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// \brief "1.5 KB" / "3.2 MB" style rendering of a byte count.
std::string HumanBytes(size_t bytes);

/// \brief Seconds rendered with a unit that keeps 3-4 significant digits
/// ("12.3 ms", "4.07 s").
std::string HumanSeconds(double seconds);

/// \brief Splits `s` on any of the characters in `delims`, dropping empty
/// tokens.
std::vector<std::string> SplitString(const std::string& s, const char* delims);

/// \brief Parses a double, returning false on malformed input.
bool ParseDouble(const std::string& s, double* out);

/// \brief Parses an unsigned 64-bit integer, returning false on malformed
/// input.
bool ParseUint64(const std::string& s, uint64_t* out);

}  // namespace relcomp
