#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace relcomp {

/// \brief Logical memory accounting for the paper's "online memory usage"
/// metric (Section 3.6 / Figure 12).
///
/// Estimators report the sizes of their dominant data structures (node bit
/// vectors, per-node geometric heaps, recursion frames, simplified-graph
/// copies, index structures loaded for a query). This reproduces the paper's
/// memory *ordering* (MC < LP+ < ProbTree < BFS Sharing < RHH ~= RSS)
/// deterministically, independent of allocator behaviour. A process-level RSS
/// probe is also provided for sanity checks.
/// Counters are std::atomic (relaxed) so per-thread estimator replicas can
/// report into a shared tracker without data races; single-threaded behaviour
/// is unchanged.
class MemoryTracker {
 public:
  /// Records an allocation of `bytes` logical bytes.
  void Add(size_t bytes) {
    const size_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }

  /// Records a release of `bytes` logical bytes (clamped at zero).
  void Release(size_t bytes) {
    size_t current = current_.load(std::memory_order_relaxed);
    size_t next;
    do {
      next = bytes > current ? 0 : current - bytes;
    } while (!current_.compare_exchange_weak(current, next,
                                             std::memory_order_relaxed));
  }

  /// Currently live logical bytes.
  size_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  /// High-water mark since construction / last Reset().
  size_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

  /// Clears both counters.
  void Reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }
  /// Clears the peak down to the current level.
  void ResetPeak() {
    peak_.store(current_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

 private:
  std::atomic<size_t> current_{0};
  std::atomic<size_t> peak_{0};
};

/// \brief RAII helper: Add(bytes) on construction, Release(bytes) on scope
/// exit. `bytes` may be grown while in scope via Grow().
class ScopedAllocation {
 public:
  ScopedAllocation(MemoryTracker* tracker, size_t bytes)
      : tracker_(tracker), bytes_(bytes) {
    if (tracker_ != nullptr) tracker_->Add(bytes_);
  }
  ~ScopedAllocation() {
    if (tracker_ != nullptr) tracker_->Release(bytes_);
  }
  ScopedAllocation(const ScopedAllocation&) = delete;
  ScopedAllocation& operator=(const ScopedAllocation&) = delete;

  /// Registers `extra` additional bytes owned by this scope.
  void Grow(size_t extra) {
    bytes_ += extra;
    if (tracker_ != nullptr) tracker_->Add(extra);
  }

  size_t bytes() const { return bytes_; }

 private:
  MemoryTracker* tracker_;
  size_t bytes_;
};

/// \brief Deduplicated resident-index accounting for a set of estimator
/// replicas.
///
/// Summing Estimator::IndexMemoryBytes() over replicas double-counts an index
/// they share: N replicas over one immutable index hold one copy, not N. This
/// report splits the footprint so each distinct shared index is counted once
/// (keyed by Estimator::SharedIndexIdentity) and replica-private index bytes
/// are summed per replica. Computed by ReportIndexMemory (estimator_factory).
struct IndexMemoryReport {
  /// Bytes of distinct shared immutable indexes, each counted once.
  size_t shared_bytes = 0;
  /// Sum of replica-private (unshared) index bytes across all replicas.
  size_t replica_bytes = 0;
  /// Number of distinct shared indexes observed.
  size_t shared_indexes = 0;
  /// Bytes of ready-but-unadopted prebuilt generations (the
  /// GenerationPrebuilder's ready pool) — index-sized artifacts resident
  /// alongside the live index. Filled by QueryEngine::IndexMemory(); 0 when
  /// no prebuilder is running.
  size_t prebuilt_bytes = 0;

  /// True resident index footprint of the replica set (live indexes plus
  /// prebuilt spare generations).
  size_t total_bytes() const {
    return shared_bytes + replica_bytes + prebuilt_bytes;
  }
};

/// \brief Resident-set size of the current process in bytes (Linux
/// /proc/self/statm), or 0 if unavailable.
size_t CurrentRssBytes();

}  // namespace relcomp
