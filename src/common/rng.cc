#include "common/rng.h"

#include <cmath>

namespace relcomp {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t HashCombineSeed(uint64_t seed, uint64_t value) {
  // Weyl-step the value into the state so that (seed, 0) and (seed ^ 1, 1)
  // style near-collisions still separate, then finalize with SplitMix64.
  uint64_t state = seed ^ (value * 0xD1B54A32D192ED03ULL + 0x9E3779B97F4A7C15ULL);
  return SplitMix64(state);
}

uint64_t StratumSeed(uint64_t seed, uint32_t stratum, uint32_t num_strata) {
  if (num_strata <= 1) return seed;
  return HashCombineSeed(seed, stratum);
}

uint32_t StratumSampleCount(uint32_t num_samples, uint32_t num_strata,
                            uint32_t stratum) {
  if (num_strata <= 1) return num_samples;
  const uint32_t base = num_samples / num_strata;
  return base + (stratum < num_samples % num_strata ? 1 : 0);
}

uint32_t StratumSampleOffset(uint32_t num_samples, uint32_t num_strata,
                             uint32_t stratum) {
  if (num_strata <= 1) return 0;
  const uint32_t base = num_samples / num_strata;
  const uint32_t extra = num_samples % num_strata;
  return stratum * base + (stratum < extra ? stratum : extra);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::Reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
  has_cached_normal_ = false;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t n) {
  // Lemire's nearly-divisionless bounded integers with rejection.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t threshold = (0 - n) % n;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::Geometric(double p) {
  if (p >= 1.0) return 0;
  // Inversion: X = floor(log(U) / log(1 - p)), U in (0, 1).
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  double x = std::floor(std::log(u) / std::log1p(-p));
  if (x < 0.0) x = 0.0;
  constexpr double kMax = 9.0e18;
  if (x > kMax) x = kMax;
  return static_cast<uint64_t>(x);
}

double Rng::Exponential(double lambda) {
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return -std::log(u) / lambda;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

Rng Rng::Split() { return Rng(NextU64() ^ 0xD6E8FEB86659FD93ULL); }

}  // namespace relcomp
