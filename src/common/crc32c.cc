#include "common/crc32c.h"

#include <cstring>

#ifdef __SSE4_2__
#include <nmmintrin.h>
#endif

namespace relcomp {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // CRC32C, reflected

/// Slicing-by-8 lookup tables, generated once at first use.
struct Crc32cTables {
  uint32_t t[8][256];

  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (kPoly & (0u - (crc & 1u)));
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables* tables = new Crc32cTables();
  return *tables;
}

uint32_t SoftwareCrc32c(const uint8_t* p, size_t size, uint32_t crc) {
  const Crc32cTables& tables = Tables();
  // Process 8 bytes per step (slicing-by-8), then the byte tail.
  while (size >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, sizeof(chunk));
    chunk ^= crc;  // little-endian hosts: low 4 bytes absorb the crc
    crc = tables.t[7][chunk & 0xFF] ^ tables.t[6][(chunk >> 8) & 0xFF] ^
          tables.t[5][(chunk >> 16) & 0xFF] ^ tables.t[4][(chunk >> 24) & 0xFF] ^
          tables.t[3][(chunk >> 32) & 0xFF] ^ tables.t[2][(chunk >> 40) & 0xFF] ^
          tables.t[1][(chunk >> 48) & 0xFF] ^ tables.t[0][(chunk >> 56) & 0xFF];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ tables.t[0][(crc ^ *p++) & 0xFFu];
  }
  return crc;
}

#ifdef __SSE4_2__
uint32_t HardwareCrc32c(const uint8_t* p, size_t size, uint32_t crc) {
  uint64_t crc64 = crc;
  while (size >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, sizeof(chunk));
    crc64 = _mm_crc32_u64(crc64, chunk);
    p += 8;
    size -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (size-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return crc;
}
#endif

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t crc) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
#ifdef __SSE4_2__
  crc = HardwareCrc32c(p, size, crc);
#else
  crc = SoftwareCrc32c(p, size, crc);
#endif
  return ~crc;
}

}  // namespace relcomp
