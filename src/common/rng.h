#pragma once

#include <cstdint>
#include <limits>

namespace relcomp {

/// \brief SplitMix64 step; used to expand a single 64-bit seed into the
/// xoshiro256** state. Also usable as a cheap hash.
uint64_t SplitMix64(uint64_t& state);

/// \brief Stateless stream splitter: derives a child seed from `seed` and a
/// distinguishing `value` (a query field, a worker index, ...). Chaining
/// calls folds several fields into one seed:
///
///   uint64_t s = HashCombineSeed(master, source);
///   s = HashCombineSeed(s, target);
///
/// Equal inputs give equal outputs on every platform, which is what lets the
/// engine assign per-query seeds that are independent of thread count and
/// scheduling order.
uint64_t HashCombineSeed(uint64_t seed, uint64_t value);

/// \name Stratified sample partitioning
///
/// A sample budget K split into `num_strata` fixed strata, each with its own
/// derived seed, makes an estimate a *canonical function of (content, S)*:
/// the strata may run back-to-back on one thread or spread across a machine,
/// and the merged result is bit-identical either way, because no stratum's
/// randomness depends on which thread ran it or in what order. The budget is
/// split as evenly as possible (the first K mod S strata carry one extra
/// sample); the strata tile [0, K) contiguously, so slice-indexed estimators
/// (BFS Sharing's pre-sampled worlds) can map stratum -> world range.
/// @{

/// Seed of stratum `stratum` of an S-way stratified estimate. For S <= 1
/// this is `seed` itself — a 1-stratum estimate is bit-identical to the
/// legacy unstratified path — otherwise HashCombineSeed(seed, stratum), so
/// every stratum draws an independent stream derived only from the content
/// seed and its index.
uint64_t StratumSeed(uint64_t seed, uint32_t stratum, uint32_t num_strata);

/// Samples assigned to stratum `stratum` (0-based) of an S-way split of
/// `num_samples`. Sums to `num_samples` over all strata; `num_strata` == 0
/// is treated as 1.
uint32_t StratumSampleCount(uint32_t num_samples, uint32_t num_strata,
                            uint32_t stratum);

/// First sample index of stratum `stratum`: strata tile [0, num_samples)
/// contiguously in index order.
uint32_t StratumSampleOffset(uint32_t num_samples, uint32_t num_strata,
                             uint32_t stratum);
/// @}

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// All stochastic components of the library draw from this class so that
/// every experiment is exactly reproducible from a 64-bit seed. The library
/// never touches std::random_device.
class Rng {
 public:
  /// Seeds the generator; two Rng instances with the same seed produce
  /// identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Reseed(seed); }

  /// Re-initializes the state from `seed` (SplitMix64 expansion).
  void Reseed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double NextDouble();

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Bernoulli trial: true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Number of failures before the first success of a Bernoulli(p) process
  /// (support {0, 1, 2, ...}). Precondition: 0 < p <= 1.
  ///
  /// This is the geometric variate used by Lazy Propagation sampling [30]:
  /// the value X means the edge stays absent for X probes and exists on
  /// probe X+1.
  uint64_t Geometric(double p);

  /// Exponential variate with rate lambda. Precondition: lambda > 0.
  double Exponential(double lambda);

  /// Standard normal variate (Box–Muller; one fresh pair per two calls).
  double Normal();

  /// Derives an independent child generator; stream-splitting helper for
  /// per-query / per-repeat seeding.
  Rng Split();

 private:
  uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace relcomp
