#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace relcomp {

/// \brief Fixed-width bit-packed array of unsigned integers: `size` values of
/// `bit_width` bits each, stored back to back in 64-bit words.
///
/// The succinct-storage building block: the compact graph layout stores
/// neighbor ids, edge ids, and dictionary-coded edge probabilities as
/// ceil(log2(max+1))-bit PackedIntVector columns instead of 32/64-bit arrays.
/// Get() is one word read plus a second only when the value straddles a word
/// boundary; a guard word keeps that second read in bounds, so there is no
/// per-call bounds branch on the hot decode path.
class PackedIntVector {
 public:
  PackedIntVector() = default;
  /// `size` zero values of `bit_width` bits. Width is clamped to [1, 64].
  PackedIntVector(size_t size, uint32_t bit_width);

  /// Narrowest width that can represent `max_value` (>= 1 so an all-zero
  /// column still round-trips through a well-formed vector).
  static uint32_t WidthFor(uint64_t max_value);

  /// Stores `value` at index `i`; bits above bit_width() are dropped.
  void Set(size_t i, uint64_t value);

  uint64_t Get(size_t i) const {
    const size_t bit = i * bit_width_;
    const size_t word = bit >> 6;
    const uint32_t shift = static_cast<uint32_t>(bit & 63);
    uint64_t value = words_[word] >> shift;
    if (shift + bit_width_ > 64) {
      value |= words_[word + 1] << (64 - shift);
    }
    return value & mask_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t bit_width() const { return bit_width_; }

  /// Logical resident bytes (the packed words, guard included).
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  size_t size_ = 0;
  uint32_t bit_width_ = 0;
  uint64_t mask_ = 0;
  /// ceil(size * bit_width / 64) payload words + 1 guard word.
  std::vector<uint64_t> words_;
};

}  // namespace relcomp
