#include "common/fault_injection.h"

#include <chrono>
#include <thread>

#include "common/format.h"
#include "common/rng.h"

namespace relcomp {

namespace {
/// Domain separator so a fault decision can never alias an estimator's own
/// use of the same content key.
constexpr uint64_t kFaultSeedTag = 0x666c74ULL;  // "flt"
}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kEstimatorFailure:
      return "estimator_failure";
    case FaultSite::kInducedLatency:
      return "induced_latency";
    case FaultSite::kAllocFailure:
      return "alloc_failure";
    case FaultSite::kPoolReject:
      return "pool_reject";
    case FaultSite::kFileShortWrite:
      return "file_short_write";
    case FaultSite::kFsyncFailure:
      return "fsync_failure";
    case FaultSite::kCrashPoint:
      return "crash_point";
  }
  return "unknown";
}

uint64_t FileOpKey(std::string_view path, uint64_t ordinal) {
  // Basename only: "/tmp/testXYZ/snapshot.relsnap" and a rerun's
  // "/tmp/testABC/snapshot.relsnap" must produce the same injected set.
  const size_t slash = path.find_last_of('/');
  const std::string_view base =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  uint64_t h = 0x66696c65ULL;  // "file"
  for (const char c : base) {
    h = HashCombineSeed(h, static_cast<uint8_t>(c));
  }
  return HashCombineSeed(h, ordinal);
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Configure(const FaultPlan& plan) {
  // Order matters against concurrent probes: install the plan first, then
  // arm. (The chaos harness configures between engine lifetimes anyway; this
  // just keeps a racing probe from reading a half-armed injector.)
  enabled_.store(false, std::memory_order_relaxed);
  plan_ = plan;
  for (std::atomic<uint64_t>& count : injected_) {
    count.store(0, std::memory_order_relaxed);
  }
  crash_probes_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void FaultInjector::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::ShouldInject(FaultSite site, uint64_t key) {
  if (!enabled_.load(std::memory_order_relaxed)) return false;
  if (site == FaultSite::kCrashPoint && plan_.crash_point_select >= 0) {
    // Enumeration mode: trip exactly the select-th probe. Persist operations
    // probe single-threaded in a fixed order, so the counter is as
    // deterministic as the content keys.
    const uint64_t n = crash_probes_.fetch_add(1, std::memory_order_relaxed);
    if (n != static_cast<uint64_t>(plan_.crash_point_select)) return false;
    injected_[static_cast<size_t>(site)].fetch_add(1,
                                                   std::memory_order_relaxed);
    return true;
  }
  const double probability = plan_.probability[static_cast<size_t>(site)];
  if (probability <= 0.0) return false;
  // hash(plan seed, site, key) -> uniform in [0, 1): pure content function,
  // independent of thread count, call order, and wall clock.
  uint64_t h = HashCombineSeed(plan_.seed, kFaultSeedTag);
  h = HashCombineSeed(h, static_cast<uint64_t>(site));
  h = HashCombineSeed(h, key);
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
  if (u >= probability) return false;
  injected_[static_cast<size_t>(site)].fetch_add(1,
                                                 std::memory_order_relaxed);
  return true;
}

Status FaultInjector::MaybeFail(FaultSite site, uint64_t key,
                                const char* what) {
  if (!ShouldInject(site, key)) return Status::OK();
  return Status::Internal(
      StrFormat("injected fault (%s) in %s", FaultSiteName(site), what));
}

void FaultInjector::MaybeDelay(uint64_t key) {
  if (!ShouldInject(FaultSite::kInducedLatency, key)) return;
  std::this_thread::sleep_for(std::chrono::microseconds(plan_.latency_us));
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (const std::atomic<uint64_t>& count : injected_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace relcomp
