#pragma once

#include <chrono>
#include <cstdint>

namespace relcomp {

/// \brief Monotonic nanosecond stopwatch — the single steady-clock path all
/// engine telemetry goes through.
///
/// Now() is an absolute steady-clock reading in nanoseconds (epoch is the
/// clock's, not the Unix epoch), so timestamps taken on different threads are
/// directly comparable: the thread pool stamps enqueue times with it, trace
/// spans record begin/end with it, and cache TTL deadlines are stored as
/// plain uint64 nanoseconds instead of chrono time_points.
class StopwatchNs {
 public:
  StopwatchNs() : start_ns_(Now()) {}

  /// Absolute steady-clock nanoseconds (monotonic across threads).
  static uint64_t Now() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Resets the epoch to now.
  void Restart() { start_ns_ = Now(); }

  /// Nanoseconds elapsed since construction / last Restart().
  uint64_t ElapsedNs() const { return Now() - start_ns_; }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNs()) * 1e-9;
  }

 private:
  uint64_t start_ns_;
};

/// \brief Monotonic wall-clock stopwatch used by all experiment code.
/// A seconds-facing view over the same steady clock as StopwatchNs.
class Timer {
 public:
  Timer() = default;

  /// Resets the epoch to now.
  void Restart() { stopwatch_.Restart(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const { return stopwatch_.ElapsedSeconds(); }

  /// Milliseconds elapsed since construction / last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  StopwatchNs stopwatch_;
};

}  // namespace relcomp
