#pragma once

#include <chrono>

namespace relcomp {

/// \brief Monotonic wall-clock stopwatch used by all experiment code.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace relcomp
