#include "common/memory_tracker.h"

#include <cstdio>

#include <unistd.h>

namespace relcomp {

size_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total_pages = 0;
  long rss_pages = 0;
  const int parsed = std::fscanf(f, "%ld %ld", &total_pages, &rss_pages);
  std::fclose(f);
  if (parsed != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<size_t>(rss_pages) * static_cast<size_t>(page);
}

}  // namespace relcomp
