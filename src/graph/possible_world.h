#pragma once

#include <vector>

#include "common/rng.h"
#include "graph/uncertain_graph.h"

namespace relcomp {

/// \brief One fully-materialized possible world of an uncertain graph:
/// mask[e] == 1 iff edge e exists in this world.
using WorldMask = std::vector<uint8_t>;

/// Samples a complete possible world (every edge tossed independently).
/// Used by the offline BFS Sharing index and by exact/oracle tests; the
/// online estimators sample lazily instead.
WorldMask SampleWorld(const UncertainGraph& graph, Rng& rng);

/// Sampling probability Pr(G) of the world (Eq. 1). Underflows to 0 for
/// large graphs; intended for small test graphs.
double WorldProbability(const UncertainGraph& graph, const WorldMask& mask);

/// BFS s -> t over the existing edges of `mask`.
bool Reachable(const UncertainGraph& graph, const WorldMask& mask, NodeId s,
               NodeId t);

/// All nodes reachable from `s` over the existing edges of `mask`.
std::vector<NodeId> ReachableSet(const UncertainGraph& graph,
                                 const WorldMask& mask, NodeId s);

/// BFS s -> t ignoring probabilities (treats every edge as present). Used by
/// workload generation and simplification pre-checks.
bool ReachableIgnoringProbs(const UncertainGraph& graph, NodeId s, NodeId t);

/// Unweighted shortest-path (hop) distances from `s` over all edges,
/// kInvalidDistance where unreachable.
inline constexpr uint32_t kInvalidDistance = static_cast<uint32_t>(-1);
std::vector<uint32_t> HopDistances(const UncertainGraph& graph, NodeId s);

}  // namespace relcomp
