#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace relcomp {

/// \brief Tri-state edge assignment used by the conditioning-based methods
/// (RHH's inclusion/exclusion lists E1/E2, RSS's stratum status vectors, the
/// exact factoring oracle).
enum class EdgeState : uint8_t {
  kUndetermined = 0,  ///< '*' in the paper's Table 1
  kIncluded = 1,      ///< edge conditioned to exist (E1 / status 1)
  kExcluded = 2,      ///< edge conditioned to not exist (E2 / status 0)
};

/// \brief A graph together with the (remapped) query endpoints. Produced by
/// RSS stratum simplification and by ProbTree query-graph extraction.
struct RootedGraph {
  UncertainGraph graph;
  NodeId source = kInvalidNode;
  NodeId target = kInvalidNode;
};

/// Outcome of conditioning a graph on an EdgeState assignment.
enum class SimplifyOutcome {
  kCertainOne,   ///< included edges already contain an s-t path: R = 1
  kCertainZero,  ///< excluded edges contain an s-t cut: R = 0
  kReduced,      ///< a strictly smaller residual graph remains
};

/// \brief Result of SimplifyGraph: either a certain value or a reduced
/// rooted residual graph.
struct SimplifyResult {
  SimplifyOutcome outcome = SimplifyOutcome::kReduced;
  RootedGraph rooted;  // populated iff outcome == kReduced
};

/// \brief Conditions `g` on `states` and simplifies (Alg. 5 line 12).
///
/// Steps:
///  1. contract the component certainly reachable from `s` via included
///     edges into a single super-source (if it contains `t`: kCertainOne);
///  2. drop excluded edges; if `t` becomes unreachable: kCertainZero;
///  3. prune nodes that are unreachable from `s` or cannot reach `t`, and
///     edges pointing back into the super-source;
///  4. included edges in the residual keep probability 1.
///
/// Requires states.size() == g.num_edges() and valid s, t.
Result<SimplifyResult> SimplifyGraph(const UncertainGraph& g, NodeId s, NodeId t,
                                     const std::vector<EdgeState>& states);

}  // namespace relcomp
