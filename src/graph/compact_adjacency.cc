#include "graph/compact_adjacency.h"

#include <algorithm>

#include "common/bitvector.h"

namespace relcomp {

namespace {

/// Builds one direction: the unary degree-boundary sequence from the CSR
/// offset array plus the packed neighbor/edge-id columns from the CSR
/// adjacency array (same slot order).
CompactAdjacency::Direction BuildDirection(size_t num_nodes, size_t num_edges,
                                           const std::vector<uint32_t>& offsets,
                                           const std::vector<AdjEntry>& adj,
                                           uint32_t node_bits,
                                           uint32_t edge_bits) {
  CompactAdjacency::Direction dir;

  // Unary sequence 1 0^{deg(0)} 1 0^{deg(1)} ... 1: the (v+1)-th one sits at
  // position offsets[v] + v, so Offset(v) = Select1(v+1) - (v+1).
  BitVector bounds(num_nodes + num_edges + 1);
  for (size_t v = 0; v <= num_nodes; ++v) bounds.Set(offsets[v] + v);

  // RRR pays off when the ones are sparse (high average degree); the plain
  // directory is faster and smaller near density 1 (mostly isolated nodes).
  dir.use_rrr = (num_nodes + 1) * 16 < bounds.size();
  if (dir.use_rrr) {
    dir.rrr_bounds = RrrBitVector(bounds);
  } else {
    dir.plain_bounds = RankSelectBitVector(bounds);
  }

  dir.neighbors = PackedIntVector(num_edges, node_bits);
  dir.edge_ids = PackedIntVector(num_edges, edge_bits);
  for (size_t slot = 0; slot < num_edges; ++slot) {
    dir.neighbors.Set(slot, adj[slot].neighbor);
    dir.edge_ids.Set(slot, adj[slot].edge);
  }
  return dir;
}

}  // namespace

size_t CompactAdjacency::Direction::MemoryBytes() const {
  return (use_rrr ? rrr_bounds.MemoryBytes() : plain_bounds.MemoryBytes()) +
         neighbors.MemoryBytes() + edge_ids.MemoryBytes();
}

CompactAdjacency CompactAdjacency::Build(
    size_t num_nodes, const std::vector<EdgeRecord>& edges,
    const std::vector<uint32_t>& out_offsets,
    const std::vector<uint32_t>& in_offsets,
    const std::vector<AdjEntry>& out_adj, const std::vector<AdjEntry>& in_adj) {
  CompactAdjacency c;
  c.num_nodes_ = num_nodes;
  c.num_edges_ = edges.size();
  const size_t m = edges.size();
  const uint32_t node_bits =
      PackedIntVector::WidthFor(num_nodes == 0 ? 0 : num_nodes - 1);
  const uint32_t edge_bits = PackedIntVector::WidthFor(m == 0 ? 0 : m - 1);

  c.out_ = BuildDirection(num_nodes, m, out_offsets, out_adj, node_bits,
                          edge_bits);
  c.in_ = BuildDirection(num_nodes, m, in_offsets, in_adj, node_bits,
                         edge_bits);

  c.tails_ = PackedIntVector(m, node_bits);
  c.heads_ = PackedIntVector(m, node_bits);
  for (EdgeId e = 0; e < m; ++e) {
    c.tails_.Set(e, edges[e].tail);
    c.heads_.Set(e, edges[e].head);
  }

  // Lossless probability dictionary: distinct sorted values + packed codes.
  // Exact by construction; past the cap, fall back to full-width doubles
  // rather than quantize (the layout must never change an estimate).
  std::vector<double> distinct;
  distinct.reserve(m);
  for (const auto& e : edges) distinct.push_back(e.prob);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  if (distinct.size() <= kMaxProbDictSize) {
    c.uses_dictionary_ = true;
    c.prob_dict_ = std::move(distinct);
    const uint32_t code_bits = PackedIntVector::WidthFor(
        c.prob_dict_.empty() ? 0 : c.prob_dict_.size() - 1);
    c.prob_codes_ = PackedIntVector(m, code_bits);
    for (EdgeId e = 0; e < m; ++e) {
      const size_t code =
          std::lower_bound(c.prob_dict_.begin(), c.prob_dict_.end(),
                           edges[e].prob) -
          c.prob_dict_.begin();
      c.prob_codes_.Set(e, code);
    }
  } else {
    c.uses_dictionary_ = false;
    c.probs_raw_.reserve(m);
    for (const auto& e : edges) c.probs_raw_.push_back(e.prob);
  }
  return c;
}

size_t CompactAdjacency::MemoryBytes() const {
  return out_.MemoryBytes() + in_.MemoryBytes() + tails_.MemoryBytes() +
         heads_.MemoryBytes() + prob_dict_.size() * sizeof(double) +
         prob_codes_.MemoryBytes() + probs_raw_.size() * sizeof(double);
}

}  // namespace relcomp
