#include "graph/datasets.h"

#include <cstdlib>

#include "common/format.h"
#include "common/rng.h"
#include "graph/edge_prob.h"
#include "graph/generators.h"

namespace relcomp {

namespace {

/// Per-(dataset, scale) node budget.
uint32_t NodeBudget(DatasetId id, Scale scale) {
  // Rows: kTiny, kSmall, kMedium, kLarge.
  static constexpr uint32_t kBudget[kNumDatasets][4] = {
      /* lastfm   */ {300, 2500, 6899, 6899},
      /* nethept  */ {350, 4000, 15233, 15233},
      /* as       */ {400, 5000, 15000, 45535},
      /* dblp02   */ {400, 6000, 30000, 120000},
      /* dblp005  */ {400, 6000, 30000, 120000},
      /* biomine  */ {400, 5000, 25000, 100000},
  };
  return kBudget[static_cast<int>(id)][static_cast<int>(scale)];
}

uint64_t DeriveSeed(uint64_t base, uint64_t salt) {
  uint64_t state = base ^ (salt * 0x9E3779B97F4A7C15ULL);
  return SplitMix64(state);
}

/// Both DBLP variants must share one topology + collaboration counts
/// (the paper derives both graphs from the same DBLP crawl, varying only mu).
struct DblpParts {
  Topology topo;
  std::vector<uint32_t> counts;
};

DblpParts MakeDblpParts(Scale scale, uint64_t seed) {
  Rng topo_rng(DeriveSeed(seed, /*salt=*/0xD8'1F));
  const uint32_t n = NodeBudget(DatasetId::kDblp02, scale);
  DblpParts parts;
  parts.topo = MakeCommunityGraph(n, /*community_size=*/8, /*intra_degree=*/3,
                                  /*inter_prob=*/0.25, topo_rng);
  Rng count_rng(DeriveSeed(seed, /*salt=*/0xC0'07));
  parts.counts = CollaborationCounts(parts.topo, /*mean_extra=*/1.2, count_rng);
  return parts;
}

}  // namespace

const char* DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kLastFm:
      return "lastfm";
    case DatasetId::kNetHept:
      return "nethept";
    case DatasetId::kAsTopology:
      return "as_topology";
    case DatasetId::kDblp02:
      return "dblp02";
    case DatasetId::kDblp005:
      return "dblp005";
    case DatasetId::kBioMine:
      return "biomine";
  }
  return "unknown";
}

const char* DatasetDisplayName(DatasetId id) {
  switch (id) {
    case DatasetId::kLastFm:
      return "LastFM";
    case DatasetId::kNetHept:
      return "NetHEPT";
    case DatasetId::kAsTopology:
      return "AS Topology";
    case DatasetId::kDblp02:
      return "DBLP 0.2";
    case DatasetId::kDblp005:
      return "DBLP 0.05";
    case DatasetId::kBioMine:
      return "BioMine";
  }
  return "Unknown";
}

std::vector<DatasetId> AllDatasetIds() {
  return {DatasetId::kLastFm,  DatasetId::kNetHept, DatasetId::kAsTopology,
          DatasetId::kDblp02,  DatasetId::kDblp005, DatasetId::kBioMine};
}

Result<Scale> ParseScale(const std::string& name) {
  if (name == "tiny") return Scale::kTiny;
  if (name == "small") return Scale::kSmall;
  if (name == "medium") return Scale::kMedium;
  if (name == "large") return Scale::kLarge;
  return Status::InvalidArgument("unknown scale: " + name +
                                 " (expected tiny|small|medium|large)");
}

Scale ScaleFromEnv() {
  const char* env = std::getenv("RELCOMP_SCALE");
  if (env == nullptr) return Scale::kSmall;
  const Result<Scale> parsed = ParseScale(env);
  return parsed.ok() ? *parsed : Scale::kSmall;
}

const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      return "tiny";
    case Scale::kSmall:
      return "small";
    case Scale::kMedium:
      return "medium";
    case Scale::kLarge:
      return "large";
  }
  return "unknown";
}

Result<Dataset> MakeDataset(DatasetId id, Scale scale, uint64_t seed) {
  Dataset dataset;
  dataset.id = id;
  dataset.scale = scale;
  dataset.name = DatasetName(id);
  const uint32_t n = NodeBudget(id, scale);

  switch (id) {
    case DatasetId::kLastFm: {
      Rng rng(DeriveSeed(seed, 0x1A'5F));
      const Topology topo = MakeBarabasiAlbert(n, /*edges_per_node=*/2,
                                               /*bidirected=*/true, rng);
      RELCOMP_ASSIGN_OR_RETURN(dataset.graph,
                               BuildFromTopology(topo, InverseOutDegreeProbs(topo)));
      break;
    }
    case DatasetId::kNetHept: {
      Rng rng(DeriveSeed(seed, 0x2B'47));
      const Topology topo = MakeBarabasiAlbert(n, /*edges_per_node=*/2,
                                               /*bidirected=*/true, rng);
      Rng prob_rng(DeriveSeed(seed, 0x2B'48));
      RELCOMP_ASSIGN_OR_RETURN(
          dataset.graph,
          BuildFromTopology(topo,
                            CategoricalProbs(topo, {0.1, 0.01, 0.001}, prob_rng)));
      break;
    }
    case DatasetId::kAsTopology: {
      Rng rng(DeriveSeed(seed, 0x3C'99));
      const Topology topo = MakeBarabasiAlbert(n, /*edges_per_node=*/2,
                                               /*bidirected=*/true, rng);
      Rng prob_rng(DeriveSeed(seed, 0x3C'9A));
      RELCOMP_ASSIGN_OR_RETURN(
          dataset.graph,
          BuildFromTopology(topo, SnapshotRatioProbs(topo, SnapshotModelOptions{},
                                                     prob_rng)));
      break;
    }
    case DatasetId::kDblp02:
    case DatasetId::kDblp005: {
      const DblpParts parts = MakeDblpParts(scale, seed);
      const double mu = id == DatasetId::kDblp02 ? 5.0 : 20.0;
      RELCOMP_ASSIGN_OR_RETURN(
          dataset.graph,
          BuildFromTopology(parts.topo,
                            CollaborationExpCdfProbs(parts.counts, mu)));
      break;
    }
    case DatasetId::kBioMine: {
      Rng rng(DeriveSeed(seed, 0x6E'11));
      // Dense biological core plus a degree-1/2 fringe of annotation
      // concepts (terms, publications) — the real BioMine graph has exactly
      // this shape, and the fringe is what FWD tree decomposition absorbs.
      const uint32_t core = (n * 7) / 10;
      Topology topo = MakeBarabasiAlbert(core, /*edges_per_node=*/3,
                                         /*bidirected=*/false, rng);
      for (NodeId leaf = core; leaf < n; ++leaf) {
        ++topo.num_nodes;
        const uint32_t attachments = 1 + static_cast<uint32_t>(rng.UniformInt(2));
        for (uint32_t j = 0; j < attachments; ++j) {
          const NodeId anchor = static_cast<NodeId>(rng.UniformInt(core));
          if (rng.Bernoulli(0.5)) {
            topo.edges.emplace_back(leaf, anchor);
          } else {
            topo.edges.emplace_back(anchor, leaf);
          }
        }
      }
      Rng prob_rng(DeriveSeed(seed, 0x6E'12));
      RELCOMP_ASSIGN_OR_RETURN(
          dataset.graph, BuildFromTopology(topo, ThreeCriteriaProbs(topo, prob_rng)));
      break;
    }
  }
  return dataset;
}

std::string DatasetTable(const std::vector<Dataset>& datasets) {
  std::string out;
  out += StrFormat("%-12s %10s %10s   %s\n", "Dataset", "#Nodes", "#Edges",
                   "Edge Prob: Mean, SD, Quartiles");
  for (const Dataset& d : datasets) {
    const EdgeProbStats s = d.graph.ProbStats();
    out += StrFormat("%-12s %10zu %10zu   %.2f +/- %.2f, {%.3f, %.3f, %.3f}\n",
                     DatasetDisplayName(d.id), d.graph.num_nodes(),
                     d.graph.num_edges(), s.mean, s.stddev, s.q25, s.q50, s.q75);
  }
  return out;
}

}  // namespace relcomp
