#pragma once

#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace relcomp {

/// \brief Incremental constructor for UncertainGraph.
///
/// Usage:
/// \code
///   GraphBuilder b(4);
///   RELCOMP_RETURN_NOT_OK(b.AddEdge(0, 1, 0.5));
///   RELCOMP_ASSIGN_OR_RETURN(UncertainGraph g, b.Build());
/// \endcode
///
/// Node ids are auto-grown: AddEdge(7, 9, p) extends the node range to 10.
/// Parallel edges are allowed (callers that need simple graphs can
/// deduplicate with CombineParallelEdges()).
///
/// The physical layout of the built graph is selected with
/// SetStorageLayout() or the Build(layout) overload; kRaw and kCompact
/// graphs are observationally identical (see StorageLayout).
class GraphBuilder {
 public:
  explicit GraphBuilder(size_t num_nodes = 0) : num_nodes_(num_nodes) {}

  /// Pre-allocates space for `n` edges.
  void ReserveEdges(size_t n) { edges_.reserve(n); }

  /// Appends an isolated node; returns its id.
  NodeId AddNode() { return static_cast<NodeId>(num_nodes_++); }

  /// Ensures ids [0, n) exist.
  void EnsureNodes(size_t n) {
    if (n > num_nodes_) num_nodes_ = n;
  }

  /// Adds a directed probabilistic edge. Fails if p is not in (0, 1] or is
  /// not finite, or if an id equals kInvalidNode.
  Status AddEdge(NodeId tail, NodeId head, double p);

  /// Adds both directions with the same probability.
  Status AddBidirectedEdge(NodeId a, NodeId b, double p);

  /// Replaces groups of parallel edges (same tail and head) by a single edge
  /// with the union probability 1 - prod(1 - p_i). Self-loops are dropped
  /// (they never affect s-t reliability).
  void CombineParallelEdges();

  /// Layout used by Build(); defaults to kRaw.
  void SetStorageLayout(StorageLayout layout) { layout_ = layout; }
  StorageLayout storage_layout() const { return layout_; }

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }

  /// Finalizes the CSR structure in the configured layout. The builder stays
  /// reusable afterwards (Build copies the edge set).
  Result<UncertainGraph> Build() const { return Build(layout_); }

  /// Finalizes with an explicit layout, ignoring SetStorageLayout().
  Result<UncertainGraph> Build(StorageLayout layout) const;

  /// Builder seeded from an existing graph: same node count and the edge set
  /// in canonical edge-id order, so Build() in either layout reproduces the
  /// graph (same edge ids, bitwise-equal probabilities). This is how callers
  /// re-materialize a dataset in the other layout for parity checks.
  static GraphBuilder FromGraph(const UncertainGraph& g);

 private:
  size_t num_nodes_ = 0;
  StorageLayout layout_ = StorageLayout::kRaw;
  std::vector<EdgeRecord> edges_;
};

}  // namespace relcomp
