#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"

namespace relcomp {

/// Edge-probability models from Section 3.1.2 of the paper. Each returns one
/// probability per topology edge (respecting Topology::paired symmetry where
/// the underlying relation is symmetric).

/// LastFM model: P(e) = 1 / outdegree(tail(e)).
std::vector<double> InverseOutDegreeProbs(const Topology& topo);

/// NetHEPT model: P(e) drawn uniformly from `choices`
/// (the paper uses {0.1, 0.01, 0.001}). Symmetric across paired edges.
std::vector<double> CategoricalProbs(const Topology& topo,
                                     const std::vector<double>& choices, Rng& rng);

/// \brief Parameters of the simulated AS-topology snapshot process.
///
/// The paper derives P(e) as the ratio of monthly CAIDA snapshots containing
/// the link among all snapshots after its first observation. We simulate the
/// same pipeline: each link gets a first-seen snapshot and a latent per-month
/// stability q, is re-observed with probability q each later month, and
/// P(e) = observed count / months since first seen.
struct SnapshotModelOptions {
  int num_snapshots = 120;       ///< Jan 2008 .. Dec 2017 monthly snapshots
  double stability_floor = 0.01; ///< q = floor + scale * u^2, u ~ U(0,1)
  double stability_scale = 0.66; ///< yields mean ~0.23, sd ~0.20 (Table 2)
};
std::vector<double> SnapshotRatioProbs(const Topology& topo,
                                       const SnapshotModelOptions& options,
                                       Rng& rng);

/// DBLP model, step 1: per-pair collaboration counts c >= 1 with
/// c = 1 + Geometric(1 / (1 + mean_extra)). Symmetric across paired edges.
std::vector<uint32_t> CollaborationCounts(const Topology& topo, double mean_extra,
                                          Rng& rng);

/// DBLP model, step 2: P(e) = 1 - exp(-c / mu) (mu = 5 -> "DBLP 0.2",
/// mu = 20 -> "DBLP 0.05").
std::vector<double> CollaborationExpCdfProbs(const std::vector<uint32_t>& counts,
                                             double mu);

/// BioMine model: P(e) = relevance * informativeness * confidence, each
/// criterion drawn independently per edge (Section 3.1.2, [11]).
std::vector<double> ThreeCriteriaProbs(const Topology& topo, Rng& rng);

}  // namespace relcomp
