#include "graph/generators.h"

#include <algorithm>
#include <unordered_set>

#include "graph/graph_builder.h"

namespace relcomp {

namespace {

inline uint64_t PairKey(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

void EmitPair(Topology& topo, NodeId a, NodeId b, bool bidirected, Rng& rng) {
  if (bidirected) {
    topo.edges.emplace_back(a, b);
    topo.edges.emplace_back(b, a);
  } else if (rng.Bernoulli(0.5)) {
    topo.edges.emplace_back(a, b);
  } else {
    topo.edges.emplace_back(b, a);
  }
}

}  // namespace

Topology MakeErdosRenyi(uint32_t n, double avg_degree, bool bidirected, Rng& rng) {
  Topology topo;
  topo.num_nodes = n;
  topo.paired = bidirected;
  if (n < 2) return topo;
  const size_t target_pairs =
      static_cast<size_t>(static_cast<double>(n) * avg_degree / 2.0);
  std::unordered_set<uint64_t> seen;
  seen.reserve(target_pairs * 2);
  size_t attempts = 0;
  const size_t max_attempts = target_pairs * 20 + 100;
  while (seen.size() < target_pairs && attempts < max_attempts) {
    ++attempts;
    const NodeId a = static_cast<NodeId>(rng.UniformInt(n));
    const NodeId b = static_cast<NodeId>(rng.UniformInt(n));
    if (a == b) continue;
    if (!seen.insert(PairKey(a, b)).second) continue;
    EmitPair(topo, a, b, bidirected, rng);
  }
  return topo;
}

Topology MakeBarabasiAlbert(uint32_t n, uint32_t edges_per_node, bool bidirected,
                            Rng& rng) {
  Topology topo;
  topo.num_nodes = n;
  topo.paired = bidirected;
  const uint32_t m = std::max<uint32_t>(1, edges_per_node);
  if (n < 2) return topo;

  // Endpoint multiset: every attachment records both endpoints, so sampling
  // an entry uniformly is degree-proportional sampling.
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<size_t>(n) * (m + 1) * 2);

  const uint32_t seed_nodes = std::min(n, m + 1);
  for (NodeId a = 0; a < seed_nodes; ++a) {
    for (NodeId b = a + 1; b < seed_nodes; ++b) {
      EmitPair(topo, a, b, bidirected, rng);
      endpoints.push_back(a);
      endpoints.push_back(b);
    }
  }
  std::unordered_set<NodeId> chosen;
  for (NodeId v = seed_nodes; v < n; ++v) {
    chosen.clear();
    const uint32_t want = std::min<uint32_t>(m, v);
    size_t guard = 0;
    while (chosen.size() < want && guard < 64u * want + 64u) {
      ++guard;
      const NodeId u = endpoints[rng.UniformInt(endpoints.size())];
      if (u == v) continue;
      chosen.insert(u);
    }
    // Fallback to uniform sampling if the preferential draw stalls.
    while (chosen.size() < want) {
      const NodeId u = static_cast<NodeId>(rng.UniformInt(v));
      chosen.insert(u);
    }
    for (NodeId u : chosen) {
      EmitPair(topo, v, u, bidirected, rng);
      endpoints.push_back(v);
      endpoints.push_back(u);
    }
  }
  return topo;
}

Topology MakeWattsStrogatz(uint32_t n, uint32_t k, double beta, Rng& rng) {
  Topology topo;
  topo.num_nodes = n;
  topo.paired = true;
  if (n < 3 || k == 0) return topo;
  std::unordered_set<uint64_t> seen;
  // Ring lattice; rewire the far endpoint with probability beta.
  for (NodeId v = 0; v < n; ++v) {
    for (uint32_t j = 1; j <= k; ++j) {
      NodeId u = (v + j) % n;
      if (rng.Bernoulli(beta)) {
        NodeId candidate = static_cast<NodeId>(rng.UniformInt(n));
        size_t guard = 0;
        while ((candidate == v || seen.count(PairKey(v, candidate)) > 0) &&
               guard < 32) {
          candidate = static_cast<NodeId>(rng.UniformInt(n));
          ++guard;
        }
        if (candidate != v) u = candidate;
      }
      if (u == v) continue;
      if (!seen.insert(PairKey(v, u)).second) continue;
      topo.edges.emplace_back(v, u);
      topo.edges.emplace_back(u, v);
    }
  }
  return topo;
}

Topology MakeGrid(uint32_t rows, uint32_t cols) {
  Topology topo;
  topo.num_nodes = rows * cols;
  topo.paired = true;
  auto id = [cols](uint32_t r, uint32_t c) { return r * cols + c; };
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        topo.edges.emplace_back(id(r, c), id(r, c + 1));
        topo.edges.emplace_back(id(r, c + 1), id(r, c));
      }
      if (r + 1 < rows) {
        topo.edges.emplace_back(id(r, c), id(r + 1, c));
        topo.edges.emplace_back(id(r + 1, c), id(r, c));
      }
    }
  }
  return topo;
}

Topology MakeCommunityGraph(uint32_t n, uint32_t community_size,
                            uint32_t intra_degree, double inter_prob, Rng& rng) {
  Topology topo;
  topo.num_nodes = n;
  topo.paired = true;
  if (n < 2) return topo;
  const uint32_t csize = std::max<uint32_t>(2, community_size);
  const uint32_t num_communities = (n + csize - 1) / csize;
  std::unordered_set<uint64_t> seen;
  auto community_of = [csize](NodeId v) { return v / csize; };
  auto community_begin = [csize](uint32_t c) { return c * csize; };
  auto community_end = [csize, n](uint32_t c) {
    return std::min<uint32_t>(n, (c + 1) * csize);
  };

  for (NodeId v = 0; v < n; ++v) {
    const uint32_t c = community_of(v);
    const uint32_t lo = community_begin(c);
    const uint32_t hi = community_end(c);
    const uint32_t span = hi - lo;
    const uint32_t want = std::min<uint32_t>(intra_degree, span - 1);
    for (uint32_t j = 0; j < want; ++j) {
      NodeId u = lo + static_cast<NodeId>(rng.UniformInt(span));
      size_t guard = 0;
      while (u == v && guard < 16) {
        u = lo + static_cast<NodeId>(rng.UniformInt(span));
        ++guard;
      }
      if (u == v) continue;
      if (!seen.insert(PairKey(v, u)).second) continue;
      topo.edges.emplace_back(v, u);
      topo.edges.emplace_back(u, v);
    }
    if (rng.Bernoulli(inter_prob) && num_communities > 1) {
      uint32_t other = static_cast<uint32_t>(rng.UniformInt(num_communities));
      if (other == c) other = (other + 1) % num_communities;
      const uint32_t olo = community_begin(other);
      const uint32_t ospan = community_end(other) - olo;
      if (ospan > 0) {
        const NodeId u = olo + static_cast<NodeId>(rng.UniformInt(ospan));
        if (u != v && seen.insert(PairKey(v, u)).second) {
          topo.edges.emplace_back(v, u);
          topo.edges.emplace_back(u, v);
        }
      }
    }
  }
  return topo;
}

Result<UncertainGraph> BuildFromTopology(const Topology& topo,
                                         const std::vector<double>& probs) {
  if (probs.size() != topo.edges.size()) {
    return Status::InvalidArgument("BuildFromTopology: probs/edges size mismatch");
  }
  GraphBuilder builder(topo.num_nodes);
  builder.ReserveEdges(topo.edges.size());
  for (size_t i = 0; i < topo.edges.size(); ++i) {
    RELCOMP_RETURN_NOT_OK(
        builder.AddEdge(topo.edges[i].first, topo.edges[i].second, probs[i]));
  }
  return builder.Build();
}

}  // namespace relcomp
