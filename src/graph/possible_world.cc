#include "graph/possible_world.h"

#include <deque>

namespace relcomp {

WorldMask SampleWorld(const UncertainGraph& graph, Rng& rng) {
  WorldMask mask(graph.num_edges(), 0);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    mask[e] = rng.Bernoulli(graph.prob(e)) ? 1 : 0;
  }
  return mask;
}

double WorldProbability(const UncertainGraph& graph, const WorldMask& mask) {
  double p = 1.0;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const double pe = graph.prob(e);
    p *= mask[e] ? pe : (1.0 - pe);
  }
  return p;
}

bool Reachable(const UncertainGraph& graph, const WorldMask& mask, NodeId s,
               NodeId t) {
  if (s == t) return true;
  std::vector<uint8_t> visited(graph.num_nodes(), 0);
  std::deque<NodeId> queue;
  queue.push_back(s);
  visited[s] = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const AdjEntry& a : graph.OutEdges(v)) {
      if (!mask[a.edge] || visited[a.neighbor]) continue;
      if (a.neighbor == t) return true;
      visited[a.neighbor] = 1;
      queue.push_back(a.neighbor);
    }
  }
  return false;
}

std::vector<NodeId> ReachableSet(const UncertainGraph& graph,
                                 const WorldMask& mask, NodeId s) {
  std::vector<uint8_t> visited(graph.num_nodes(), 0);
  std::vector<NodeId> out;
  std::deque<NodeId> queue;
  queue.push_back(s);
  visited[s] = 1;
  out.push_back(s);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const AdjEntry& a : graph.OutEdges(v)) {
      if (!mask[a.edge] || visited[a.neighbor]) continue;
      visited[a.neighbor] = 1;
      out.push_back(a.neighbor);
      queue.push_back(a.neighbor);
    }
  }
  return out;
}

bool ReachableIgnoringProbs(const UncertainGraph& graph, NodeId s, NodeId t) {
  if (s == t) return true;
  std::vector<uint8_t> visited(graph.num_nodes(), 0);
  std::deque<NodeId> queue;
  queue.push_back(s);
  visited[s] = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const AdjEntry& a : graph.OutEdges(v)) {
      if (visited[a.neighbor]) continue;
      if (a.neighbor == t) return true;
      visited[a.neighbor] = 1;
      queue.push_back(a.neighbor);
    }
  }
  return false;
}

std::vector<uint32_t> HopDistances(const UncertainGraph& graph, NodeId s) {
  std::vector<uint32_t> dist(graph.num_nodes(), kInvalidDistance);
  std::deque<NodeId> queue;
  dist[s] = 0;
  queue.push_back(s);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const AdjEntry& a : graph.OutEdges(v)) {
      if (dist[a.neighbor] != kInvalidDistance) continue;
      dist[a.neighbor] = dist[v] + 1;
      queue.push_back(a.neighbor);
    }
  }
  return dist;
}

}  // namespace relcomp
