#include "graph/graph_builder.h"

#include <algorithm>
#include <cmath>

#include "common/format.h"

namespace relcomp {

Status GraphBuilder::AddEdge(NodeId tail, NodeId head, double p) {
  if (tail == kInvalidNode || head == kInvalidNode) {
    return Status::InvalidArgument("edge endpoint uses the reserved invalid id");
  }
  if (!std::isfinite(p) || p <= 0.0 || p > 1.0) {
    return Status::InvalidArgument(
        StrFormat("edge probability must be in (0, 1], got %g", p));
  }
  EnsureNodes(static_cast<size_t>(std::max(tail, head)) + 1);
  edges_.push_back(EdgeRecord{tail, head, p});
  return Status::OK();
}

Status GraphBuilder::AddBidirectedEdge(NodeId a, NodeId b, double p) {
  RELCOMP_RETURN_NOT_OK(AddEdge(a, b, p));
  return AddEdge(b, a, p);
}

void GraphBuilder::CombineParallelEdges() {
  std::vector<EdgeRecord> kept;
  kept.reserve(edges_.size());
  for (const auto& e : edges_) {
    if (e.tail != e.head) kept.push_back(e);
  }
  std::sort(kept.begin(), kept.end(), [](const EdgeRecord& a, const EdgeRecord& b) {
    return a.tail != b.tail ? a.tail < b.tail : a.head < b.head;
  });
  std::vector<EdgeRecord> combined;
  combined.reserve(kept.size());
  for (const auto& e : kept) {
    if (!combined.empty() && combined.back().tail == e.tail &&
        combined.back().head == e.head) {
      // Union of independent parallel edges.
      combined.back().prob = 1.0 - (1.0 - combined.back().prob) * (1.0 - e.prob);
    } else {
      combined.push_back(e);
    }
  }
  edges_ = std::move(combined);
}

Result<UncertainGraph> GraphBuilder::Build(StorageLayout layout) const {
  UncertainGraph g;
  g.num_nodes_ = num_nodes_;
  g.num_edges_ = edges_.size();
  g.edges_ = edges_;
  const size_t n = num_nodes_;
  const size_t m = edges_.size();

  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  for (const auto& e : g.edges_) {
    ++g.out_offsets_[e.tail + 1];
    ++g.in_offsets_[e.head + 1];
  }
  for (size_t v = 0; v < n; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.out_adj_.resize(m);
  g.in_adj_.resize(m);
  std::vector<uint32_t> out_cursor(g.out_offsets_.begin(), g.out_offsets_.end() - 1);
  std::vector<uint32_t> in_cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (EdgeId id = 0; id < m; ++id) {
    const EdgeRecord& e = g.edges_[id];
    g.out_adj_[out_cursor[e.tail]++] = AdjEntry{e.head, id, e.prob};
    g.in_adj_[in_cursor[e.head]++] = AdjEntry{e.tail, id, e.prob};
  }

  if (layout == StorageLayout::kCompact) {
    // The compact columns are derived from the raw CSR arrays just built, so
    // slot order and edge ids match the raw layout exactly; the raw arrays
    // are then released.
    g.layout_ = StorageLayout::kCompact;
    g.compact_ = CompactAdjacency::Build(n, g.edges_, g.out_offsets_,
                                         g.in_offsets_, g.out_adj_, g.in_adj_);
    g.edges_ = {};
    g.out_offsets_ = {};
    g.in_offsets_ = {};
    g.out_adj_ = {};
    g.in_adj_ = {};
  }
  return g;
}

GraphBuilder GraphBuilder::FromGraph(const UncertainGraph& g) {
  GraphBuilder b(g.num_nodes());
  b.ReserveEdges(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    b.edges_.push_back(g.edge(e));
  }
  return b;
}

}  // namespace relcomp
