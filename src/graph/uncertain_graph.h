#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace relcomp {

/// Node identifier; nodes are dense integers [0, num_nodes).
using NodeId = uint32_t;
/// Edge identifier; edges are dense integers [0, num_edges) in insertion
/// order (the canonical order used by index structures and world masks).
using EdgeId = uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// \brief One directed probabilistic edge tail -> head with existence
/// probability prob in (0, 1].
struct EdgeRecord {
  NodeId tail = kInvalidNode;
  NodeId head = kInvalidNode;
  double prob = 0.0;
};

/// \brief Adjacency-list entry: the neighbor, the canonical edge id, and the
/// edge probability (duplicated here for cache locality of the BFS loops).
struct AdjEntry {
  NodeId neighbor = kInvalidNode;
  EdgeId edge = kInvalidEdge;
  double prob = 0.0;
};

/// \brief Summary statistics of the edge-probability distribution, matching
/// the columns of the paper's Table 2.
struct EdgeProbStats {
  double mean = 0.0;
  double stddev = 0.0;
  double q25 = 0.0;
  double q50 = 0.0;
  double q75 = 0.0;
};

/// \brief Immutable directed uncertain graph G = (V, E, P) in CSR form.
///
/// Possible-world semantics: every edge e exists independently with
/// probability P(e) (Section 2.1 of the paper). Build instances with
/// GraphBuilder; the structure is immutable afterwards, so estimators can
/// share one graph across threads/queries.
class UncertainGraph {
 public:
  UncertainGraph() = default;

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }

  /// Canonical record for edge id `e`.
  const EdgeRecord& edge(EdgeId e) const { return edges_[e]; }
  /// Existence probability of edge id `e`.
  double prob(EdgeId e) const { return edges_[e].prob; }

  /// Outgoing adjacency of `v` (entries sorted by insertion order).
  std::span<const AdjEntry> OutEdges(NodeId v) const {
    return {out_adj_.data() + out_offsets_[v],
            out_adj_.data() + out_offsets_[v + 1]};
  }
  /// Incoming adjacency of `v` (AdjEntry::neighbor is the edge tail).
  std::span<const AdjEntry> InEdges(NodeId v) const {
    return {in_adj_.data() + in_offsets_[v], in_adj_.data() + in_offsets_[v + 1]};
  }

  size_t OutDegree(NodeId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  size_t InDegree(NodeId v) const { return in_offsets_[v + 1] - in_offsets_[v]; }

  /// True iff `v` is a valid node id of this graph.
  bool HasNode(NodeId v) const { return v < num_nodes_; }

  /// Logical resident size of the CSR structure in bytes.
  size_t MemoryBytes() const;

  /// Edge-probability summary (Table 2 columns).
  EdgeProbStats ProbStats() const;

  /// One-line description: "n=..., m=..., mean prob=...".
  std::string Describe() const;

 private:
  friend class GraphBuilder;

  size_t num_nodes_ = 0;
  std::vector<EdgeRecord> edges_;
  std::vector<uint32_t> out_offsets_;  // size num_nodes_+1
  std::vector<uint32_t> in_offsets_;   // size num_nodes_+1
  std::vector<AdjEntry> out_adj_;      // size num_edges
  std::vector<AdjEntry> in_adj_;       // size num_edges
};

}  // namespace relcomp
