#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/compact_adjacency.h"
#include "graph/graph_types.h"

namespace relcomp {

/// \brief Physical representation of an UncertainGraph, chosen at
/// GraphBuilder time.
///
/// kRaw is the pointer-chasing-friendly CSR (EdgeRecord + AdjEntry arrays,
/// ~48 bytes/edge); kCompact is the succinct layout of
/// graph/compact_adjacency.h (rank/select offsets + packed columns, typically
/// < 0.6x raw). The two are observationally identical: same iteration order,
/// same edge ids, bitwise-equal probabilities — every estimator runs
/// unmodified and returns bit-identical answers on either.
enum class StorageLayout {
  kRaw,
  kCompact,
};

inline const char* StorageLayoutName(StorageLayout layout) {
  return layout == StorageLayout::kCompact ? "compact" : "raw";
}

/// \brief Summary statistics of the edge-probability distribution, matching
/// the columns of the paper's Table 2.
struct EdgeProbStats {
  double mean = 0.0;
  double stddev = 0.0;
  double q25 = 0.0;
  double q50 = 0.0;
  double q75 = 0.0;
};

/// \brief Immutable directed uncertain graph G = (V, E, P) in CSR form.
///
/// Possible-world semantics: every edge e exists independently with
/// probability P(e) (Section 2.1 of the paper). Build instances with
/// GraphBuilder; the structure is immutable afterwards, so estimators can
/// share one graph across threads/queries.
///
/// OutEdges/InEdges return an AdjacencyRange whose iterator yields AdjEntry
/// values: a thin pointer wrapper in the raw layout, an on-the-fly decode of
/// the packed columns in the compact layout. Range-for loops over
/// `const AdjEntry&` work identically on both.
class UncertainGraph {
 public:
  /// \brief One node's adjacency in either layout. Forward iteration yields
  /// AdjEntry by value; `const AdjEntry&` binds to it for the loop body.
  class AdjacencyRange {
   public:
    class iterator {
     public:
      using value_type = AdjEntry;
      using reference = AdjEntry;
      using pointer = void;
      using difference_type = std::ptrdiff_t;
      using iterator_category = std::input_iterator_tag;

      iterator() = default;
      iterator(const AdjacencyRange* range, size_t index)
          : range_(range), index_(index) {}

      AdjEntry operator*() const { return (*range_)[index_]; }
      iterator& operator++() {
        ++index_;
        return *this;
      }
      iterator operator++(int) {
        iterator old = *this;
        ++index_;
        return old;
      }
      bool operator==(const iterator& o) const { return index_ == o.index_; }
      bool operator!=(const iterator& o) const { return index_ != o.index_; }

     private:
      const AdjacencyRange* range_ = nullptr;
      size_t index_ = 0;
    };

    AdjacencyRange(const AdjEntry* raw_begin, size_t count)
        : raw_(raw_begin), count_(count) {}
    AdjacencyRange(const CompactAdjacency* compact,
                   const CompactAdjacency::Direction* dir, size_t begin_slot,
                   size_t count)
        : compact_(compact), dir_(dir), begin_slot_(begin_slot),
          count_(count) {}

    size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    AdjEntry operator[](size_t i) const {
      if (raw_ != nullptr) return raw_[i];
      return compact_->EntryAt(*dir_, begin_slot_ + i);
    }

    iterator begin() const { return iterator(this, 0); }
    iterator end() const { return iterator(this, count_); }

   private:
    const AdjEntry* raw_ = nullptr;
    const CompactAdjacency* compact_ = nullptr;
    const CompactAdjacency::Direction* dir_ = nullptr;
    size_t begin_slot_ = 0;
    size_t count_ = 0;
  };

  UncertainGraph() = default;

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return num_edges_; }

  /// Physical layout this graph was built with.
  StorageLayout layout() const { return layout_; }

  /// Canonical record for edge id `e` (by value; bitwise identical across
  /// layouts).
  EdgeRecord edge(EdgeId e) const {
    return layout_ == StorageLayout::kRaw ? edges_[e] : compact_.Edge(e);
  }
  /// Existence probability of edge id `e`.
  double prob(EdgeId e) const {
    return layout_ == StorageLayout::kRaw ? edges_[e].prob : compact_.Prob(e);
  }

  /// Outgoing adjacency of `v` (entries sorted by insertion order).
  AdjacencyRange OutEdges(NodeId v) const {
    if (layout_ == StorageLayout::kRaw) {
      return AdjacencyRange(out_adj_.data() + out_offsets_[v],
                            out_offsets_[v + 1] - out_offsets_[v]);
    }
    const size_t begin = compact_.OutOffset(v);
    return AdjacencyRange(&compact_, &compact_.out(), begin,
                          compact_.OutOffset(v + 1) - begin);
  }
  /// Incoming adjacency of `v` (AdjEntry::neighbor is the edge tail).
  AdjacencyRange InEdges(NodeId v) const {
    if (layout_ == StorageLayout::kRaw) {
      return AdjacencyRange(in_adj_.data() + in_offsets_[v],
                            in_offsets_[v + 1] - in_offsets_[v]);
    }
    const size_t begin = compact_.InOffset(v);
    return AdjacencyRange(&compact_, &compact_.in(), begin,
                          compact_.InOffset(v + 1) - begin);
  }

  size_t OutDegree(NodeId v) const {
    if (layout_ == StorageLayout::kRaw) {
      return out_offsets_[v + 1] - out_offsets_[v];
    }
    return compact_.OutOffset(v + 1) - compact_.OutOffset(v);
  }
  size_t InDegree(NodeId v) const {
    if (layout_ == StorageLayout::kRaw) {
      return in_offsets_[v + 1] - in_offsets_[v];
    }
    return compact_.InOffset(v + 1) - compact_.InOffset(v);
  }

  /// True iff `v` is a valid node id of this graph.
  bool HasNode(NodeId v) const { return v < num_nodes_; }

  /// Actual resident bytes of the selected layout's structures.
  size_t MemoryBytes() const;

  /// The compact backing (only meaningful when layout() == kCompact).
  const CompactAdjacency& compact() const { return compact_; }

  /// Edge-probability summary (Table 2 columns).
  EdgeProbStats ProbStats() const;

  /// One-line description: "n=..., m=..., mean prob=...".
  std::string Describe() const;

 private:
  friend class GraphBuilder;

  size_t num_nodes_ = 0;
  size_t num_edges_ = 0;
  StorageLayout layout_ = StorageLayout::kRaw;

  // kRaw backing (empty in kCompact).
  std::vector<EdgeRecord> edges_;
  std::vector<uint32_t> out_offsets_;  // size num_nodes_+1
  std::vector<uint32_t> in_offsets_;   // size num_nodes_+1
  std::vector<AdjEntry> out_adj_;      // size num_edges
  std::vector<AdjEntry> in_adj_;       // size num_edges

  // kCompact backing (empty in kRaw).
  CompactAdjacency compact_;
};

}  // namespace relcomp
