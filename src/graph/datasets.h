#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace relcomp {

/// \brief The six paper datasets (Table 2), reproduced as synthetic analogues
/// (see DESIGN.md §1.3 for the substitution rationale).
enum class DatasetId {
  kLastFm = 0,     ///< musical social network; P = 1/outdeg
  kNetHept,        ///< HEP-TH co-authorship; P uniform {0.1, 0.01, 0.001}
  kAsTopology,     ///< CAIDA AS links; P = snapshot presence ratio
  kDblp02,         ///< DBLP co-authorship; P = 1 - exp(-c/5)  (mean ~0.33)
  kDblp005,        ///< same topology;      P = 1 - exp(-c/20) (mean ~0.11)
  kBioMine,        ///< biological concept graph; P = product of 3 criteria
};

inline constexpr int kNumDatasets = 6;

/// Short lowercase name ("lastfm", "nethept", ...), used in CLI flags and CSV.
const char* DatasetName(DatasetId id);
/// Paper-style display name ("LastFM", "DBLP 0.2", ...).
const char* DatasetDisplayName(DatasetId id);

/// All six ids, in the paper's Table 2 order.
std::vector<DatasetId> AllDatasetIds();

/// \brief Graph sizes per scale. The paper's server-scale runs are
/// impractical on a laptop for DBLP/BioMine; scales keep every experiment's
/// *shape* while bounding wall-clock time.
enum class Scale {
  kTiny = 0,  ///< a few hundred nodes; unit/integration tests
  kSmall,     ///< a few thousand nodes; default benchmark scale
  kMedium,    ///< paper-size for the small datasets; tens of thousands else
  kLarge,     ///< paper-size AS topology; ~10^5 nodes for DBLP/BioMine
};

/// Parses "tiny" / "small" / "medium" / "large".
Result<Scale> ParseScale(const std::string& name);
/// Reads RELCOMP_SCALE from the environment (default kSmall).
Scale ScaleFromEnv();
const char* ScaleName(Scale scale);

/// \brief A generated dataset: the uncertain graph plus identification.
struct Dataset {
  DatasetId id = DatasetId::kLastFm;
  Scale scale = Scale::kSmall;
  std::string name;
  UncertainGraph graph;
};

/// Builds the analogue of `id` at `scale`. Deterministic in `seed`; the two
/// DBLP variants share topology and collaboration counts for equal seeds,
/// exactly like the paper derives both from one graph.
Result<Dataset> MakeDataset(DatasetId id, Scale scale, uint64_t seed);

/// Table 2 analogue for a set of datasets (one row per dataset).
std::string DatasetTable(const std::vector<Dataset>& datasets);

}  // namespace relcomp
