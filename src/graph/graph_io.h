#pragma once

#include <string>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace relcomp {

/// \name Text edge-list format
///
/// One edge per line: `tail head prob`, whitespace separated. Lines starting
/// with '#' or '%' are comments. Node ids are dense non-negative integers.
/// @{

/// Parses an edge list from an in-memory string (useful for tests).
Result<UncertainGraph> ParseEdgeListString(const std::string& content);

/// Renders the graph in the text edge-list format.
std::string WriteEdgeListString(const UncertainGraph& graph);

/// Loads a text edge list from `path`.
Result<UncertainGraph> LoadEdgeListText(const std::string& path);

/// Writes a text edge list to `path` (overwrites).
Status SaveEdgeListText(const UncertainGraph& graph, const std::string& path);
/// @}

/// \name Binary format
///
/// Compact snapshot: magic "RELCOMPG", version, n, m, then m EdgeRecord
/// triples (tail:u32, head:u32, prob:f64), little-endian. Used to persist
/// generated datasets and index artifacts.
/// @{
Result<UncertainGraph> LoadBinary(const std::string& path);
Status SaveBinary(const UncertainGraph& graph, const std::string& path);
/// @}

/// \name Snapshot-section payloads (persistence tier)
/// @{

/// Serializes the graph as a snapshot-section payload: {n u64, m u64,
/// layout u8, pad u8[7]} then m EdgeRecord triples (tail u32, head u32,
/// prob f64) in edge-id order. Layout is preserved so a restored engine
/// rebuilds the same storage (kRaw/kCompact are observationally identical
/// either way).
void AppendGraphBlock(const UncertainGraph& graph, std::string* out);

/// Reconstructs a graph from an AppendGraphBlock payload (bounds-checked;
/// truncated or malformed payloads return kIOError).
Result<UncertainGraph> ParseGraphBlock(const void* data, size_t size);

/// Content fingerprint of a graph: a seed-style hash over (n, m) and every
/// edge's (tail, head, bitwise prob) in edge-id order. Identical across
/// storage layouts (edge(e) is layout-invariant by contract). The snapshot
/// manifest records it so a snapshot is only ever applied to the graph it
/// was built from.
uint64_t GraphFingerprint(const UncertainGraph& graph);
/// @}

}  // namespace relcomp
