#pragma once

#include <string>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace relcomp {

/// \name Text edge-list format
///
/// One edge per line: `tail head prob`, whitespace separated. Lines starting
/// with '#' or '%' are comments. Node ids are dense non-negative integers.
/// @{

/// Parses an edge list from an in-memory string (useful for tests).
Result<UncertainGraph> ParseEdgeListString(const std::string& content);

/// Renders the graph in the text edge-list format.
std::string WriteEdgeListString(const UncertainGraph& graph);

/// Loads a text edge list from `path`.
Result<UncertainGraph> LoadEdgeListText(const std::string& path);

/// Writes a text edge list to `path` (overwrites).
Status SaveEdgeListText(const UncertainGraph& graph, const std::string& path);
/// @}

/// \name Binary format
///
/// Compact snapshot: magic "RELCOMPG", version, n, m, then m EdgeRecord
/// triples (tail:u32, head:u32, prob:f64), little-endian. Used to persist
/// generated datasets and index artifacts.
/// @{
Result<UncertainGraph> LoadBinary(const std::string& path);
Status SaveBinary(const UncertainGraph& graph, const std::string& path);
/// @}

}  // namespace relcomp
