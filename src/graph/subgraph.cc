#include "graph/subgraph.h"

#include <deque>

#include "common/format.h"
#include "graph/graph_builder.h"

namespace relcomp {

namespace {

/// BFS over out-edges whose state passes `keep`.
template <typename KeepFn>
std::vector<uint8_t> ForwardClosure(const UncertainGraph& g, NodeId s,
                                    const std::vector<EdgeState>& states,
                                    KeepFn keep) {
  std::vector<uint8_t> visited(g.num_nodes(), 0);
  std::deque<NodeId> queue;
  visited[s] = 1;
  queue.push_back(s);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const AdjEntry& a : g.OutEdges(v)) {
      if (!keep(states[a.edge]) || visited[a.neighbor]) continue;
      visited[a.neighbor] = 1;
      queue.push_back(a.neighbor);
    }
  }
  return visited;
}

/// Reverse BFS over in-edges whose state passes `keep`.
template <typename KeepFn>
std::vector<uint8_t> BackwardClosure(const UncertainGraph& g, NodeId t,
                                     const std::vector<EdgeState>& states,
                                     KeepFn keep) {
  std::vector<uint8_t> visited(g.num_nodes(), 0);
  std::deque<NodeId> queue;
  visited[t] = 1;
  queue.push_back(t);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const AdjEntry& a : g.InEdges(v)) {
      if (!keep(states[a.edge]) || visited[a.neighbor]) continue;
      visited[a.neighbor] = 1;
      queue.push_back(a.neighbor);
    }
  }
  return visited;
}

}  // namespace

Result<SimplifyResult> SimplifyGraph(const UncertainGraph& g, NodeId s, NodeId t,
                                     const std::vector<EdgeState>& states) {
  if (!g.HasNode(s) || !g.HasNode(t)) {
    return Status::InvalidArgument("SimplifyGraph: query node out of range");
  }
  if (states.size() != g.num_edges()) {
    return Status::InvalidArgument(
        StrFormat("SimplifyGraph: %zu states for %zu edges", states.size(),
                  g.num_edges()));
  }

  SimplifyResult result;
  if (s == t) {
    result.outcome = SimplifyOutcome::kCertainOne;
    return result;
  }

  // 1. Component certainly reachable via included (conditioned-present) edges.
  const std::vector<uint8_t> certain = ForwardClosure(
      g, s, states, [](EdgeState st) { return st == EdgeState::kIncluded; });
  if (certain[t]) {
    result.outcome = SimplifyOutcome::kCertainOne;
    return result;
  }

  // 2. Reachability over non-excluded edges; failure means E2 is an s-t cut.
  const auto not_excluded = [](EdgeState st) { return st != EdgeState::kExcluded; };
  const std::vector<uint8_t> reach = ForwardClosure(g, s, states, not_excluded);
  if (!reach[t]) {
    result.outcome = SimplifyOutcome::kCertainZero;
    return result;
  }

  // 3. Nodes that can still reach t.
  const std::vector<uint8_t> coreach = BackwardClosure(g, t, states, not_excluded);

  // 4. Relabel: super-source 0 = contracted certain component; keep only
  //    nodes on some residual s-t path.
  std::vector<NodeId> remap(g.num_nodes(), kInvalidNode);
  GraphBuilder builder(1);  // node 0 = super-source
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (certain[v]) {
      remap[v] = 0;
    } else if (reach[v] && coreach[v]) {
      remap[v] = builder.AddNode();
    }
  }

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (states[e] == EdgeState::kExcluded) continue;
    const EdgeRecord& rec = g.edge(e);
    if (certain[rec.head]) continue;  // edges into the certain component are moot
    const NodeId u = remap[rec.tail];
    const NodeId v = remap[rec.head];
    if (u == kInvalidNode || v == kInvalidNode || u == v) continue;
    const double p = states[e] == EdgeState::kIncluded ? 1.0 : rec.prob;
    RELCOMP_RETURN_NOT_OK(builder.AddEdge(u, v, p));
  }

  result.outcome = SimplifyOutcome::kReduced;
  RELCOMP_ASSIGN_OR_RETURN(result.rooted.graph, builder.Build());
  result.rooted.source = 0;
  result.rooted.target = remap[t];
  return result;
}

}  // namespace relcomp
