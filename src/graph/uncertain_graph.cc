#include "graph/uncertain_graph.h"

#include <algorithm>
#include <cmath>

#include "common/format.h"

namespace relcomp {

size_t UncertainGraph::MemoryBytes() const {
  if (layout_ == StorageLayout::kCompact) return compact_.MemoryBytes();
  return edges_.size() * sizeof(EdgeRecord) +
         out_offsets_.size() * sizeof(uint32_t) +
         in_offsets_.size() * sizeof(uint32_t) +
         out_adj_.size() * sizeof(AdjEntry) + in_adj_.size() * sizeof(AdjEntry);
}

EdgeProbStats UncertainGraph::ProbStats() const {
  EdgeProbStats stats;
  if (num_edges_ == 0) return stats;
  std::vector<double> probs;
  probs.reserve(num_edges_);
  double sum = 0.0;
  for (EdgeId e = 0; e < num_edges_; ++e) {
    const double p = prob(e);
    probs.push_back(p);
    sum += p;
  }
  stats.mean = sum / static_cast<double>(probs.size());
  double sq = 0.0;
  for (double p : probs) sq += (p - stats.mean) * (p - stats.mean);
  stats.stddev = std::sqrt(sq / static_cast<double>(probs.size()));
  std::sort(probs.begin(), probs.end());
  auto quantile = [&probs](double q) {
    const double pos = q * static_cast<double>(probs.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, probs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return probs[lo] * (1.0 - frac) + probs[hi] * frac;
  };
  stats.q25 = quantile(0.25);
  stats.q50 = quantile(0.50);
  stats.q75 = quantile(0.75);
  return stats;
}

std::string UncertainGraph::Describe() const {
  const EdgeProbStats s = ProbStats();
  return StrFormat(
      "n=%zu, m=%zu, layout=%s, edge prob: %.3f +/- %.3f, quartiles {%.3f, %.3f, %.3f}",
      num_nodes(), num_edges(), StorageLayoutName(layout_), s.mean, s.stddev,
      s.q25, s.q50, s.q75);
}

}  // namespace relcomp
