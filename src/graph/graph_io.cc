#include "graph/graph_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/format.h"
#include "common/rng.h"
#include "common/wire.h"
#include "graph/graph_builder.h"

namespace relcomp {

namespace {

constexpr char kBinaryMagic[8] = {'R', 'E', 'L', 'C', 'O', 'M', 'P', 'G'};
constexpr uint32_t kBinaryVersion = 1;

Result<UncertainGraph> ParseEdgeListStream(std::istream& in) {
  GraphBuilder builder;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    const std::vector<std::string> tokens = SplitString(line, " \t\r");
    if (tokens.empty()) continue;
    if (tokens.size() != 3) {
      return Status::IOError(
          StrFormat("line %zu: expected 'tail head prob', got %zu tokens",
                    line_no, tokens.size()));
    }
    uint64_t tail = 0;
    uint64_t head = 0;
    double prob = 0.0;
    if (!ParseUint64(tokens[0], &tail) || !ParseUint64(tokens[1], &head) ||
        !ParseDouble(tokens[2], &prob)) {
      return Status::IOError(StrFormat("line %zu: malformed edge", line_no));
    }
    if (tail > kInvalidNode - 1 || head > kInvalidNode - 1) {
      return Status::IOError(StrFormat("line %zu: node id out of range", line_no));
    }
    const Status st = builder.AddEdge(static_cast<NodeId>(tail),
                                      static_cast<NodeId>(head), prob);
    if (!st.ok()) {
      return Status::IOError(StrFormat("line %zu: %s", line_no,
                                       st.message().c_str()));
    }
  }
  return builder.Build();
}

}  // namespace

Result<UncertainGraph> ParseEdgeListString(const std::string& content) {
  std::istringstream in(content);
  return ParseEdgeListStream(in);
}

std::string WriteEdgeListString(const UncertainGraph& graph) {
  std::string out;
  out += StrFormat("# relcomp uncertain graph: n=%zu m=%zu\n", graph.num_nodes(),
                   graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const EdgeRecord& rec = graph.edge(e);
    out += StrFormat("%u %u %.17g\n", rec.tail, rec.head, rec.prob);
  }
  return out;
}

Result<UncertainGraph> LoadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  return ParseEdgeListStream(in);
}

Status SaveEdgeListText(const UncertainGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out << WriteEdgeListString(graph);
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<UncertainGraph> LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  char magic[8];
  uint32_t version = 0;
  uint64_t n = 0;
  uint64_t m = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in.good() || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::IOError("not a relcomp binary graph: " + path);
  }
  if (version != kBinaryVersion) {
    return Status::IOError(StrFormat("unsupported binary version %u", version));
  }
  GraphBuilder builder(n);
  builder.ReserveEdges(m);
  for (uint64_t i = 0; i < m; ++i) {
    uint32_t tail = 0;
    uint32_t head = 0;
    double prob = 0.0;
    in.read(reinterpret_cast<char*>(&tail), sizeof(tail));
    in.read(reinterpret_cast<char*>(&head), sizeof(head));
    in.read(reinterpret_cast<char*>(&prob), sizeof(prob));
    if (!in.good()) {
      return Status::IOError(StrFormat("truncated binary graph at edge %llu",
                                       static_cast<unsigned long long>(i)));
    }
    RELCOMP_RETURN_NOT_OK(builder.AddEdge(tail, head, prob));
  }
  return builder.Build();
}

Status SaveBinary(const UncertainGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  const uint32_t version = kBinaryVersion;
  const uint64_t n = graph.num_nodes();
  const uint64_t m = graph.num_edges();
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const EdgeRecord& rec = graph.edge(e);
    out.write(reinterpret_cast<const char*>(&rec.tail), sizeof(rec.tail));
    out.write(reinterpret_cast<const char*>(&rec.head), sizeof(rec.head));
    out.write(reinterpret_cast<const char*>(&rec.prob), sizeof(rec.prob));
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

void AppendGraphBlock(const UncertainGraph& graph, std::string* out) {
  WireWriter writer(out);
  writer.PutU64(graph.num_nodes());
  writer.PutU64(graph.num_edges());
  writer.PutU8(graph.layout() == StorageLayout::kCompact ? 1 : 0);
  for (int i = 0; i < 7; ++i) writer.PutU8(0);  // pad
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const EdgeRecord rec = graph.edge(e);
    writer.PutU32(rec.tail);
    writer.PutU32(rec.head);
    writer.PutF64(rec.prob);
  }
}

Result<UncertainGraph> ParseGraphBlock(const void* data, size_t size) {
  WireReader reader(data, size);
  uint64_t n = 0, m = 0;
  uint8_t layout = 0;
  if (!reader.ReadU64(&n) || !reader.ReadU64(&m) || !reader.ReadU8(&layout) ||
      !reader.Skip(7)) {
    return Status::IOError("graph block: truncated header");
  }
  if (layout > 1 || reader.remaining() % 16 != 0 ||
      m != reader.remaining() / 16) {
    return Status::IOError("graph block: malformed header");
  }
  GraphBuilder builder(n);
  builder.ReserveEdges(m);
  for (uint64_t i = 0; i < m; ++i) {
    uint32_t tail = 0, head = 0;
    double prob = 0.0;
    if (!reader.ReadU32(&tail) || !reader.ReadU32(&head) ||
        !reader.ReadF64(&prob)) {
      return Status::IOError(StrFormat("graph block: truncated at edge %llu",
                                       static_cast<unsigned long long>(i)));
    }
    RELCOMP_RETURN_NOT_OK(builder.AddEdge(tail, head, prob));
  }
  return builder.Build(layout == 1 ? StorageLayout::kCompact
                                   : StorageLayout::kRaw);
}

uint64_t GraphFingerprint(const UncertainGraph& graph) {
  uint64_t h = HashCombineSeed(0x67726166ULL, graph.num_nodes());  // "graf"
  h = HashCombineSeed(h, graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const EdgeRecord rec = graph.edge(e);
    h = HashCombineSeed(h, rec.tail);
    h = HashCombineSeed(h, rec.head);
    uint64_t prob_bits = 0;
    std::memcpy(&prob_bits, &rec.prob, sizeof(prob_bits));
    h = HashCombineSeed(h, prob_bits);
  }
  return h;
}

}  // namespace relcomp
