#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/uncertain_graph.h"

namespace relcomp {

/// \brief Bare graph topology produced by the synthetic generators; edge
/// probabilities are attached separately by the models in edge_prob.h.
struct Topology {
  uint32_t num_nodes = 0;
  /// If true, edges come in adjacent (forward, reverse) pairs: edges[2i+1]
  /// is the reverse of edges[2i]. Probability models use this to assign
  /// symmetric probabilities to bidirected relations (co-authorship etc.).
  bool paired = false;
  std::vector<std::pair<NodeId, NodeId>> edges;

  size_t num_edges() const { return edges.size(); }
};

/// Erdős–Rényi G(n, m)-style topology with `n * avg_degree / 2` undirected
/// pairs (each emitted in both directions when `bidirected`).
Topology MakeErdosRenyi(uint32_t n, double avg_degree, bool bidirected, Rng& rng);

/// Barabási–Albert preferential attachment: each new node attaches to
/// `edges_per_node` distinct existing nodes. Heavy-tailed degrees; the
/// social / collaboration / internet analogue used by the dataset registry.
/// When `bidirected` both directions are emitted (paired); otherwise each
/// attachment becomes a single directed edge with random orientation.
Topology MakeBarabasiAlbert(uint32_t n, uint32_t edges_per_node, bool bidirected,
                            Rng& rng);

/// Watts–Strogatz small world: ring lattice with `k` neighbors per side,
/// rewired with probability `beta`. Always bidirected/paired.
Topology MakeWattsStrogatz(uint32_t n, uint32_t k, double beta, Rng& rng);

/// rows x cols 4-neighbor grid (road-network analogue). Bidirected/paired.
Topology MakeGrid(uint32_t rows, uint32_t cols);

/// Community-structured collaboration graph (DBLP analogue): nodes are
/// grouped into communities of ~`community_size`; each node draws
/// `intra_degree` in-community partners and crosses communities with
/// probability `inter_prob`. Bidirected/paired.
Topology MakeCommunityGraph(uint32_t n, uint32_t community_size,
                            uint32_t intra_degree, double inter_prob, Rng& rng);

/// Converts a topology plus per-edge probabilities into an UncertainGraph.
/// Requires probs.size() == topo.num_edges().
Result<UncertainGraph> BuildFromTopology(const Topology& topo,
                                         const std::vector<double>& probs);

}  // namespace relcomp
