#include "graph/edge_prob.h"

#include <cmath>

namespace relcomp {

namespace {

/// Runs `gen(i)` once per undirected relation and mirrors the value onto the
/// paired reverse edge when the topology is paired.
template <typename Gen>
std::vector<double> GenerateSymmetric(const Topology& topo, Gen gen) {
  std::vector<double> probs(topo.edges.size(), 0.0);
  if (topo.paired) {
    for (size_t i = 0; i + 1 < probs.size(); i += 2) {
      const double p = gen();
      probs[i] = p;
      probs[i + 1] = p;
    }
    if (probs.size() % 2 == 1) probs.back() = gen();
  } else {
    for (auto& p : probs) p = gen();
  }
  return probs;
}

}  // namespace

std::vector<double> InverseOutDegreeProbs(const Topology& topo) {
  std::vector<uint32_t> outdeg(topo.num_nodes, 0);
  for (const auto& [tail, head] : topo.edges) {
    (void)head;
    ++outdeg[tail];
  }
  std::vector<double> probs;
  probs.reserve(topo.edges.size());
  for (const auto& [tail, head] : topo.edges) {
    (void)head;
    probs.push_back(1.0 / static_cast<double>(outdeg[tail]));
  }
  return probs;
}

std::vector<double> CategoricalProbs(const Topology& topo,
                                     const std::vector<double>& choices,
                                     Rng& rng) {
  return GenerateSymmetric(
      topo, [&]() { return choices[rng.UniformInt(choices.size())]; });
}

std::vector<double> SnapshotRatioProbs(const Topology& topo,
                                       const SnapshotModelOptions& options,
                                       Rng& rng) {
  const int snapshots = options.num_snapshots;
  return GenerateSymmetric(topo, [&]() {
    const double u = rng.NextDouble();
    const double stability = options.stability_floor + options.stability_scale * u * u;
    // First observation is uniform over all but the last snapshot, so every
    // link has at least one follow-up month.
    const int first = static_cast<int>(rng.UniformInt(
        static_cast<uint64_t>(std::max(1, snapshots - 1))));
    int present = 1;  // the first-observation snapshot itself
    const int window = snapshots - first;
    for (int i = 1; i < window; ++i) {
      if (rng.Bernoulli(stability)) ++present;
    }
    return static_cast<double>(present) / static_cast<double>(window);
  });
}

std::vector<uint32_t> CollaborationCounts(const Topology& topo, double mean_extra,
                                          Rng& rng) {
  const double p = 1.0 / (1.0 + mean_extra);
  std::vector<uint32_t> counts(topo.edges.size(), 0);
  if (topo.paired) {
    for (size_t i = 0; i + 1 < counts.size(); i += 2) {
      const uint32_t c = 1 + static_cast<uint32_t>(rng.Geometric(p));
      counts[i] = c;
      counts[i + 1] = c;
    }
    if (counts.size() % 2 == 1) {
      counts.back() = 1 + static_cast<uint32_t>(rng.Geometric(p));
    }
  } else {
    for (auto& c : counts) c = 1 + static_cast<uint32_t>(rng.Geometric(p));
  }
  return counts;
}

std::vector<double> CollaborationExpCdfProbs(const std::vector<uint32_t>& counts,
                                             double mu) {
  std::vector<double> probs;
  probs.reserve(counts.size());
  for (uint32_t c : counts) {
    probs.push_back(1.0 - std::exp(-static_cast<double>(c) / mu));
  }
  return probs;
}

std::vector<double> ThreeCriteriaProbs(const Topology& topo, Rng& rng) {
  std::vector<double> probs;
  probs.reserve(topo.edges.size());
  for (size_t i = 0; i < topo.edges.size(); ++i) {
    const double relevance = 0.30 + 0.70 * rng.NextDouble();
    const double informativeness = 0.20 + 0.80 * rng.NextDouble();
    const double confidence = 0.30 + 0.70 * rng.NextDouble();
    probs.push_back(relevance * informativeness * confidence);
  }
  return probs;
}

}  // namespace relcomp
