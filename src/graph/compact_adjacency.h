#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/packed_ints.h"
#include "common/rank_select.h"
#include "graph/graph_types.h"

namespace relcomp {

/// \brief Succinct CSR backing for UncertainGraph's kCompact layout.
///
/// Replaces the raw layout's ~48 bytes/edge (EdgeRecord array + two AdjEntry
/// arrays + two uint32 offset arrays) with:
///
///  - Per direction, the adjacency offsets as the select positions of a unary
///    degree sequence `1 0^{deg(0)} 1 0^{deg(1)} ... 1` (n+m+1 bits, n+1
///    ones): offset(v) = Select1(v+1) - v. The sequence is stored either
///    as a plain rank/select directory or RRR-compressed when the ones are
///    sparse (high average degree).
///  - Per direction, neighbor ids packed at ceil(log2(n)) bits and edge ids
///    packed at ceil(log2(m)) bits per slot.
///  - Edge endpoints (tails/heads, by edge id) packed the same way.
///  - Edge probabilities through a lossless dictionary: the distinct values
///    (sorted) plus a packed code per edge. If the graph has more than
///    kMaxProbDictSize distinct probabilities the builder falls back to a
///    full-width double array — either way every Prob(e) is bitwise equal to
///    the raw layout's, so estimates never change with the layout.
///
/// Slot order within a node's adjacency is byte-for-byte the raw CSR order
/// (the builder hands its raw arrays in), so iteration order, edge ids, and
/// hence every content-derived RNG stream are identical across layouts.
class CompactAdjacency {
 public:
  /// Distinct-probability cap for the dictionary encoding (code width <= 16).
  static constexpr size_t kMaxProbDictSize = 65536;

  /// One adjacency direction: offsets as a rank/select unary sequence plus
  /// packed neighbor/edge-id columns.
  struct Direction {
    RankSelectBitVector plain_bounds;
    RrrBitVector rrr_bounds;
    bool use_rrr = false;
    PackedIntVector neighbors;
    PackedIntVector edge_ids;

    /// First adjacency slot of node v; valid for v in [0, num_nodes]. The
    /// (v+1)-th one of the unary sequence sits at position offsets[v] + v.
    size_t Offset(NodeId v) const {
      const size_t k = static_cast<size_t>(v) + 1;
      return (use_rrr ? rrr_bounds.Select1(k) : plain_bounds.Select1(k)) -
             static_cast<size_t>(v);
    }

    size_t MemoryBytes() const;
  };

  CompactAdjacency() = default;

  /// Converts the raw CSR arrays (exactly as GraphBuilder::Build lays them
  /// out) into the compact representation.
  static CompactAdjacency Build(size_t num_nodes,
                                const std::vector<EdgeRecord>& edges,
                                const std::vector<uint32_t>& out_offsets,
                                const std::vector<uint32_t>& in_offsets,
                                const std::vector<AdjEntry>& out_adj,
                                const std::vector<AdjEntry>& in_adj);

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return num_edges_; }

  /// Canonical record of edge `e` (probability bitwise equal to the raw
  /// layout's).
  EdgeRecord Edge(EdgeId e) const {
    return EdgeRecord{static_cast<NodeId>(tails_.Get(e)),
                      static_cast<NodeId>(heads_.Get(e)), Prob(e)};
  }

  /// Existence probability of edge `e`, bitwise equal to the raw layout's.
  double Prob(EdgeId e) const {
    return uses_dictionary_ ? prob_dict_[prob_codes_.Get(e)] : probs_raw_[e];
  }

  const Direction& out() const { return out_; }
  const Direction& in() const { return in_; }

  /// Decodes the adjacency entry at absolute slot `slot` of a direction.
  AdjEntry EntryAt(const Direction& dir, size_t slot) const {
    const EdgeId e = static_cast<EdgeId>(dir.edge_ids.Get(slot));
    return AdjEntry{static_cast<NodeId>(dir.neighbors.Get(slot)), e, Prob(e)};
  }

  size_t OutOffset(NodeId v) const { return out_.Offset(v); }
  size_t InOffset(NodeId v) const { return in_.Offset(v); }

  /// True iff probabilities are dictionary-coded (false = full-width
  /// fallback for graphs with > kMaxProbDictSize distinct values).
  bool uses_dictionary() const { return uses_dictionary_; }
  /// The sorted distinct probabilities (empty in fallback mode).
  const std::vector<double>& prob_dictionary() const { return prob_dict_; }

  /// Actual resident bytes of every component.
  size_t MemoryBytes() const;

 private:
  size_t num_nodes_ = 0;
  size_t num_edges_ = 0;
  Direction out_;
  Direction in_;
  PackedIntVector tails_;  ///< edge id -> tail, ceil(log2(n)) bits
  PackedIntVector heads_;  ///< edge id -> head, ceil(log2(n)) bits
  bool uses_dictionary_ = true;
  std::vector<double> prob_dict_;   ///< sorted distinct probabilities
  PackedIntVector prob_codes_;      ///< edge id -> dictionary index
  std::vector<double> probs_raw_;   ///< fallback: full-width per edge
};

}  // namespace relcomp
