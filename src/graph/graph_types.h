#pragma once

#include <cstdint>

namespace relcomp {

/// Node identifier; nodes are dense integers [0, num_nodes).
using NodeId = uint32_t;
/// Edge identifier; edges are dense integers [0, num_edges) in insertion
/// order (the canonical order used by index structures and world masks).
using EdgeId = uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// \brief One directed probabilistic edge tail -> head with existence
/// probability prob in (0, 1].
struct EdgeRecord {
  NodeId tail = kInvalidNode;
  NodeId head = kInvalidNode;
  double prob = 0.0;
};

/// \brief Adjacency-list entry: the neighbor, the canonical edge id, and the
/// edge probability (duplicated here for cache locality of the BFS loops).
struct AdjEntry {
  NodeId neighbor = kInvalidNode;
  EdgeId edge = kInvalidEdge;
  double prob = 0.0;
};

}  // namespace relcomp
