#include "engine/engine_stats.h"

#include <string_view>

#include "common/format.h"
#include "common/timer.h"

namespace relcomp {

namespace {
/// ns -> ms for the snapshot's double fields.
double NsToMs(uint64_t ns) { return static_cast<double>(ns) * 1e-6; }
}  // namespace

EngineStats::EngineStats(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  registry_ = registry;
  query_latency_ns_ = registry_->GetHistogram("engine_query_latency_ns");
  sweep_latency_ns_ = registry_->GetHistogram("engine_sweep_latency_ns");
  executed_ = registry_->GetCounter("engine_executed_total");
  coalesced_ = registry_->GetCounter("engine_coalesced_total");
  failures_ = registry_->GetCounter("engine_failures_total");
  shed_queue_full_ =
      registry_->GetCounter("engine_shed_total", "reason", "queue_full");
  shed_overload_ =
      registry_->GetCounter("engine_shed_total", "reason", "overload");
  deadline_exceeded_ =
      registry_->GetCounter("engine_deadline_exceeded_total");
  stale_served_ = registry_->GetCounter("engine_stale_served_total");
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    fault_injected_[i] =
        registry_->GetGauge("fault_injected_total", "site",
                            FaultSiteName(static_cast<FaultSite>(i)));
  }
  for (size_t i = 0; i < kNumWorkloadKinds; ++i) {
    workload_queries_[i] =
        registry_->GetCounter("engine_queries_total", "workload",
                              WorkloadKindName(static_cast<WorkloadKind>(i)));
  }
  sweep_executed_ = registry_->GetCounter("engine_sweep_executed_total");
  sweep_hits_ = registry_->GetCounter("engine_sweep_hits_total");
  sweep_coalesced_ = registry_->GetCounter("engine_sweep_coalesced_total");
  strata_executed_ = registry_->GetCounter("engine_strata_executed_total");
  strata_stolen_ = registry_->GetCounter("engine_strata_stolen_total");
  scout_warms_ = registry_->GetCounter("engine_scout_warms_total");
  prebuilt_used_ = registry_->GetCounter("engine_prebuilt_used_total");
  wall_seconds_ = registry_->GetGauge("engine_wall_seconds");
  span_seconds_ = registry_->GetGauge("engine_span_seconds");
  peak_memory_bytes_ = registry_->GetGauge("engine_peak_memory_bytes");
}

void EngineStats::RecordExecuted(double seconds, size_t peak_memory_bytes) {
  query_latency_ns_->RecordSeconds(seconds);
  executed_->Inc();
  peak_memory_bytes_->SetMax(static_cast<double>(peak_memory_bytes));
}

void EngineStats::RecordCacheHit() { query_latency_ns_->Record(0); }

void EngineStats::RecordCoalesced(double wait_seconds) {
  query_latency_ns_->RecordSeconds(wait_seconds);
  coalesced_->Inc();
}

void EngineStats::RecordFailure(double seconds) {
  query_latency_ns_->RecordSeconds(seconds);
  failures_->Inc();
}

void EngineStats::RecordShed(const char* reason) {
  if (reason != nullptr && std::string_view(reason) == "queue_full") {
    shed_queue_full_->Inc();
  } else {
    shed_overload_->Inc();
  }
}

void EngineStats::RecordDeadlineExceeded() { deadline_exceeded_->Inc(); }

void EngineStats::RecordStaleServed() { stale_served_->Inc(); }

void EngineStats::RecordSweepExecuted() { sweep_executed_->Inc(); }

void EngineStats::RecordSweepHit() { sweep_hits_->Inc(); }

void EngineStats::RecordSweepCoalesced() { sweep_coalesced_->Inc(); }

void EngineStats::RecordStratum(bool stolen) {
  strata_executed_->Inc();
  if (stolen) strata_stolen_->Inc();
}

void EngineStats::RecordScoutWarm() { scout_warms_->Inc(); }

void EngineStats::RecordSweepLatency(double seconds) {
  sweep_latency_ns_->RecordSeconds(seconds);
}

void EngineStats::RecordPrebuiltUsed() { prebuilt_used_->Inc(); }

void EngineStats::RecordWorkload(WorkloadKind kind) {
  workload_queries_[static_cast<size_t>(kind)]->Inc();
}

void EngineStats::AddWallTime(double seconds) { wall_seconds_->Add(seconds); }

void EngineStats::MarkCallStart() {
  const uint64_t now = StopwatchNs::Now();
  // Min, not first-to-arrive: two concurrent calls may take their stamps in
  // one order and update in the other.
  uint64_t seen = span_first_start_ns_.load(std::memory_order_relaxed);
  while (now < seen && !span_first_start_ns_.compare_exchange_weak(
                           seen, now, std::memory_order_relaxed)) {
  }
}

void EngineStats::MarkCallEnd() {
  const uint64_t now = StopwatchNs::Now();
  uint64_t seen = span_last_end_ns_.load(std::memory_order_relaxed);
  while (now > seen && !span_last_end_ns_.compare_exchange_weak(
                           seen, now, std::memory_order_relaxed)) {
  }
  // Keep the scrapeable gauge live (Snapshot recomputes from the stamps).
  const uint64_t first = span_first_start_ns_.load(std::memory_order_relaxed);
  const uint64_t last = span_last_end_ns_.load(std::memory_order_relaxed);
  if (first != kNoStamp && last > first) {
    span_seconds_->Set(static_cast<double>(last - first) * 1e-9);
  }
}

EngineStatsSnapshot EngineStats::Snapshot(const ResultCache* cache,
                                          const SweepCache* sweep_cache) const {
  EngineStatsSnapshot snapshot;
  const obs::HistogramSnapshot latency = query_latency_ns_->Snapshot();
  const obs::HistogramSnapshot sweep_latency = sweep_latency_ns_->Snapshot();
  snapshot.queries = latency.count;
  snapshot.executed = executed_->Value();
  snapshot.coalesced = coalesced_->Value();
  snapshot.failures = failures_->Value();
  snapshot.shed = shed_queue_full_->Value() + shed_overload_->Value();
  snapshot.deadline_exceeded = deadline_exceeded_->Value();
  snapshot.stale_served = stale_served_->Value();
  {
    FaultInjector& injector = FaultInjector::Global();
    uint64_t total = 0;
    for (size_t i = 0; i < kNumFaultSites; ++i) {
      const uint64_t n = injector.injected(static_cast<FaultSite>(i));
      fault_injected_[i]->Set(static_cast<double>(n));
      total += n;
    }
    snapshot.faults_injected = total;
  }
  for (size_t i = 0; i < kNumWorkloadKinds; ++i) {
    snapshot.workload_queries[i] = workload_queries_[i]->Value();
  }
  snapshot.sweep_executed = sweep_executed_->Value();
  snapshot.sweep_hits = sweep_hits_->Value();
  snapshot.sweep_coalesced = sweep_coalesced_->Value();
  snapshot.strata_executed = strata_executed_->Value();
  snapshot.strata_stolen = strata_stolen_->Value();
  snapshot.scout_warms = scout_warms_->Value();
  snapshot.prebuilt_used = prebuilt_used_->Value();
  snapshot.wall_seconds = wall_seconds_->Value();
  snapshot.peak_memory_bytes =
      static_cast<size_t>(peak_memory_bytes_->Value());
  const uint64_t first = span_first_start_ns_.load(std::memory_order_relaxed);
  const uint64_t last = span_last_end_ns_.load(std::memory_order_relaxed);
  if (first != kNoStamp && last > first) {
    snapshot.span_seconds = static_cast<double>(last - first) * 1e-9;
  }
  if (snapshot.wall_seconds > 0.0) {
    snapshot.throughput_qps =
        static_cast<double>(snapshot.queries) / snapshot.wall_seconds;
  }
  if (snapshot.span_seconds > 0.0) {
    snapshot.span_qps =
        static_cast<double>(snapshot.queries) / snapshot.span_seconds;
  }
  if (latency.count > 0) {
    snapshot.mean_ms = latency.mean() * 1e-6;
    snapshot.p50_ms = NsToMs(latency.Quantile(0.50));
    snapshot.p90_ms = NsToMs(latency.Quantile(0.90));
    snapshot.p99_ms = NsToMs(latency.Quantile(0.99));
    snapshot.max_ms = NsToMs(latency.max);  // extremes are tracked exactly
  }
  if (sweep_latency.count > 0) {
    snapshot.sweep_p50_ms = NsToMs(sweep_latency.Quantile(0.50));
    snapshot.sweep_p95_ms = NsToMs(sweep_latency.Quantile(0.95));
  }
  if (cache != nullptr) snapshot.cache = cache->Stats();
  if (sweep_cache != nullptr) snapshot.sweep_cache = sweep_cache->Stats();
  return snapshot;
}

void EngineStats::Reset() {
  query_latency_ns_->Reset();
  sweep_latency_ns_->Reset();
  executed_->Reset();
  coalesced_->Reset();
  failures_->Reset();
  shed_queue_full_->Reset();
  shed_overload_->Reset();
  deadline_exceeded_->Reset();
  stale_served_->Reset();
  for (obs::Counter* counter : workload_queries_) counter->Reset();
  sweep_executed_->Reset();
  sweep_hits_->Reset();
  sweep_coalesced_->Reset();
  strata_executed_->Reset();
  strata_stolen_->Reset();
  scout_warms_->Reset();
  prebuilt_used_->Reset();
  wall_seconds_->Reset();
  span_seconds_->Reset();
  peak_memory_bytes_->Reset();
  span_first_start_ns_.store(kNoStamp, std::memory_order_relaxed);
  span_last_end_ns_.store(0, std::memory_order_relaxed);
}

TextTable EngineStatsTable(
    const std::vector<std::pair<std::string, EngineStatsSnapshot>>& rows) {
  TextTable table({"config", "queries", "st/k/set/d", "exec", "coal",
                   "swp x/h/c", "strata x/s", "scout", "swp p50/p95", "pre",
                   "wall s", "span s", "qps", "mean ms", "p50 ms", "p90 ms",
                   "p99 ms", "max ms", "hit rate", "peak mem", "index mem"});
  for (const auto& [label, s] : rows) {
    table.AddRow(
        {label, StrFormat("%llu", static_cast<unsigned long long>(s.queries)),
         StrFormat(
             "%llu/%llu/%llu/%llu",
             static_cast<unsigned long long>(s.queries_of(WorkloadKind::kSt)),
             static_cast<unsigned long long>(s.queries_of(WorkloadKind::kTopK)),
             static_cast<unsigned long long>(
                 s.queries_of(WorkloadKind::kReliableSet)),
             static_cast<unsigned long long>(
                 s.queries_of(WorkloadKind::kDistance))),
         StrFormat("%llu", static_cast<unsigned long long>(s.executed)),
         StrFormat("%llu", static_cast<unsigned long long>(s.coalesced)),
         StrFormat("%llu/%llu/%llu",
                   static_cast<unsigned long long>(s.sweep_executed),
                   static_cast<unsigned long long>(s.sweep_hits),
                   static_cast<unsigned long long>(s.sweep_coalesced)),
         StrFormat("%llu/%llu",
                   static_cast<unsigned long long>(s.strata_executed),
                   static_cast<unsigned long long>(s.strata_stolen)),
         StrFormat("%llu", static_cast<unsigned long long>(s.scout_warms)),
         StrFormat("%.2f/%.2f", s.sweep_p50_ms, s.sweep_p95_ms),
         StrFormat("%llu", static_cast<unsigned long long>(s.prebuilt_used)),
         StrFormat("%.3f", s.wall_seconds), StrFormat("%.3f", s.span_seconds),
         StrFormat("%.1f", s.throughput_qps), StrFormat("%.3f", s.mean_ms),
         StrFormat("%.3f", s.p50_ms), StrFormat("%.3f", s.p90_ms),
         StrFormat("%.3f", s.p99_ms), StrFormat("%.3f", s.max_ms),
         StrFormat("%.1f%%", s.cache.hit_rate() * 100.0),
         HumanBytes(s.peak_memory_bytes),
         HumanBytes(s.index_memory.total_bytes())});
  }
  return table;
}

}  // namespace relcomp
