#include "engine/engine_stats.h"

#include <algorithm>
#include <cmath>

#include "common/format.h"

namespace relcomp {

namespace {
/// Nearest-rank quantile of an ascending-sorted sample: the smallest value
/// with at least ceil(q * n) samples at or below it.
double QuantileMs(const std::vector<double>& sorted_seconds, double q) {
  if (sorted_seconds.empty()) return 0.0;
  const size_t n = sorted_seconds.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank > 0) --rank;
  if (rank >= n) rank = n - 1;
  return sorted_seconds[rank] * 1e3;
}
}  // namespace

void EngineStats::RecordExecuted(double seconds, size_t peak_memory_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  latencies_seconds_.push_back(seconds);
  ++executed_;
  if (peak_memory_bytes > peak_memory_bytes_) {
    peak_memory_bytes_ = peak_memory_bytes;
  }
}

void EngineStats::RecordCacheHit() {
  std::lock_guard<std::mutex> lock(mutex_);
  latencies_seconds_.push_back(0.0);
}

void EngineStats::RecordCoalesced(double wait_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  latencies_seconds_.push_back(wait_seconds);
  ++coalesced_;
}

void EngineStats::RecordFailure(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  latencies_seconds_.push_back(seconds);
  ++failures_;
}

void EngineStats::RecordSweepExecuted() {
  sweep_executed_.fetch_add(1, std::memory_order_relaxed);
}

void EngineStats::RecordSweepHit() {
  sweep_hits_.fetch_add(1, std::memory_order_relaxed);
}

void EngineStats::RecordSweepCoalesced() {
  sweep_coalesced_.fetch_add(1, std::memory_order_relaxed);
}

void EngineStats::RecordStratum(bool stolen) {
  strata_executed_.fetch_add(1, std::memory_order_relaxed);
  if (stolen) strata_stolen_.fetch_add(1, std::memory_order_relaxed);
}

void EngineStats::RecordScoutWarm() {
  scout_warms_.fetch_add(1, std::memory_order_relaxed);
}

void EngineStats::RecordSweepLatency(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  sweep_latencies_seconds_.push_back(seconds);
}

void EngineStats::RecordPrebuiltUsed() {
  prebuilt_used_.fetch_add(1, std::memory_order_relaxed);
}

void EngineStats::RecordWorkload(WorkloadKind kind) {
  workload_queries_[static_cast<size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);
}

void EngineStats::AddWallTime(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  wall_seconds_ += seconds;
}

void EngineStats::MarkCallStart() {
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  // Min, not first-to-lock: two concurrent calls may take their timestamps
  // in one order and this mutex in the other.
  if (!span_first_start_.has_value() || now < *span_first_start_) {
    span_first_start_ = now;
  }
}

void EngineStats::MarkCallEnd() {
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!span_last_end_.has_value() || now > *span_last_end_) {
    span_last_end_ = now;
  }
}

EngineStatsSnapshot EngineStats::Snapshot(const ResultCache* cache,
                                          const SweepCache* sweep_cache) const {
  std::vector<double> sorted;
  std::vector<double> sweep_sorted;
  EngineStatsSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted = latencies_seconds_;
    sweep_sorted = sweep_latencies_seconds_;
    snapshot.wall_seconds = wall_seconds_;
    snapshot.peak_memory_bytes = peak_memory_bytes_;
    snapshot.executed = executed_;
    snapshot.coalesced = coalesced_;
    snapshot.failures = failures_;
    for (size_t i = 0; i < kNumWorkloadKinds; ++i) {
      snapshot.workload_queries[i] =
          workload_queries_[i].load(std::memory_order_relaxed);
    }
    snapshot.sweep_executed = sweep_executed_.load(std::memory_order_relaxed);
    snapshot.sweep_hits = sweep_hits_.load(std::memory_order_relaxed);
    snapshot.sweep_coalesced =
        sweep_coalesced_.load(std::memory_order_relaxed);
    snapshot.prebuilt_used = prebuilt_used_.load(std::memory_order_relaxed);
    snapshot.strata_executed =
        strata_executed_.load(std::memory_order_relaxed);
    snapshot.strata_stolen = strata_stolen_.load(std::memory_order_relaxed);
    snapshot.scout_warms = scout_warms_.load(std::memory_order_relaxed);
    if (span_first_start_.has_value() && span_last_end_.has_value() &&
        *span_last_end_ > *span_first_start_) {
      snapshot.span_seconds =
          std::chrono::duration<double>(*span_last_end_ - *span_first_start_)
              .count();
    }
  }
  std::sort(sorted.begin(), sorted.end());
  snapshot.queries = sorted.size();
  if (snapshot.wall_seconds > 0.0) {
    snapshot.throughput_qps =
        static_cast<double>(snapshot.queries) / snapshot.wall_seconds;
  }
  if (snapshot.span_seconds > 0.0) {
    snapshot.span_qps =
        static_cast<double>(snapshot.queries) / snapshot.span_seconds;
  }
  if (!sorted.empty()) {
    double sum = 0.0;
    for (double s : sorted) sum += s;
    snapshot.mean_ms = sum / static_cast<double>(sorted.size()) * 1e3;
    snapshot.p50_ms = QuantileMs(sorted, 0.50);
    snapshot.p90_ms = QuantileMs(sorted, 0.90);
    snapshot.p99_ms = QuantileMs(sorted, 0.99);
    snapshot.max_ms = sorted.back() * 1e3;
  }
  if (!sweep_sorted.empty()) {
    std::sort(sweep_sorted.begin(), sweep_sorted.end());
    snapshot.sweep_p50_ms = QuantileMs(sweep_sorted, 0.50);
    snapshot.sweep_p95_ms = QuantileMs(sweep_sorted, 0.95);
  }
  if (cache != nullptr) snapshot.cache = cache->Stats();
  if (sweep_cache != nullptr) snapshot.sweep_cache = sweep_cache->Stats();
  return snapshot;
}

void EngineStats::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  latencies_seconds_.clear();
  wall_seconds_ = 0.0;
  peak_memory_bytes_ = 0;
  executed_ = 0;
  coalesced_ = 0;
  failures_ = 0;
  for (std::atomic<uint64_t>& count : workload_queries_) {
    count.store(0, std::memory_order_relaxed);
  }
  sweep_executed_.store(0, std::memory_order_relaxed);
  sweep_hits_.store(0, std::memory_order_relaxed);
  sweep_coalesced_.store(0, std::memory_order_relaxed);
  prebuilt_used_.store(0, std::memory_order_relaxed);
  strata_executed_.store(0, std::memory_order_relaxed);
  strata_stolen_.store(0, std::memory_order_relaxed);
  scout_warms_.store(0, std::memory_order_relaxed);
  sweep_latencies_seconds_.clear();
  span_first_start_.reset();
  span_last_end_.reset();
}

TextTable EngineStatsTable(
    const std::vector<std::pair<std::string, EngineStatsSnapshot>>& rows) {
  TextTable table({"config", "queries", "st/k/set/d", "exec", "coal",
                   "swp x/h/c", "strata x/s", "scout", "swp p50/p95", "pre",
                   "wall s", "span s", "qps", "mean ms", "p50 ms", "p90 ms",
                   "p99 ms", "max ms", "hit rate", "peak mem", "index mem"});
  for (const auto& [label, s] : rows) {
    table.AddRow(
        {label, StrFormat("%llu", static_cast<unsigned long long>(s.queries)),
         StrFormat(
             "%llu/%llu/%llu/%llu",
             static_cast<unsigned long long>(s.queries_of(WorkloadKind::kSt)),
             static_cast<unsigned long long>(s.queries_of(WorkloadKind::kTopK)),
             static_cast<unsigned long long>(
                 s.queries_of(WorkloadKind::kReliableSet)),
             static_cast<unsigned long long>(
                 s.queries_of(WorkloadKind::kDistance))),
         StrFormat("%llu", static_cast<unsigned long long>(s.executed)),
         StrFormat("%llu", static_cast<unsigned long long>(s.coalesced)),
         StrFormat("%llu/%llu/%llu",
                   static_cast<unsigned long long>(s.sweep_executed),
                   static_cast<unsigned long long>(s.sweep_hits),
                   static_cast<unsigned long long>(s.sweep_coalesced)),
         StrFormat("%llu/%llu",
                   static_cast<unsigned long long>(s.strata_executed),
                   static_cast<unsigned long long>(s.strata_stolen)),
         StrFormat("%llu", static_cast<unsigned long long>(s.scout_warms)),
         StrFormat("%.2f/%.2f", s.sweep_p50_ms, s.sweep_p95_ms),
         StrFormat("%llu", static_cast<unsigned long long>(s.prebuilt_used)),
         StrFormat("%.3f", s.wall_seconds), StrFormat("%.3f", s.span_seconds),
         StrFormat("%.1f", s.throughput_qps), StrFormat("%.3f", s.mean_ms),
         StrFormat("%.3f", s.p50_ms), StrFormat("%.3f", s.p90_ms),
         StrFormat("%.3f", s.p99_ms), StrFormat("%.3f", s.max_ms),
         StrFormat("%.1f%%", s.cache.hit_rate() * 100.0),
         HumanBytes(s.peak_memory_bytes),
         HumanBytes(s.index_memory.total_bytes())});
  }
  return table;
}

}  // namespace relcomp
