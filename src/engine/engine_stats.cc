#include "engine/engine_stats.h"

#include <algorithm>
#include <cmath>

#include "common/format.h"

namespace relcomp {

namespace {
/// Nearest-rank quantile of an ascending-sorted sample: the smallest value
/// with at least ceil(q * n) samples at or below it.
double QuantileMs(const std::vector<double>& sorted_seconds, double q) {
  if (sorted_seconds.empty()) return 0.0;
  const size_t n = sorted_seconds.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank > 0) --rank;
  if (rank >= n) rank = n - 1;
  return sorted_seconds[rank] * 1e3;
}
}  // namespace

void EngineStats::Record(double seconds, size_t peak_memory_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  latencies_seconds_.push_back(seconds);
  if (peak_memory_bytes > peak_memory_bytes_) {
    peak_memory_bytes_ = peak_memory_bytes;
  }
}

void EngineStats::AddWallTime(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  wall_seconds_ += seconds;
}

EngineStatsSnapshot EngineStats::Snapshot(const ResultCache* cache) const {
  std::vector<double> sorted;
  EngineStatsSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted = latencies_seconds_;
    snapshot.wall_seconds = wall_seconds_;
    snapshot.peak_memory_bytes = peak_memory_bytes_;
  }
  std::sort(sorted.begin(), sorted.end());
  snapshot.queries = sorted.size();
  if (snapshot.wall_seconds > 0.0) {
    snapshot.throughput_qps =
        static_cast<double>(snapshot.queries) / snapshot.wall_seconds;
  }
  if (!sorted.empty()) {
    double sum = 0.0;
    for (double s : sorted) sum += s;
    snapshot.mean_ms = sum / static_cast<double>(sorted.size()) * 1e3;
    snapshot.p50_ms = QuantileMs(sorted, 0.50);
    snapshot.p90_ms = QuantileMs(sorted, 0.90);
    snapshot.p99_ms = QuantileMs(sorted, 0.99);
    snapshot.max_ms = sorted.back() * 1e3;
  }
  if (cache != nullptr) snapshot.cache = cache->Stats();
  return snapshot;
}

void EngineStats::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  latencies_seconds_.clear();
  wall_seconds_ = 0.0;
  peak_memory_bytes_ = 0;
}

TextTable EngineStatsTable(
    const std::vector<std::pair<std::string, EngineStatsSnapshot>>& rows) {
  TextTable table({"config", "queries", "wall s", "qps", "mean ms", "p50 ms",
                   "p90 ms", "p99 ms", "max ms", "hit rate", "peak mem"});
  for (const auto& [label, s] : rows) {
    table.AddRow({label, StrFormat("%llu", static_cast<unsigned long long>(s.queries)),
                  StrFormat("%.3f", s.wall_seconds),
                  StrFormat("%.1f", s.throughput_qps),
                  StrFormat("%.3f", s.mean_ms), StrFormat("%.3f", s.p50_ms),
                  StrFormat("%.3f", s.p90_ms), StrFormat("%.3f", s.p99_ms),
                  StrFormat("%.3f", s.max_ms),
                  StrFormat("%.1f%%", s.cache.hit_rate() * 100.0),
                  HumanBytes(s.peak_memory_bytes)});
  }
  return table;
}

}  // namespace relcomp
