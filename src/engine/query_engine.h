#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/cancel.h"
#include "common/timer.h"
#include "engine/engine_stats.h"
#include "engine/generation_prebuilder.h"
#include "engine/result_cache.h"
#include "engine/router.h"
#include "engine/sweep_cache.h"
#include "engine/thread_pool.h"
#include "graph/uncertain_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/store.h"
#include "reliability/estimator_factory.h"
#include "reliability/workload.h"

namespace relcomp {

/// \brief Construction knobs for QueryEngine::Create.
struct EngineOptions {
  /// Worker threads; one estimator replica is built per worker. Replicas of
  /// index-carrying estimators share one immutable index (built once), so
  /// Create cost and index memory are O(1) in num_threads.
  size_t num_threads = 4;
  /// Bounded work-queue depth; Submit() blocks when full (backpressure).
  size_t queue_capacity = 1024;
  /// Which estimator answers the queries. Workload support varies by kind:
  /// every kind answers st; MC and BFS Sharing answer top-k / reliable-set
  /// sweeps; MC and RHH answer distance-constrained queries. An unsupported
  /// (kind, workload) pair fails that query (NotSupported), never the batch.
  EstimatorKind kind = EstimatorKind::kMonteCarlo;
  /// Sample budget K per query.
  uint32_t num_samples = 1000;
  /// Stratified sample partitioning S: the budget K of every MC estimate is
  /// split into S fixed strata, each seeded from the query's content seed
  /// and its stratum index — so a result is a canonical function of (query
  /// content, S), never of thread count or scheduling. Under sweep-level
  /// single-flight, coalesced waiters *steal unclaimed strata* of the
  /// in-flight sweep instead of blocking: one hot sweep uses the whole
  /// machine, bit-identically to running its strata back-to-back on one
  /// worker. S = 1 (the default) is the legacy unstratified path; serving
  /// deployments chasing tail latency set S to a small multiple of
  /// num_threads. Changing S changes MC results (by design — it is part of
  /// the query's sampling plan); BFS Sharing sweeps are stratified by world
  /// slices of one generation and are bit-identical for every S.
  uint32_t num_strata = 1;
  /// Master seed. Per-query seeds are derived from it and the query content
  /// (see README.md), so results are independent of thread count and
  /// scheduling order.
  uint64_t seed = 0;
  /// Result cache on/off + sizing.
  bool enable_cache = true;
  size_t cache_capacity = 1 << 16;
  size_t cache_shards = 8;
  /// Byte budget for the result cache (0 = unlimited): entries are charged
  /// their real payload bytes — a top-k entry carrying k ranked targets
  /// costs ~k× an s-t scalar — and each shard evicts by bytes on top of the
  /// entry capacity. See ResultCache.
  size_t cache_max_bytes = 0;
  /// TTL in seconds for successful cache entries; 0 = never expire. Expired
  /// entries are dropped on the lookup that discovers them and counted in
  /// ResultCacheStats::expired. Content-deterministic answers make expiry
  /// semantically invisible: a recompute returns the identical result.
  double cache_ttl = 0.0;
  /// Failure backoff: estimator errors are cached for this many seconds
  /// (negative caching), so a hot failing key stops recomputing — and
  /// re-failing — on every miss; after the TTL it retries. 0 disables
  /// negative caching. Requires enable_cache.
  double negative_cache_ttl = 1.0;
  /// Single-flight request coalescing: concurrent cache misses for the same
  /// key share one in-flight computation instead of computing twins on
  /// separate workers — at the query level AND at the sweep level (misses
  /// that need the same source's sweep, even across workload kinds and
  /// parameters, share one EstimateFromSource). Semantically invisible
  /// (results are content-deterministic); off only for A/B measurement.
  bool enable_coalescing = true;
  /// Sweep memoization: keep the per-source reliability vector of top-k /
  /// reliable-set queries in a size-aware SweepCache so later queries over
  /// the same source — any k, any eta — derive their answers without
  /// re-running the BFS. Independent of enable_cache (the result cache
  /// memoizes derived answers per exact query; the sweep cache memoizes the
  /// vector they derive from). Semantically invisible: the engine's sweep
  /// seeds depend only on the source, so a derived answer is bit-identical
  /// to a recomputation.
  bool enable_sweep_cache = true;
  /// Byte budget for the sweep cache (one sweep = num_nodes doubles).
  size_t sweep_cache_max_bytes = size_t{128} << 20;
  /// Warm-ahead sweep scouting: RunBatch (and the stream path) sees a
  /// batch's sweep sources up front, so before the queries drain, a scout
  /// pass enqueues stratified warm tasks for the hottest sources (ranked by
  /// batch frequency) — the way prepare seeds already feed the generation
  /// prebuilder. A scout that wins the sweep's single-flight leads the very
  /// sweep the queries would have led (same seed, same strata, stealable by
  /// the queries it outran), so results are bit-identical with scouting on
  /// or off; it only moves the hottest sweeps to the front of the pool.
  /// Effective only with coalescing and the sweep cache on (it needs the
  /// single-flight table and the memo to hand its vector over).
  bool enable_sweep_scout = true;
  /// Most-frequent sources the scout pass warms per batch; a source must
  /// appear at least twice to be worth a scout task.
  uint32_t scout_max_sources = 4;
  /// TTL in seconds on sweep-cache entries published by a scout-led sweep
  /// *no query joined*: a speculative warm that turned out cold expires
  /// instead of pinning sweep-cache bytes until eviction. A real query
  /// joining the flight (or deriving from the entry later — Lookup promotes
  /// on hit) makes the sweep immortal again. 0 = scout warms never expire
  /// (the pre-TTL behavior).
  double scout_warm_ttl = 30.0;
  /// Background generation prebuilding: when the estimator kind supports
  /// prepared generations (BFS Sharing), a builder thread constructs the
  /// next queries' PrepareForNextQuery artifacts (world resampling)
  /// overlapping the previous queries' BFS, and workers adopt them in O(1)
  /// instead of resampling inline on the serving path. Bit-identical on or
  /// off.
  bool enable_generation_prebuild = true;
  /// Bound on queued + ready-but-unclaimed prebuilt generations. NOTE: the
  /// bound is a *count*, and every ready generation holds a full index-sized
  /// artifact (a BFS Sharing generation is the L-bit-per-edge vectors, the
  /// same order as the shared index itself) that is not part of
  /// IndexMemory() — size this knob as "how many spare indexes fit in RAM".
  /// At the bound the oldest ready generation is evicted for a new request;
  /// if all pending work is queued / in-flight, the request is dropped and
  /// the affected query simply resamples inline.
  size_t prebuild_max_pending = 16;
  /// Builder threads fanning the L·m resampling of several distinct prepare
  /// seeds concurrently (each seed still built exactly once, closest to
  /// dispatch first). Clamped to >= 1.
  size_t prebuild_threads = 2;
  /// Byte budget for the prebuilder's ready pool (0 = bounded by count
  /// only): ready generations are charged their real
  /// PreparedGeneration::MemoryBytes() — index-sized for BFS Sharing — and
  /// the oldest are evicted when the pool exceeds the budget. The resident
  /// pool is reported in IndexMemoryReport::prebuilt_bytes.
  size_t prebuild_max_bytes = 0;
  /// \name Fault tolerance & graceful degradation (see README "Failure
  /// semantics & degraded modes")
  /// @{
  /// Deadline in milliseconds applied to every query that does not carry its
  /// own EngineQuery::deadline_ms; 0 = no default deadline. The clock starts
  /// at submission, so queue wait counts against it. An expired query fails
  /// with kDeadlineExceeded — a transient status, never negative-cached —
  /// and cancellation is cooperative and all-or-nothing: a query either
  /// completes with its full bit-identical answer or returns no result at
  /// all, so deadlines never change any completed answer.
  double default_deadline_ms = 0.0;
  /// Admission control on the stream path (Submit): refuse work up front
  /// with kUnavailable (and a retry_after_ms hint in the message) instead of
  /// queueing unboundedly. RunBatch is exempt by design — batches are
  /// trusted pre-validated workloads whose caller already owns their size.
  bool enable_load_shedding = false;
  /// Queue depth at which the predictive gate starts shedding cheap-to-retry
  /// work (queries no cache can serve); 0 = shed only when the queue is
  /// completely full. Cache-servable queries are always admitted — they
  /// resolve in O(1) without a worker.
  size_t shed_queue_depth = 0;
  /// Stale-while-revalidate window in seconds: a TTL-expired cache entry
  /// (result or sweep) whose deadline elapsed less than this long ago is
  /// served immediately — flagged in EngineResult::served_stale — while one
  /// background task recomputes it through the normal single-flight
  /// machinery. 0 (the default) disables SWR: expired entries are recomputed
  /// synchronously, the pre-SWR behavior. Content-determinism makes a stale
  /// entry byte-identical to its recomputation, so SWR trades only metadata
  /// freshness (TTL bookkeeping), never answer correctness.
  double max_stale_seconds = 0.0;
  /// @}
  /// \name Crash-safe persistence (src/persist/) & background refresh lane
  /// (see src/engine/README.md, "Restart semantics")
  /// @{
  /// Directory for the checksummed snapshot + warm-state journal; empty (the
  /// default) disables persistence entirely. With a valid snapshot present,
  /// Create cold-starts in O(1) by mmapping the index sections instead of
  /// rebuilding; a corrupt or mismatched snapshot degrades to
  /// rebuild-from-source (detected, counted, never fatal). Answers are
  /// bit-identical either way: restored artifacts feed the same
  /// content-derived seed machinery as freshly built ones.
  std::string persist_dir;
  /// Replay the warm-state journal into the result and sweep caches at
  /// Create (only with persist_dir set). Replayed entries re-derive their
  /// cache keys from this engine's plans and seeds — a record journaled
  /// under a different configuration is skipped, never served.
  bool warm_restore = true;
  /// Write a snapshot automatically when Create had to rebuild from source
  /// (only with persist_dir set), so the *next* restart cold-starts O(1).
  bool persist_auto_snapshot = true;
  /// Period in seconds of the background warm-state flush (cache exports
  /// appended to the journal, then fsynced); 0 disables the periodic flusher
  /// (FlushWarmState can still be called manually). A final flush always
  /// runs at engine destruction.
  double persist_flush_seconds = 1.0;
  /// Width of the dedicated low-priority refresh lane: an auxiliary pool
  /// (with its own estimator replicas) that runs stale-while-revalidate
  /// refreshes and journal flushes so background work never competes with
  /// serving queries for the main pool. Engaged only when there is
  /// background work to run (max_stale_seconds > 0 or persist_dir set);
  /// 0 falls back to the serving pool (the pre-lane behavior). Queue +
  /// in-flight depth is exported as the `refresh_lane_depth` gauge.
  size_t refresh_lane_threads = 1;
  /// @}
  /// \name Observability (see src/obs/README.md)
  /// Tracing is never part of the determinism contract: answers are
  /// bit-identical with any sample rate, at any thread count.
  /// @{
  /// Fraction of queries whose span trees are published to the trace ring
  /// (deterministic in the query id; 1 traces everything). 0 — the default —
  /// plus slow_query_ms == 0 disengages tracing entirely: the hot path then
  /// allocates nothing and records no spans.
  double trace_sample_rate = 0.0;
  /// Queries slower than this many milliseconds get their span tree
  /// formatted into the tracer's slow-query log, sampled or not. 0 disables
  /// the log.
  double slow_query_ms = 0.0;
  /// Span capacity of the trace ring (rounded up to a power of two).
  size_t trace_ring_capacity = 4096;
  /// @}
  /// \name Adaptive estimator routing (see src/engine/router.h)
  /// @{
  /// Per-query (backend, budget, strata) selection from a calibrated cost
  /// model. Off by default: `false` reproduces the static-knob engine
  /// byte-for-byte (same seeds, same cache keys, same answers). On, every
  /// query's plan comes from EstimatorRouter::Decide — a deterministic
  /// function of the query's content features — and the chosen
  /// (kind, K, S) folds into the query's seed and cache keys exactly as the
  /// static knobs do, so routed answers are bit-identical at any thread
  /// count while the fallback latch stays disengaged.
  bool enable_router = false;
  /// Routing knobs: fallback gate, hysteresis margin, budget floor, strata
  /// ceiling (only consulted when enable_router).
  RouterOptions router;
  /// Calibrated per-backend latency/accuracy profile — the JSON document
  /// `examples/estimator_tournament --json` emits — as a string. Empty: the
  /// router builds RouterModel::Default from each candidate backend's
  /// CostHints. Malformed JSON fails Create.
  std::string router_profile_json;
  /// @}
  /// Estimator construction knobs (index parameters, index seed).
  FactoryOptions factory;
};

/// \brief Outcome of one engine query (any workload kind).
struct EngineResult {
  EngineQuery query;
  /// Per-query outcome. A non-OK status means this query's estimator call
  /// failed (or its workload is unsupported by the engine's estimator
  /// kind); the payload fields are meaningless then. Other queries in the
  /// same batch / stream cycle are unaffected.
  Status status;
  /// Scalar payload for st / distance queries.
  double reliability = 0.0;
  /// Ranked payload for top-k / reliable-set queries (decreasing
  /// reliability, ties toward smaller node ids, source excluded).
  std::vector<ReliableTarget> targets;
  uint32_t num_samples = 0;
  /// The execution plan this query ran under: the static knobs echoed when
  /// the router is off, the routing decision when it is on (plan.routed /
  /// plan.fallback tell which).
  QueryPlan plan;
  /// Seconds from dispatch on a worker to completion (0 for cache hits, which
  /// never reach a worker's estimator; wait time for coalesced queries).
  double seconds = 0.0;
  /// The derived per-query seed actually used.
  uint64_t seed = 0;
  bool cache_hit = false;
  /// True when this query shared an in-flight twin's computation instead of
  /// invoking an estimator itself (single-flight coalescing).
  bool coalesced = false;
  /// True when the answer came from a TTL-expired cache entry served inside
  /// the stale-while-revalidate window (EngineOptions::max_stale_seconds).
  /// The payload is still bit-identical to a fresh recomputation — staleness
  /// is a TTL-policy fact, surfaced so callers can observe degraded mode.
  bool served_stale = false;

  bool ok() const { return status.ok(); }
};

/// \brief Concurrent batch engine for the reliability workload family.
///
/// Executes batches (RunBatch) or a stream (Submit/Drain) of EngineQuerys —
/// s-t reliability, top-k, reliable-set, and distance-constrained queries in
/// one mixed pipeline — on a fixed thread pool. Each worker owns a private
/// estimator replica (Estimator instances are not thread-safe);
/// index-carrying replicas share one immutable index. Every query's seed is
/// derived from the master seed and the query's content (workload tag
/// included) — so a batch returns bit-identical results whether it runs on 1
/// thread or 16, with the cache and coalescing on or off, and engine top-k /
/// reliable-set answers match the standalone TopKReliableTargets* /
/// ReliableSet* APIs exactly. See src/engine/README.md for the contract.
///
/// Thread-safe: concurrent RunBatch/Submit/Drain calls from multiple client
/// threads are safe and share the pool, cache, and cumulative stats.
/// Failures are per-query: each EngineResult carries its own Status, so one
/// estimator failure never discards the rest of a batch or stream cycle.
class QueryEngine {
 public:
  /// Builds the pool and one estimator replica per worker. Index-carrying
  /// kinds build their index exactly once and share it across replicas
  /// (deterministic, so replicas are interchangeable).
  static Result<std::unique_ptr<QueryEngine>> Create(
      const UncertainGraph& graph, const EngineOptions& options);

  ~QueryEngine();
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Executes `queries` (any workload mix) and returns results in input
  /// order. Malformed queries (nodes outside the graph, k = 0, eta outside
  /// [0, 1]) fail the whole batch up front (first error wins) — batches are
  /// meant to be pre-validated workloads. Estimator failures during
  /// execution do NOT fail the batch: they land in the corresponding
  /// EngineResult::status.
  Result<std::vector<EngineResult>> RunBatch(
      const std::vector<EngineQuery>& queries);

  /// s-t convenience: wraps each pair as an EngineQuery (WorkloadKind::kSt).
  Result<std::vector<EngineResult>> RunBatch(
      const std::vector<ReliabilityQuery>& queries);

  /// Stream interface: enqueues one query (blocking while the work queue is
  /// full) for asynchronous execution.
  Status Submit(const EngineQuery& query);
  Status Submit(const ReliabilityQuery& query) {
    return Submit(EngineQuery(query));
  }

  /// Waits for every Submit()ted query to finish and returns their results
  /// in submission order, clearing the stream buffer. Estimator failures
  /// surface in the per-result Status; finished answers are never discarded.
  Result<std::vector<EngineResult>> Drain();

  /// Derived seed for `query` under this engine's configuration; exposed so
  /// callers can reproduce any single engine answer with a bare estimator
  /// (or the standalone top-k / reliable-set / distance APIs).
  ///
  /// Sweep kinds (top-k, reliable-set) get the *sweep seed* of their source
  /// — derived from (source, estimator kind, sample budget) but NOT from k,
  /// eta, or the workload tag — so every sweep-kind query over one source
  /// shares one seed, and therefore one per-source sweep (the sweep-sharing
  /// contract). St / distance seeds fold every query field as before.
  uint64_t QuerySeed(const EngineQuery& query) const;

  /// The per-source sweep seed (see QuerySeed). `SweepSeed(s)` ==
  /// `QuerySeed(q)` for every sweep-kind q with source s.
  uint64_t SweepSeed(NodeId source) const;
  uint64_t QuerySeed(const ReliabilityQuery& query) const {
    return QuerySeed(EngineQuery(query));
  }

  /// Seed the engine passes to Estimator::PrepareForNextQuery before
  /// estimating `query` (a tagged derivative of QuerySeed); with QuerySeed
  /// this fully reproduces an engine answer on a bare estimator.
  uint64_t PrepareSeed(const EngineQuery& query) const;
  uint64_t PrepareSeed(const ReliabilityQuery& query) const {
    return PrepareSeed(EngineQuery(query));
  }

  /// The execution plan `query` runs under. Router off: the static knobs
  /// (kind, num_samples, num_strata) echoed back, plan.routed == false.
  /// Router on: the EstimatorRouter decision — with QuerySeed this fully
  /// reproduces a routed engine answer on a bare estimator of plan.kind.
  /// Sweep-kind queries get their source's SweepPlan (identical for every
  /// k / eta / sweep-workload tag over one source, the sweep-sharing
  /// contract).
  QueryPlan PlanFor(const EngineQuery& query) const;

  /// The per-source sweep plan (see PlanFor). `SweepPlan(s)` ==
  /// `PlanFor(q)` for every sweep-kind q with source s.
  QueryPlan SweepPlan(NodeId source) const;

  const EngineOptions& options() const { return options_; }
  size_t num_threads() const { return pool_->num_threads(); }
  /// nullptr when the cache is disabled.
  const ResultCache* cache() const { return cache_.get(); }
  /// nullptr when sweep memoization is disabled.
  const SweepCache* sweep_cache() const { return sweep_cache_.get(); }
  /// nullptr when the prebuilder is off or the estimator kind has no
  /// prepared-generation support.
  const GenerationPrebuilder* prebuilder() const { return prebuilder_.get(); }
  /// Deduplicated resident index footprint of the replica set (a shared
  /// index is counted once, not once per replica) plus the prebuilder's
  /// ready pool of spare generations (IndexMemoryReport::prebuilt_bytes).
  IndexMemoryReport IndexMemory() const;
  /// Cumulative since construction (RunBatch and stream both feed it).
  EngineStatsSnapshot StatsSnapshot() const;
  void ResetStats() { stats_.Reset(); }

  /// Engine-wide instrument registry: the stats recorder, both caches, the
  /// pool's queue-wait histogram, the stage histograms, and the prebuilder
  /// all record into this one registry, so a single ExportJson() /
  /// ExportText() scrape reports everything the engine measures.
  obs::MetricsRegistry& metrics() const { return *registry_; }

  /// Per-query tracing sink: the span ring (trace_sample_rate) and the
  /// slow-query log (slow_query_ms).
  obs::Tracer& tracer() const { return *tracer_; }

  /// The adaptive router; nullptr when enable_router is false.
  const EstimatorRouter* router() const { return router_.get(); }

  /// \name Crash-safe persistence (EngineOptions::persist_dir)
  /// @{
  /// What Create recovered at startup; all-false/zero when persistence is
  /// off. `snapshot_restored` means the index artifacts came from the mmap'd
  /// snapshot (O(1) cold start) instead of a rebuild.
  struct WarmRestoreReport {
    bool attempted = false;         ///< persist_dir set and warm_restore on
    bool snapshot_restored = false; ///< indexes restored from the snapshot
    bool torn_tail = false;         ///< journal ended in a torn frame
    uint64_t sweep_entries = 0;     ///< sweeps folded back into the cache
    uint64_t result_entries = 0;    ///< results folded back into the cache
    uint64_t skipped = 0;           ///< records for a different config/seed
  };
  const WarmRestoreReport& warm_restore_report() const { return warm_report_; }

  /// Writes and atomically publishes a snapshot of the graph plus the
  /// current shared index (if the estimator kind carries one).
  /// FailedPrecondition without persist_dir.
  Status PersistSnapshot();

  /// Exports the warm caches into the journal and fsyncs it — the operation
  /// the background flusher runs every persist_flush_seconds. Idempotent
  /// per entry (already-journaled keys are skipped). FailedPrecondition
  /// without persist_dir.
  Status FlushWarmState();

  /// nullptr when persistence is off.
  const PersistentStore* persist_store() const { return store_.get(); }
  /// @}

 private:
  /// One routing candidate's replica set: every candidate kind gets one
  /// replica per worker, exactly like the primary set (index-carrying kinds
  /// share one index across their set).
  struct CandidateReplicas {
    EstimatorKind kind;
    std::vector<std::unique_ptr<Estimator>> replicas;
  };

  /// `registry` and `store` are created in Create (the store needs the
  /// registry for its recovery counters *before* replicas exist, so the
  /// snapshot restore they feed into is counted).
  QueryEngine(const UncertainGraph& graph, EngineOptions options,
              std::unique_ptr<obs::MetricsRegistry> registry,
              std::unique_ptr<PersistentStore> store,
              std::vector<std::unique_ptr<Estimator>> replicas,
              std::vector<CandidateReplicas> extra_replicas);

  /// Per-call completion state, shared only by that call's worker tasks:
  /// each call waits on its own counter instead of global pool idleness (so
  /// one client's endless stream cannot stall another's batch).
  struct CallState {
    std::mutex mutex;
    std::condition_variable done;
    size_t pending = 0;  ///< tasks submitted but not yet finished
  };

  /// One single-flight computation in progress: the first worker to miss the
  /// cache for a key becomes the leader and computes; concurrent misses for
  /// the same key wait here and copy the leader's outcome.
  struct InFlight {
    std::mutex mutex;
    std::condition_variable done;
    bool ready = false;
    ResultCacheValue value;  ///< carries the Status (negative on failure)
  };

  /// One sweep-level single-flight, reworked into a *stratum scheduler*:
  /// the first worker to need a source's sweep becomes the leader, but the
  /// sweep's S strata are a shared work-list — workers needing the same
  /// sweep under *different* query keys (other k, other eta, other workload
  /// kind) steal unclaimed strata instead of blocking on the leader. Each
  /// stratum is a canonical function of (sweep seed, stratum index), so the
  /// merged vector is bit-identical however the strata were distributed.
  /// Per-stratum hit-count vectors merge deterministically in stratum order
  /// once every stratum has deposited.
  struct SweepFlight {
    std::mutex mutex;
    std::condition_variable done;
    /// Strata of this sweep (fixed at creation: the sweep plan's num_strata
    /// when the estimator has a stratified core, else 1).
    uint32_t num_strata = 1;
    /// The sweep plan's total budget K (fixed at creation; the merge
    /// divisor). Every participant reached this flight through the same
    /// plan-derived key, so the plan knobs are flight invariants.
    uint32_t num_samples = 0;
    /// True while only the warm-ahead scout leads this flight (no query has
    /// joined): the publish then carries the scout-warm TTL, so a sweep no
    /// query ever wanted cannot pin sweep-cache bytes indefinitely. Cleared
    /// the moment a query joins or steals (relaxed atomic: set/cleared under
    /// the rendezvous lock, read once by the finalizer).
    std::atomic<bool> scout_only{false};
    /// True when the estimator has no stratified core: the single "stratum"
    /// runs the whole EstimateFromSource into `whole`.
    bool whole_sweep = false;
    uint32_t next_stratum = 0;  ///< next unclaimed stratum
    uint32_t active = 0;        ///< claimed but not yet deposited
    uint32_t completed = 0;     ///< deposited strata (ok or failed)
    bool finalizing = false;    ///< one participant merges and publishes
    Timer timer;                ///< leader start -> publish (sweep latency)
    /// Per-stratum hit counts, deposited by whichever worker ran each.
    std::vector<std::vector<uint32_t>> stratum_hits;
    /// Whole-sweep result for the no-stratified-core fallback.
    std::shared_ptr<const std::vector<double>> whole;
    /// Read-only snapshot of the first preparer's prepared state
    /// (ShareCurrentPreparedState), when the estimator supports it:
    /// later-arriving thieves adopt it in O(1) instead of re-running the
    /// same O(L·m) prepare on their own replica.
    std::shared_ptr<const PreparedGeneration> prepared_state;
    Status status;  ///< first stratum / prepare failure wins
    size_t peak_memory_bytes = 0;
    bool ready = false;
    std::shared_ptr<const std::vector<double>> vector;
  };

  /// How a worker obtained a per-source sweep vector.
  struct SweepShare {
    std::shared_ptr<const std::vector<double>> vector;
    /// The sweep's tracked working-set peak (max over every participant's
    /// strata) for flight participants — leaders and joiners alike, so the
    /// sweep's footprint is attributed to its queries even when the
    /// warm-ahead scout led it. 0 for SweepCache hits.
    size_t peak_memory_bytes = 0;
    /// The vector came from a TTL-expired SweepCache entry served inside the
    /// stale window (stale-while-revalidate).
    bool stale = false;
  };

  /// Executes one query on `worker_id`'s replica (or serves it from cache /
  /// an in-flight twin), writing outcome and per-query status into `slot`.
  /// `enqueue_ns` is the Submit-time stamp (the root span's begin and the
  /// queue-wait span's extent when the query is traced).
  ///
  /// The `trace` / parent-span parameters threaded through the methods below
  /// are nullptr / kNone for untraced queries; every span call no-ops then.
  void RunOne(size_t worker_id, const EngineQuery& query, EngineResult* slot,
              uint64_t enqueue_ns);

  /// Compute path of one query (after the cache / query-level flight said
  /// miss): sweep kinds go through the sweep-sharing layer, everything else
  /// through PrepareReplica + DispatchWorkload.
  /// `cancel` (nullable) is the query's deadline/cancellation token, polled
  /// cooperatively by the estimator loops and the flight machinery below.
  Result<WorkloadResult> ComputeWorkload(size_t worker_id,
                                         const EngineQuery& query,
                                         const QueryPlan& plan,
                                         uint64_t query_seed,
                                         const CancelToken* cancel,
                                         obs::TraceBuffer* trace,
                                         uint32_t parent);

  /// Obtains `query.source`'s sweep vector: from the SweepCache, by joining
  /// a sweep-level flight (stealing unclaimed strata, then waiting for the
  /// merge), or by leading one — publishing to the SweepCache and the
  /// flight's participants. Records exactly one of sweep_hit /
  /// sweep_coalesced / sweep_executed per call.
  Result<SweepShare> GetSweepVector(size_t worker_id, const EngineQuery& query,
                                    const QueryPlan& plan, uint64_t sweep_seed,
                                    const CancelToken* cancel,
                                    obs::TraceBuffer* trace, uint32_t parent);

  /// Participates in `flight`: claims and executes unclaimed strata on this
  /// worker's replica (preparing it once, on the first claim), deposits
  /// their hit counts, and — if this worker drains the last stratum —
  /// merges in stratum order, publishes to the SweepCache, retires the
  /// flight entry, and wakes everyone. `leader` controls the strata_stolen
  /// accounting.
  ///
  /// Cancellation (`cancel` non-null and tripped) has two deterministic
  /// shapes, decided under the flight lock:
  /// - other participants are still executing (or all strata are claimed):
  ///   this participant *abandons* — returns its token's transient status
  ///   without waiting; the flight lives on and completes normally for
  ///   everyone else.
  /// - this participant is the last active one and unclaimed strata remain:
  ///   without it the flight could stall on waiters with no workers, so it
  ///   fails the flight *as a unit* (flight->status = the token's status)
  ///   and drains it through the normal finalize path — every waiter wakes
  ///   with the same transient status, no torn vector is ever published.
  /// OK means the flight reached `ready` (flight->status tells how it
  /// ended); non-OK is the abandoning participant's own transient status.
  Status RunSweepFlight(size_t worker_id, NodeId source, const QueryPlan& plan,
                        uint64_t sweep_seed, const SweepCacheKey& key,
                        const std::shared_ptr<SweepFlight>& flight, bool leader,
                        const CancelToken* cancel, obs::TraceBuffer* trace,
                        uint32_t parent);

  /// Serial sweep for the coalescing-off path: one EstimateFromSource with
  /// the engine's stratum count (bit-identical to a stolen-strata merge).
  Result<SweepShare> ComputeSweepSerial(size_t worker_id,
                                        const EngineQuery& query,
                                        const QueryPlan& plan,
                                        uint64_t sweep_seed,
                                        const SweepCacheKey& key,
                                        const CancelToken* cancel,
                                        obs::TraceBuffer* trace,
                                        uint32_t parent);

  /// Single-flight rendezvous for `key` under sweep_inflight_mutex_:
  /// re-probes the SweepCache (publish-then-retire makes this exact),
  /// then joins the existing flight or creates-and-initializes a fresh one.
  /// Returns nullptr when the double-check served the sweep (`*cached`
  /// holds the vector); otherwise the flight, with `*leader` true iff this
  /// caller created it. Shared by the query path and the scout pass so the
  /// two can never drift in flight setup. `scout` marks a warm-ahead
  /// creation (flight starts scout_only, its publish carries the warm TTL);
  /// a non-scout join clears the mark. With stale-while-revalidate on, the
  /// double-check serves stale entries to queries (`*stale` / `*refresh_owner`
  /// report the episode, both nullable) — but never to the scout, which came
  /// precisely to lead the flight that replaces the stale entry.
  std::shared_ptr<SweepFlight> JoinOrCreateSweepFlight(
      size_t worker_id, const QueryPlan& plan, const SweepCacheKey& key,
      bool scout, bool* leader,
      std::shared_ptr<const std::vector<double>>* cached,
      bool* stale = nullptr, bool* refresh_owner = nullptr);

  /// Warm-ahead scout task for `source`: if its sweep is neither memoized
  /// nor in flight, leads a stratified sweep through the same single-flight
  /// protocol queries use (the queries it outran steal its strata / derive
  /// from its vector). Best-effort and semantically invisible.
  void ScoutSweep(size_t worker_id, NodeId source);

  /// True when scout warm tasks make sense under the current configuration.
  /// `sweep_capable_` already accounts for routing: a router may plan sweeps
  /// onto a candidate kind even when the static kind cannot run them.
  bool ScoutingEnabled() const {
    return options_.enable_sweep_scout && options_.enable_coalescing &&
           sweep_cache_ != nullptr && sweep_capable_;
  }

  /// Seed derivation under an explicit plan: plan.kind / plan.num_samples
  /// fold in the exact positions the static knobs occupy today, and
  /// plan.num_strata folds additionally — but only when the router is on,
  /// so enable_router == false reproduces the static seeds byte-for-byte.
  uint64_t SeedForPlan(const EngineQuery& query, const QueryPlan& plan) const;
  uint64_t SweepSeedForPlan(NodeId source, const QueryPlan& plan) const;

  /// The `worker_id` replica of `kind`: the primary set when kind matches
  /// the engine's static kind, the candidate set otherwise. The router only
  /// ever decides kinds a replica set exists for.
  Estimator& ReplicaFor(EstimatorKind kind, size_t worker_id);

  /// Builds router_ and escape_prob_ when enable_router (called from Create
  /// right after construction; a malformed router_profile_json fails engine
  /// creation). No-op when the router is off.
  Status InitRouter();

  /// Enqueues scout warm tasks for the most frequent sweep sources of
  /// `queries` (frequency >= 2, capped at scout_max_sources), ahead of the
  /// batch's own tasks in the pool's FIFO.
  void ScoutBatch(const std::vector<EngineQuery>& queries);

  /// Re-arms `estimator` for a query with `prepare_seed`: adopts a prebuilt
  /// generation when the background prebuilder has one ready, falls back to
  /// the inline PrepareForNextQuery otherwise (bit-identical either way).
  Status PrepareReplica(Estimator& estimator, uint64_t prepare_seed);

  /// Hands `query`'s prepare seed to the background builder — unless the
  /// result cache will serve the query anyway (prebuilder_ must be
  /// non-null).
  void RequestPrebuild(const EngineQuery& query);

  /// Cache lookup + single-flight rendezvous for `key`. Returns true when
  /// `slot` was fully served (cache hit — positive or negative — or
  /// coalesced); otherwise the caller is the leader (or coalescing is off)
  /// and must compute, then call FinishFlight with the outcome.
  /// `cancel` (nullable) bounds the coalesced-follower wait: a follower
  /// whose token trips stops waiting and fails with the token's transient
  /// status (counted as a failure, not coalesced); the flight completes
  /// normally for everyone else.
  bool TryServeWithoutCompute(const ResultCacheKey& key, EngineResult* slot,
                              std::shared_ptr<InFlight>* leader_flight,
                              const CancelToken* cancel,
                              obs::TraceBuffer* trace, uint32_t parent);

  /// Load-shedding admission gate for the stream path (Submit): OK admits;
  /// kUnavailable (with a retry_after_ms hint) sheds. Shed queries never
  /// enter the engine, so they are invisible to the query-partition
  /// invariant (executed + coalesced + failures + cache hits == queries).
  Status AdmitQuery(const EngineQuery& query);

  /// True when `query` will resolve from the result or sweep cache without
  /// occupying a worker — such queries are always admitted under overload.
  bool ServableFromCache(const EngineQuery& query) const;

  /// Kicks off the background stale-while-revalidate recompute this caller
  /// owns (LookupStale handed it refresh_owner). Best-effort: a full pool
  /// re-arms the entry instead (ClearRefreshPending). The refresh records
  /// nothing into per-query stats — no query is behind it — mirroring how
  /// scout warms stay outside the query partition.
  void ScheduleResultRefresh(const ResultCacheKey& key);
  void ScheduleSweepRefresh(const SweepCacheKey& key, NodeId source);

  /// Width of the auxiliary refresh lane this configuration runs (0 = no
  /// lane; refreshes fall back to the serving pool).
  size_t RefreshLaneWidth() const;

  /// Routes a background task onto the refresh lane when one exists (the
  /// task then runs with an aux-replica worker id, num_threads + lane slot,
  /// and moves the refresh_lane_depth gauge), else TrySubmits to the serving
  /// pool — the pre-lane behavior.
  Status SubmitRefreshTask(ThreadPool::Task task);

  /// Periodic flusher body: sleeps persist_flush_seconds between
  /// FlushWarmState rounds (routed through the refresh lane) until shutdown.
  void FlusherLoop();

  /// Replays the warm journal into the caches (Create-time, after the
  /// router exists — restored keys re-derive from this engine's plans).
  void RestoreWarmState();

  /// Publishes the leader's outcome: inserts into the cache (successes under
  /// cache_ttl, failures under negative_cache_ttl when enabled), removes the
  /// in-flight entry, and wakes the waiters.
  void FinishFlight(const ResultCacheKey& key,
                    const std::shared_ptr<InFlight>& flight,
                    const ResultCacheValue& value);

  /// Cache insertion policy shared by the leader and non-coalescing paths.
  void PublishToCache(const ResultCacheKey& key, const ResultCacheValue& value);

  /// Moves a cached / in-flight payload (and its status) into `slot`. Pass
  /// a copy when the source is shared (a flight value read by many
  /// followers); pass an expiring lookup result to skip the targets copy.
  static void FillFromValue(ResultCacheValue value, EngineResult* slot);

  /// Blocks until every task accounted to `state` has finished.
  static void AwaitCall(CallState& state);

  const UncertainGraph& graph_;
  const EngineOptions options_;
  /// Declared before every component that records into it (stats, caches,
  /// pool, prebuilder), so it is destroyed last: workers may still record
  /// while the pool drains during shutdown.
  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<obs::Tracer> tracer_;
  /// Crash-safe persistence root; nullptr when persist_dir is empty.
  /// Declared right after the registry (its counters) and before everything
  /// that may journal into it during shutdown.
  std::unique_ptr<PersistentStore> store_;
  std::vector<std::unique_ptr<Estimator>> replicas_;
  /// Routing candidates beyond the static kind (empty when the router is
  /// off): one replica set per candidate kind, same per-worker discipline as
  /// replicas_.
  std::vector<CandidateReplicas> extra_replicas_;
  /// nullptr when enable_router is false.
  std::unique_ptr<EstimatorRouter> router_;
  /// Escape probability eps(s) per node (see QueryFeatures::escape_prob),
  /// precomputed once at construction; empty when the router is off.
  std::vector<double> escape_prob_;
  /// Some replica set (primary or candidate) answers source sweeps.
  bool sweep_capable_ = false;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<ThreadPool> pool_;
  /// Dedicated low-priority refresh lane (SWR refreshes, journal flushes);
  /// nullptr when RefreshLaneWidth() == 0. Its workers run on the aux
  /// replicas replicas_[num_threads ..], never the serving replicas.
  std::unique_ptr<ThreadPool> aux_pool_;
  /// Queued + in-flight refresh-lane tasks (`refresh_lane_depth`).
  obs::Gauge* refresh_lane_depth_ = nullptr;
  EngineStats stats_;

  /// Always-on stage latency histograms, one labeled family
  /// (engine_stage_latency_ns{stage=...}); the queue_wait member of the
  /// family is recorded inside the pool.
  obs::Histogram* stage_cache_probe_;
  obs::Histogram* stage_prepare_;
  obs::Histogram* stage_stratum_;
  obs::Histogram* stage_merge_;
  obs::Histogram* stage_publish_;
  obs::Histogram* stage_derive_;
  obs::Histogram* stage_sweep_wait_;

  struct KeyHash {
    size_t operator()(const ResultCacheKey& key) const {
      return static_cast<size_t>(key.Hash());
    }
  };

  /// Single-flight table: full cache key -> in-flight computation (full key,
  /// not hash — hash collisions must never coalesce distinct queries).
  /// Guarded by inflight_mutex_; entries exist only while a leader computes.
  std::mutex inflight_mutex_;
  std::unordered_map<ResultCacheKey, std::shared_ptr<InFlight>, KeyHash>
      inflight_;

  struct SweepKeyHash {
    size_t operator()(const SweepCacheKey& key) const {
      return static_cast<size_t>(key.Hash());
    }
  };

  /// Sweep-level single-flight table, same invariants as inflight_: entries
  /// exist only while at least one participant actively runs the sweep's
  /// strata on a worker, so a waiter never waits on queued-but-unstarted
  /// work. A query-level leader may wait on (or steal strata of) a sweep
  /// flight, never the other way around — the wait graph is a depth-2 DAG,
  /// no cycles.
  std::mutex sweep_inflight_mutex_;
  std::unordered_map<SweepCacheKey, std::shared_ptr<SweepFlight>, SweepKeyHash>
      sweep_inflight_;

  /// Memoized per-source sweeps; nullptr when disabled.
  std::unique_ptr<SweepCache> sweep_cache_;
  /// Background generation builder; nullptr when off / unsupported. Declared
  /// after replicas_ so it is destroyed (thread joined) before they are.
  std::unique_ptr<GenerationPrebuilder> prebuilder_;

  /// \name Warm-state journaling (guarded by journal_mutex_)
  /// @{
  std::mutex journal_mutex_;
  /// Key hashes already appended to the journal this process lifetime —
  /// the journal is append-only, so each warm entry is journaled once (a
  /// later re-insert with a fresher TTL keeps its first-journaled TTL,
  /// which can only shorten its restored life — conservative by design).
  std::unordered_set<uint64_t> journaled_sweeps_;
  std::unordered_set<uint64_t> journaled_results_;
  WarmRestoreReport warm_report_;
  /// Periodic flusher thread (persist_flush_seconds); stopped first in the
  /// destructor, before either pool shuts down.
  std::thread flusher_;
  std::mutex flusher_mutex_;
  std::condition_variable flusher_cv_;
  bool flusher_stop_ = false;
  /// @}

  std::mutex stream_mutex_;
  std::vector<std::unique_ptr<EngineResult>> stream_results_;
  std::shared_ptr<CallState> stream_state_;
  Timer stream_timer_;  ///< restarted on the first Submit of a stream cycle
  /// Per-stream-cycle sweep-source frequencies (guarded by stream_mutex_,
  /// cleared on Drain): the second submission of a source in one cycle
  /// triggers a scout warm task ahead of that query.
  std::unordered_map<NodeId, uint32_t> stream_sweep_counts_;
};

}  // namespace relcomp
