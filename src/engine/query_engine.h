#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/timer.h"
#include "engine/engine_stats.h"
#include "engine/result_cache.h"
#include "engine/thread_pool.h"
#include "graph/uncertain_graph.h"
#include "reliability/estimator_factory.h"

namespace relcomp {

/// \brief Construction knobs for QueryEngine::Create.
struct EngineOptions {
  /// Worker threads; one estimator replica is built per worker.
  size_t num_threads = 4;
  /// Bounded work-queue depth; Submit() blocks when full (backpressure).
  size_t queue_capacity = 1024;
  /// Which estimator answers the queries.
  EstimatorKind kind = EstimatorKind::kMonteCarlo;
  /// Sample budget K per query.
  uint32_t num_samples = 1000;
  /// Master seed. Per-query seeds are derived from it and the query content
  /// (see README.md), so results are independent of thread count and
  /// scheduling order.
  uint64_t seed = 0;
  /// Result cache on/off + sizing.
  bool enable_cache = true;
  size_t cache_capacity = 1 << 16;
  size_t cache_shards = 8;
  /// Estimator construction knobs (index parameters, index seed).
  FactoryOptions factory;
};

/// \brief Outcome of one engine query.
struct EngineResult {
  ReliabilityQuery query;
  double reliability = 0.0;
  uint32_t num_samples = 0;
  /// Seconds from dispatch on a worker to completion (0 for cache hits, which
  /// never reach a worker's estimator).
  double seconds = 0.0;
  /// The derived per-query seed actually used.
  uint64_t seed = 0;
  bool cache_hit = false;
};

/// \brief Concurrent batch reliability query engine.
///
/// Executes batches (RunBatch) or a stream (Submit/Drain) of s-t reliability
/// queries on a fixed thread pool. Each worker owns a private estimator
/// replica (Estimator instances are not thread-safe), and every query's seed
/// is derived from the master seed and the query's content — so a batch
/// returns bit-identical results whether it runs on 1 thread or 16, with the
/// cache on or off. See src/engine/README.md for the contract.
///
/// Thread-safe: concurrent RunBatch/Submit/Drain calls from multiple client
/// threads are safe and share the pool, cache, and cumulative stats. Each
/// RunBatch reports only its own errors; stream errors surface at the next
/// Drain.
class QueryEngine {
 public:
  /// Builds the pool and one estimator replica per worker (index built per
  /// replica; deterministic, so replicas are interchangeable).
  static Result<std::unique_ptr<QueryEngine>> Create(
      const UncertainGraph& graph, const EngineOptions& options);

  ~QueryEngine();
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Executes `queries` and returns results in input order. Invalid queries
  /// fail the whole batch (first error wins) — batches are meant to be
  /// pre-validated workloads.
  Result<std::vector<EngineResult>> RunBatch(
      const std::vector<ReliabilityQuery>& queries);

  /// Stream interface: enqueues one query (blocking while the work queue is
  /// full) for asynchronous execution.
  Status Submit(const ReliabilityQuery& query);

  /// Waits for every Submit()ted query to finish and returns their results
  /// in submission order, clearing the stream buffer. Mirrors RunBatch error
  /// semantics: if any query in the cycle hit an estimator failure, the
  /// first error is returned and the cycle's results are discarded
  /// (per-query status reporting is a ROADMAP item).
  Result<std::vector<EngineResult>> Drain();

  /// Derived seed for `query` under this engine's configuration; exposed so
  /// callers can reproduce any single engine answer with a bare estimator.
  uint64_t QuerySeed(const ReliabilityQuery& query) const;

  const EngineOptions& options() const { return options_; }
  size_t num_threads() const { return pool_->num_threads(); }
  /// nullptr when the cache is disabled.
  const ResultCache* cache() const { return cache_.get(); }
  /// Cumulative since construction (RunBatch and stream both feed it).
  EngineStatsSnapshot StatsSnapshot() const {
    return stats_.Snapshot(cache_.get());
  }
  void ResetStats() { stats_.Reset(); }

 private:
  QueryEngine(const UncertainGraph& graph, EngineOptions options,
              std::vector<std::unique_ptr<Estimator>> replicas);

  /// Per-call completion and error state, shared only by that call's worker
  /// tasks: concurrent batches cannot clobber each other's errors, and each
  /// call waits on its own counter instead of global pool idleness (so one
  /// client's endless stream cannot stall another's batch).
  struct CallState {
    std::mutex mutex;
    std::condition_variable done;
    size_t pending = 0;  ///< tasks submitted but not yet finished
    Status first_error;
  };

  /// Executes one query on `worker_id`'s replica (or serves it from cache),
  /// writing into `slot`; failures land in `state` (first one wins).
  /// Decrements `state->pending` and signals when it reaches zero.
  void RunOne(size_t worker_id, const ReliabilityQuery& query,
              EngineResult* slot, CallState* state);

  /// Blocks until every task accounted to `state` has finished.
  static void AwaitCall(CallState& state);

  const UncertainGraph& graph_;
  const EngineOptions options_;
  std::vector<std::unique_ptr<Estimator>> replicas_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<ThreadPool> pool_;
  EngineStats stats_;

  std::mutex stream_mutex_;
  std::vector<std::unique_ptr<EngineResult>> stream_results_;
  std::shared_ptr<CallState> stream_state_;
  Timer stream_timer_;  ///< restarted on the first Submit of a stream cycle
};

}  // namespace relcomp
