#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace relcomp {

/// \brief Fixed-size worker pool with a bounded FIFO work queue.
///
/// Tasks receive the id of the worker running them (0 .. num_threads-1) so
/// callers can keep per-worker state — the QueryEngine uses this to route
/// each task to that worker's private estimator replica, honoring the
/// "one estimator instance per thread" contract of Estimator.
///
/// Submit() applies backpressure: it blocks while the queue holds
/// `queue_capacity` pending tasks, so an unbounded producer cannot exhaust
/// memory. Wait() blocks until the queue is empty *and* every worker is idle.
class ThreadPool {
 public:
  using Task = std::function<void(size_t worker_id)>;

  /// Spawns `num_threads` workers (clamped to >= 1). `queue_wait` (optional,
  /// not owned, must outlive the pool) receives each task's enqueue-to-
  /// dequeue wait in nanoseconds — the engine wires it to
  /// engine_stage_latency_ns{stage="queue_wait"}.
  ThreadPool(size_t num_threads, size_t queue_capacity = 1024,
             obs::Histogram* queue_wait = nullptr);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; blocks while the queue is full. Returns
  /// FailedPrecondition after Shutdown().
  Status Submit(Task task);

  /// Non-blocking Submit: returns Unavailable instead of waiting when the
  /// queue is full. For best-effort work (the engine's scout warms) that
  /// must never add backpressure latency to the submitting path.
  Status TrySubmit(Task task);

  /// Blocks until all submitted tasks have finished.
  void Wait();

  /// Stops accepting tasks, drains the queue, and joins the workers.
  /// Idempotent; also called by the destructor.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }
  size_t queue_capacity() const { return queue_capacity_; }

  /// Tasks currently queued (not yet picked up by a worker). A point-in-time
  /// reading for admission control: the engine's load-shedding gate compares
  /// it against its shed threshold before enqueuing more work.
  size_t queue_depth() const;

 private:
  /// Task plus its Submit() timestamp, so dequeue can record queue wait.
  struct QueuedTask {
    Task task;
    uint64_t enqueue_ns = 0;
  };

  void WorkerLoop(size_t worker_id);

  const size_t queue_capacity_;
  obs::Histogram* const queue_wait_;  ///< may be nullptr (no recording)
  mutable std::mutex mutex_;
  std::condition_variable task_ready_;   ///< queue gained a task / shutdown
  std::condition_variable space_ready_;  ///< queue lost a task
  std::condition_variable all_idle_;     ///< queue empty and no task running
  std::deque<QueuedTask> queue_;
  size_t active_workers_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace relcomp
