#include "engine/sweep_cache.h"

#include <utility>

#include "common/fault_injection.h"
#include "common/rng.h"

namespace relcomp {

uint64_t SweepCacheKey::Hash() const {
  uint64_t h = HashCombineSeed(seed, static_cast<uint64_t>(kind));
  h = HashCombineSeed(h, source);
  h = HashCombineSeed(h, num_samples);
  return h;
}

SweepCache::SweepCache(size_t max_bytes, obs::MetricsRegistry* registry)
    : max_bytes_(max_bytes == 0 ? 1 : max_bytes) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  hits_ = registry->GetCounter("sweep_cache_hits_total");
  misses_ = registry->GetCounter("sweep_cache_misses_total");
  insertions_ = registry->GetCounter("sweep_cache_insertions_total");
  evictions_ = registry->GetCounter("sweep_cache_evictions_total");
  rejected_ = registry->GetCounter("sweep_cache_rejected_total");
  expired_ = registry->GetCounter("sweep_cache_expired_total");
  stale_served_ =
      registry->GetCounter("cache_stale_served_total", "cache", "sweep");
  bytes_gauge_ = registry->GetGauge("sweep_cache_bytes");
  entries_gauge_ = registry->GetGauge("sweep_cache_entries");
}

void SweepCache::SyncGaugesLocked() {
  bytes_gauge_->Set(static_cast<double>(bytes_in_use_));
  entries_gauge_->Set(static_cast<double>(lru_.size()));
}

std::shared_ptr<const std::vector<double>> SweepCache::Lookup(
    const SweepCacheKey& key, bool record_stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    if (record_stats) misses_->Inc();
    return nullptr;
  }
  if (it->second->expires && StopwatchNs::Now() >= it->second->deadline_ns) {
    // Lazy reaping: the warm's deadline passed with no consumer — drop it on
    // the lookup that discovered that, and report a miss.
    bytes_in_use_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
    expired_->Inc();
    if (record_stats) misses_->Inc();
    SyncGaugesLocked();
    return nullptr;
  }
  // Promote-on-hit: a consumer proved the warm was wanted, so the entry
  // graduates to the normal immortal LRU regime.
  it->second->expires = false;
  lru_.splice(lru_.begin(), lru_, it->second);
  if (record_stats) hits_->Inc();
  return it->second->sweep;
}

StaleSweepLookup SweepCache::LookupStale(const SweepCacheKey& key,
                                         double max_stale_seconds,
                                         bool record_stats) {
  StaleSweepLookup result;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    if (record_stats) misses_->Inc();
    return result;
  }
  Entry& entry = *it->second;
  if (entry.expires && StopwatchNs::Now() >= entry.deadline_ns) {
    const uint64_t stale_deadline_ns =
        entry.deadline_ns +
        static_cast<uint64_t>(max_stale_seconds > 0.0 ? max_stale_seconds * 1e9
                                                      : 0.0);
    if (max_stale_seconds <= 0.0 || StopwatchNs::Now() >= stale_deadline_ns) {
      // Past the stale window: reap, exactly as Lookup() would.
      bytes_in_use_ -= entry.bytes;
      lru_.erase(it->second);
      index_.erase(it);
      expired_->Inc();
      if (record_stats) misses_->Inc();
      SyncGaugesLocked();
      return result;
    }
    // Serve stale without promotion — the entry stays expired so the owned
    // re-warm's Insert supersedes it rather than racing a promoted twin.
    result.stale = true;
    if (!entry.refresh_pending) {
      entry.refresh_pending = true;
      result.refresh_owner = true;
    }
    stale_served_->Inc();
  } else {
    // Live entry: promote-on-hit, as in Lookup().
    entry.expires = false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  if (record_stats) hits_->Inc();
  result.sweep = entry.sweep;
  return result;
}

void SweepCache::ClearRefreshPending(const SweepCacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) it->second->refresh_pending = false;
}

bool SweepCache::Contains(const SweepCacheKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  // An expired warm is already absent semantically; the next Lookup reaps it
  // (Contains is const and must stay a pure probe).
  return !(it->second->expires && StopwatchNs::Now() >= it->second->deadline_ns);
}

void SweepCache::Insert(const SweepCacheKey& key,
                        std::shared_ptr<const std::vector<double>> sweep,
                        double ttl_seconds) {
  if (sweep == nullptr) return;
  if (FaultInjector::Global().enabled() &&
      FaultInjector::Global().ShouldInject(FaultSite::kAllocFailure,
                                           key.Hash())) {
    // Injected allocation failure: dropping an insert is always legal (any
    // entry may be rejected or evicted), so answers must be unaffected.
    return;
  }
  const size_t bytes = SweepBytes(*sweep);
  if (bytes > max_bytes_) {
    // Oversized: admitting it would flush the whole cache for one entry.
    rejected_->Inc();
    return;
  }
  const bool expires = ttl_seconds > 0.0;
  const uint64_t deadline_ns =
      expires ? StopwatchNs::Now() + static_cast<uint64_t>(ttl_seconds * 1e9)
              : 0;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_in_use_ -= it->second->bytes;
    it->second->sweep = std::move(sweep);
    it->second->bytes = bytes;
    it->second->expires = expires;
    it->second->deadline_ns = deadline_ns;
    it->second->refresh_pending = false;  // re-warm landed; re-arm SWR
    bytes_in_use_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(sweep), bytes, expires, deadline_ns});
    index_.emplace(key, lru_.begin());
    bytes_in_use_ += bytes;
    insertions_->Inc();
  }
  // Evict LRU sweeps until the budget holds (never the one just touched:
  // bytes <= max_bytes_ guarantees the loop stops at size 1 at the latest).
  while (bytes_in_use_ > max_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_in_use_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    evictions_->Inc();
  }
  SyncGaugesLocked();
}

std::vector<SweepCacheExport> SweepCache::ExportEntries() const {
  std::vector<SweepCacheExport> out;
  const uint64_t now_ns = StopwatchNs::Now();
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(lru_.size());
  for (const Entry& entry : lru_) {
    double ttl_seconds = 0.0;
    if (entry.expires) {
      if (now_ns >= entry.deadline_ns) continue;  // dead warm: never journal
      ttl_seconds = static_cast<double>(entry.deadline_ns - now_ns) * 1e-9;
    }
    out.push_back(SweepCacheExport{entry.key, entry.sweep, ttl_seconds});
  }
  return out;
}

void SweepCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_in_use_ = 0;
  SyncGaugesLocked();
}

SweepCacheStats SweepCache::Stats() const {
  SweepCacheStats stats;
  stats.hits = hits_->Value();
  stats.misses = misses_->Value();
  stats.insertions = insertions_->Value();
  stats.evictions = evictions_->Value();
  stats.rejected = rejected_->Value();
  stats.expired = expired_->Value();
  stats.stale_served = stale_served_->Value();
  std::lock_guard<std::mutex> lock(mutex_);
  stats.bytes_in_use = bytes_in_use_;
  stats.entries = lru_.size();
  return stats;
}

size_t SweepCache::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_in_use_;
}

size_t SweepCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace relcomp
