#include "engine/result_cache.h"

#include "common/rng.h"

namespace relcomp {

namespace {
size_t RoundUpToPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

uint64_t ResultCacheKey::Hash() const {
  uint64_t h = HashWorkloadQuery(seed, query);
  h = HashCombineSeed(h, static_cast<uint64_t>(kind));
  h = HashCombineSeed(h, num_samples);
  return h;
}

ResultCache::ResultCache(size_t capacity, size_t num_shards)
    : capacity_(capacity == 0 ? 1 : capacity) {
  num_shards = RoundUpToPowerOfTwo(num_shards == 0 ? 1 : num_shards);
  // No more shards than entries, or some shards could never hold anything.
  while (num_shards > 1 && num_shards > capacity_) num_shards >>= 1;
  shards_.reserve(num_shards);
  const size_t base = capacity_ / num_shards;
  const size_t extra = capacity_ % num_shards;
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < extra ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

std::optional<ResultCacheValue> ResultCache::Lookup(const ResultCacheKey& key,
                                                    bool record_stats) {
  const HashedKey hashed{key, key.Hash()};
  Shard& shard = ShardFor(hashed.hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(hashed);
  if (it == shard.index.end()) {
    if (record_stats) misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (it->second->expires && Clock::now() >= it->second->deadline) {
    // Lazy expiry: the deadline elapsed, so the entry is dead weight — drop
    // it and let the caller recompute (a miss). Expiry is counted even on
    // uncounted probes: the entry really is gone either way.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    expired_.fetch_add(1, std::memory_order_relaxed);
    if (record_stats) misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (record_stats) {
    if (it->second->value.negative()) {
      negative_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      hits_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return it->second->value;
}

void ResultCache::Insert(const ResultCacheKey& key,
                         const ResultCacheValue& value, double ttl_seconds) {
  const HashedKey hashed{key, key.Hash()};
  const bool expires = ttl_seconds > 0.0;
  const Clock::time_point deadline =
      expires ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(ttl_seconds))
              : Clock::time_point();
  Shard& shard = ShardFor(hashed.hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(hashed);
  if (it != shard.index.end()) {
    it->second->value = value;
    it->second->deadline = deadline;
    it->second->expires = expires;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard.capacity) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(Entry{hashed, value, deadline, expires});
  shard.index.emplace(hashed, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.negative_hits = negative_hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  return stats;
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace relcomp
