#include "engine/result_cache.h"

#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/timer.h"

namespace relcomp {

namespace {
size_t RoundUpToPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

uint64_t ResultCacheKey::Hash() const {
  uint64_t h = HashWorkloadQuery(seed, query);
  h = HashCombineSeed(h, static_cast<uint64_t>(kind));
  h = HashCombineSeed(h, num_samples);
  return h;
}

size_t ResultCache::EntryBytes(const ResultCacheValue& value) {
  return sizeof(Entry) + value.targets.size() * sizeof(ReliableTarget) +
         value.status.message().size();
}

ResultCache::ResultCache(size_t capacity, size_t num_shards, size_t max_bytes,
                         obs::MetricsRegistry* registry)
    : capacity_(capacity == 0 ? 1 : capacity), max_bytes_(max_bytes) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  hits_ = registry->GetCounter("result_cache_hits_total");
  negative_hits_ = registry->GetCounter("result_cache_negative_hits_total");
  misses_ = registry->GetCounter("result_cache_misses_total");
  insertions_ = registry->GetCounter("result_cache_insertions_total");
  evictions_ = registry->GetCounter("result_cache_evictions_total");
  expired_ = registry->GetCounter("result_cache_expired_total");
  rejected_ = registry->GetCounter("result_cache_rejected_total");
  stale_served_ = registry->GetCounter("cache_stale_served_total", "cache",
                                       "result");
  bytes_gauge_ = registry->GetGauge("result_cache_bytes");
  num_shards = RoundUpToPowerOfTwo(num_shards == 0 ? 1 : num_shards);
  // No more shards than entries, or some shards could never hold anything.
  while (num_shards > 1 && num_shards > capacity_) num_shards >>= 1;
  shards_.reserve(num_shards);
  const size_t base = capacity_ / num_shards;
  const size_t extra = capacity_ % num_shards;
  const size_t byte_base = max_bytes_ / num_shards;
  const size_t byte_extra = max_bytes_ % num_shards;
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < extra ? 1 : 0);
    if (max_bytes_ > 0) {
      shard->byte_budget = byte_base + (i < byte_extra ? 1 : 0);
      // A per-shard budget below one smallest entry (sizeof(Entry): a
      // scalar payload, no targets, empty message) would reject every
      // insert and silently disable the shard; floor it so tiny budgets
      // degrade to "hold one smallest entry" per shard instead.
      if (shard->byte_budget < sizeof(Entry)) shard->byte_budget = sizeof(Entry);
    }
    shards_.push_back(std::move(shard));
  }
}

void ResultCache::RemoveEntry(
    Shard& shard,
    std::unordered_map<HashedKey, std::list<Entry>::iterator, KeyHash,
                       KeyEq>::iterator it) {
  shard.bytes -= it->second->bytes;
  bytes_gauge_->Add(-static_cast<double>(it->second->bytes));
  shard.lru.erase(it->second);
  shard.index.erase(it);
}

std::optional<ResultCacheValue> ResultCache::Lookup(const ResultCacheKey& key,
                                                    bool record_stats) {
  const HashedKey hashed{key, key.Hash()};
  Shard& shard = ShardFor(hashed.hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(hashed);
  if (it == shard.index.end()) {
    if (record_stats) misses_->Inc();
    return std::nullopt;
  }
  if (it->second->expires && StopwatchNs::Now() >= it->second->deadline_ns) {
    // Lazy expiry: the deadline elapsed, so the entry is dead weight — drop
    // it and let the caller recompute (a miss). Expiry is counted even on
    // uncounted probes: the entry really is gone either way.
    RemoveEntry(shard, it);
    expired_->Inc();
    if (record_stats) misses_->Inc();
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (record_stats) {
    if (it->second->value.negative()) {
      negative_hits_->Inc();
    } else {
      hits_->Inc();
    }
  }
  return it->second->value;
}

StaleLookupResult ResultCache::LookupStale(const ResultCacheKey& key,
                                           double max_stale_seconds,
                                           bool record_stats) {
  StaleLookupResult result;
  const HashedKey hashed{key, key.Hash()};
  Shard& shard = ShardFor(hashed.hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(hashed);
  if (it == shard.index.end()) {
    if (record_stats) misses_->Inc();
    return result;
  }
  Entry& entry = *it->second;
  const bool ttl_elapsed =
      entry.expires && StopwatchNs::Now() >= entry.deadline_ns;
  if (ttl_elapsed) {
    const uint64_t stale_deadline_ns =
        entry.deadline_ns +
        static_cast<uint64_t>(max_stale_seconds > 0.0 ? max_stale_seconds * 1e9
                                                      : 0.0);
    if (entry.value.negative() || max_stale_seconds <= 0.0 ||
        StopwatchNs::Now() >= stale_deadline_ns) {
      // Negative entries and entries past the stale window die exactly as in
      // Lookup(): a cached failure must not outlive its backoff, and an
      // entry too old to serve is dead weight.
      RemoveEntry(shard, it);
      expired_->Inc();
      if (record_stats) misses_->Inc();
      return result;
    }
    result.stale = true;
    if (!entry.refresh_pending) {
      entry.refresh_pending = true;
      result.refresh_owner = true;
    }
    stale_served_->Inc();
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (record_stats) {
    if (entry.value.negative()) {
      negative_hits_->Inc();
    } else {
      hits_->Inc();
    }
  }
  result.value = entry.value;
  return result;
}

void ResultCache::ClearRefreshPending(const ResultCacheKey& key) {
  const HashedKey hashed{key, key.Hash()};
  Shard& shard = ShardFor(hashed.hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(hashed);
  if (it != shard.index.end()) it->second->refresh_pending = false;
}

bool ResultCache::Contains(const ResultCacheKey& key) const {
  const HashedKey hashed{key, key.Hash()};
  Shard& shard = *shards_[hashed.hash & (shards_.size() - 1)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(hashed);
  if (it == shard.index.end()) return false;
  // Expired entries are absent for the caller's purposes; leave the lazy
  // removal to the next counted Lookup.
  return !(it->second->expires &&
           StopwatchNs::Now() >= it->second->deadline_ns);
}

void ResultCache::Insert(const ResultCacheKey& key,
                         const ResultCacheValue& value, double ttl_seconds) {
  if (IsTransientStatusCode(value.status.code())) {
    // A transient failure (deadline, cancellation, shed) says nothing about
    // the key itself; negative-caching it would make a momentary condition
    // sticky for the TTL. Refused here as well as at the engine layer so no
    // future call path can reintroduce the bug.
    return;
  }
  const HashedKey hashed{key, key.Hash()};
  if (FaultInjector::Global().enabled() &&
      FaultInjector::Global().ShouldInject(FaultSite::kAllocFailure,
                                           hashed.hash)) {
    // Injected allocation failure: the insert is dropped, which the cache
    // contract already allows (any entry may be evicted or rejected at any
    // time), so correctness must be unaffected.
    return;
  }
  const size_t entry_bytes = EntryBytes(value);
  const bool expires = ttl_seconds > 0.0;
  const uint64_t deadline_ns =
      expires ? StopwatchNs::Now() + static_cast<uint64_t>(ttl_seconds * 1e9)
              : 0;
  Shard& shard = ShardFor(hashed.hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.byte_budget > 0 && entry_bytes > shard.byte_budget) {
    // Size-aware admission: one entry outweighing the whole shard budget
    // would evict everything and still never be amortized by repeats.
    auto existing = shard.index.find(hashed);
    if (existing != shard.index.end()) {
      // The key's older (smaller) incarnation is now stale; drop it rather
      // than serve an outdated payload next to the rejected fresh one.
      RemoveEntry(shard, existing);
      evictions_->Inc();
    }
    rejected_->Inc();
    return;
  }
  auto it = shard.index.find(hashed);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    bytes_gauge_->Add(static_cast<double>(entry_bytes) -
                      static_cast<double>(it->second->bytes));
    it->second->value = value;
    it->second->deadline_ns = deadline_ns;
    it->second->expires = expires;
    it->second->refresh_pending = false;  // refresh landed; re-arm SWR
    it->second->bytes = entry_bytes;
    shard.bytes += entry_bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{hashed, value, deadline_ns, expires,
                               /*refresh_pending=*/false, entry_bytes});
    shard.index.emplace(hashed, shard.lru.begin());
    shard.bytes += entry_bytes;
    bytes_gauge_->Add(static_cast<double>(entry_bytes));
    insertions_->Inc();
  }
  // Evict LRU entries until both budgets hold. The freshly-touched entry is
  // at the front and (having passed admission) fits the byte budget alone,
  // so the loop always terminates before evicting it.
  while ((shard.lru.size() > shard.capacity ||
          (shard.byte_budget > 0 && shard.bytes > shard.byte_budget)) &&
         shard.lru.size() > 1) {
    auto victim = shard.index.find(shard.lru.back().key);
    RemoveEntry(shard, victim);
    evictions_->Inc();
  }
}

std::vector<ResultCacheExport> ResultCache::ExportEntries() const {
  std::vector<ResultCacheExport> out;
  const uint64_t now_ns = StopwatchNs::Now();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const Entry& entry : shard->lru) {
      if (entry.value.negative()) continue;  // failures never survive restart
      double ttl_seconds = 0.0;
      if (entry.expires) {
        if (now_ns >= entry.deadline_ns) continue;
        ttl_seconds = static_cast<double>(entry.deadline_ns - now_ns) * 1e-9;
      }
      out.push_back(ResultCacheExport{entry.key.key, entry.value, ttl_seconds});
    }
  }
  return out;
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    bytes_gauge_->Add(-static_cast<double>(shard->bytes));
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats stats;
  stats.hits = hits_->Value();
  stats.negative_hits = negative_hits_->Value();
  stats.misses = misses_->Value();
  stats.insertions = insertions_->Value();
  stats.evictions = evictions_->Value();
  stats.expired = expired_->Value();
  stats.rejected = rejected_->Value();
  stats.stale_served = stale_served_->Value();
  stats.bytes_in_use = bytes_in_use();
  return stats;
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

size_t ResultCache::bytes_in_use() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->bytes;
  }
  return total;
}

}  // namespace relcomp
