#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/memory_tracker.h"
#include "engine/generation_prebuilder.h"
#include "engine/result_cache.h"
#include "engine/sweep_cache.h"
#include "eval/table.h"
#include "obs/metrics.h"
#include "reliability/workload.h"

namespace relcomp {

/// \brief Point-in-time view of engine performance: throughput, latency
/// quantiles, cache effectiveness, coalescing, per-workload mix, and index
/// memory.
struct EngineStatsSnapshot {
  uint64_t queries = 0;
  /// Per-workload query counts, indexed by WorkloadKind (st, top-k,
  /// reliable-set, distance) — every query is counted once however it was
  /// resolved (executed, cached, coalesced, or failed).
  uint64_t workload_queries[kNumWorkloadKinds] = {};

  uint64_t queries_of(WorkloadKind kind) const {
    return workload_queries[static_cast<size_t>(kind)];
  }
  /// Queries that actually invoked an estimator (not served from cache or a
  /// coalesced in-flight twin, not failed before estimation).
  uint64_t executed = 0;
  /// Queries that piggybacked on another worker's in-flight computation of
  /// the same key (single-flight coalescing).
  uint64_t coalesced = 0;
  /// Queries that finished with a non-OK per-query status.
  uint64_t failures = 0;
  /// \name Fault tolerance (zeros when deadlines / shedding are off)
  /// @{
  /// Queries refused at admission (load shedding): returned kUnavailable
  /// *before* entering the engine, so they do NOT count in `queries` and do
  /// not disturb the executed+coalesced+failures+hits partition.
  uint64_t shed = 0;
  /// Queries that missed their deadline or were cancelled (these DO count:
  /// they are a subset of `failures`).
  uint64_t deadline_exceeded = 0;
  /// Queries answered from a TTL-expired cache entry inside the stale
  /// window. Orthogonal to the outcome partition: a stale result-cache hit
  /// counts in cache hits, a query *derived* from a stale sweep counts in
  /// executed / coalesced. The per-cache split is in `cache` /
  /// `sweep_cache` stale_served.
  uint64_t stale_served = 0;
  /// Faults injected by the active FaultInjector plan (all sites summed;
  /// zero in production where the injector is disabled).
  uint64_t faults_injected = 0;
  /// @}
  /// \name Sweep sharing (top-k / reliable-set over one per-source sweep)
  /// For *successful* sweep-kind queries that reached the compute path, the
  /// three counters partition them: each ran EstimateFromSource itself,
  /// derived from a memoized vector, or waited on a sweep-level flight.
  /// Failed sweeps skew the partition deliberately: sweep_executed counts
  /// every EstimateFromSource invocation (the bench gate's currency is
  /// invocations, successful or not), while a follower handed a failed
  /// sweep counts in `failures` only.
  /// @{
  /// Queries whose worker actually invoked EstimateFromSource — the bench
  /// gate's "<= 1 sweep per distinct (source, generation)" currency.
  uint64_t sweep_executed = 0;
  /// Queries derived (ranked / filtered) from a SweepCache-memoized vector
  /// without running a BFS.
  uint64_t sweep_hits = 0;
  /// Queries that waited on another worker's in-flight sweep of the same
  /// source and derived from its vector (sweep-level single-flight) —
  /// including waiters that *stole strata* of the leader's sweep instead of
  /// blocking (see strata_stolen). Scout warms skew the partition like
  /// failures do: a scout-led sweep increments sweep_executed (and
  /// scout_warms) without a query behind it, so the three counters sum to
  /// compute-path sweep queries + scout_warms.
  uint64_t sweep_coalesced = 0;
  /// @}
  /// \name Intra-sweep stratification (stratum scheduler)
  /// @{
  /// Sweep strata actually executed through the stratum scheduler (every
  /// EstimateSweepStratumHits invocation, by leaders and thieves alike).
  uint64_t strata_executed = 0;
  /// Strata executed by a worker that was NOT the sweep's leader: coalesced
  /// waiters that stole unclaimed strata instead of blocking. > 0 means the
  /// single-flight wait turned into useful parallel work.
  uint64_t strata_stolen = 0;
  /// Sweeps led by the warm-ahead scout pass (no query behind them; the
  /// queries that follow resolve as sweep_hits / sweep_coalesced).
  uint64_t scout_warms = 0;
  /// Per-sweep wall-clock latency quantiles (leader start to vector
  /// publish), over every executed sweep. Zeros when no sweep executed.
  double sweep_p50_ms = 0.0;
  double sweep_p95_ms = 0.0;
  /// @}
  /// Queries whose PrepareForNextQuery artifact (BFS Sharing generation) was
  /// adopted from the background prebuilder instead of resampled inline.
  uint64_t prebuilt_used = 0;
  /// \name Adaptive routing (zeros when enable_router is off)
  /// @{
  /// Routing decisions made (one per planned query / sweep source).
  uint64_t router_decisions = 0;
  /// Decisions served by the paper-faithful fallback latch.
  uint64_t router_fallbacks = 0;
  /// @}
  /// Per-call wall-clock summed over batches / stream cycles. Overlapping
  /// calls from concurrent clients each contribute their full duration, so
  /// this over-counts real time under multi-client load.
  double wall_seconds = 0.0;
  /// True span: first call start to last call end across all batches and
  /// stream cycles since construction / Reset. Under multi-client overlap
  /// this is real elapsed time, so queries / span_seconds is the exact
  /// aggregate throughput (wall_seconds over-counts overlap).
  double span_seconds = 0.0;
  /// queries / wall_seconds — a lower bound on true throughput when clients
  /// overlap (see wall_seconds); exact for a single client.
  double throughput_qps = 0.0;
  /// queries / span_seconds — exact aggregate throughput, any client count.
  double span_qps = 0.0;
  double mean_ms = 0.0;          ///< mean per-query latency
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  size_t peak_memory_bytes = 0;  ///< max EstimateResult::peak_memory_bytes
  /// Resident index footprint of the engine's replica set, shared indexes
  /// counted once (see IndexMemoryReport).
  IndexMemoryReport index_memory;
  ResultCacheStats cache;
  /// Sweep memoization effectiveness (zeros when the sweep cache is off).
  SweepCacheStats sweep_cache;
  /// Background generation prebuilding (zeros when the prebuilder is off or
  /// the estimator kind has no prepared-generation support).
  GenerationPrebuilderStats prebuilder;
};

/// \brief Thread-safe recorder of per-query outcomes — a *view over the
/// metrics registry*.
///
/// Every Record* call lands in a named registry instrument (see
/// src/obs/README.md for the name map), so one MetricsRegistry::ExportJson()
/// scrape reports everything this struct ever showed; Snapshot() reads the
/// same instruments back into the legacy EngineStatsSnapshot shape. Latency
/// quantiles come from bounded log-bucketed histograms (<= 1/16 relative
/// error, extremes exact), replacing the former unbounded sample vectors —
/// recording is lock-free and O(1), and long-running servers no longer grow
/// per-query state.
class EngineStats {
 public:
  /// Records into `registry` (not owned; must outlive this object), or into
  /// a privately owned registry when nullptr.
  explicit EngineStats(obs::MetricsRegistry* registry = nullptr);

  /// Records one estimator-executed query: its latency and working-set peak.
  void RecordExecuted(double seconds, size_t peak_memory_bytes);

  /// Records one query served from the result cache (zero marginal latency).
  void RecordCacheHit();

  /// Records one query that shared an in-flight twin's computation;
  /// `wait_seconds` is the time spent waiting for the leader.
  void RecordCoalesced(double wait_seconds);

  /// Records one query that finished with a non-OK per-query status.
  void RecordFailure(double seconds);

  /// Records one query refused at admission. `reason` labels
  /// engine_shed_total ("queue_full" when the pool queue is at capacity,
  /// "overload" for the predictive gate). Shed queries are NOT recorded as
  /// queries — the caller never entered the engine.
  void RecordShed(const char* reason);

  /// Records one query that failed because its deadline elapsed or its
  /// CancelToken fired (called alongside RecordFailure).
  void RecordDeadlineExceeded();

  /// Records one query answered stale (called alongside RecordCacheHit).
  void RecordStaleServed();

  /// Classifies how one executed sweep-kind query obtained its per-source
  /// vector (called alongside RecordExecuted, at most once per query).
  void RecordSweepExecuted();
  void RecordSweepHit();
  void RecordSweepCoalesced();

  /// Records one executed sweep stratum; `stolen` when the executing worker
  /// was not the sweep's leader (a coalesced waiter working instead of
  /// blocking).
  void RecordStratum(bool stolen);

  /// Records one sweep led by the warm-ahead scout pass.
  void RecordScoutWarm();

  /// Records one executed sweep's wall-clock (leader start to publish), the
  /// sample behind the per-sweep latency quantiles.
  void RecordSweepLatency(double seconds);

  /// Records one query whose prepare artifact came from the background
  /// prebuilder.
  void RecordPrebuiltUsed();

  /// Counts one query against its workload kind (called once per query, on
  /// top of exactly one of the Record* outcomes above).
  void RecordWorkload(WorkloadKind kind);

  /// Adds batch wall-clock time to the throughput denominator.
  void AddWallTime(double seconds);

  /// Marks the start / end of one engine call (batch or stream cycle) for
  /// true-span tracking: span = first MarkCallStart to last MarkCallEnd.
  void MarkCallStart();
  void MarkCallEnd();

  /// Reads the registry instruments back into the legacy snapshot shape;
  /// `cache` / `sweep_cache` (optional) are embedded in the snapshot.
  EngineStatsSnapshot Snapshot(const ResultCache* cache = nullptr,
                               const SweepCache* sweep_cache = nullptr) const;

  /// Resets the instruments this recorder owns (queries, latencies, wall
  /// time, span). Instruments registered by other components sharing the
  /// registry — cache counters are monotonic by contract — are untouched.
  void Reset();

  /// The registry everything records into (for scraping / sharing).
  obs::MetricsRegistry& registry() const { return *registry_; }

 private:
  static constexpr uint64_t kNoStamp = ~uint64_t{0};

  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;

  obs::Histogram* query_latency_ns_;
  obs::Histogram* sweep_latency_ns_;
  obs::Counter* executed_;
  obs::Counter* coalesced_;
  obs::Counter* failures_;
  obs::Counter* shed_queue_full_;
  obs::Counter* shed_overload_;
  obs::Counter* deadline_exceeded_;
  obs::Counter* stale_served_;
  obs::Counter* workload_queries_[kNumWorkloadKinds];
  obs::Counter* sweep_executed_;
  obs::Counter* sweep_hits_;
  obs::Counter* sweep_coalesced_;
  obs::Counter* strata_executed_;
  obs::Counter* strata_stolen_;
  obs::Counter* scout_warms_;
  obs::Counter* prebuilt_used_;
  obs::Gauge* wall_seconds_;
  obs::Gauge* span_seconds_;
  obs::Gauge* peak_memory_bytes_;
  /// Mirrors of FaultInjector::Global() per-site counts, synced by
  /// Snapshot() so fault_injected_total{site} is scrapeable alongside the
  /// engine's own instruments.
  obs::Gauge* fault_injected_[kNumFaultSites];

  /// Min start / max end stamps across concurrent calls (CAS races resolve
  /// to the extremes whatever order the threads arrive in).
  std::atomic<uint64_t> span_first_start_ns_{kNoStamp};
  std::atomic<uint64_t> span_last_end_ns_{0};
};

/// One row per (label, snapshot): queries, qps, latency quantiles, cache hit
/// rate. The bench and example binaries print this via eval/table.
TextTable EngineStatsTable(
    const std::vector<std::pair<std::string, EngineStatsSnapshot>>& rows);

}  // namespace relcomp
