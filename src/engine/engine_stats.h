#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "engine/result_cache.h"
#include "eval/table.h"

namespace relcomp {

/// \brief Point-in-time view of engine performance: throughput, latency
/// quantiles, and cache effectiveness.
struct EngineStatsSnapshot {
  uint64_t queries = 0;
  /// Per-call wall-clock summed over batches / stream cycles. Overlapping
  /// calls from concurrent clients each contribute their full duration, so
  /// this over-counts real time under multi-client load.
  double wall_seconds = 0.0;
  /// queries / wall_seconds — a lower bound on true throughput when clients
  /// overlap (see wall_seconds); exact for a single client.
  double throughput_qps = 0.0;
  double mean_ms = 0.0;          ///< mean per-query latency
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  size_t peak_memory_bytes = 0;  ///< max EstimateResult::peak_memory_bytes
  ResultCacheStats cache;
};

/// \brief Thread-safe recorder of per-query latencies.
///
/// Workers call Record() concurrently; Snapshot() sorts the samples to
/// extract quantiles. Sample storage is unbounded by design — the engine
/// resets it per batch, and a 10k-query stress batch costs 80 kB.
class EngineStats {
 public:
  /// Records one finished query: its latency and working-set peak.
  void Record(double seconds, size_t peak_memory_bytes);

  /// Adds batch wall-clock time to the throughput denominator.
  void AddWallTime(double seconds);

  /// Computes quantiles over everything recorded so far; `cache` (optional)
  /// is embedded in the snapshot.
  EngineStatsSnapshot Snapshot(const ResultCache* cache = nullptr) const;

  /// Drops all samples and wall time.
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::vector<double> latencies_seconds_;
  double wall_seconds_ = 0.0;
  size_t peak_memory_bytes_ = 0;
};

/// One row per (label, snapshot): queries, qps, latency quantiles, cache hit
/// rate. The bench and example binaries print this via eval/table.
TextTable EngineStatsTable(
    const std::vector<std::pair<std::string, EngineStatsSnapshot>>& rows);

}  // namespace relcomp
