#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/uncertain_graph.h"
#include "obs/metrics.h"
#include "reliability/estimator_factory.h"
#include "reliability/workload.h"

namespace relcomp {

/// \brief Full identity of a cacheable workload result. Two engine calls
/// with equal keys are guaranteed (by the determinism contract of Estimator)
/// to produce bit-identical answers, so serving one from cache is
/// semantically invisible. The workload tag lives inside `query`, so two
/// workload kinds over the same nodes can never collide.
struct ResultCacheKey {
  EngineQuery query;
  EstimatorKind kind = EstimatorKind::kMonteCarlo;
  uint32_t num_samples = 0;
  uint64_t seed = 0;

  bool operator==(const ResultCacheKey& other) const {
    return query == other.query && kind == other.kind &&
           num_samples == other.num_samples && seed == other.seed;
  }

  /// SplitMix-chained hash over every field (workload tag included); also
  /// selects the shard.
  uint64_t Hash() const;
};

/// \brief Cached payload: either a successful answer (scalar reliability for
/// st/distance, ranked targets for top-k/reliable-set, plus the sample count
/// consumed) or — when `status` is non-OK — a cached estimator failure
/// (negative caching: a hot failing key stops recomputing on every miss).
struct ResultCacheValue {
  ResultCacheValue() = default;
  /// Scalar payload (st / distance answers); status OK, no targets.
  ResultCacheValue(double reliability, uint32_t num_samples)
      : reliability(reliability), num_samples(num_samples) {}

  double reliability = 0.0;
  uint32_t num_samples = 0;
  /// Non-OK marks a negative entry; the payload fields are meaningless then.
  Status status;
  /// Top-k / reliable-set answers.
  std::vector<ReliableTarget> targets;

  bool negative() const { return !status.ok(); }
};

/// Outcome of a stale-tolerant lookup (LookupStale).
struct StaleLookupResult {
  /// The entry (fresh or stale); nullopt on a true miss.
  std::optional<ResultCacheValue> value;
  /// True when `value` is TTL-expired but within the stale window — the
  /// caller should surface it flagged as stale.
  bool stale = false;
  /// True for exactly one caller per stale episode: that caller owns kicking
  /// off the background refresh. Reset by the next Insert on the key, or by
  /// ClearRefreshPending if the refresh could not run.
  bool refresh_owner = false;
};

/// One cached result as exported for the persistence journal: the full key,
/// the value, and the TTL remaining at export time (0 = immortal). Negative
/// entries and expired entries are never exported — a restart must not
/// resurrect a cached failure or extend a deadline.
struct ResultCacheExport {
  ResultCacheKey key;
  ResultCacheValue value;
  double ttl_seconds = 0.0;
};

/// Monotonic counters; a snapshot type so callers can diff two points in
/// time.
struct ResultCacheStats {
  uint64_t hits = 0;           ///< positive entries served
  uint64_t negative_hits = 0;  ///< cached failures served (failure backoff)
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t expired = 0;   ///< entries dropped because their TTL elapsed
  uint64_t rejected = 0;  ///< entries larger than a whole shard's byte budget
  uint64_t stale_served = 0;  ///< expired entries served inside a stale window
  size_t bytes_in_use = 0;  ///< charged bytes resident at snapshot time

  uint64_t lookups() const { return hits + negative_hits + misses; }
  double hit_rate() const {
    const uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

/// \brief Sharded LRU cache for workload results.
///
/// Each shard owns a mutex, an intrusive LRU list, and a hash map, so
/// concurrent lookups on different keys mostly touch different locks. The
/// capacity is split evenly across shards; eviction is LRU per shard.
/// Entries may carry a TTL (0 = immortal): an expired entry is dropped on
/// the lookup that discovers it (counted in `expired`) and the lookup
/// proceeds as a miss. Negative entries (non-OK value status) are how the
/// engine backs off a hot failing key; they are served like hits but
/// counted separately (`negative_hits`).
///
/// Admission is size-aware when `max_bytes` > 0: every entry is charged its
/// real payload bytes (EntryBytes — a top-k entry carrying k ranked targets
/// costs ~k× an s-t scalar), the byte budget is split across shards like the
/// entry capacity, and a shard evicts LRU entries until *both* its entry and
/// byte budgets hold. An entry larger than a whole shard's byte budget is
/// rejected outright (counted in `rejected`) — admitting it would flush the
/// shard for an entry that cannot amortize.
class ResultCache {
 public:
  /// `capacity` = total entries across all shards (>= 1 enforced);
  /// `num_shards` is rounded up to a power of two; `max_bytes` = total
  /// charged-byte budget across all shards (0 = unlimited, entry-count
  /// eviction only). `registry` (optional, not owned, must outlive the
  /// cache) receives the result_cache_* instruments so one engine-wide
  /// scrape covers the cache; when nullptr a private registry is owned.
  explicit ResultCache(size_t capacity, size_t num_shards = 8,
                       size_t max_bytes = 0,
                       obs::MetricsRegistry* registry = nullptr);

  /// Charged bytes for caching `value`: the entry framing plus the ranked-
  /// target payload and any status message.
  static size_t EntryBytes(const ResultCacheValue& value);

  /// Returns the cached value and refreshes its recency, or nullopt.
  /// A returned value with non-OK `status` is a negative entry (cached
  /// failure). `record_stats` = false makes the probe invisible to Stats() —
  /// for internal double-checks (the engine's single-flight rendezvous
  /// re-probes under its flight lock) that would otherwise count one
  /// user-level query as two lookups.
  std::optional<ResultCacheValue> Lookup(const ResultCacheKey& key,
                                         bool record_stats = true);

  /// True when a live (unexpired) entry exists for `key`. Touches neither
  /// recency nor stats and copies no payload — a pure probe, e.g. for the
  /// engine deciding whether a query is worth prebuilding for.
  bool Contains(const ResultCacheKey& key) const;

  /// Stale-while-revalidate lookup. Fresh entries behave exactly like
  /// Lookup(). A TTL-expired *positive* entry whose deadline elapsed less
  /// than `max_stale_seconds` ago is served anyway with `stale` set, and the
  /// first such observer gets `refresh_owner` = true (the entry's pending
  /// flag debounces the refresh to one owner per stale episode). Because
  /// every cached payload is content-derived and immutable, a stale entry is
  /// byte-identical to what recomputation would produce — staleness here is
  /// purely a TTL-policy fact, not a data-freshness risk. Negative entries
  /// are never stale-served (a cached failure must not outlive its backoff);
  /// past the stale window the entry is dropped and the lookup is a miss.
  StaleLookupResult LookupStale(const ResultCacheKey& key,
                                double max_stale_seconds,
                                bool record_stats = true);

  /// Releases the refresh-pending flag on `key`, re-arming LookupStale to
  /// elect a new refresh owner. For owners whose background refresh could
  /// not be scheduled (pool saturated / shutting down).
  void ClearRefreshPending(const ResultCacheKey& key);

  /// Inserts (or refreshes) `value` under `key`, evicting the shard's LRU
  /// entry if the shard is full. `ttl_seconds` > 0 puts a deadline on the
  /// entry; 0 means it never expires. Values carrying a *transient* failure
  /// status (Unavailable / DeadlineExceeded / Cancelled) are refused:
  /// caching "try again later" as a negative entry would convert a momentary
  /// condition into a sticky failure.
  void Insert(const ResultCacheKey& key, const ResultCacheValue& value,
              double ttl_seconds = 0.0);

  /// Snapshot of every live *positive* entry for the persistence journal
  /// (shard by shard, most-recent first within a shard). Negative entries
  /// (cached failures) are excluded — their backoff must not survive a
  /// restart — and TTL'd entries carry their remaining TTL; entries past
  /// their deadline are skipped (a const probe; nothing is reaped).
  std::vector<ResultCacheExport> ExportEntries() const;

  /// Drops every entry (stats are kept).
  void Clear();

  ResultCacheStats Stats() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Total charged-byte budget (0 = unlimited).
  size_t max_bytes() const { return max_bytes_; }
  /// Charged bytes currently resident across all shards.
  size_t bytes_in_use() const;
  size_t num_shards() const { return shards_.size(); }

 private:
  /// Key paired with its precomputed hash: Hash() runs once per cache
  /// operation (shard pick + map probe reuse it).
  struct HashedKey {
    ResultCacheKey key;
    uint64_t hash;
  };
  struct Entry {
    HashedKey key;
    ResultCacheValue value;
    /// Expiry deadline as an absolute StopwatchNs::Now() reading;
    /// meaningful only when `expires` is true.
    uint64_t deadline_ns = 0;
    bool expires = false;
    /// A stale-while-revalidate refresh is already owned for this entry.
    bool refresh_pending = false;
    /// Charged bytes (EntryBytes at insertion), subtracted on removal.
    size_t bytes = 0;
  };
  struct KeyHash {
    size_t operator()(const HashedKey& k) const {
      return static_cast<size_t>(k.hash);
    }
  };
  struct KeyEq {
    bool operator()(const HashedKey& a, const HashedKey& b) const {
      return a.key == b.key;
    }
  };
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_map<HashedKey, std::list<Entry>::iterator, KeyHash, KeyEq>
        index;
    size_t capacity = 0;
    /// Byte budget (0 = unlimited) and current charge.
    size_t byte_budget = 0;
    size_t bytes = 0;
  };

  Shard& ShardFor(uint64_t hash) {
    return *shards_[hash & (shards_.size() - 1)];
  }

  /// Removes `it`'s entry from `shard` (caller holds the shard mutex).
  void RemoveEntry(Shard& shard,
                   std::unordered_map<HashedKey, std::list<Entry>::iterator,
                                      KeyHash, KeyEq>::iterator it);

  size_t capacity_;
  size_t max_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Private fallback when no shared registry was handed in.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::Counter* hits_;
  obs::Counter* negative_hits_;
  obs::Counter* misses_;
  obs::Counter* insertions_;
  obs::Counter* evictions_;
  obs::Counter* expired_;
  obs::Counter* rejected_;
  obs::Counter* stale_served_;
  /// Live charged-byte occupancy, mirrored for scrapes (the exact value is
  /// still summed from the shards in Stats()).
  obs::Gauge* bytes_gauge_;
};

}  // namespace relcomp
