#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "reliability/estimator.h"

namespace relcomp {

/// Monotonic counters; a snapshot type.
struct GenerationPrebuilderStats {
  uint64_t requested = 0;  ///< Request() calls accepted into the queue
  uint64_t built = 0;      ///< generations finished by the builder thread
  uint64_t taken = 0;      ///< generations handed to a serving thread
  uint64_t dropped = 0;    ///< Request() calls refused (pending bound hit)
  /// Ready-but-unclaimed generations discarded (oldest first) to make room
  /// for newer requests — stranded work, e.g. for queries that were served
  /// from the result cache after their seed was requested.
  uint64_t evicted = 0;
};

/// \brief Background builder of PrepareForNextQuery artifacts.
///
/// BFS Sharing resamples L possible worlds per edge between successive
/// queries — O(L m) work that PR 3 ran inline on the serving path. This
/// builder moves it onto one dedicated thread: the engine Request()s the
/// prepare seeds of enqueued queries as they are submitted, the builder
/// constructs each generation via Estimator::BuildPreparedGeneration
/// (thread-safe by that contract) while workers run the *previous* queries'
/// BFS, and the worker that eventually needs a seed Take()s the finished
/// artifact and installs it in O(1) with AdoptPreparedGeneration.
///
/// Take() semantics make duplication impossible and waiting minimal:
///   - ready      -> returned immediately (the overlap win);
///   - building   -> blocks until the in-flight build finishes (waiting on
///                   a half-done build is never slower than redoing it);
///   - queued     -> the request is cancelled and nullptr returned (the
///                   caller builds inline; the builder never duplicates it);
///   - unknown    -> nullptr (caller builds inline).
///
/// Determinism: a prebuilt generation is bit-identical to the inline
/// PrepareForNextQuery(seed) artifact (Estimator contract), so serving with
/// the prebuilder on or off — at any thread count — returns identical bits.
class GenerationPrebuilder {
 public:
  /// `prototype` outlives this object and is only touched through the
  /// thread-safe BuildPreparedGeneration. `max_pending` bounds queued +
  /// ready-but-untaken generations (each ready generation holds index-sized
  /// memory); further requests are dropped, not blocked on.
  GenerationPrebuilder(const Estimator& prototype, size_t max_pending);
  ~GenerationPrebuilder();

  GenerationPrebuilder(const GenerationPrebuilder&) = delete;
  GenerationPrebuilder& operator=(const GenerationPrebuilder&) = delete;

  /// Enqueues `seed` for background construction. Deduplicates against
  /// queued, building, and ready seeds. At the pending bound, the oldest
  /// ready-but-unclaimed generation is evicted to make room (stranded work
  /// must never wedge the builder shut); if the bound is all queued /
  /// in-flight work, the request is dropped (returns false).
  bool Request(uint64_t seed);

  /// Claims the generation for `seed` (see class comment for the per-state
  /// behaviour). A failed background build surfaces here as nullptr — the
  /// caller's inline PrepareForNextQuery will re-raise the error.
  std::unique_ptr<PreparedGeneration> Take(uint64_t seed);

  GenerationPrebuilderStats Stats() const;

  /// Stops the builder thread; queued seeds are abandoned, Take() afterwards
  /// only serves already-ready generations. Idempotent (the destructor calls
  /// it).
  void Shutdown();

 private:
  void BuilderLoop();

  const Estimator& prototype_;
  const size_t max_pending_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable build_finished_;
  std::deque<uint64_t> queue_;
  std::unordered_set<uint64_t> queued_;
  std::unordered_map<uint64_t, std::unique_ptr<PreparedGeneration>> ready_;
  /// Completion order of ready_ entries, oldest first, for eviction.
  /// Mirrors ready_'s key set exactly (Take() and eviction both erase).
  std::deque<uint64_t> ready_order_;
  uint64_t building_seed_ = 0;
  bool building_ = false;
  bool shutdown_ = false;

  uint64_t requested_ = 0;
  uint64_t built_ = 0;
  uint64_t taken_ = 0;
  uint64_t dropped_ = 0;
  uint64_t evicted_ = 0;

  std::thread builder_;  ///< last member: starts after all state above
};

}  // namespace relcomp
