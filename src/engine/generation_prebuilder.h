#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "reliability/estimator.h"

namespace relcomp {

/// Monotonic counters plus point-in-time occupancy; a snapshot type.
struct GenerationPrebuilderStats {
  uint64_t requested = 0;  ///< Request() calls accepted into the queue
  uint64_t built = 0;      ///< generations finished by the builder threads
  uint64_t taken = 0;      ///< generations handed to a serving thread
  uint64_t dropped = 0;    ///< Request() calls refused (pending bound hit)
  /// Ready-but-unclaimed generations discarded (oldest first) to make room
  /// for newer requests or to honor the ready-pool byte budget — stranded
  /// work, e.g. for queries that were served from the result cache after
  /// their seed was requested.
  uint64_t evicted = 0;
  /// Bytes currently resident in the ready pool (each ready generation is
  /// index-sized; see PreparedGeneration::MemoryBytes).
  size_t ready_bytes = 0;
  /// Builder threads constructing generations.
  size_t builders = 0;
};

/// \brief Background builder of PrepareForNextQuery artifacts.
///
/// BFS Sharing resamples L possible worlds per edge between successive
/// queries — O(L m) work that PR 3 ran inline on the serving path. This
/// builder moves it onto dedicated threads: the engine Request()s the
/// prepare seeds of enqueued queries as they are submitted, the builders
/// construct each generation via Estimator::BuildPreparedGeneration
/// (thread-safe by that contract) while workers run the *previous* queries'
/// BFS, and the worker that eventually needs a seed Take()s the finished
/// artifact and installs it in O(1) with AdoptPreparedGeneration.
///
/// With `num_builders` >= 2 the L·m resampling for several *distinct*
/// prepare seeds fans out concurrently — each seed is built exactly once by
/// exactly one builder. The queue is FIFO over request order, and requests
/// arrive in dispatch order, so builders always work on the seeds whose
/// queries are closest to dispatch.
///
/// Take() semantics make duplication impossible and waiting minimal:
///   - ready      -> returned immediately (the overlap win);
///   - building   -> blocks until the in-flight build finishes (waiting on
///                   a half-done build is never slower than redoing it);
///   - queued     -> the request is cancelled and nullptr returned (the
///                   caller builds inline; the builder never duplicates it);
///   - unknown    -> nullptr (caller builds inline).
///
/// Determinism: a prebuilt generation is bit-identical to the inline
/// PrepareForNextQuery(seed) artifact (Estimator contract), so serving with
/// the prebuilder on or off — at any thread or builder count — returns
/// identical bits.
class GenerationPrebuilder {
 public:
  /// `prototype` outlives this object and is only touched through the
  /// thread-safe BuildPreparedGeneration. `max_pending` bounds queued +
  /// ready-but-untaken generations by *count*; `max_ready_bytes` (0 =
  /// unbounded) additionally bounds the ready pool by *bytes* — each ready
  /// generation holds PreparedGeneration::MemoryBytes() of index-sized
  /// memory, so the count bound alone can pin max_pending spare indexes.
  /// Over either bound the oldest ready generation is evicted.
  /// `num_builders` (clamped to >= 1) is the number of builder threads.
  /// `registry` (optional, not owned, must outlive this object) receives the
  /// prebuilder_* instruments; when nullptr a private registry is owned.
  GenerationPrebuilder(const Estimator& prototype, size_t max_pending,
                       size_t num_builders = 1, size_t max_ready_bytes = 0,
                       obs::MetricsRegistry* registry = nullptr);
  ~GenerationPrebuilder();

  GenerationPrebuilder(const GenerationPrebuilder&) = delete;
  GenerationPrebuilder& operator=(const GenerationPrebuilder&) = delete;

  /// Enqueues `seed` for background construction. Deduplicates against
  /// queued, building, and ready seeds. At the pending bound, the oldest
  /// ready-but-unclaimed generation is evicted to make room (stranded work
  /// must never wedge the builder shut); if the bound is all queued /
  /// in-flight work, the request is dropped (returns false).
  bool Request(uint64_t seed);

  /// Claims the generation for `seed` (see class comment for the per-state
  /// behaviour). A failed background build surfaces here as nullptr — the
  /// caller's inline PrepareForNextQuery will re-raise the error.
  std::unique_ptr<PreparedGeneration> Take(uint64_t seed);

  GenerationPrebuilderStats Stats() const;

  /// Bytes resident in the ready pool right now (counted toward the
  /// engine's IndexMemoryReport::prebuilt_bytes).
  size_t ReadyBytes() const;

  size_t num_builders() const { return builders_.size(); }

  /// Stops the builder threads; queued seeds are abandoned, Take()
  /// afterwards only serves already-ready generations. Idempotent (the
  /// destructor calls it).
  void Shutdown();

 private:
  struct ReadyGeneration {
    std::unique_ptr<PreparedGeneration> generation;
    size_t bytes = 0;
  };

  void BuilderLoop();

  /// Drops the oldest ready generation. Caller holds mutex_ and guarantees
  /// ready_order_ is non-empty.
  void EvictOldestReadyLocked();

  const Estimator& prototype_;
  const size_t max_pending_;
  const size_t max_ready_bytes_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable build_finished_;
  std::deque<uint64_t> queue_;
  std::unordered_set<uint64_t> queued_;
  std::unordered_map<uint64_t, ReadyGeneration> ready_;
  /// Completion order of ready_ entries, oldest first, for eviction.
  /// Mirrors ready_'s key set exactly (Take() and eviction both erase).
  std::deque<uint64_t> ready_order_;
  /// Seeds currently being built, one per active builder thread at most.
  std::unordered_set<uint64_t> building_;
  bool shutdown_ = false;

  /// Private fallback when no shared registry was handed in.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::Counter* requested_;
  obs::Counter* built_;
  obs::Counter* taken_;
  obs::Counter* dropped_;
  obs::Counter* evicted_;
  obs::Gauge* ready_bytes_gauge_;
  size_t ready_bytes_ = 0;

  std::vector<std::thread> builders_;  ///< last member: starts after state
};

}  // namespace relcomp
