#include "engine/thread_pool.h"

#include <atomic>

#include "common/fault_injection.h"
#include "common/timer.h"

namespace relcomp {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity,
                       obs::Histogram* queue_wait)
    : queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity),
      queue_wait_(queue_wait) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::Submit(Task task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    space_ready_.wait(lock, [this] {
      return shutdown_ || queue_.size() < queue_capacity_;
    });
    if (shutdown_) {
      return Status::FailedPrecondition("ThreadPool is shut down");
    }
    queue_.push_back(QueuedTask{std::move(task), StopwatchNs::Now()});
  }
  task_ready_.notify_one();
  return Status::OK();
}

Status ThreadPool::TrySubmit(Task task) {
  // Fault-injection site: a spuriously "full" queue, exactly the rejection
  // TrySubmit callers must already tolerate (best-effort warms skip, the
  // admission gate sheds). Keyed by a process-wide counter — the callers'
  // tolerance, not bit-identity, is what this site exercises.
  if (FaultInjector::Global().enabled()) {
    static std::atomic<uint64_t> reject_key{0};
    if (FaultInjector::Global().ShouldInject(
            FaultSite::kPoolReject,
            reject_key.fetch_add(1, std::memory_order_relaxed))) {
      return Status::Unavailable("ThreadPool queue is full (injected)");
    }
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutdown_) {
      return Status::FailedPrecondition("ThreadPool is shut down");
    }
    if (queue_.size() >= queue_capacity_) {
      return Status::Unavailable("ThreadPool queue is full");
    }
    queue_.push_back(QueuedTask{std::move(task), StopwatchNs::Now()});
  }
  task_ready_.notify_one();
  return Status::OK();
}

size_t ThreadPool::queue_depth() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock,
                 [this] { return queue_.empty() && active_workers_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutdown_) {
      // Already shut down; workers may still be draining — fall through to
      // join below (joinable() guards double-joins).
    }
    shutdown_ = true;
  }
  task_ready_.notify_all();
  space_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop(size_t worker_id) {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutdown_ is set and the queue is drained.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_workers_;
    }
    space_ready_.notify_one();
    if (queue_wait_ != nullptr) {
      const uint64_t now = StopwatchNs::Now();
      queue_wait_->Record(now > task.enqueue_ns ? now - task.enqueue_ns : 0);
    }
    task.task(worker_id);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_workers_;
      if (queue_.empty() && active_workers_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace relcomp
