#include "engine/generation_prebuilder.h"

#include <utility>

namespace relcomp {

GenerationPrebuilder::GenerationPrebuilder(const Estimator& prototype,
                                           size_t max_pending)
    : prototype_(prototype),
      max_pending_(max_pending == 0 ? 1 : max_pending),
      builder_([this] { BuilderLoop(); }) {}

GenerationPrebuilder::~GenerationPrebuilder() { Shutdown(); }

bool GenerationPrebuilder::Request(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) return false;
  if (queued_.count(seed) != 0 || ready_.count(seed) != 0 ||
      (building_ && building_seed_ == seed)) {
    return true;  // already on its way
  }
  if (queue_.size() + ready_.size() >= max_pending_) {
    // At the bound, prefer the new request over stranded finished work:
    // evict the oldest ready-but-unclaimed generation (typically built for a
    // query that was then served from the result cache and never prepared).
    // Without this, stranded generations would pin index-sized memory and
    // wedge the builder shut for every future seed.
    if (ready_order_.empty()) {
      ++dropped_;
      return false;
    }
    // ready_order_ mirrors ready_ exactly (Take() erases its entry), so the
    // front really is the oldest unclaimed generation.
    ready_.erase(ready_order_.front());
    ready_order_.pop_front();
    ++evicted_;
  }
  queue_.push_back(seed);
  queued_.insert(seed);
  ++requested_;
  work_available_.notify_one();
  return true;
}

std::unique_ptr<PreparedGeneration> GenerationPrebuilder::Take(uint64_t seed) {
  std::unique_lock<std::mutex> lock(mutex_);
  // In-flight: wait it out — finishing a half-done O(L m) build beats
  // starting the same build from scratch inline.
  build_finished_.wait(lock, [this, seed] {
    return !(building_ && building_seed_ == seed);
  });
  auto it = ready_.find(seed);
  if (it != ready_.end()) {
    std::unique_ptr<PreparedGeneration> generation = std::move(it->second);
    ready_.erase(it);
    // Keep the eviction order exact: a taken seed must not linger as a
    // stale entry (it would grow unboundedly on long-lived streams and
    // could later evict a *rebuilt* generation for the same seed out of
    // turn). The deque is bounded by max_pending, so the scan is cheap.
    for (auto order_it = ready_order_.begin(); order_it != ready_order_.end();
         ++order_it) {
      if (*order_it == seed) {
        ready_order_.erase(order_it);
        break;
      }
    }
    ++taken_;
    return generation;
  }
  // Queued but not started: cancel so the builder never duplicates the
  // caller's inline build.
  if (queued_.erase(seed) != 0) {
    for (auto queue_it = queue_.begin(); queue_it != queue_.end(); ++queue_it) {
      if (*queue_it == seed) {
        queue_.erase(queue_it);
        break;
      }
    }
  }
  return nullptr;
}

GenerationPrebuilderStats GenerationPrebuilder::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  GenerationPrebuilderStats stats;
  stats.requested = requested_;
  stats.built = built_;
  stats.taken = taken_;
  stats.dropped = dropped_;
  stats.evicted = evicted_;
  return stats;
}

void GenerationPrebuilder::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      // Already requested; fall through to join if the thread is still up.
    }
    shutdown_ = true;
    queue_.clear();
    queued_.clear();
    work_available_.notify_all();
  }
  if (builder_.joinable()) builder_.join();
}

void GenerationPrebuilder::BuilderLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (shutdown_) return;
    const uint64_t seed = queue_.front();
    queue_.pop_front();
    queued_.erase(seed);
    building_ = true;
    building_seed_ = seed;
    lock.unlock();
    // Off-lock build: BuildPreparedGeneration is thread-safe by contract
    // (reads only construction-time immutable state of the prototype).
    Result<std::unique_ptr<PreparedGeneration>> generation =
        prototype_.BuildPreparedGeneration(seed);
    lock.lock();
    building_ = false;
    if (generation.ok() && !shutdown_) {
      ready_.emplace(seed, generation.MoveValue());
      ready_order_.push_back(seed);
      ++built_;
    }
    // A failed build is dropped: Take() returns nullptr and the serving
    // thread's inline PrepareForNextQuery re-raises the error in context.
    build_finished_.notify_all();
  }
}

}  // namespace relcomp
