#include "engine/generation_prebuilder.h"

#include <utility>

namespace relcomp {

GenerationPrebuilder::GenerationPrebuilder(const Estimator& prototype,
                                           size_t max_pending,
                                           size_t num_builders,
                                           size_t max_ready_bytes,
                                           obs::MetricsRegistry* registry)
    : prototype_(prototype),
      max_pending_(max_pending == 0 ? 1 : max_pending),
      max_ready_bytes_(max_ready_bytes) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  requested_ = registry->GetCounter("prebuilder_requested_total");
  built_ = registry->GetCounter("prebuilder_built_total");
  taken_ = registry->GetCounter("prebuilder_taken_total");
  dropped_ = registry->GetCounter("prebuilder_dropped_total");
  evicted_ = registry->GetCounter("prebuilder_evicted_total");
  ready_bytes_gauge_ = registry->GetGauge("prebuilder_ready_bytes");
  if (num_builders == 0) num_builders = 1;
  builders_.reserve(num_builders);
  for (size_t i = 0; i < num_builders; ++i) {
    builders_.emplace_back([this] { BuilderLoop(); });
  }
}

GenerationPrebuilder::~GenerationPrebuilder() { Shutdown(); }

void GenerationPrebuilder::EvictOldestReadyLocked() {
  // ready_order_ mirrors ready_ exactly (Take() erases its entry), so the
  // front really is the oldest unclaimed generation.
  auto it = ready_.find(ready_order_.front());
  ready_bytes_ -= it->second.bytes;
  ready_bytes_gauge_->Set(static_cast<double>(ready_bytes_));
  ready_.erase(it);
  ready_order_.pop_front();
  evicted_->Inc();
}

bool GenerationPrebuilder::Request(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) return false;
  if (queued_.count(seed) != 0 || ready_.count(seed) != 0 ||
      building_.count(seed) != 0) {
    return true;  // already on its way
  }
  if (queue_.size() + ready_.size() >= max_pending_) {
    // At the bound, prefer the new request over stranded finished work:
    // evict the oldest ready-but-unclaimed generation (typically built for a
    // query that was then served from the result cache and never prepared).
    // Without this, stranded generations would pin index-sized memory and
    // wedge the builder shut for every future seed.
    if (ready_order_.empty()) {
      dropped_->Inc();
      return false;
    }
    EvictOldestReadyLocked();
  }
  queue_.push_back(seed);
  queued_.insert(seed);
  requested_->Inc();
  work_available_.notify_one();
  return true;
}

std::unique_ptr<PreparedGeneration> GenerationPrebuilder::Take(uint64_t seed) {
  std::unique_lock<std::mutex> lock(mutex_);
  // In-flight on some builder: wait it out — finishing a half-done O(L m)
  // build beats starting the same build from scratch inline.
  build_finished_.wait(lock,
                       [this, seed] { return building_.count(seed) == 0; });
  auto it = ready_.find(seed);
  if (it != ready_.end()) {
    std::unique_ptr<PreparedGeneration> generation =
        std::move(it->second.generation);
    ready_bytes_ -= it->second.bytes;
    ready_bytes_gauge_->Set(static_cast<double>(ready_bytes_));
    ready_.erase(it);
    // Keep the eviction order exact: a taken seed must not linger as a
    // stale entry (it would grow unboundedly on long-lived streams and
    // could later evict a *rebuilt* generation for the same seed out of
    // turn). The deque is bounded by max_pending, so the scan is cheap.
    for (auto order_it = ready_order_.begin(); order_it != ready_order_.end();
         ++order_it) {
      if (*order_it == seed) {
        ready_order_.erase(order_it);
        break;
      }
    }
    taken_->Inc();
    return generation;
  }
  // Queued but not started: cancel so no builder ever duplicates the
  // caller's inline build.
  if (queued_.erase(seed) != 0) {
    for (auto queue_it = queue_.begin(); queue_it != queue_.end(); ++queue_it) {
      if (*queue_it == seed) {
        queue_.erase(queue_it);
        break;
      }
    }
  }
  return nullptr;
}

GenerationPrebuilderStats GenerationPrebuilder::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  GenerationPrebuilderStats stats;
  stats.requested = requested_->Value();
  stats.built = built_->Value();
  stats.taken = taken_->Value();
  stats.dropped = dropped_->Value();
  stats.evicted = evicted_->Value();
  stats.ready_bytes = ready_bytes_;
  stats.builders = builders_.size();
  return stats;
}

size_t GenerationPrebuilder::ReadyBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ready_bytes_;
}

void GenerationPrebuilder::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    queue_.clear();
    queued_.clear();
    work_available_.notify_all();
  }
  for (std::thread& builder : builders_) {
    if (builder.joinable()) builder.join();
  }
}

void GenerationPrebuilder::BuilderLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (shutdown_) return;
    // FIFO pop = the request made earliest = the seed whose query is closest
    // to dispatch; with several builders the front seeds build concurrently.
    const uint64_t seed = queue_.front();
    queue_.pop_front();
    queued_.erase(seed);
    building_.insert(seed);
    lock.unlock();
    // Off-lock build: BuildPreparedGeneration is thread-safe by contract
    // (reads only construction-time immutable state of the prototype).
    Result<std::unique_ptr<PreparedGeneration>> generation =
        prototype_.BuildPreparedGeneration(seed);
    lock.lock();
    building_.erase(seed);
    if (generation.ok() && !shutdown_) {
      ReadyGeneration ready;
      ready.bytes = generation.value()->MemoryBytes();
      ready.generation = generation.MoveValue();
      ready_bytes_ += ready.bytes;
      ready_bytes_gauge_->Set(static_cast<double>(ready_bytes_));
      ready_.emplace(seed, std::move(ready));
      ready_order_.push_back(seed);
      built_->Inc();
      // Ready-pool byte budget: evict oldest-first until it holds. The
      // just-finished generation is evicted last (it is the newest) — and
      // even it goes if it alone exceeds the budget, because an
      // over-budget pool must never outlive the insert that created it.
      while (max_ready_bytes_ > 0 && ready_bytes_ > max_ready_bytes_ &&
             !ready_order_.empty()) {
        EvictOldestReadyLocked();
      }
    }
    // A failed build is dropped: Take() returns nullptr and the serving
    // thread's inline PrepareForNextQuery re-raises the error in context.
    build_finished_.notify_all();
  }
}

}  // namespace relcomp
