#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "reliability/estimator.h"
#include "reliability/estimator_factory.h"
#include "reliability/workload.h"

namespace relcomp {

/// \brief One routing decision: the execution knobs the engine applies to a
/// query instead of the static EngineOptions defaults.
///
/// The chosen (kind, num_samples, num_strata) fold into the query's derived
/// seed and its cache keys exactly as the static knobs do, so a decision is
/// part of the query's identity: the same decision produces bit-identical
/// answers at any thread count, and distinct decisions can never alias one
/// another in the result or sweep caches.
struct QueryPlan {
  EstimatorKind kind = EstimatorKind::kMonteCarlo;
  /// Sample budget K for this query.
  uint32_t num_samples = 1000;
  /// Stratified partitioning S of the budget (see EngineOptions::num_strata).
  uint32_t num_strata = 1;
  /// True when the router produced this plan (it may still equal the static
  /// knobs); false for the static default / router-off path.
  bool routed = false;
  /// True when the plan was served by the paper-faithful fallback latch
  /// (predicted-vs-observed latency regressed past the gate).
  bool fallback = false;
  /// The cost model's latency prediction for this plan, in seconds (0 when
  /// the model has no curve for the kind). Feeds the fallback gate.
  double predicted_seconds = 0.0;
};

/// The paper-faithful static configuration the router falls back to (and
/// measures its candidates against): the engine's EngineOptions knobs.
struct RouterStaticConfig {
  EstimatorKind kind = EstimatorKind::kMonteCarlo;
  uint32_t num_samples = 1000;
  uint32_t num_strata = 1;
};

/// \brief Routing knobs (EngineOptions::router).
struct RouterOptions {
  /// Fallback gate: the observed/predicted latency ratio a routed query must
  /// exceed to count as a regression. Generous by default — the latch
  /// targets sustained order-of-magnitude regressions (the Kepler-style
  /// safety net), never noise; the Default cost model's absolute scale is a
  /// prior, not a measurement.
  double fallback_gate = 50.0;
  /// Consecutive regressing routed queries required to trip the latch.
  uint64_t fallback_min_observations = 64;
  /// Queries faster than this many seconds never count toward the latch
  /// (too small to judge a regression against scheduler noise).
  double fallback_min_seconds = 0.05;
  /// Hysteresis: a candidate backend replaces the static kind only when its
  /// predicted latency improves on the static kind's by at least this
  /// fraction, so model noise near a tie cannot flap the decision.
  double hysteresis_margin = 0.10;
  /// Floor on the routed sample budget K (the equal-accuracy budget cut
  /// never goes below this).
  uint32_t min_budget = 64;
  /// Ceiling on the routed stratum count S.
  uint32_t max_strata = 64;
  /// Sweeps predicted cheaper than this many seconds are not worth the
  /// stratum-scheduler overhead and keep the static S.
  double stratify_min_seconds = 1e-3;
  /// Seconds one edge visit costs in RouterModel::Default's prior (only
  /// used when no calibrated profile is loaded; relative ordering between
  /// backends is what routing consumes).
  double edge_visit_seconds = 2e-9;
};

/// Graph-level features precomputed once at QueryEngine::Create.
struct GraphFeatures {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  double avg_out_degree = 0.0;
  double mean_edge_prob = 0.0;
};

/// Per-query features the router decides from. All fields are pure functions
/// of the query content and construction-time graph state — never of thread
/// count, load, or time — which is what keeps decisions deterministic.
struct QueryFeatures {
  WorkloadKind workload = WorkloadKind::kSt;
  /// Out-degree of the query's source node.
  uint32_t out_degree = 0;
  /// Escape probability eps(s) = 1 - prod_{e in out(s)} (1 - p_e): the
  /// probability at least one out-edge of the source exists. Every s-t path
  /// leaves s through some out-edge, so R(s, t) <= eps(s) for every t —
  /// a sound per-source upper bound on any answer, which is what licenses
  /// the equal-accuracy budget cut (see EstimatorRouter).
  double escape_prob = 0.0;
  /// Workload parameter: top-k's k, distance's d, 0 otherwise. Ignored for
  /// sweep kinds (their plan must be shared across k / eta — the
  /// sweep-sharing contract).
  uint32_t param = 0;
};

/// What one candidate backend can do, probed from a live replica at
/// QueryEngine::Create, plus its self-reported cost hints.
struct BackendCapabilities {
  EstimatorKind kind = EstimatorKind::kMonteCarlo;
  bool source_sweep = false;
  bool stratified_sweep = false;
  bool distance = false;
  CostHints hints;
};

/// \brief Calibrated piecewise-linear cost model: per-backend latency and
/// accuracy curves in the sample budget K.
///
/// Two constructors: FromJson loads the machine-readable profile
/// `examples/estimator_tournament --json` emits (measured convergence
/// curves — retrainable without recompiling), Default builds a prior from
/// each backend's CostHints and the graph's size. Predictions are consumed
/// *relatively* (candidate A vs candidate B at the same K) and by the
/// generously-gated fallback latch, so a profile calibrated on one dataset
/// transfers: shape and ordering matter, absolute scale does not.
class RouterModel {
 public:
  struct CurvePoint {
    double k = 0.0;
    double seconds = 0.0;
    double variance = 0.0;
  };
  struct BackendProfile {
    EstimatorKind kind = EstimatorKind::kMonteCarlo;
    /// Sorted by k, at least one point.
    std::vector<CurvePoint> curve;
    double converged_k = 0.0;
  };

  RouterModel() = default;

  /// Prior model from CostHints: seconds(K) = edge_visit_seconds *
  /// (per_query_edge_cost * m + per_sample_edge_cost * K * m_sampled), with
  /// m_sampled the expected sampled-subgraph edge count; variance(K) =
  /// 0.25 / K (the MC worst case).
  static RouterModel Default(const std::vector<BackendCapabilities>& backends,
                             const GraphFeatures& graph,
                             const RouterOptions& options);

  /// Parses the tournament profile. Backends whose kind string is unknown
  /// are skipped; a profile with no usable backend is an error, as is
  /// malformed JSON.
  static Result<RouterModel> FromJson(std::string_view json);

  bool Has(EstimatorKind kind) const { return Find(kind) != nullptr; }

  /// Piecewise-linear interpolation over the kind's curve; linear
  /// extrapolation beyond the last point, proportional scaling below the
  /// first. Returns 0 when the model has no curve for the kind.
  double PredictSeconds(EstimatorKind kind, double k) const;
  double PredictVariance(EstimatorKind kind, double k) const;

  const std::vector<BackendProfile>& profiles() const { return profiles_; }

 private:
  const BackendProfile* Find(EstimatorKind kind) const;
  static double Interpolate(const std::vector<CurvePoint>& curve, double k,
                            double CurvePoint::*field);

  std::vector<BackendProfile> profiles_;
};

/// \brief Per-query (backend, budget, strata) selection from the calibrated
/// cost model, with a paper-faithful fallback.
///
/// Decisions are a *pure function* of (model, options, static config, graph
/// features, quantized query features): the live latency histograms feed
/// only the fallback latch, never the decision itself — so with the latch
/// disengaged, a routed engine answers bit-identically at any thread count
/// (the decision memo is plain memoization, not state).
///
/// The three levers, each accuracy-preserving:
///  - Budget: R(s, t) <= eps(s) for every t, and x(1-x) is increasing on
///    [0, 1/2], so a budget K' = 4 eps (1 - eps) K keeps the worst-case
///    sampling variance eps(1-eps)/K' <= 0.25/K — no worse than the static
///    budget's worst case over the whole query space. Clamped to
///    [min_budget, K].
///  - Backend: switch away from the static kind only when the model predicts
///    at least `hysteresis_margin` improvement at the routed K — or when the
///    static kind cannot answer the workload at all (then the cheapest
///    capable candidate *enables* it instead of failing).
///  - Strata: sweeps predicted above stratify_min_seconds get
///    S = max(static S, 2 * num_threads) (capped at max_strata), so one hot
///    sweep parallelizes across the machine through the existing stratum
///    work-stealing scheduler.
///
/// Fallback latch: after fallback_min_observations *consecutive* routed
/// queries each observed at > fallback_gate x their prediction (and above
/// the fallback_min_seconds floor), the latch engages — sticky for the
/// engine's lifetime — and every later decision is the paper-faithful static
/// configuration, counted in `router_fallbacks`. The latch is the one
/// deliberately run-dependent escape hatch; with the default gate it only
/// trips under sustained order-of-magnitude mispredictions.
///
/// Metrics (ISSUE-specified names): `router_decisions{kind=...}` — one per
/// Decide call, labeled with the chosen backend; `router_fallbacks` —
/// decisions served by the latch; `router_predicted_vs_actual` — histogram
/// of 1000 x observed/predicted (milli-ratio, so 1000 = perfect).
///
/// Thread-safe: Decide and RecordObserved may race freely across workers.
class EstimatorRouter {
 public:
  /// `registry` is not owned and must outlive the router.
  EstimatorRouter(RouterModel model, RouterOptions options,
                  RouterStaticConfig static_config, GraphFeatures graph,
                  std::vector<BackendCapabilities> candidates,
                  size_t num_threads, obs::MetricsRegistry* registry);

  /// The routing decision for `features`. Deterministic in the quantized
  /// features while the fallback latch is disengaged.
  QueryPlan Decide(const QueryFeatures& features);

  /// The paper-faithful static plan (the router-off / fallback behavior).
  QueryPlan StaticPlan() const;

  /// Feeds one executed routed query's observed latency to the fallback
  /// gate and the predicted-vs-actual histogram. Call once per estimator
  /// invocation (never for cache hits or coalesced waiters — they observed
  /// someone else's latency).
  void RecordObserved(const QueryPlan& plan, double observed_seconds);

  bool fallback_engaged() const {
    return fallback_engaged_.load(std::memory_order_relaxed);
  }
  uint64_t decisions() const { return decisions_total_; }
  uint64_t fallbacks() const { return fallbacks_->Value(); }

  const RouterModel& model() const { return model_; }
  const RouterOptions& options() const { return options_; }

 private:
  /// Quantizes features into the memo key: (sweep-collapsed workload,
  /// log2 degree bucket, eps rounded *up* to 1/64ths — conservative for the
  /// budget cut — param for non-sweep kinds). Coarse on purpose: quantized
  /// decisions are stable under feature noise, and same-bucket sources
  /// share a plan.
  uint64_t QuantizeKey(const QueryFeatures& features, double* eps_bucket,
                       bool* is_sweep) const;

  QueryPlan Compute(const QueryFeatures& features, double eps, bool is_sweep);

  const BackendCapabilities* FindCandidate(EstimatorKind kind) const;
  bool Capable(const BackendCapabilities& candidate, WorkloadKind workload,
               bool is_sweep) const;

  const RouterModel model_;
  const RouterOptions options_;
  const RouterStaticConfig static_;
  const GraphFeatures graph_;
  const std::vector<BackendCapabilities> candidates_;
  const size_t num_threads_;

  std::mutex memo_mutex_;
  std::unordered_map<uint64_t, QueryPlan> memo_;

  std::atomic<bool> fallback_engaged_{false};
  std::atomic<uint64_t> consecutive_regressions_{0};
  std::atomic<uint64_t> decisions_total_{0};

  obs::MetricsRegistry* registry_;
  obs::Counter* fallbacks_;
  obs::Histogram* predicted_vs_actual_;
};

/// Parses the display name EstimatorKindName produces back into a kind
/// ("MC", "BFSSharing", ...); false when unknown.
bool EstimatorKindFromName(std::string_view name, EstimatorKind* kind);

}  // namespace relcomp

