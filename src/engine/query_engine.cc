#include "engine/query_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/fault_injection.h"
#include "common/format.h"
#include "common/rng.h"
#include "common/timer.h"
#include "common/wire.h"
#include "persist/journal.h"

namespace relcomp {

namespace {
/// Domain separator so the PrepareForNextQuery seed never equals the
/// Estimate seed for the same query.
constexpr uint64_t kPrepareSeedTag = 0x707265ULL;  // "pre"
/// Domain separator for per-source sweep seeds, so a sweep seed can never
/// alias an st/distance query seed structurally.
constexpr uint64_t kSweepSeedTag = 0x73776570ULL;  // "swep"

/// How long a cancellable waiter sleeps between token polls while blocked on
/// a flight. Purely a latency/CPU trade: the poll consumes no randomness and
/// a completed flight still wakes waiters via notify_all immediately.
constexpr std::chrono::milliseconds kCancelWaitSlice{5};

/// True when `status` is the deadline/cancellation family — the failures
/// that also count in engine_deadline_exceeded_total.
bool IsCancellation(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kCancelled;
}

/// Scoped pipeline-stage recorder: always lands the elapsed nanoseconds in
/// the stage histogram (when given), and additionally opens a matching span
/// when the query is traced — one timestamp pair feeds both, so the span
/// tree and the histogram never disagree about a stage's extent.
class StageTimer {
 public:
  StageTimer(obs::Histogram* histogram, obs::TraceBuffer* trace,
             obs::SpanKind kind, uint32_t parent, uint32_t detail = 0)
      : histogram_(histogram),
        trace_(trace),
        begin_ns_(StopwatchNs::Now()),
        span_(trace == nullptr
                  ? obs::TraceBuffer::kNone
                  : trace->BeginAt(kind, begin_ns_, parent, detail)) {}

  ~StageTimer() { Stop(); }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Ends the stage early (idempotent; the destructor calls it).
  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    const uint64_t end_ns = StopwatchNs::Now();
    if (histogram_ != nullptr) histogram_->Record(end_ns - begin_ns_);
    if (trace_ != nullptr) trace_->EndAt(span_, end_ns);
  }

  /// Id for nesting children under this stage's span (kNone when untraced).
  uint32_t id() const { return span_; }

 private:
  obs::Histogram* histogram_;
  obs::TraceBuffer* trace_;
  uint64_t begin_ns_;
  uint32_t span_;
  bool stopped_ = false;
};

/// \name Warm-journal record payloads (see src/persist/README.md)
/// Records carry everything needed to re-derive the cache key on restore;
/// the restoring engine validates kind / budget / seed against *its own*
/// plans and skips mismatches, so a journal written under another
/// configuration (or another master seed) can never resurface a wrong
/// answer. Decoders return false on any truncation or shape violation.
/// @{
std::string EncodeSweepRecord(const SweepCacheExport& entry) {
  std::string out;
  WireWriter writer(&out);
  writer.PutU8(static_cast<uint8_t>(entry.key.kind));
  writer.PutU32(entry.key.source);
  writer.PutU32(entry.key.num_samples);
  writer.PutU64(entry.key.seed);
  writer.PutF64(entry.ttl_seconds);
  writer.PutU64(entry.sweep->size());
  for (const double v : *entry.sweep) writer.PutF64(v);
  return out;
}

bool DecodeSweepRecord(const std::string& payload, SweepCacheKey* key,
                       std::vector<double>* sweep, double* ttl_seconds) {
  WireReader reader(payload.data(), payload.size());
  uint8_t kind = 0;
  uint64_t n = 0;
  if (!reader.ReadU8(&kind) || !reader.ReadU32(&key->source) ||
      !reader.ReadU32(&key->num_samples) || !reader.ReadU64(&key->seed) ||
      !reader.ReadF64(ttl_seconds) || !reader.ReadU64(&n)) {
    return false;
  }
  key->kind = static_cast<EstimatorKind>(kind);
  if (n != reader.remaining() / sizeof(double) ||
      reader.remaining() % sizeof(double) != 0) {
    return false;
  }
  sweep->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!reader.ReadF64(&(*sweep)[i])) return false;
  }
  return true;
}

std::string EncodeResultRecord(const ResultCacheExport& entry) {
  std::string out;
  WireWriter writer(&out);
  const EngineQuery& q = entry.key.query;
  writer.PutU8(static_cast<uint8_t>(q.workload));
  writer.PutU32(q.source);
  writer.PutU32(q.target);
  writer.PutU32(q.k);
  writer.PutF64(q.eta);
  writer.PutU32(q.max_hops);
  writer.PutU8(static_cast<uint8_t>(entry.key.kind));
  writer.PutU32(entry.key.num_samples);
  writer.PutU64(entry.key.seed);
  writer.PutF64(entry.ttl_seconds);
  writer.PutF64(entry.value.reliability);
  writer.PutU32(entry.value.num_samples);
  writer.PutU64(entry.value.targets.size());
  for (const ReliableTarget& target : entry.value.targets) {
    writer.PutU32(target.node);
    writer.PutF64(target.reliability);
  }
  return out;
}

bool DecodeResultRecord(const std::string& payload, ResultCacheKey* key,
                        ResultCacheValue* value, double* ttl_seconds) {
  WireReader reader(payload.data(), payload.size());
  uint8_t workload = 0;
  uint8_t kind = 0;
  uint64_t num_targets = 0;
  if (!reader.ReadU8(&workload) || !reader.ReadU32(&key->query.source) ||
      !reader.ReadU32(&key->query.target) || !reader.ReadU32(&key->query.k) ||
      !reader.ReadF64(&key->query.eta) ||
      !reader.ReadU32(&key->query.max_hops) || !reader.ReadU8(&kind) ||
      !reader.ReadU32(&key->num_samples) || !reader.ReadU64(&key->seed) ||
      !reader.ReadF64(ttl_seconds) || !reader.ReadF64(&value->reliability) ||
      !reader.ReadU32(&value->num_samples) || !reader.ReadU64(&num_targets)) {
    return false;
  }
  if (workload >= kNumWorkloadKinds) return false;
  key->query.workload = static_cast<WorkloadKind>(workload);
  key->kind = static_cast<EstimatorKind>(kind);
  constexpr size_t kTargetBytes = sizeof(uint32_t) + sizeof(double);
  if (num_targets != reader.remaining() / kTargetBytes ||
      reader.remaining() % kTargetBytes != 0) {
    return false;
  }
  value->targets.resize(num_targets);
  for (uint64_t i = 0; i < num_targets; ++i) {
    if (!reader.ReadU32(&value->targets[i].node) ||
        !reader.ReadF64(&value->targets[i].reliability)) {
      return false;
    }
  }
  return true;
}
/// @}
}  // namespace

QueryEngine::QueryEngine(const UncertainGraph& graph, EngineOptions options,
                         std::unique_ptr<obs::MetricsRegistry> registry,
                         std::unique_ptr<PersistentStore> store,
                         std::vector<std::unique_ptr<Estimator>> replicas,
                         std::vector<CandidateReplicas> extra_replicas)
    : graph_(graph),
      options_(std::move(options)),
      registry_(std::move(registry)),
      tracer_(std::make_unique<obs::Tracer>(obs::TracerOptions{
          options_.trace_sample_rate, options_.slow_query_ms,
          options_.trace_ring_capacity})),
      store_(std::move(store)),
      replicas_(std::move(replicas)),
      extra_replicas_(std::move(extra_replicas)),
      stats_(registry_.get()) {
  sweep_capable_ = !replicas_.empty() && replicas_.front()->SupportsSourceSweep();
  for (const CandidateReplicas& candidate : extra_replicas_) {
    if (!candidate.replicas.empty() &&
        candidate.replicas.front()->SupportsSourceSweep()) {
      sweep_capable_ = true;
    }
  }
  stage_cache_probe_ =
      registry_->GetHistogram("engine_stage_latency_ns", "stage", "cache_probe");
  stage_prepare_ =
      registry_->GetHistogram("engine_stage_latency_ns", "stage", "prepare");
  stage_stratum_ =
      registry_->GetHistogram("engine_stage_latency_ns", "stage", "stratum");
  stage_merge_ =
      registry_->GetHistogram("engine_stage_latency_ns", "stage", "merge");
  stage_publish_ =
      registry_->GetHistogram("engine_stage_latency_ns", "stage", "publish");
  stage_derive_ =
      registry_->GetHistogram("engine_stage_latency_ns", "stage", "derive");
  stage_sweep_wait_ =
      registry_->GetHistogram("engine_stage_latency_ns", "stage", "sweep_wait");
  if (options_.enable_cache) {
    cache_ = std::make_unique<ResultCache>(
        options_.cache_capacity, options_.cache_shards,
        options_.cache_max_bytes, registry_.get());
  }
  if (options_.enable_sweep_cache) {
    sweep_cache_ = std::make_unique<SweepCache>(options_.sweep_cache_max_bytes,
                                                registry_.get());
  }
  if (options_.enable_generation_prebuild && !replicas_.empty() &&
      replicas_.front()->SupportsPreparedGenerations()) {
    prebuilder_ = std::make_unique<GenerationPrebuilder>(
        *replicas_.front(), options_.prebuild_max_pending,
        options_.prebuild_threads, options_.prebuild_max_bytes,
        registry_.get());
  }
  // Serving pool: exactly num_threads workers. replicas_ may hold more —
  // the tail replicas belong to the auxiliary refresh lane below.
  pool_ = std::make_unique<ThreadPool>(
      options_.num_threads, options_.queue_capacity,
      registry_->GetHistogram("engine_stage_latency_ns", "stage",
                              "queue_wait"));
  const size_t lane_width = RefreshLaneWidth();
  if (lane_width > 0) {
    aux_pool_ = std::make_unique<ThreadPool>(lane_width,
                                             options_.queue_capacity);
  }
  refresh_lane_depth_ = registry_->GetGauge("refresh_lane_depth");
  if (store_ != nullptr && options_.persist_flush_seconds > 0.0) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
  // Storage-footprint gauges: actual resident bytes of the graph's selected
  // layout, labeled by layout so raw/compact engines are comparable side by
  // side in one exported snapshot.
  registry_->GetGauge("graph_memory_bytes")
      ->Set(static_cast<double>(graph_.MemoryBytes()));
  registry_
      ->GetGauge("graph_bytes_per_edge", "layout",
                 StorageLayoutName(graph_.layout()))
      ->Set(graph_.num_edges() == 0
                ? 0.0
                : static_cast<double>(graph_.MemoryBytes()) /
                      static_cast<double>(graph_.num_edges()));
}

QueryEngine::~QueryEngine() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flusher_mutex_);
      flusher_stop_ = true;
    }
    flusher_cv_.notify_all();
    flusher_.join();
  }
  if (aux_pool_ != nullptr) aux_pool_->Shutdown();
  pool_->Shutdown();
  // Clean-shutdown flush: both pools are quiescent, so this captures the
  // final warm state (a crash instead simply loses what the last periodic
  // flush missed — never more).
  if (store_ != nullptr) (void)FlushWarmState();
  // Join the builder thread before any replica (its build prototype) dies.
  prebuilder_.reset();
}

Result<std::unique_ptr<QueryEngine>> QueryEngine::Create(
    const UncertainGraph& graph, const EngineOptions& options) {
  EngineOptions opts = options;
  if (opts.num_threads == 0) opts.num_threads = 1;
  if (opts.num_strata == 0) opts.num_strata = 1;
  if (opts.num_samples == 0) {
    return Status::InvalidArgument("EngineOptions::num_samples must be > 0");
  }
  if (opts.cache_ttl < 0.0 || opts.negative_cache_ttl < 0.0 ||
      opts.scout_warm_ttl < 0.0) {
    return Status::InvalidArgument("EngineOptions TTLs must be >= 0");
  }
  // The registry exists before anything else so the persistence tier's
  // recovery counters capture the snapshot restore that happens *before*
  // the engine object does.
  auto registry = std::make_unique<obs::MetricsRegistry>();
  std::unique_ptr<PersistentStore> store;
  bool snapshot_restored = false;
  if (!opts.persist_dir.empty()) {
    RELCOMP_ASSIGN_OR_RETURN(store,
                             PersistentStore::Open(opts.persist_dir,
                                                   registry.get()));
    // O(1) cold start: hand the factory the snapshot's artifacts so the
    // replica build below maps instead of rebuilding. An absent, corrupt,
    // version-refused, or mismatched snapshot leaves these null — the
    // factory then rebuilds from source, bit-identically.
    SnapshotArtifacts artifacts = store->OpenSnapshot(graph, opts.factory);
    if (artifacts.valid) {
      opts.factory.preloaded_bfs_index = std::move(artifacts.bfs_index);
      opts.factory.preloaded_prob_tree = std::move(artifacts.prob_tree);
      snapshot_restored = true;
    } else {
      store->CountRebuild();
    }
  }
  // The refresh lane (when engaged) gets its own replicas appended after
  // the serving set, so background refreshes never touch a serving
  // worker's replica. Index-carrying kinds still share one index.
  const size_t lane_width =
      opts.refresh_lane_threads > 0 &&
              (opts.max_stale_seconds > 0.0 || store != nullptr)
          ? opts.refresh_lane_threads
          : 0;
  const size_t replica_count = opts.num_threads + lane_width;
  // One shared immutable index for all replicas of an index-carrying kind
  // (built inside the factory), private scratch per replica.
  RELCOMP_ASSIGN_OR_RETURN(
      std::vector<std::unique_ptr<Estimator>> replicas,
      MakeEstimatorReplicas(opts.kind, graph, replica_count, opts.factory));
  // Routing candidates: the static kind plus plain MC — the cheap,
  // capability-complete baseline every backend is measured against (and the
  // enabler for workloads the static kind cannot answer). Each candidate
  // gets the same per-worker replica discipline as the primary set.
  std::vector<CandidateReplicas> extra;
  if (opts.enable_router && opts.kind != EstimatorKind::kMonteCarlo) {
    RELCOMP_ASSIGN_OR_RETURN(
        std::vector<std::unique_ptr<Estimator>> mc_replicas,
        MakeEstimatorReplicas(EstimatorKind::kMonteCarlo, graph,
                              replica_count, opts.factory));
    CandidateReplicas candidate;
    candidate.kind = EstimatorKind::kMonteCarlo;
    candidate.replicas = std::move(mc_replicas);
    extra.push_back(std::move(candidate));
  }
  // The preloaded artifacts were consumed by the replica build; the engine
  // keeps its options free of them (they pin the snapshot mapping).
  const bool auto_snapshot = opts.persist_auto_snapshot;
  const bool warm_restore = opts.warm_restore;
  opts.factory.preloaded_bfs_index.reset();
  opts.factory.preloaded_prob_tree.reset();
  std::unique_ptr<QueryEngine> engine(new QueryEngine(
      graph, std::move(opts), std::move(registry), std::move(store),
      std::move(replicas), std::move(extra)));
  RELCOMP_RETURN_NOT_OK(engine->InitRouter());
  if (engine->store_ != nullptr) {
    engine->warm_report_.snapshot_restored = snapshot_restored;
    if (!snapshot_restored && auto_snapshot) {
      // Best effort: a failed snapshot write (disk full, injected fault)
      // only costs the next restart its O(1) cold start.
      (void)engine->PersistSnapshot();
    }
    if (warm_restore) engine->RestoreWarmState();
  }
  return engine;
}

size_t QueryEngine::RefreshLaneWidth() const {
  // The lane exists only when there is background work to put on it —
  // stale-while-revalidate refreshes or journal flushes. Without either,
  // configurations are byte-for-byte the pre-lane engine.
  return options_.refresh_lane_threads > 0 &&
                 (options_.max_stale_seconds > 0.0 || store_ != nullptr)
             ? options_.refresh_lane_threads
             : 0;
}

Status QueryEngine::SubmitRefreshTask(ThreadPool::Task task) {
  if (aux_pool_ == nullptr) return pool_->TrySubmit(std::move(task));
  refresh_lane_depth_->Add(1.0);
  Status submitted = aux_pool_->TrySubmit(
      [this, task = std::move(task)](size_t lane_worker) {
        // Aux workers run on the appended replicas (never a serving one).
        task(options_.num_threads + lane_worker);
        refresh_lane_depth_->Add(-1.0);
      });
  if (!submitted.ok()) refresh_lane_depth_->Add(-1.0);
  return submitted;
}

void QueryEngine::FlusherLoop() {
  std::unique_lock<std::mutex> lock(flusher_mutex_);
  while (!flusher_stop_) {
    flusher_cv_.wait_for(
        lock, std::chrono::duration<double>(options_.persist_flush_seconds));
    if (flusher_stop_) break;
    lock.unlock();
    const Status lane = SubmitRefreshTask([this](size_t) {
      (void)FlushWarmState();
    });
    // Full lane: flush inline on this thread rather than skip the period
    // (the flusher is itself off the serving pool).
    if (!lane.ok()) (void)FlushWarmState();
    lock.lock();
  }
}

Status QueryEngine::PersistSnapshot() {
  if (store_ == nullptr) {
    return Status::FailedPrecondition("persistence is not configured");
  }
  const BfsSharingIndex* bfs_index = nullptr;
  const ProbTreeIndex* prob_tree = nullptr;
  if (const auto* bfs =
          dynamic_cast<const BfsSharingEstimator*>(replicas_.front().get())) {
    bfs_index = bfs->shared_index().get();
  }
  if (const auto* pt =
          dynamic_cast<const ProbTreeEstimator*>(replicas_.front().get())) {
    prob_tree = pt->shared_index().get();
  }
  return store_->WriteSnapshot(graph_, options_.factory, bfs_index, prob_tree);
}

Status QueryEngine::FlushWarmState() {
  if (store_ == nullptr) {
    return Status::FailedPrecondition("persistence is not configured");
  }
  std::lock_guard<std::mutex> lock(journal_mutex_);
  size_t appended = 0;
  if (sweep_cache_ != nullptr) {
    for (const SweepCacheExport& entry : sweep_cache_->ExportEntries()) {
      if (!journaled_sweeps_.insert(entry.key.Hash()).second) continue;
      RELCOMP_RETURN_NOT_OK(
          store_->AppendWarm(kJournalRecordSweep, EncodeSweepRecord(entry)));
      ++appended;
    }
  }
  if (cache_ != nullptr) {
    for (const ResultCacheExport& entry : cache_->ExportEntries()) {
      if (!journaled_results_.insert(entry.key.Hash()).second) continue;
      RELCOMP_RETURN_NOT_OK(
          store_->AppendWarm(kJournalRecordResult, EncodeResultRecord(entry)));
      ++appended;
    }
  }
  if (appended == 0) return Status::OK();
  return store_->SyncJournal();
}

void QueryEngine::RestoreWarmState() {
  warm_report_.attempted = true;
  Result<JournalReplay> replayed = store_->ReplayWarm();
  if (!replayed.ok()) return;  // unreadable journal: cold caches, not fatal
  const JournalReplay replay = replayed.MoveValue();
  warm_report_.torn_tail = replay.torn_tail;
  uint64_t recovered = 0;
  for (const JournalRecord& record : replay.records) {
    if (record.type == kJournalRecordSweep && sweep_cache_ != nullptr) {
      SweepCacheKey key;
      auto sweep = std::make_shared<std::vector<double>>();
      double ttl_seconds = 0.0;
      if (!DecodeSweepRecord(record.payload, &key, sweep.get(),
                             &ttl_seconds) ||
          key.source >= graph_.num_nodes() ||
          sweep->size() != graph_.num_nodes()) {
        ++warm_report_.skipped;
        continue;
      }
      // Re-derive the key this engine would use for the record's source: a
      // record journaled under another kind, budget, master seed, or plan
      // re-derives differently and is skipped — never served.
      const QueryPlan plan = SweepPlan(key.source);
      if (plan.kind != key.kind || plan.num_samples != key.num_samples ||
          SweepSeedForPlan(key.source, plan) != key.seed) {
        ++warm_report_.skipped;
        continue;
      }
      sweep_cache_->Insert(key, std::move(sweep), ttl_seconds);
      ++warm_report_.sweep_entries;
      ++recovered;
    } else if (record.type == kJournalRecordResult && cache_ != nullptr) {
      ResultCacheKey key;
      ResultCacheValue value;
      double ttl_seconds = 0.0;
      if (!DecodeResultRecord(record.payload, &key, &value, &ttl_seconds) ||
          !ValidateWorkload(graph_, key.query).ok()) {
        ++warm_report_.skipped;
        continue;
      }
      const QueryPlan plan = PlanFor(key.query);
      if (plan.kind != key.kind || plan.num_samples != key.num_samples ||
          SeedForPlan(key.query, plan) != key.seed) {
        ++warm_report_.skipped;
        continue;
      }
      cache_->Insert(key, value, ttl_seconds);
      ++warm_report_.result_entries;
      ++recovered;
    } else {
      ++warm_report_.skipped;
    }
  }
  if (recovered > 0) store_->CountJournalRecovered(recovered);
  // The restored state is folded back in; truncate so the next flush
  // re-journals it fresh (the journaled-key sets start empty, so the first
  // flush after restore rewrites every live entry).
  (void)store_->ResetJournal();
}

Status QueryEngine::InitRouter() {
  if (!options_.enable_router) return Status::OK();
  // Capabilities are probed from live replicas (worker 0 of each set), never
  // hard-coded per kind — a backend gaining a sweep core is picked up here
  // automatically.
  const auto probe = [](EstimatorKind kind, const Estimator& estimator) {
    BackendCapabilities caps;
    caps.kind = kind;
    caps.source_sweep = estimator.SupportsSourceSweep();
    caps.stratified_sweep = estimator.SupportsStratifiedSweep();
    caps.distance = estimator.SupportsDistanceConstrained();
    caps.hints = estimator.cost_hints();
    return caps;
  };
  std::vector<BackendCapabilities> candidates;
  candidates.push_back(probe(options_.kind, *replicas_.front()));
  for (const CandidateReplicas& extra : extra_replicas_) {
    candidates.push_back(probe(extra.kind, *extra.replicas.front()));
  }
  GraphFeatures features;
  features.num_nodes = graph_.num_nodes();
  features.num_edges = graph_.num_edges();
  features.avg_out_degree =
      features.num_nodes == 0
          ? 0.0
          : static_cast<double>(features.num_edges) /
                static_cast<double>(features.num_nodes);
  features.mean_edge_prob = graph_.ProbStats().mean;
  RouterModel model;
  if (!options_.router_profile_json.empty()) {
    RELCOMP_ASSIGN_OR_RETURN(
        model, RouterModel::FromJson(options_.router_profile_json));
  } else {
    model = RouterModel::Default(candidates, features, options_.router);
  }
  // eps(s) per node: the per-source reachability upper bound the budget
  // lever rests on (QueryFeatures::escape_prob). One pass over the edges.
  escape_prob_.assign(graph_.num_nodes(), 0.0);
  for (size_t v = 0; v < graph_.num_nodes(); ++v) {
    double survive = 1.0;
    for (const AdjEntry& entry : graph_.OutEdges(static_cast<NodeId>(v))) {
      survive *= 1.0 - entry.prob;
    }
    escape_prob_[v] = 1.0 - survive;
  }
  RouterStaticConfig static_config;
  static_config.kind = options_.kind;
  static_config.num_samples = options_.num_samples;
  static_config.num_strata = options_.num_strata;
  router_ = std::make_unique<EstimatorRouter>(
      std::move(model), options_.router, static_config, features,
      std::move(candidates), options_.num_threads, registry_.get());
  return Status::OK();
}

Estimator& QueryEngine::ReplicaFor(EstimatorKind kind, size_t worker_id) {
  if (kind == options_.kind) return *replicas_[worker_id];
  for (CandidateReplicas& candidate : extra_replicas_) {
    if (candidate.kind == kind) return *candidate.replicas[worker_id];
  }
  // Unreachable by construction: the router only decides kinds a replica
  // set was built for. Degrade to the primary set rather than crash.
  return *replicas_[worker_id];
}

uint64_t QueryEngine::QuerySeed(const EngineQuery& query) const {
  // Content-derived, not index-derived: the seed depends on what is asked,
  // never on when or where it runs. Repeats of a query inside one engine get
  // the same seed (and thus the same answer), which is exactly what makes a
  // cache hit — or a coalesced in-flight share — indistinguishable from a
  // recomputation.
  //
  // Sweep kinds deliberately coarsen "what is asked" to the source: top-k
  // and reliable-set answers are derived views of one per-source sweep, so
  // their seeds fold (source, kind, num_samples) but NOT k, eta, or the
  // workload tag. That is what lets top-k(s, 5), top-k(s, 10) and
  // reliable-set(s, eta) share one EstimateFromSource — and it keeps the
  // standalone-API equivalence exact, because the standalone helpers given
  // this seed run the identical sweep.
  return SeedForPlan(query, PlanFor(query));
}

uint64_t QueryEngine::SweepSeed(NodeId source) const {
  return SweepSeedForPlan(source, SweepPlan(source));
}

uint64_t QueryEngine::SeedForPlan(const EngineQuery& query,
                                  const QueryPlan& plan) const {
  // The plan's knobs fold in the exact positions the static knobs occupy in
  // the pre-router derivation, so enable_router == false (where plan echoes
  // the static knobs and the num_strata fold is skipped) reproduces the
  // historical seeds byte-for-byte. With the router on, num_strata folds
  // too: it is part of the sampling plan for stratified kinds, and two plans
  // differing only in S must never share a seed (or a cache key).
  if (IsSweepWorkload(query.workload)) {
    return SweepSeedForPlan(query.source, plan);
  }
  uint64_t seed = HashWorkloadQuery(options_.seed, query);
  seed = HashCombineSeed(seed, static_cast<uint64_t>(plan.kind));
  seed = HashCombineSeed(seed, plan.num_samples);
  if (router_ != nullptr) seed = HashCombineSeed(seed, plan.num_strata);
  return seed;
}

uint64_t QueryEngine::SweepSeedForPlan(NodeId source,
                                       const QueryPlan& plan) const {
  uint64_t seed = HashCombineSeed(options_.seed, kSweepSeedTag);
  seed = HashCombineSeed(seed, source);
  seed = HashCombineSeed(seed, static_cast<uint64_t>(plan.kind));
  seed = HashCombineSeed(seed, plan.num_samples);
  if (router_ != nullptr) seed = HashCombineSeed(seed, plan.num_strata);
  return seed;
}

uint64_t QueryEngine::PrepareSeed(const EngineQuery& query) const {
  return HashCombineSeed(QuerySeed(query), kPrepareSeedTag);
}

QueryPlan QueryEngine::PlanFor(const EngineQuery& query) const {
  // Sweep kinds take their source's plan — one plan per source whatever the
  // k / eta / workload tag, mirroring the sweep-seed coarsening that makes
  // sweep sharing possible.
  if (IsSweepWorkload(query.workload)) return SweepPlan(query.source);
  if (router_ == nullptr) {
    QueryPlan plan;
    plan.kind = options_.kind;
    plan.num_samples = options_.num_samples;
    plan.num_strata = options_.num_strata;
    return plan;
  }
  QueryFeatures features;
  features.workload = query.workload;
  features.out_degree = static_cast<uint32_t>(graph_.OutDegree(query.source));
  features.escape_prob = escape_prob_[query.source];
  features.param =
      query.workload == WorkloadKind::kDistance ? query.max_hops : 0;
  return router_->Decide(features);
}

QueryPlan QueryEngine::SweepPlan(NodeId source) const {
  if (router_ == nullptr) {
    QueryPlan plan;
    plan.kind = options_.kind;
    plan.num_samples = options_.num_samples;
    plan.num_strata = options_.num_strata;
    return plan;
  }
  QueryFeatures features;
  // Any sweep workload tag: the router quantizes every sweep kind onto one
  // plan bucket per source (param ignored), the sweep-sharing contract.
  features.workload = WorkloadKind::kTopK;
  features.out_degree = static_cast<uint32_t>(graph_.OutDegree(source));
  features.escape_prob = escape_prob_[source];
  features.param = 0;
  return router_->Decide(features);
}

EngineStatsSnapshot QueryEngine::StatsSnapshot() const {
  EngineStatsSnapshot snapshot =
      stats_.Snapshot(cache_.get(), sweep_cache_.get());
  snapshot.index_memory = IndexMemory();
  if (prebuilder_ != nullptr) snapshot.prebuilder = prebuilder_->Stats();
  if (router_ != nullptr) {
    snapshot.router_decisions = router_->decisions();
    snapshot.router_fallbacks = router_->fallbacks();
  }
  return snapshot;
}

IndexMemoryReport QueryEngine::IndexMemory() const {
  IndexMemoryReport report = ReportIndexMemory(replicas_);
  // Ready-but-unadopted prebuilt generations are index-sized residents too.
  if (prebuilder_ != nullptr) report.prebuilt_bytes = prebuilder_->ReadyBytes();
  return report;
}

void QueryEngine::AwaitCall(CallState& state) {
  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.pending == 0; });
}

void QueryEngine::FillFromValue(ResultCacheValue value, EngineResult* slot) {
  slot->status = std::move(value.status);
  if (slot->status.ok()) {
    slot->reliability = value.reliability;
    slot->num_samples = value.num_samples;
    slot->targets = std::move(value.targets);
  }
}

bool QueryEngine::TryServeWithoutCompute(
    const ResultCacheKey& key, EngineResult* slot,
    std::shared_ptr<InFlight>* leader_flight, const CancelToken* cancel,
    obs::TraceBuffer* trace, uint32_t parent) {
  // Fast path: lock-free-ish cache probe before touching the flight table.
  // Deliberately NOT gated on the cancel token: a cache hit costs O(1) and
  // an already-computed answer is strictly more useful than a deadline
  // error, even to a late caller.
  if (cache_ != nullptr) {
    std::optional<ResultCacheValue> hit;
    bool stale = false;
    bool refresh_owner = false;
    {
      StageTimer probe(stage_cache_probe_, trace, obs::SpanKind::kCacheProbe,
                       parent, /*detail=*/0);
      if (options_.max_stale_seconds > 0.0) {
        StaleLookupResult swr =
            cache_->LookupStale(key, options_.max_stale_seconds);
        hit = std::move(swr.value);
        stale = swr.stale;
        refresh_owner = swr.refresh_owner;
      } else {
        hit = cache_->Lookup(key);
      }
    }
    if (hit) {
      const bool negative = hit->negative();
      FillFromValue(std::move(*hit), slot);
      slot->seconds = 0.0;
      slot->cache_hit = true;
      slot->served_stale = stale;
      if (negative) {
        // Failure backoff: the cached error is served without recomputing.
        // Counted as a failure (and as a cache negative_hit), never as a
        // cache hit — executed + coalesced + failures + cache.hits must
        // still equal queries.
        stats_.RecordFailure(0.0);
      } else {
        stats_.RecordCacheHit();
        if (stale) stats_.RecordStaleServed();
      }
      if (refresh_owner) ScheduleResultRefresh(key);
      return true;
    }
  }
  if (!options_.enable_coalescing) return false;

  std::shared_ptr<InFlight> flight;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    // Re-check the cache under the flight lock: a leader publishes to the
    // cache *before* retiring its flight entry, so this double-check makes
    // "N concurrent identical misses -> 1 estimator invocation" exact
    // rather than best-effort (no window where neither table covers a key).
    // Uncounted probe (the user-level lookup was already recorded above, as
    // a miss) — and accounted as *coalesced*, not a cache hit: the leader
    // finished between our fast-path miss and taking the flight lock, so
    // this query shared a twin's computation, and counting it as a hit
    // would contradict the miss already in the cache stats
    // (executed + coalesced + failures + cache.hits must equal queries).
    if (cache_ != nullptr) {
      if (std::optional<ResultCacheValue> hit =
              cache_->Lookup(key, /*record_stats=*/false)) {
        const bool negative = hit->negative();
        FillFromValue(std::move(*hit), slot);
        slot->seconds = 0.0;
        slot->coalesced = true;
        if (negative) {
          stats_.RecordFailure(0.0);
        } else {
          stats_.RecordCoalesced(0.0);
        }
        return true;
      }
    }
    auto [it, inserted] = inflight_.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<InFlight>();
      *leader_flight = it->second;
      return false;  // we are the leader; compute and FinishFlight
    }
    flight = it->second;
  }

  // Follower: wait for the leader (always actively computing on another
  // worker — entries only exist while a leader runs, so this cannot
  // deadlock) and copy its outcome. A follower carrying a cancel token
  // polls it between wait slices: on expiry it stops waiting and fails with
  // the token's status — the leader's flight is untouched and completes
  // normally for everyone else.
  Timer wait_timer;
  bool expired = false;
  {
    obs::ScopedSpan wait_span(trace, obs::SpanKind::kCoalescedWait, parent);
    std::unique_lock<std::mutex> lock(flight->mutex);
    if (cancel == nullptr) {
      flight->done.wait(lock, [&flight] { return flight->ready; });
    } else {
      while (!flight->ready) {
        if (cancel->Cancelled()) {
          expired = true;
          break;
        }
        flight->done.wait_for(lock, kCancelWaitSlice,
                              [&flight] { return flight->ready; });
      }
    }
    if (!expired) FillFromValue(flight->value, slot);
  }
  slot->seconds = wait_timer.ElapsedSeconds();
  if (expired) {
    // Not coalesced: this query shared nothing — it gave up. Transient
    // status, so nothing here is negative-cached (the leader's own publish
    // is independent and unaffected).
    slot->status = cancel->ToStatus();
    stats_.RecordFailure(slot->seconds);
    stats_.RecordDeadlineExceeded();
    return true;
  }
  slot->coalesced = true;
  if (slot->status.ok()) {
    stats_.RecordCoalesced(slot->seconds);
  } else {
    stats_.RecordFailure(slot->seconds);
    // The leader's deadline expired before computing: its waiters failed on
    // the same deadline, and the classifier must agree with theirs.
    if (IsCancellation(slot->status)) stats_.RecordDeadlineExceeded();
  }
  return true;
}

void QueryEngine::PublishToCache(const ResultCacheKey& key,
                                 const ResultCacheValue& value) {
  if (cache_ == nullptr) return;
  if (value.status.ok()) {
    cache_->Insert(key, value, options_.cache_ttl);
  } else if (options_.negative_cache_ttl > 0.0 &&
             !IsTransientStatusCode(value.status.code())) {
    // Transient outcomes (deadline exceeded, cancelled, shed) describe the
    // submission, not the answer — caching them would fail future queries
    // that carry no deadline at all. Only genuine per-query failures
    // (invalid argument, not supported, internal) are negative-cached.
    // Negative caching: keep only the status (the payload is meaningless),
    // under the short backoff TTL so the key retries after it elapses.
    ResultCacheValue negative;
    negative.status = value.status;
    cache_->Insert(key, negative, options_.negative_cache_ttl);
  }
}

void QueryEngine::FinishFlight(const ResultCacheKey& key,
                               const std::shared_ptr<InFlight>& flight,
                               const ResultCacheValue& value) {
  // Publish order matters: cache first, then retire the flight entry, then
  // wake the waiters. A concurrent miss thus always finds the key in the
  // cache or the flight table (never neither).
  PublishToCache(key, value);
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(key);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->value = value;
    flight->ready = true;
  }
  flight->done.notify_all();
}

void QueryEngine::RequestPrebuild(const EngineQuery& query) {
  const QueryPlan plan = PlanFor(query);
  // The prebuilder's build prototype is a static-kind replica: generations
  // it resamples only fit static-kind plans. A query routed onto another
  // backend will never adopt one, so don't build it.
  if (plan.kind != options_.kind) return;
  const uint64_t query_seed = SeedForPlan(query, plan);
  // A query the caches will serve never prepares a replica — building its
  // generation would be pure waste (and would strand index-sized memory in
  // the builder's ready pool). That covers result-cache hits for any kind,
  // and sweep-kind queries whose source's sweep is already memoized (they
  // derive without touching an estimator, whatever their k / eta).
  if (cache_ != nullptr &&
      cache_->Contains(ResultCacheKey{query, plan.kind, plan.num_samples,
                                      query_seed})) {
    return;
  }
  if (sweep_cache_ != nullptr && IsSweepWorkload(query.workload) &&
      sweep_cache_->Contains(SweepCacheKey{plan.kind, query.source,
                                           plan.num_samples, query_seed})) {
    return;
  }
  prebuilder_->Request(HashCombineSeed(query_seed, kPrepareSeedTag));
}

Status QueryEngine::PrepareReplica(Estimator& estimator,
                                   uint64_t prepare_seed) {
  if (prebuilder_ != nullptr && estimator.SupportsPreparedGenerations()) {
    if (std::unique_ptr<PreparedGeneration> generation =
            prebuilder_->Take(prepare_seed)) {
      if (estimator.AdoptPreparedGeneration(std::move(generation)).ok()) {
        stats_.RecordPrebuiltUsed();
        return Status::OK();
      }
      // Adoption refused (shape mismatch — cannot happen for replicas of
      // this engine): fall through to the inline path, which is
      // bit-identical by the PreparedGeneration contract.
    }
  }
  return estimator.PrepareForNextQuery(prepare_seed);
}

Result<QueryEngine::SweepShare> QueryEngine::ComputeSweepSerial(
    size_t worker_id, const EngineQuery& query, const QueryPlan& plan,
    uint64_t sweep_seed, const SweepCacheKey& key, const CancelToken* cancel,
    obs::TraceBuffer* trace, uint32_t parent) {
  // Coalescing-off path: one worker runs the whole stratified sweep
  // back-to-back. EstimateFromSource with the plan's num_strata merges
  // strata in index order — the exact merge the stratum scheduler replays —
  // so serial and stolen-strata execution are bit-identical.
  Estimator& estimator = ReplicaFor(plan.kind, worker_id);
  MemoryTracker tracker;
  Timer timer;
  stats_.RecordSweepExecuted();
  FaultInjector& injector = FaultInjector::Global();
  if (injector.enabled()) {
    injector.MaybeDelay(sweep_seed);
    RELCOMP_RETURN_NOT_OK(injector.MaybeFail(FaultSite::kEstimatorFailure,
                                             sweep_seed, "serial sweep"));
  }
  {
    StageTimer prepare(stage_prepare_, trace, obs::SpanKind::kPrepare, parent);
    RELCOMP_RETURN_NOT_OK(PrepareReplica(
        estimator, HashCombineSeed(sweep_seed, kPrepareSeedTag)));
  }
  EstimateOptions estimate_options;
  estimate_options.num_samples = plan.num_samples;
  estimate_options.seed = sweep_seed;
  estimate_options.num_strata = plan.num_strata;
  estimate_options.memory = &tracker;
  estimate_options.cancel = cancel;
  estimate_options.trace = trace;
  estimate_options.trace_parent = parent;
  RELCOMP_ASSIGN_OR_RETURN(
      std::vector<double> swept,
      estimator.EstimateFromSource(query.source, estimate_options));
  auto vector = std::make_shared<const std::vector<double>>(std::move(swept));
  if (sweep_cache_ != nullptr) sweep_cache_->Insert(key, vector);
  stats_.RecordSweepLatency(timer.ElapsedSeconds());
  SweepShare share;
  share.vector = std::move(vector);
  share.peak_memory_bytes = tracker.peak_bytes();
  return share;
}

Status QueryEngine::RunSweepFlight(size_t worker_id, NodeId source,
                                   const QueryPlan& plan, uint64_t sweep_seed,
                                   const SweepCacheKey& key,
                                   const std::shared_ptr<SweepFlight>& flight,
                                   bool leader, const CancelToken* cancel,
                                   obs::TraceBuffer* trace, uint32_t parent) {
  Estimator& estimator = ReplicaFor(plan.kind, worker_id);
  FaultInjector& injector = FaultInjector::Global();
  MemoryTracker tracker;
  bool prepared = false;
  bool abandoned = false;
  // Claim loop: leader and coalesced joiners alike pull unclaimed strata off
  // the shared work-list. Each stratum is a pure function of (sweep seed,
  // stratum index, S), so it does not matter who runs what.
  for (;;) {
    uint32_t stratum = 0;
    {
      std::lock_guard<std::mutex> lock(flight->mutex);
      if (cancel != nullptr && cancel->Cancelled() && flight->status.ok() &&
          !flight->ready) {
        // This participant's deadline fired mid-flight. If it is the only
        // participant and strata remain unclaimed, nobody else will drain
        // the flight: fail it as a unit (first failure wins; joiners get the
        // transient status and recompute deterministically later). If other
        // participants are active — or every stratum is already claimed —
        // the flight can finish without us: abandon it, leaving its state
        // untouched, and fail only this query.
        if (flight->active == 0 && flight->next_stratum < flight->num_strata) {
          flight->status = cancel->ToStatus();
        } else {
          abandoned = true;
        }
        break;
      }
      if (!flight->status.ok() ||
          flight->next_stratum >= flight->num_strata) {
        break;
      }
      stratum = flight->next_stratum++;
      ++flight->active;
    }
    Status run = Status::OK();
    if (injector.enabled()) {
      // Content-derived injection key: the stratum's own seed, identical at
      // any thread count and for any claimant, so the set of injected
      // strata is deterministic per plan.
      const uint64_t stratum_key =
          StratumSeed(sweep_seed, stratum, flight->num_strata);
      injector.MaybeDelay(stratum_key);
      run = injector.MaybeFail(FaultSite::kEstimatorFailure, stratum_key,
                               "sweep stratum");
    }
    if (run.ok() && !prepared) {
      // H(sweep_seed, tag) == PrepareSeed(q) for every sweep-kind q over
      // this source — the derivation RequestPrebuild also uses, so prebuilt
      // generations match. Every participant ends up reading bit-identical
      // worlds: the first preparer pays the full prepare (adopting a
      // prebuilt generation when one is ready) and publishes a read-only
      // snapshot; later thieves adopt that snapshot in O(1) instead of
      // re-running the same O(L·m) resample per worker (estimators without
      // shared prepared state — MC, whose prepare is a no-op — just
      // prepare directly).
      StageTimer prepare_stage(stage_prepare_, trace, obs::SpanKind::kPrepare,
                               parent);
      std::shared_ptr<const PreparedGeneration> shared_state;
      {
        std::lock_guard<std::mutex> lock(flight->mutex);
        shared_state = flight->prepared_state;
      }
      if (shared_state != nullptr) {
        run = estimator.AdoptSharedPreparedState(std::move(shared_state));
        if (!run.ok()) {
          // Adoption refused (shape mismatch — cannot happen for replicas
          // of this engine): the inline prepare is bit-identical anyway.
          run = PrepareReplica(estimator,
                               HashCombineSeed(sweep_seed, kPrepareSeedTag));
        }
      } else {
        run = PrepareReplica(estimator,
                             HashCombineSeed(sweep_seed, kPrepareSeedTag));
        if (run.ok() && estimator.SupportsSharedPreparedState()) {
          Result<std::shared_ptr<const PreparedGeneration>> snapshot =
              estimator.ShareCurrentPreparedState();
          if (snapshot.ok()) {
            std::lock_guard<std::mutex> lock(flight->mutex);
            if (flight->prepared_state == nullptr) {
              flight->prepared_state = snapshot.MoveValue();
            }
          }
        }
      }
      prepared = run.ok();
    }
    std::vector<uint32_t> hits;
    std::shared_ptr<const std::vector<double>> whole;
    if (run.ok()) {
      StageTimer stratum_stage(stage_stratum_, trace, obs::SpanKind::kStratum,
                               parent, stratum);
      EstimateOptions estimate_options;
      estimate_options.num_samples = flight->num_samples;
      estimate_options.seed = sweep_seed;
      estimate_options.num_strata = flight->num_strata;
      estimate_options.memory = &tracker;
      estimate_options.cancel = cancel;
      estimate_options.trace = trace;
      estimate_options.trace_parent = stratum_stage.id();
      if (flight->whole_sweep) {
        // No stratified core: the single "stratum" is the whole sweep.
        Result<std::vector<double>> swept =
            estimator.EstimateFromSource(source, estimate_options);
        if (swept.ok()) {
          whole =
              std::make_shared<const std::vector<double>>(swept.MoveValue());
        } else {
          run = swept.status();
        }
      } else {
        Result<std::vector<uint32_t>> stratum_hits =
            estimator.EstimateSweepStratumHits(
                source, stratum, flight->num_strata, estimate_options);
        if (stratum_hits.ok()) {
          hits = stratum_hits.MoveValue();
        } else {
          run = stratum_hits.status();
        }
      }
    }
    stats_.RecordStratum(/*stolen=*/!leader);
    {
      std::lock_guard<std::mutex> lock(flight->mutex);
      --flight->active;
      ++flight->completed;
      if (run.ok()) {
        if (flight->whole_sweep) {
          flight->whole = std::move(whole);
        } else {
          flight->stratum_hits[stratum] = std::move(hits);
        }
        if (tracker.peak_bytes() > flight->peak_memory_bytes) {
          flight->peak_memory_bytes = tracker.peak_bytes();
        }
      } else if (flight->status.ok()) {
        // First failure wins; it also stops further claims, so the flight
        // drains to a deterministic failure for every participant.
        flight->status = run;
      }
    }
    if (!run.ok()) break;
  }

  if (abandoned) {
    // The flight can drain without us (someone else is active, or every
    // stratum is claimed): leave it untouched — its eventual finalizer
    // publishes for the remaining participants — and fail only this query.
    // Deliberately skips the finalize check below: an abandoning
    // participant taking the finalizing token and then returning would
    // strand the real participants waiting forever.
    return cancel->ToStatus();
  }

  // Whoever observes the flight drained — all strata deposited, or failed
  // with no stratum still in execution — finalizes: merges, publishes, and
  // wakes everyone. That may be the leader or any thief; the merge itself is
  // order-fixed, so the finalizer's identity is invisible in the result.
  std::shared_ptr<const std::vector<double>> vector;
  Status status;
  bool finalize = false;
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    const bool drained =
        flight->active == 0 &&
        (!flight->status.ok() || flight->completed == flight->num_strata);
    if (drained && !flight->ready && !flight->finalizing) {
      flight->finalizing = true;
      finalize = true;
      status = flight->status;
      if (status.ok()) {
        if (flight->whole_sweep) {
          vector = flight->whole;
        } else {
          // Deterministic merge in stratum order: per-node hit totals over
          // the fixed stratum slices, divided by the full budget K —
          // bit-identical to the serial stratified sweep regardless of
          // which workers ran which strata.
          StageTimer merge_stage(stage_merge_, trace, obs::SpanKind::kMerge,
                                 parent);
          auto merged =
              std::make_shared<std::vector<double>>(graph_.num_nodes(), 0.0);
          std::vector<uint32_t> totals(graph_.num_nodes(), 0);
          for (const std::vector<uint32_t>& stratum_hits :
               flight->stratum_hits) {
            for (size_t v = 0; v < stratum_hits.size(); ++v) {
              totals[v] += stratum_hits[v];
            }
          }
          const double k = static_cast<double>(flight->num_samples);
          for (size_t v = 0; v < totals.size(); ++v) {
            (*merged)[v] = static_cast<double>(totals[v]) / k;
          }
          vector = std::move(merged);
        }
      }
    }
  }
  if (finalize) {
    // Publish order: SweepCache first, then retire the flight entry, then
    // set ready and wake — a concurrent miss always finds the key in the
    // cache or the flight table, never neither. A sweep only the scout ever
    // touched publishes under the warm TTL (a Lookup hit promotes it to
    // immortal if a query derives from it later); one query joining the
    // flight already cleared the mark.
    if (status.ok() && sweep_cache_ != nullptr) {
      const bool scout_only =
          flight->scout_only.load(std::memory_order_relaxed);
      sweep_cache_->Insert(key, vector,
                           scout_only ? options_.scout_warm_ttl : 0.0);
    }
    {
      std::lock_guard<std::mutex> lock(sweep_inflight_mutex_);
      sweep_inflight_.erase(key);
    }
    stats_.RecordSweepLatency(flight->timer.ElapsedSeconds());
    {
      std::lock_guard<std::mutex> lock(flight->mutex);
      flight->vector = std::move(vector);
      flight->ready = true;
    }
    flight->done.notify_all();
    return Status::OK();
  }
  // Not the finalizer: some other participant is still executing a stratum
  // (or merging); wait for the publish. This terminates — the flight always
  // has at least one active participant until ready. A participant carrying
  // a cancel token polls it between wait slices and abandons the flight on
  // expiry (same contract as above: the flight itself is untouched).
  StageTimer wait_stage(stage_sweep_wait_, trace, obs::SpanKind::kSweepWait,
                        parent);
  std::unique_lock<std::mutex> lock(flight->mutex);
  if (cancel == nullptr) {
    flight->done.wait(lock, [&flight] { return flight->ready; });
  } else {
    while (!flight->ready) {
      if (cancel->Cancelled()) return cancel->ToStatus();
      flight->done.wait_for(lock, kCancelWaitSlice,
                            [&flight] { return flight->ready; });
    }
  }
  return Status::OK();
}

std::shared_ptr<QueryEngine::SweepFlight> QueryEngine::JoinOrCreateSweepFlight(
    size_t worker_id, const QueryPlan& plan, const SweepCacheKey& key,
    bool scout, bool* leader,
    std::shared_ptr<const std::vector<double>>* cached, bool* stale,
    bool* refresh_owner) {
  *leader = false;
  cached->reset();
  if (stale != nullptr) *stale = false;
  if (refresh_owner != nullptr) *refresh_owner = false;
  std::lock_guard<std::mutex> lock(sweep_inflight_mutex_);
  // Double-check under the flight lock (same protocol as the query-level
  // rendezvous): a sweep's finalizer publishes to the SweepCache *before*
  // retiring its flight entry, so with the sweep cache on a concurrent
  // miss always finds the key in the cache or the flight table — never
  // neither — making "N concurrent same-source misses -> 1 sweep" exact.
  // With the sweep cache off (or an oversized sweep rejected by it) there
  // is no memory of finished sweeps, and flights only collapse
  // *overlapping* twins — same best-effort caveat as query-level
  // coalescing without the result cache. Uncounted probe (callers decide
  // how to account it).
  if (sweep_cache_ != nullptr) {
    if (options_.max_stale_seconds > 0.0) {
      // Stale-while-revalidate double-check: a TTL-expired vector inside
      // the stale window still serves queries — but a refresh pass (the
      // scout ScheduleSweepRefresh dispatched) must NOT be satisfied by the
      // very entry it came to replace, so a scout observing a stale hit
      // falls through and leads the replacing flight.
      StaleSweepLookup probe =
          sweep_cache_->LookupStale(key, options_.max_stale_seconds,
                                    /*record_stats=*/false);
      if (probe.sweep != nullptr && !(scout && probe.stale)) {
        *cached = std::move(probe.sweep);
        if (stale != nullptr) *stale = probe.stale;
        if (refresh_owner != nullptr) *refresh_owner = probe.refresh_owner;
        return nullptr;
      }
    } else if (std::shared_ptr<const std::vector<double>> vector =
                   sweep_cache_->Lookup(key, /*record_stats=*/false)) {
      *cached = std::move(vector);
      return nullptr;
    }
  }
  auto [it, inserted] = sweep_inflight_.try_emplace(key);
  if (inserted) {
    it->second = std::make_shared<SweepFlight>();
    *leader = true;
    SweepFlight& fresh = *it->second;
    const bool stratified =
        ReplicaFor(plan.kind, worker_id).SupportsStratifiedSweep();
    fresh.num_strata = stratified ? plan.num_strata : 1;
    fresh.num_samples = plan.num_samples;
    fresh.whole_sweep = !stratified;
    fresh.stratum_hits.resize(fresh.num_strata);
    fresh.scout_only.store(scout, std::memory_order_relaxed);
    fresh.timer.Restart();
  } else if (!scout) {
    // A real query joined a scout-led flight: its sweep is wanted, so the
    // publish must be immortal.
    it->second->scout_only.store(false, std::memory_order_relaxed);
  }
  return it->second;
}

Result<QueryEngine::SweepShare> QueryEngine::GetSweepVector(
    size_t worker_id, const EngineQuery& query, const QueryPlan& plan,
    uint64_t sweep_seed, const CancelToken* cancel, obs::TraceBuffer* trace,
    uint32_t parent) {
  const SweepCacheKey key{plan.kind, query.source, plan.num_samples,
                          sweep_seed};
  // Fast path: memoized sweep (with the stale window open, a TTL-expired
  // vector still serves; the first stale observer owns kicking off the
  // background re-warm).
  if (sweep_cache_ != nullptr) {
    StaleSweepLookup probe;
    {
      StageTimer probe_stage(stage_cache_probe_, trace,
                             obs::SpanKind::kCacheProbe, parent, /*detail=*/1);
      if (options_.max_stale_seconds > 0.0) {
        probe = sweep_cache_->LookupStale(key, options_.max_stale_seconds);
      } else {
        probe.sweep = sweep_cache_->Lookup(key);
      }
    }
    if (probe.sweep != nullptr) {
      stats_.RecordSweepHit();
      if (probe.refresh_owner) ScheduleSweepRefresh(key, query.source);
      SweepShare share{std::move(probe.sweep), 0};
      share.stale = probe.stale;
      return share;
    }
  }
  if (!options_.enable_coalescing) {
    return ComputeSweepSerial(worker_id, query, plan, sweep_seed, key, cancel,
                              trace, parent);
  }
  bool leader = false;
  bool stale = false;
  bool refresh_owner = false;
  std::shared_ptr<const std::vector<double>> cached;
  std::shared_ptr<SweepFlight> flight =
      JoinOrCreateSweepFlight(worker_id, plan, key, /*scout=*/false, &leader,
                              &cached, &stale, &refresh_owner);
  if (flight == nullptr) {
    // The sweep finished between our fast-path miss and taking the flight
    // lock: this query shared its work (accounted as sweep_coalesced, not a
    // hit — the fast-path miss is already in the cache stats).
    stats_.RecordSweepCoalesced();
    if (refresh_owner) ScheduleSweepRefresh(key, query.source);
    SweepShare share{std::move(cached), 0};
    share.stale = stale;
    return share;
  }
  // One sweep_executed per sweep, recorded by its leader: the "<= 1
  // EstimateFromSource per distinct (source, generation)" gate currency.
  if (leader) stats_.RecordSweepExecuted();
  {
    obs::ScopedSpan flight_span(trace, obs::SpanKind::kSweepFlight, parent,
                                leader ? 1 : 0);
    const Status flight_status =
        RunSweepFlight(worker_id, query.source, plan, sweep_seed, key, flight,
                       leader, cancel, trace, flight_span.id());
    // Abandoned mid-flight (deadline): the flight publishes without us; do
    // not read its fields — fail this query with the transient status.
    if (!flight_status.ok()) return flight_status;
  }

  Status status;
  std::shared_ptr<const std::vector<double>> vector;
  size_t peak = 0;
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    status = flight->status;
    vector = flight->vector;
    // Every participant derived from this sweep: attribute its working-set
    // peak to each of them (scout-led sweeps would otherwise attribute it
    // to no query at all).
    peak = flight->peak_memory_bytes;
  }
  if (!status.ok()) return status;
  if (!leader) {
    // A joiner — whether it stole strata or only waited — shared the
    // leader's sweep instead of running its own.
    stats_.RecordSweepCoalesced();
  }
  return SweepShare{std::move(vector), peak};
}

void QueryEngine::ScoutSweep(size_t worker_id, NodeId source) {
  const QueryPlan plan = SweepPlan(source);
  // A plan routed onto a kind with no sweep core cannot be warmed (the
  // queries it belongs to fail with NotSupported; scouting them would only
  // burn a pool slot re-raising the error).
  if (!ReplicaFor(plan.kind, worker_id).SupportsSourceSweep()) return;
  const uint64_t sweep_seed = SweepSeedForPlan(source, plan);
  const SweepCacheKey key{plan.kind, source, plan.num_samples, sweep_seed};
  if (sweep_cache_ == nullptr || sweep_cache_->Contains(key)) return;
  bool leader = false;
  std::shared_ptr<const std::vector<double>> cached;
  std::shared_ptr<SweepFlight> flight = JoinOrCreateSweepFlight(
      worker_id, plan, key, /*scout=*/true, &leader, &cached);
  // Nothing to warm unless this scout won the flight outright: a memoized
  // sweep needs no warming and an open flight already has a leader.
  if (flight == nullptr || !leader) return;
  // The scout IS this sweep's leader — same seed, same strata, same
  // single-flight entry the queries join (and steal from). It counts in
  // sweep_executed (the invocation currency) and in scout_warms (the
  // classifier that keeps the query-partition arithmetic honest). A failed
  // scout sweep fails exactly as a query-led sweep would; the flight hands
  // the error to any queries that joined, and the error is re-raised
  // deterministically on recompute.
  stats_.RecordSweepExecuted();
  stats_.RecordScoutWarm();
  // A scout sweep has no query behind it, so it gets its own trace root
  // (kScout) when tracing is engaged; the strata it runs nest under it
  // exactly like a query-led sweep's.
  obs::TraceBuffer buffer;
  obs::TraceBuffer* trace = nullptr;
  uint32_t root = obs::TraceBuffer::kNone;
  if (tracer_->engaged()) {
    trace = &buffer;
    buffer.Start(tracer_->NextQueryId(), static_cast<uint32_t>(worker_id));
    root = buffer.Begin(obs::SpanKind::kScout);
  }
  // A scout carries no deadline (cancel=nullptr) and always drains its
  // flight, so the OK status is discardable: failures live in the flight.
  (void)RunSweepFlight(worker_id, source, plan, sweep_seed, key, flight,
                       /*leader=*/true, /*cancel=*/nullptr, trace, root);
  if (trace != nullptr) {
    buffer.End(root);
    tracer_->Finish(buffer);
  }
}

void QueryEngine::ScoutBatch(const std::vector<EngineQuery>& queries) {
  if (!ScoutingEnabled() || options_.scout_max_sources == 0) return;
  std::unordered_map<NodeId, uint32_t> frequency;
  for (const EngineQuery& query : queries) {
    if (IsSweepWorkload(query.workload)) ++frequency[query.source];
  }
  // Hottest first: a scout task is worth a pool slot only when several
  // queries will derive from its sweep.
  std::vector<std::pair<NodeId, uint32_t>> ranked;
  ranked.reserve(frequency.size());
  for (const auto& [source, count] : frequency) {
    if (count >= 2) ranked.emplace_back(source, count);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const std::pair<NodeId, uint32_t>& a,
               const std::pair<NodeId, uint32_t>& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (ranked.size() > options_.scout_max_sources) {
    ranked.resize(options_.scout_max_sources);
  }
  for (const auto& [source, count] : ranked) {
    (void)count;
    const QueryPlan plan = SweepPlan(source);
    if (sweep_cache_->Contains(SweepCacheKey{plan.kind, source,
                                             plan.num_samples,
                                             SweepSeedForPlan(source, plan)})) {
      continue;
    }
    // Best-effort: a full queue just means no warm-ahead for this source.
    (void)pool_->TrySubmit([this, source](size_t worker_id) {
      ScoutSweep(worker_id, source);
    });
  }
}

Result<WorkloadResult> QueryEngine::ComputeWorkload(
    size_t worker_id, const EngineQuery& query, const QueryPlan& plan,
    uint64_t query_seed, const CancelToken* cancel, obs::TraceBuffer* trace,
    uint32_t parent) {
  Estimator& estimator = ReplicaFor(plan.kind, worker_id);
  if (IsSweepWorkload(query.workload) && estimator.SupportsSourceSweep()) {
    // Sweep sharing: obtain the per-source vector once (memoized, coalesced,
    // or computed) and derive this query's view of it. Bit-identical to a
    // direct dispatch because the seed is the same sweep seed either way.
    RELCOMP_ASSIGN_OR_RETURN(
        SweepShare share, GetSweepVector(worker_id, query, plan, query_seed,
                                         cancel, trace, parent));
    StageTimer derive_stage(stage_derive_, trace, obs::SpanKind::kDerive,
                            parent);
    WorkloadResult derived =
        DeriveFromSweep(query, *share.vector, plan.num_samples);
    if (share.peak_memory_bytes > derived.peak_memory_bytes) {
      derived.peak_memory_bytes = share.peak_memory_bytes;
    }
    derived.served_stale = share.stale;
    return derived;
  }
  FaultInjector& injector = FaultInjector::Global();
  if (injector.enabled()) {
    // Content-derived key (the query seed): the set of injected queries is
    // the same at every thread count, so chaos runs are comparable.
    injector.MaybeDelay(query_seed);
    RELCOMP_RETURN_NOT_OK(injector.MaybeFail(FaultSite::kEstimatorFailure,
                                             query_seed, "estimate"));
  }
  {
    StageTimer prepare_stage(stage_prepare_, trace, obs::SpanKind::kPrepare,
                             parent);
    RELCOMP_RETURN_NOT_OK(PrepareReplica(
        estimator, HashCombineSeed(query_seed, kPrepareSeedTag)));
  }
  EstimateOptions estimate_options;
  estimate_options.num_samples = plan.num_samples;
  estimate_options.seed = query_seed;
  // Stratified partitioning applies to every kind with a stratified core:
  // s-t MC estimates split their budget the same canonical way sweeps do
  // (estimators without one ignore the knob).
  estimate_options.num_strata = plan.num_strata;
  estimate_options.cancel = cancel;
  obs::ScopedSpan estimate_span(trace, obs::SpanKind::kEstimate, parent);
  estimate_options.trace = trace;
  estimate_options.trace_parent = estimate_span.id();
  return DispatchWorkload(estimator, query, estimate_options);
}

void QueryEngine::RunOne(size_t worker_id, const EngineQuery& query,
                         EngineResult* slot, uint64_t enqueue_ns) {
  // Tracing: a stack-allocated span collector, armed only when the tracer is
  // engaged — an untraced query allocates nothing and every span call below
  // no-ops on the null buffer. The root opens at the Submit-time stamp, so
  // it covers the queue wait the worker never saw.
  obs::TraceBuffer buffer;
  obs::TraceBuffer* trace = nullptr;
  uint32_t root = obs::TraceBuffer::kNone;
  if (tracer_->engaged()) {
    trace = &buffer;
    buffer.Start(tracer_->NextQueryId(), static_cast<uint32_t>(worker_id));
    root = buffer.BeginAt(obs::SpanKind::kQuery, enqueue_ns,
                          obs::TraceBuffer::kNone,
                          static_cast<uint32_t>(query.workload));
    // The wait is already over (we are running); the span just records it.
    buffer.End(buffer.BeginAt(obs::SpanKind::kQueueWait, enqueue_ns, root));
  }

  const QueryPlan plan = PlanFor(query);
  const uint64_t query_seed = SeedForPlan(query, plan);
  slot->query = query;
  slot->seed = query_seed;
  slot->plan = plan;
  stats_.RecordWorkload(query.workload);

  // Deadline: per-query override, else the engine default; 0 = none. The
  // clock starts at Submit time (enqueue_ns), so queue wait counts against
  // the budget — a query that starved in the queue is already expired when
  // its worker picks it up. The token chains to any caller-provided handle,
  // so either source of cancellation trips it.
  const double deadline_ms =
      query.deadline_ms > 0.0 ? query.deadline_ms : options_.default_deadline_ms;
  const CancelToken token(
      deadline_ms > 0.0
          ? enqueue_ns + static_cast<uint64_t>(deadline_ms * 1e6)
          : 0,
      query.cancel);
  const CancelToken* cancel =
      (deadline_ms > 0.0 || query.cancel != nullptr) ? &token : nullptr;

  const ResultCacheKey key{query, plan.kind, plan.num_samples, query_seed};
  std::shared_ptr<InFlight> flight;
  if (TryServeWithoutCompute(key, slot, &flight, cancel, trace, root)) {
    if (trace != nullptr) {
      buffer.End(root);
      tracer_->Finish(buffer);
    }
    return;
  }

  // Pre-compute deadline check: the query may have expired while it queued
  // (or the caller cancelled before we got here). Fail it before burning an
  // estimator on an answer nobody wants. A leader slot still retires its
  // flight entry so waiters drain with the same transient status; the
  // transient code keeps it out of the negative cache.
  if (cancel != nullptr && cancel->Cancelled()) {
    ResultCacheValue expired_value;
    expired_value.status = cancel->ToStatus();
    slot->status = expired_value.status;
    slot->seconds = 0.0;
    stats_.RecordFailure(0.0);
    stats_.RecordDeadlineExceeded();
    if (flight != nullptr) FinishFlight(key, flight, expired_value);
    if (trace != nullptr) {
      buffer.End(root);
      tracer_->Finish(buffer);
    }
    return;
  }

  // Leader (or coalescing disabled): compute on this worker's replica.
  Timer timer;
  ResultCacheValue value;
  Result<WorkloadResult> result =
      ComputeWorkload(worker_id, query, plan, query_seed, cancel, trace, root);
  if (result.ok()) {
    value.reliability = result->reliability;
    value.num_samples = result->num_samples;
    value.targets = std::move(result->targets);
    slot->reliability = value.reliability;
    slot->num_samples = value.num_samples;
    slot->targets = value.targets;
    slot->served_stale = result->served_stale;
    slot->seconds = timer.ElapsedSeconds();
    stats_.RecordExecuted(slot->seconds, result->peak_memory_bytes);
    if (result->served_stale) stats_.RecordStaleServed();
    // Feed the fallback gate: one observation per estimator-executed routed
    // query (cache hits and coalesced waiters observed someone else's
    // latency and were filtered out above).
    if (router_ != nullptr) router_->RecordObserved(plan, slot->seconds);
  } else {
    value.status = result.status();
    slot->status = result.status();
    slot->seconds = timer.ElapsedSeconds();
    stats_.RecordFailure(slot->seconds);
    if (IsCancellation(slot->status)) stats_.RecordDeadlineExceeded();
  }
  {
    StageTimer publish_stage(stage_publish_, trace, obs::SpanKind::kPublish,
                             root);
    if (flight != nullptr) {
      FinishFlight(key, flight, value);
    } else {
      PublishToCache(key, value);
    }
  }
  if (trace != nullptr) {
    buffer.End(root);
    tracer_->Finish(buffer);
  }
}

Result<std::vector<EngineResult>> QueryEngine::RunBatch(
    const std::vector<EngineQuery>& queries) {
  for (size_t i = 0; i < queries.size(); ++i) {
    const Status valid = ValidateWorkload(graph_, queries[i]);
    if (!valid.ok()) {
      return Status::InvalidArgument(
          StrFormat("query %zu: %s", i, valid.message().c_str()));
    }
  }
  if (prebuilder_ != nullptr) {
    // Seed the background builder with the whole batch's prepare seeds
    // (deduplicated and bounded inside): generations for later queries are
    // resampled while workers run the earlier queries' BFS, instead of
    // inline on the serving path.
    for (const EngineQuery& query : queries) {
      RequestPrebuild(query);
    }
  }
  // Warm-ahead scout pass: the batch's hottest sweep sources get stratified
  // warm tasks enqueued ahead of the queries, so their sweeps are leading
  // (and stealable) by the time the queries that need them dispatch.
  ScoutBatch(queries);
  stats_.MarkCallStart();
  auto state = std::make_shared<CallState>();
  state->pending = queries.size();
  std::vector<EngineResult> results(queries.size());
  Timer wall;
  for (size_t i = 0; i < queries.size(); ++i) {
    const EngineQuery query = queries[i];
    EngineResult* slot = &results[i];
    const uint64_t enqueue_ns = StopwatchNs::Now();
    const Status submitted = pool_->Submit(
        [this, query, slot, state, enqueue_ns](size_t worker_id) {
          RunOne(worker_id, query, slot, enqueue_ns);
          std::lock_guard<std::mutex> lock(state->mutex);
          if (--state->pending == 0) state->done.notify_all();
        });
    if (!submitted.ok()) {
      {
        // The tasks from queries [i, n) never made it into the pool.
        std::lock_guard<std::mutex> lock(state->mutex);
        state->pending -= queries.size() - i;
        if (state->pending == 0) state->done.notify_all();
      }
      AwaitCall(*state);  // queued tasks hold `results` slot pointers
      stats_.MarkCallEnd();
      return submitted;
    }
  }
  AwaitCall(*state);
  stats_.AddWallTime(wall.ElapsedSeconds());
  stats_.MarkCallEnd();
  return results;
}

Result<std::vector<EngineResult>> QueryEngine::RunBatch(
    const std::vector<ReliabilityQuery>& queries) {
  std::vector<EngineQuery> wrapped;
  wrapped.reserve(queries.size());
  for (const ReliabilityQuery& query : queries) {
    wrapped.push_back(EngineQuery(query));
  }
  return RunBatch(wrapped);
}

bool QueryEngine::ServableFromCache(const EngineQuery& query) const {
  const QueryPlan plan = PlanFor(query);
  const uint64_t query_seed = SeedForPlan(query, plan);
  if (cache_ != nullptr &&
      cache_->Contains(ResultCacheKey{query, plan.kind, plan.num_samples,
                                      query_seed})) {
    return true;
  }
  // A memoized sweep answers any k / eta over its source without an
  // estimator — deriving is a rank/filter pass, cheap enough to admit.
  if (sweep_cache_ != nullptr && IsSweepWorkload(query.workload) &&
      sweep_cache_->Contains(SweepCacheKey{plan.kind, query.source,
                                           plan.num_samples, query_seed})) {
    return true;
  }
  return false;
}

Status QueryEngine::AdmitQuery(const EngineQuery& query) {
  const size_t depth = pool_->queue_depth();
  const char* reason = nullptr;
  if (depth >= pool_->queue_capacity()) {
    // Submit() would block the caller — under overload that converts the
    // client into part of the queue. Shed instead: cheap for the client to
    // retry, and the hint below tells it when.
    reason = "queue_full";
  } else if (options_.shed_queue_depth > 0 &&
             depth >= options_.shed_queue_depth &&
             !ServableFromCache(query)) {
    // Predictive gate: past the threshold only cache-servable work — which
    // occupies a worker for microseconds — is admitted. Compute-bound
    // queries are cheap to retry *before* they are computed; that is the
    // moment to refuse them.
    reason = "overload";
  }
  if (reason == nullptr) return Status::OK();
  stats_.RecordShed(reason);
  // Retry-after hint: the backlog ahead of this query, paced by the p50
  // query latency per worker. Floor of 1ms keeps the hint meaningful when
  // the histogram is empty (cold engine).
  const double p50_ms = static_cast<double>(
      stats_.registry().GetHistogram("engine_query_latency_ns")
          ->Snapshot()
          .Quantile(0.5)) / 1e6;
  const double waves =
      static_cast<double>(depth) /
      static_cast<double>(pool_->num_threads() == 0 ? 1 : pool_->num_threads());
  const double retry_after_ms = std::max(1.0, waves * p50_ms);
  return Status::Unavailable(
      StrFormat("query shed (%s): queue depth %zu; retry after ~%.0f ms",
                reason, depth, retry_after_ms));
}

void QueryEngine::ScheduleResultRefresh(const ResultCacheKey& key) {
  // Refreshes ride the dedicated low-priority lane when one exists, so a
  // stale burst never competes with serving queries for the main pool.
  const Status submitted = SubmitRefreshTask([this, key](size_t worker_id) {
    // The plan is recomputed, not trusted from the key: a router may have
    // drifted since the stale entry was cached. A refresh can only honor
    // the *same* key it owns — on any mismatch it re-arms the entry and
    // lets it age out at the stale deadline instead of publishing an
    // answer under a key it does not match.
    const QueryPlan plan = PlanFor(key.query);
    if (plan.kind != key.kind || plan.num_samples != key.num_samples ||
        SeedForPlan(key.query, plan) != key.seed) {
      cache_->ClearRefreshPending(key);
      return;
    }
    Result<WorkloadResult> result =
        ComputeWorkload(worker_id, key.query, plan, key.seed,
                        /*cancel=*/nullptr, /*trace=*/nullptr,
                        obs::TraceBuffer::kNone);
    if (!result.ok()) {
      // A failed refresh must not mask the still-servable stale answer (and
      // transient failures must not be cached at all): re-arm so a later
      // stale hit elects a new owner.
      cache_->ClearRefreshPending(key);
      return;
    }
    ResultCacheValue value;
    value.reliability = result->reliability;
    value.num_samples = result->num_samples;
    value.targets = std::move(result->targets);
    cache_->Insert(key, value, options_.cache_ttl);
  });
  // Best-effort: a full lane/pool means no refresh this episode — re-arm.
  if (!submitted.ok()) cache_->ClearRefreshPending(key);
}

void QueryEngine::ScheduleSweepRefresh(const SweepCacheKey& key,
                                       NodeId source) {
  // The scout pass IS a sweep refresh: it leads a fresh flight for the
  // source's current plan and publishes through the normal finalize path
  // (whose Insert re-arms refresh_pending). JoinOrCreateSweepFlight
  // deliberately refuses to serve the scout the stale entry it came to
  // replace.
  const Status submitted = SubmitRefreshTask([this, source](size_t worker_id) {
    ScoutSweep(worker_id, source);
  });
  if (!submitted.ok()) sweep_cache_->ClearRefreshPending(key);
}

Status QueryEngine::Submit(const EngineQuery& query) {
  RELCOMP_RETURN_NOT_OK(ValidateWorkload(graph_, query));
  if (options_.enable_load_shedding) {
    RELCOMP_RETURN_NOT_OK(AdmitQuery(query));
  }
  // Overlap: the builder resamples this query's generation while earlier
  // stream queries are still running their BFS on the workers.
  if (prebuilder_ != nullptr) RequestPrebuild(query);
  // The pool submit happens under stream_mutex_ so a concurrent Drain either
  // sees this query fully enqueued (and waits for it) or not at all (next
  // cycle); a slot can never be mid-flight across a drain boundary.
  std::lock_guard<std::mutex> lock(stream_mutex_);
  if (stream_results_.empty()) {
    stream_timer_.Restart();
    stream_state_ = std::make_shared<CallState>();
  }
  if (ScoutingEnabled() && IsSweepWorkload(query.workload)) {
    // Stream-side warm-ahead: the second submission of a source in one
    // cycle marks it hot; a scout task enqueued *before* this query's own
    // task leads the sweep the repeats will derive from.
    if (++stream_sweep_counts_[query.source] == 2) {
      const NodeId source = query.source;
      (void)pool_->TrySubmit([this, source](size_t worker_id) {
        ScoutSweep(worker_id, source);
      });
    }
  }
  stats_.MarkCallStart();
  stream_results_.push_back(std::make_unique<EngineResult>());
  EngineResult* slot = stream_results_.back().get();
  std::shared_ptr<CallState> state = stream_state_;
  {
    std::lock_guard<std::mutex> state_lock(state->mutex);
    ++state->pending;
  }
  const uint64_t enqueue_ns = StopwatchNs::Now();
  const Status submitted = pool_->Submit(
      [this, query, slot, state, enqueue_ns](size_t worker_id) {
        RunOne(worker_id, query, slot, enqueue_ns);
        std::lock_guard<std::mutex> state_lock(state->mutex);
        if (--state->pending == 0) state->done.notify_all();
      });
  if (!submitted.ok()) {
    stream_results_.pop_back();
    std::lock_guard<std::mutex> state_lock(state->mutex);
    --state->pending;
  }
  return submitted;
}

Result<std::vector<EngineResult>> QueryEngine::Drain() {
  // Detach the current stream cycle, then await its own counter: every
  // detached slot's task was accounted under stream_mutex_, so AwaitCall
  // covers all of them, Submits racing this Drain land in the next cycle
  // untouched, and another client's batch load cannot stall us.
  std::vector<std::unique_ptr<EngineResult>> pending;
  std::shared_ptr<CallState> state;
  Timer cycle_timer;
  {
    std::lock_guard<std::mutex> lock(stream_mutex_);
    pending.swap(stream_results_);
    state = std::move(stream_state_);
    cycle_timer = stream_timer_;
    stream_sweep_counts_.clear();  // scout frequencies are per-cycle
  }
  if (state != nullptr) AwaitCall(*state);
  if (pending.empty()) return std::vector<EngineResult>{};
  stats_.AddWallTime(cycle_timer.ElapsedSeconds());
  stats_.MarkCallEnd();
  std::vector<EngineResult> results;
  results.reserve(pending.size());
  for (const std::unique_ptr<EngineResult>& result : pending) {
    results.push_back(*result);
  }
  return results;
}

}  // namespace relcomp
