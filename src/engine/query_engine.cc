#include "engine/query_engine.h"

#include <utility>

#include "common/format.h"
#include "common/rng.h"
#include "common/timer.h"

namespace relcomp {

namespace {
/// Domain separator so the PrepareForNextQuery seed never equals the
/// Estimate seed for the same query.
constexpr uint64_t kPrepareSeedTag = 0x707265ULL;  // "pre"
}  // namespace

QueryEngine::QueryEngine(const UncertainGraph& graph, EngineOptions options,
                         std::vector<std::unique_ptr<Estimator>> replicas)
    : graph_(graph),
      options_(std::move(options)),
      replicas_(std::move(replicas)) {
  if (options_.enable_cache) {
    cache_ = std::make_unique<ResultCache>(options_.cache_capacity,
                                           options_.cache_shards);
  }
  pool_ = std::make_unique<ThreadPool>(replicas_.size(),
                                       options_.queue_capacity);
}

QueryEngine::~QueryEngine() { pool_->Shutdown(); }

Result<std::unique_ptr<QueryEngine>> QueryEngine::Create(
    const UncertainGraph& graph, const EngineOptions& options) {
  EngineOptions opts = options;
  if (opts.num_threads == 0) opts.num_threads = 1;
  if (opts.num_samples == 0) {
    return Status::InvalidArgument("EngineOptions::num_samples must be > 0");
  }
  RELCOMP_ASSIGN_OR_RETURN(
      std::vector<std::unique_ptr<Estimator>> replicas,
      MakeEstimatorReplicas(opts.kind, graph, opts.num_threads, opts.factory));
  return std::unique_ptr<QueryEngine>(
      new QueryEngine(graph, std::move(opts), std::move(replicas)));
}

uint64_t QueryEngine::QuerySeed(const ReliabilityQuery& query) const {
  // Content-derived, not index-derived: the seed depends on what is asked,
  // never on when or where it runs. Repeats of a query inside one engine get
  // the same seed (and thus the same answer), which is exactly what makes a
  // cache hit indistinguishable from a recomputation.
  uint64_t seed = HashCombineSeed(options_.seed, query.source);
  seed = HashCombineSeed(seed, query.target);
  seed = HashCombineSeed(seed, static_cast<uint64_t>(options_.kind));
  seed = HashCombineSeed(seed, options_.num_samples);
  return seed;
}

void QueryEngine::AwaitCall(CallState& state) {
  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.pending == 0; });
}

void QueryEngine::RunOne(size_t worker_id, const ReliabilityQuery& query,
                         EngineResult* slot, CallState* state) {
  const uint64_t query_seed = QuerySeed(query);
  slot->query = query;
  slot->seed = query_seed;

  const ResultCacheKey key{query.source, query.target, options_.kind,
                           options_.num_samples, query_seed};
  if (cache_ != nullptr) {
    if (std::optional<ResultCacheValue> hit = cache_->Lookup(key)) {
      slot->reliability = hit->reliability;
      slot->num_samples = hit->num_samples;
      slot->seconds = 0.0;
      slot->cache_hit = true;
      stats_.Record(0.0, 0);
      return;
    }
  }

  Timer timer;
  Estimator& estimator = *replicas_[worker_id];
  const Status prepared = estimator.PrepareForNextQuery(
      HashCombineSeed(query_seed, kPrepareSeedTag));
  if (!prepared.ok()) {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->first_error.ok()) state->first_error = prepared;
    return;
  }
  EstimateOptions estimate_options;
  estimate_options.num_samples = options_.num_samples;
  estimate_options.seed = query_seed;
  Result<EstimateResult> result = estimator.Estimate(query, estimate_options);
  if (!result.ok()) {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->first_error.ok()) state->first_error = result.status();
    return;
  }
  slot->reliability = result->reliability;
  slot->num_samples = result->num_samples;
  slot->seconds = timer.ElapsedSeconds();
  slot->cache_hit = false;
  if (cache_ != nullptr) {
    cache_->Insert(key, ResultCacheValue{result->reliability,
                                         result->num_samples});
  }
  stats_.Record(slot->seconds, result->peak_memory_bytes);
}

Result<std::vector<EngineResult>> QueryEngine::RunBatch(
    const std::vector<ReliabilityQuery>& queries) {
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!graph_.HasNode(queries[i].source) ||
        !graph_.HasNode(queries[i].target)) {
      return Status::InvalidArgument(
          StrFormat("query %zu references a node outside the graph", i));
    }
  }
  auto state = std::make_shared<CallState>();
  state->pending = queries.size();
  std::vector<EngineResult> results(queries.size());
  Timer wall;
  for (size_t i = 0; i < queries.size(); ++i) {
    const ReliabilityQuery query = queries[i];
    EngineResult* slot = &results[i];
    const Status submitted = pool_->Submit(
        [this, query, slot, state](size_t worker_id) {
          RunOne(worker_id, query, slot, state.get());
          std::lock_guard<std::mutex> lock(state->mutex);
          if (--state->pending == 0) state->done.notify_all();
        });
    if (!submitted.ok()) {
      {
        // The tasks from queries [i, n) never made it into the pool.
        std::lock_guard<std::mutex> lock(state->mutex);
        state->pending -= queries.size() - i;
        if (state->pending == 0) state->done.notify_all();
      }
      AwaitCall(*state);  // queued tasks hold `results` slot pointers
      return submitted;
    }
  }
  AwaitCall(*state);
  stats_.AddWallTime(wall.ElapsedSeconds());
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (!state->first_error.ok()) return state->first_error;
  }
  return results;
}

Status QueryEngine::Submit(const ReliabilityQuery& query) {
  if (!graph_.HasNode(query.source) || !graph_.HasNode(query.target)) {
    return Status::InvalidArgument("query references a node outside the graph");
  }
  // The pool submit happens under stream_mutex_ so a concurrent Drain either
  // sees this query fully enqueued (and waits for it) or not at all (next
  // cycle); a slot can never be mid-flight across a drain boundary.
  std::lock_guard<std::mutex> lock(stream_mutex_);
  if (stream_results_.empty()) {
    stream_timer_.Restart();
    stream_state_ = std::make_shared<CallState>();
  }
  stream_results_.push_back(std::make_unique<EngineResult>());
  EngineResult* slot = stream_results_.back().get();
  std::shared_ptr<CallState> state = stream_state_;
  {
    std::lock_guard<std::mutex> state_lock(state->mutex);
    ++state->pending;
  }
  const Status submitted = pool_->Submit(
      [this, query, slot, state](size_t worker_id) {
        RunOne(worker_id, query, slot, state.get());
        std::lock_guard<std::mutex> state_lock(state->mutex);
        if (--state->pending == 0) state->done.notify_all();
      });
  if (!submitted.ok()) {
    stream_results_.pop_back();
    std::lock_guard<std::mutex> state_lock(state->mutex);
    --state->pending;
  }
  return submitted;
}

Result<std::vector<EngineResult>> QueryEngine::Drain() {
  // Detach the current stream cycle, then await its own counter: every
  // detached slot's task was accounted under stream_mutex_, so AwaitCall
  // covers all of them, Submits racing this Drain land in the next cycle
  // untouched, and another client's batch load cannot stall us.
  std::vector<std::unique_ptr<EngineResult>> pending;
  std::shared_ptr<CallState> state;
  Timer cycle_timer;
  {
    std::lock_guard<std::mutex> lock(stream_mutex_);
    pending.swap(stream_results_);
    state = std::move(stream_state_);
    cycle_timer = stream_timer_;
  }
  if (state != nullptr) AwaitCall(*state);
  if (pending.empty()) return std::vector<EngineResult>{};
  stats_.AddWallTime(cycle_timer.ElapsedSeconds());
  if (state != nullptr) {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (!state->first_error.ok()) return state->first_error;
  }
  std::vector<EngineResult> results;
  results.reserve(pending.size());
  for (const std::unique_ptr<EngineResult>& result : pending) {
    results.push_back(*result);
  }
  return results;
}

}  // namespace relcomp
