#include "engine/query_engine.h"

#include <utility>

#include "common/format.h"
#include "common/rng.h"
#include "common/timer.h"

namespace relcomp {

namespace {
/// Domain separator so the PrepareForNextQuery seed never equals the
/// Estimate seed for the same query.
constexpr uint64_t kPrepareSeedTag = 0x707265ULL;  // "pre"
}  // namespace

QueryEngine::QueryEngine(const UncertainGraph& graph, EngineOptions options,
                         std::vector<std::unique_ptr<Estimator>> replicas)
    : graph_(graph),
      options_(std::move(options)),
      replicas_(std::move(replicas)) {
  if (options_.enable_cache) {
    cache_ = std::make_unique<ResultCache>(options_.cache_capacity,
                                           options_.cache_shards);
  }
  pool_ = std::make_unique<ThreadPool>(replicas_.size(),
                                       options_.queue_capacity);
}

QueryEngine::~QueryEngine() { pool_->Shutdown(); }

Result<std::unique_ptr<QueryEngine>> QueryEngine::Create(
    const UncertainGraph& graph, const EngineOptions& options) {
  EngineOptions opts = options;
  if (opts.num_threads == 0) opts.num_threads = 1;
  if (opts.num_samples == 0) {
    return Status::InvalidArgument("EngineOptions::num_samples must be > 0");
  }
  if (opts.cache_ttl < 0.0 || opts.negative_cache_ttl < 0.0) {
    return Status::InvalidArgument("EngineOptions TTLs must be >= 0");
  }
  // One shared immutable index for all replicas of an index-carrying kind
  // (built inside the factory), private scratch per replica.
  RELCOMP_ASSIGN_OR_RETURN(
      std::vector<std::unique_ptr<Estimator>> replicas,
      MakeEstimatorReplicas(opts.kind, graph, opts.num_threads, opts.factory));
  return std::unique_ptr<QueryEngine>(
      new QueryEngine(graph, std::move(opts), std::move(replicas)));
}

uint64_t QueryEngine::QuerySeed(const EngineQuery& query) const {
  // Content-derived, not index-derived: the seed depends on what is asked —
  // the workload tag and every parameter field — never on when or where it
  // runs. Repeats of a query inside one engine get the same seed (and thus
  // the same answer), which is exactly what makes a cache hit — or a
  // coalesced in-flight share — indistinguishable from a recomputation.
  uint64_t seed = HashWorkloadQuery(options_.seed, query);
  seed = HashCombineSeed(seed, static_cast<uint64_t>(options_.kind));
  seed = HashCombineSeed(seed, options_.num_samples);
  return seed;
}

uint64_t QueryEngine::PrepareSeed(const EngineQuery& query) const {
  return HashCombineSeed(QuerySeed(query), kPrepareSeedTag);
}

EngineStatsSnapshot QueryEngine::StatsSnapshot() const {
  EngineStatsSnapshot snapshot = stats_.Snapshot(cache_.get());
  snapshot.index_memory = IndexMemory();
  return snapshot;
}

void QueryEngine::AwaitCall(CallState& state) {
  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.pending == 0; });
}

void QueryEngine::FillFromValue(ResultCacheValue value, EngineResult* slot) {
  slot->status = std::move(value.status);
  if (slot->status.ok()) {
    slot->reliability = value.reliability;
    slot->num_samples = value.num_samples;
    slot->targets = std::move(value.targets);
  }
}

bool QueryEngine::TryServeWithoutCompute(
    const ResultCacheKey& key, EngineResult* slot,
    std::shared_ptr<InFlight>* leader_flight) {
  // Fast path: lock-free-ish cache probe before touching the flight table.
  if (cache_ != nullptr) {
    if (std::optional<ResultCacheValue> hit = cache_->Lookup(key)) {
      const bool negative = hit->negative();
      FillFromValue(std::move(*hit), slot);
      slot->seconds = 0.0;
      slot->cache_hit = true;
      if (negative) {
        // Failure backoff: the cached error is served without recomputing.
        // Counted as a failure (and as a cache negative_hit), never as a
        // cache hit — executed + coalesced + failures + cache.hits must
        // still equal queries.
        stats_.RecordFailure(0.0);
      } else {
        stats_.RecordCacheHit();
      }
      return true;
    }
  }
  if (!options_.enable_coalescing) return false;

  std::shared_ptr<InFlight> flight;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    // Re-check the cache under the flight lock: a leader publishes to the
    // cache *before* retiring its flight entry, so this double-check makes
    // "N concurrent identical misses -> 1 estimator invocation" exact
    // rather than best-effort (no window where neither table covers a key).
    // Uncounted probe (the user-level lookup was already recorded above, as
    // a miss) — and accounted as *coalesced*, not a cache hit: the leader
    // finished between our fast-path miss and taking the flight lock, so
    // this query shared a twin's computation, and counting it as a hit
    // would contradict the miss already in the cache stats
    // (executed + coalesced + failures + cache.hits must equal queries).
    if (cache_ != nullptr) {
      if (std::optional<ResultCacheValue> hit =
              cache_->Lookup(key, /*record_stats=*/false)) {
        const bool negative = hit->negative();
        FillFromValue(std::move(*hit), slot);
        slot->seconds = 0.0;
        slot->coalesced = true;
        if (negative) {
          stats_.RecordFailure(0.0);
        } else {
          stats_.RecordCoalesced(0.0);
        }
        return true;
      }
    }
    auto [it, inserted] = inflight_.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<InFlight>();
      *leader_flight = it->second;
      return false;  // we are the leader; compute and FinishFlight
    }
    flight = it->second;
  }

  // Follower: wait for the leader (always actively computing on another
  // worker — entries only exist while a leader runs, so this cannot
  // deadlock) and copy its outcome.
  Timer wait_timer;
  {
    std::unique_lock<std::mutex> lock(flight->mutex);
    flight->done.wait(lock, [&flight] { return flight->ready; });
    FillFromValue(flight->value, slot);
  }
  slot->seconds = wait_timer.ElapsedSeconds();
  slot->coalesced = true;
  if (slot->status.ok()) {
    stats_.RecordCoalesced(slot->seconds);
  } else {
    stats_.RecordFailure(slot->seconds);
  }
  return true;
}

void QueryEngine::PublishToCache(const ResultCacheKey& key,
                                 const ResultCacheValue& value) {
  if (cache_ == nullptr) return;
  if (value.status.ok()) {
    cache_->Insert(key, value, options_.cache_ttl);
  } else if (options_.negative_cache_ttl > 0.0) {
    // Negative caching: keep only the status (the payload is meaningless),
    // under the short backoff TTL so the key retries after it elapses.
    ResultCacheValue negative;
    negative.status = value.status;
    cache_->Insert(key, negative, options_.negative_cache_ttl);
  }
}

void QueryEngine::FinishFlight(const ResultCacheKey& key,
                               const std::shared_ptr<InFlight>& flight,
                               const ResultCacheValue& value) {
  // Publish order matters: cache first, then retire the flight entry, then
  // wake the waiters. A concurrent miss thus always finds the key in the
  // cache or the flight table (never neither).
  PublishToCache(key, value);
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(key);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->value = value;
    flight->ready = true;
  }
  flight->done.notify_all();
}

void QueryEngine::RunOne(size_t worker_id, const EngineQuery& query,
                         EngineResult* slot) {
  const uint64_t query_seed = QuerySeed(query);
  slot->query = query;
  slot->seed = query_seed;
  stats_.RecordWorkload(query.workload);

  const ResultCacheKey key{query, options_.kind, options_.num_samples,
                           query_seed};
  std::shared_ptr<InFlight> flight;
  if (TryServeWithoutCompute(key, slot, &flight)) return;

  // Leader (or coalescing disabled): compute on this worker's replica.
  Timer timer;
  Estimator& estimator = *replicas_[worker_id];
  Status status = estimator.PrepareForNextQuery(
      HashCombineSeed(query_seed, kPrepareSeedTag));
  ResultCacheValue value;
  if (status.ok()) {
    EstimateOptions estimate_options;
    estimate_options.num_samples = options_.num_samples;
    estimate_options.seed = query_seed;
    Result<WorkloadResult> result =
        DispatchWorkload(estimator, query, estimate_options);
    if (result.ok()) {
      value.reliability = result->reliability;
      value.num_samples = result->num_samples;
      value.targets = std::move(result->targets);
      slot->reliability = value.reliability;
      slot->num_samples = value.num_samples;
      slot->targets = value.targets;
      slot->seconds = timer.ElapsedSeconds();
      stats_.RecordExecuted(slot->seconds, result->peak_memory_bytes);
    } else {
      status = result.status();
    }
  }
  if (!status.ok()) {
    value.status = status;
    slot->status = status;
    slot->seconds = timer.ElapsedSeconds();
    stats_.RecordFailure(slot->seconds);
  }
  if (flight != nullptr) {
    FinishFlight(key, flight, value);
  } else {
    PublishToCache(key, value);
  }
}

Result<std::vector<EngineResult>> QueryEngine::RunBatch(
    const std::vector<EngineQuery>& queries) {
  for (size_t i = 0; i < queries.size(); ++i) {
    const Status valid = ValidateWorkload(graph_, queries[i]);
    if (!valid.ok()) {
      return Status::InvalidArgument(
          StrFormat("query %zu: %s", i, valid.message().c_str()));
    }
  }
  stats_.MarkCallStart();
  auto state = std::make_shared<CallState>();
  state->pending = queries.size();
  std::vector<EngineResult> results(queries.size());
  Timer wall;
  for (size_t i = 0; i < queries.size(); ++i) {
    const EngineQuery query = queries[i];
    EngineResult* slot = &results[i];
    const Status submitted = pool_->Submit(
        [this, query, slot, state](size_t worker_id) {
          RunOne(worker_id, query, slot);
          std::lock_guard<std::mutex> lock(state->mutex);
          if (--state->pending == 0) state->done.notify_all();
        });
    if (!submitted.ok()) {
      {
        // The tasks from queries [i, n) never made it into the pool.
        std::lock_guard<std::mutex> lock(state->mutex);
        state->pending -= queries.size() - i;
        if (state->pending == 0) state->done.notify_all();
      }
      AwaitCall(*state);  // queued tasks hold `results` slot pointers
      stats_.MarkCallEnd();
      return submitted;
    }
  }
  AwaitCall(*state);
  stats_.AddWallTime(wall.ElapsedSeconds());
  stats_.MarkCallEnd();
  return results;
}

Result<std::vector<EngineResult>> QueryEngine::RunBatch(
    const std::vector<ReliabilityQuery>& queries) {
  std::vector<EngineQuery> wrapped;
  wrapped.reserve(queries.size());
  for (const ReliabilityQuery& query : queries) {
    wrapped.push_back(EngineQuery(query));
  }
  return RunBatch(wrapped);
}

Status QueryEngine::Submit(const EngineQuery& query) {
  RELCOMP_RETURN_NOT_OK(ValidateWorkload(graph_, query));
  // The pool submit happens under stream_mutex_ so a concurrent Drain either
  // sees this query fully enqueued (and waits for it) or not at all (next
  // cycle); a slot can never be mid-flight across a drain boundary.
  std::lock_guard<std::mutex> lock(stream_mutex_);
  if (stream_results_.empty()) {
    stream_timer_.Restart();
    stream_state_ = std::make_shared<CallState>();
  }
  stats_.MarkCallStart();
  stream_results_.push_back(std::make_unique<EngineResult>());
  EngineResult* slot = stream_results_.back().get();
  std::shared_ptr<CallState> state = stream_state_;
  {
    std::lock_guard<std::mutex> state_lock(state->mutex);
    ++state->pending;
  }
  const Status submitted = pool_->Submit(
      [this, query, slot, state](size_t worker_id) {
        RunOne(worker_id, query, slot);
        std::lock_guard<std::mutex> state_lock(state->mutex);
        if (--state->pending == 0) state->done.notify_all();
      });
  if (!submitted.ok()) {
    stream_results_.pop_back();
    std::lock_guard<std::mutex> state_lock(state->mutex);
    --state->pending;
  }
  return submitted;
}

Result<std::vector<EngineResult>> QueryEngine::Drain() {
  // Detach the current stream cycle, then await its own counter: every
  // detached slot's task was accounted under stream_mutex_, so AwaitCall
  // covers all of them, Submits racing this Drain land in the next cycle
  // untouched, and another client's batch load cannot stall us.
  std::vector<std::unique_ptr<EngineResult>> pending;
  std::shared_ptr<CallState> state;
  Timer cycle_timer;
  {
    std::lock_guard<std::mutex> lock(stream_mutex_);
    pending.swap(stream_results_);
    state = std::move(stream_state_);
    cycle_timer = stream_timer_;
  }
  if (state != nullptr) AwaitCall(*state);
  if (pending.empty()) return std::vector<EngineResult>{};
  stats_.AddWallTime(cycle_timer.ElapsedSeconds());
  stats_.MarkCallEnd();
  std::vector<EngineResult> results;
  results.reserve(pending.size());
  for (const std::unique_ptr<EngineResult>& result : pending) {
    results.push_back(*result);
  }
  return results;
}

}  // namespace relcomp
