#include "engine/query_engine.h"

#include <utility>

#include "common/format.h"
#include "common/rng.h"
#include "common/timer.h"

namespace relcomp {

namespace {
/// Domain separator so the PrepareForNextQuery seed never equals the
/// Estimate seed for the same query.
constexpr uint64_t kPrepareSeedTag = 0x707265ULL;  // "pre"
}  // namespace

QueryEngine::QueryEngine(const UncertainGraph& graph, EngineOptions options,
                         std::vector<std::unique_ptr<Estimator>> replicas)
    : graph_(graph),
      options_(std::move(options)),
      replicas_(std::move(replicas)) {
  if (options_.enable_cache) {
    cache_ = std::make_unique<ResultCache>(options_.cache_capacity,
                                           options_.cache_shards);
  }
  pool_ = std::make_unique<ThreadPool>(replicas_.size(),
                                       options_.queue_capacity);
}

QueryEngine::~QueryEngine() { pool_->Shutdown(); }

Result<std::unique_ptr<QueryEngine>> QueryEngine::Create(
    const UncertainGraph& graph, const EngineOptions& options) {
  EngineOptions opts = options;
  if (opts.num_threads == 0) opts.num_threads = 1;
  if (opts.num_samples == 0) {
    return Status::InvalidArgument("EngineOptions::num_samples must be > 0");
  }
  // One shared immutable index for all replicas of an index-carrying kind
  // (built inside the factory), private scratch per replica.
  RELCOMP_ASSIGN_OR_RETURN(
      std::vector<std::unique_ptr<Estimator>> replicas,
      MakeEstimatorReplicas(opts.kind, graph, opts.num_threads, opts.factory));
  return std::unique_ptr<QueryEngine>(
      new QueryEngine(graph, std::move(opts), std::move(replicas)));
}

uint64_t QueryEngine::QuerySeed(const ReliabilityQuery& query) const {
  // Content-derived, not index-derived: the seed depends on what is asked,
  // never on when or where it runs. Repeats of a query inside one engine get
  // the same seed (and thus the same answer), which is exactly what makes a
  // cache hit — or a coalesced in-flight share — indistinguishable from a
  // recomputation.
  uint64_t seed = HashCombineSeed(options_.seed, query.source);
  seed = HashCombineSeed(seed, query.target);
  seed = HashCombineSeed(seed, static_cast<uint64_t>(options_.kind));
  seed = HashCombineSeed(seed, options_.num_samples);
  return seed;
}

uint64_t QueryEngine::PrepareSeed(const ReliabilityQuery& query) const {
  return HashCombineSeed(QuerySeed(query), kPrepareSeedTag);
}

EngineStatsSnapshot QueryEngine::StatsSnapshot() const {
  EngineStatsSnapshot snapshot = stats_.Snapshot(cache_.get());
  snapshot.index_memory = IndexMemory();
  return snapshot;
}

void QueryEngine::AwaitCall(CallState& state) {
  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.pending == 0; });
}

bool QueryEngine::TryServeWithoutCompute(
    const ResultCacheKey& key, EngineResult* slot,
    std::shared_ptr<InFlight>* leader_flight) {
  // Fast path: lock-free-ish cache probe before touching the flight table.
  if (cache_ != nullptr) {
    if (std::optional<ResultCacheValue> hit = cache_->Lookup(key)) {
      slot->reliability = hit->reliability;
      slot->num_samples = hit->num_samples;
      slot->seconds = 0.0;
      slot->cache_hit = true;
      stats_.RecordCacheHit();
      return true;
    }
  }
  if (!options_.enable_coalescing) return false;

  std::shared_ptr<InFlight> flight;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    // Re-check the cache under the flight lock: a leader publishes to the
    // cache *before* retiring its flight entry, so this double-check makes
    // "N concurrent identical misses -> 1 estimator invocation" exact
    // rather than best-effort (no window where neither table covers a key).
    // Uncounted probe (the user-level lookup was already recorded above, as
    // a miss) — and accounted as *coalesced*, not a cache hit: the leader
    // finished between our fast-path miss and taking the flight lock, so
    // this query shared a twin's computation, and counting it as a hit
    // would contradict the miss already in the cache stats
    // (executed + coalesced + failures + cache.hits must equal queries).
    if (cache_ != nullptr) {
      if (std::optional<ResultCacheValue> hit =
              cache_->Lookup(key, /*record_stats=*/false)) {
        slot->reliability = hit->reliability;
        slot->num_samples = hit->num_samples;
        slot->seconds = 0.0;
        slot->coalesced = true;
        stats_.RecordCoalesced(0.0);
        return true;
      }
    }
    auto [it, inserted] = inflight_.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<InFlight>();
      *leader_flight = it->second;
      return false;  // we are the leader; compute and FinishFlight
    }
    flight = it->second;
  }

  // Follower: wait for the leader (always actively computing on another
  // worker — entries only exist while a leader runs, so this cannot
  // deadlock) and copy its outcome.
  Timer wait_timer;
  {
    std::unique_lock<std::mutex> lock(flight->mutex);
    flight->done.wait(lock, [&flight] { return flight->ready; });
    slot->status = flight->status;
    if (flight->status.ok()) {
      slot->reliability = flight->value.reliability;
      slot->num_samples = flight->value.num_samples;
    }
  }
  slot->seconds = wait_timer.ElapsedSeconds();
  slot->coalesced = true;
  if (slot->status.ok()) {
    stats_.RecordCoalesced(slot->seconds);
  } else {
    stats_.RecordFailure(slot->seconds);
  }
  return true;
}

void QueryEngine::FinishFlight(const ResultCacheKey& key,
                               const std::shared_ptr<InFlight>& flight,
                               const Status& status,
                               const ResultCacheValue& value) {
  // Publish order matters: cache first, then retire the flight entry, then
  // wake the waiters. A concurrent miss thus always finds the key in the
  // cache or the flight table (never neither).
  if (status.ok() && cache_ != nullptr) cache_->Insert(key, value);
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(key);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->status = status;
    flight->value = value;
    flight->ready = true;
  }
  flight->done.notify_all();
}

void QueryEngine::RunOne(size_t worker_id, const ReliabilityQuery& query,
                         EngineResult* slot) {
  const uint64_t query_seed = QuerySeed(query);
  slot->query = query;
  slot->seed = query_seed;

  const ResultCacheKey key{query.source, query.target, options_.kind,
                           options_.num_samples, query_seed};
  std::shared_ptr<InFlight> flight;
  if (TryServeWithoutCompute(key, slot, &flight)) return;

  // Leader (or coalescing disabled): compute on this worker's replica.
  Timer timer;
  Estimator& estimator = *replicas_[worker_id];
  Status status = estimator.PrepareForNextQuery(
      HashCombineSeed(query_seed, kPrepareSeedTag));
  ResultCacheValue value;
  if (status.ok()) {
    EstimateOptions estimate_options;
    estimate_options.num_samples = options_.num_samples;
    estimate_options.seed = query_seed;
    Result<EstimateResult> result = estimator.Estimate(query, estimate_options);
    if (result.ok()) {
      value = ResultCacheValue{result->reliability, result->num_samples};
      slot->reliability = result->reliability;
      slot->num_samples = result->num_samples;
      slot->seconds = timer.ElapsedSeconds();
      stats_.RecordExecuted(slot->seconds, result->peak_memory_bytes);
    } else {
      status = result.status();
    }
  }
  if (!status.ok()) {
    slot->status = status;
    slot->seconds = timer.ElapsedSeconds();
    stats_.RecordFailure(slot->seconds);
  }
  if (flight != nullptr) {
    FinishFlight(key, flight, status, value);
  } else if (status.ok() && cache_ != nullptr) {
    cache_->Insert(key, value);
  }
}

Result<std::vector<EngineResult>> QueryEngine::RunBatch(
    const std::vector<ReliabilityQuery>& queries) {
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!graph_.HasNode(queries[i].source) ||
        !graph_.HasNode(queries[i].target)) {
      return Status::InvalidArgument(
          StrFormat("query %zu references a node outside the graph", i));
    }
  }
  stats_.MarkCallStart();
  auto state = std::make_shared<CallState>();
  state->pending = queries.size();
  std::vector<EngineResult> results(queries.size());
  Timer wall;
  for (size_t i = 0; i < queries.size(); ++i) {
    const ReliabilityQuery query = queries[i];
    EngineResult* slot = &results[i];
    const Status submitted = pool_->Submit(
        [this, query, slot, state](size_t worker_id) {
          RunOne(worker_id, query, slot);
          std::lock_guard<std::mutex> lock(state->mutex);
          if (--state->pending == 0) state->done.notify_all();
        });
    if (!submitted.ok()) {
      {
        // The tasks from queries [i, n) never made it into the pool.
        std::lock_guard<std::mutex> lock(state->mutex);
        state->pending -= queries.size() - i;
        if (state->pending == 0) state->done.notify_all();
      }
      AwaitCall(*state);  // queued tasks hold `results` slot pointers
      stats_.MarkCallEnd();
      return submitted;
    }
  }
  AwaitCall(*state);
  stats_.AddWallTime(wall.ElapsedSeconds());
  stats_.MarkCallEnd();
  return results;
}

Status QueryEngine::Submit(const ReliabilityQuery& query) {
  if (!graph_.HasNode(query.source) || !graph_.HasNode(query.target)) {
    return Status::InvalidArgument("query references a node outside the graph");
  }
  // The pool submit happens under stream_mutex_ so a concurrent Drain either
  // sees this query fully enqueued (and waits for it) or not at all (next
  // cycle); a slot can never be mid-flight across a drain boundary.
  std::lock_guard<std::mutex> lock(stream_mutex_);
  if (stream_results_.empty()) {
    stream_timer_.Restart();
    stream_state_ = std::make_shared<CallState>();
  }
  stats_.MarkCallStart();
  stream_results_.push_back(std::make_unique<EngineResult>());
  EngineResult* slot = stream_results_.back().get();
  std::shared_ptr<CallState> state = stream_state_;
  {
    std::lock_guard<std::mutex> state_lock(state->mutex);
    ++state->pending;
  }
  const Status submitted = pool_->Submit(
      [this, query, slot, state](size_t worker_id) {
        RunOne(worker_id, query, slot);
        std::lock_guard<std::mutex> state_lock(state->mutex);
        if (--state->pending == 0) state->done.notify_all();
      });
  if (!submitted.ok()) {
    stream_results_.pop_back();
    std::lock_guard<std::mutex> state_lock(state->mutex);
    --state->pending;
  }
  return submitted;
}

Result<std::vector<EngineResult>> QueryEngine::Drain() {
  // Detach the current stream cycle, then await its own counter: every
  // detached slot's task was accounted under stream_mutex_, so AwaitCall
  // covers all of them, Submits racing this Drain land in the next cycle
  // untouched, and another client's batch load cannot stall us.
  std::vector<std::unique_ptr<EngineResult>> pending;
  std::shared_ptr<CallState> state;
  Timer cycle_timer;
  {
    std::lock_guard<std::mutex> lock(stream_mutex_);
    pending.swap(stream_results_);
    state = std::move(stream_state_);
    cycle_timer = stream_timer_;
  }
  if (state != nullptr) AwaitCall(*state);
  if (pending.empty()) return std::vector<EngineResult>{};
  stats_.AddWallTime(cycle_timer.ElapsedSeconds());
  stats_.MarkCallEnd();
  std::vector<EngineResult> results;
  results.reserve(pending.size());
  for (const std::unique_ptr<EngineResult>& result : pending) {
    results.push_back(*result);
  }
  return results;
}

}  // namespace relcomp
