#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/timer.h"
#include "graph/uncertain_graph.h"
#include "obs/metrics.h"
#include "reliability/estimator_factory.h"

namespace relcomp {

/// \brief Identity of one memoized per-source reliability sweep.
///
/// `seed` is the engine's *sweep seed* — derived from the source (not from
/// k or eta, and not from the workload tag), so every top-k(s, ·) and
/// reliable-set(s, ·) query over one source maps to the same key. For BFS
/// Sharing the seed also determines the index generation the sweep ran over
/// (the engine re-arms with a tagged derivative of it), which is why the key
/// needs no separate generation field.
struct SweepCacheKey {
  EstimatorKind kind = EstimatorKind::kMonteCarlo;
  NodeId source = kInvalidNode;
  uint32_t num_samples = 0;
  uint64_t seed = 0;

  bool operator==(const SweepCacheKey& other) const {
    return kind == other.kind && source == other.source &&
           num_samples == other.num_samples && seed == other.seed;
  }

  /// SplitMix-chained hash over every field.
  uint64_t Hash() const;
};

/// Outcome of a stale-tolerant sweep lookup (LookupStale).
struct StaleSweepLookup {
  /// The sweep (fresh or stale); nullptr on a true miss.
  std::shared_ptr<const std::vector<double>> sweep;
  /// True when the sweep is TTL-expired but within the stale window.
  bool stale = false;
  /// True for exactly one caller per stale episode — that caller owns the
  /// background re-warm. Reset by the next Insert on the key.
  bool refresh_owner = false;
};

/// One warm sweep as exported for the persistence journal: the full cache
/// key, the payload, and how much TTL it had left at export time
/// (0 = immortal). Expired entries are never exported.
struct SweepCacheExport {
  SweepCacheKey key;
  std::shared_ptr<const std::vector<double>> sweep;
  double ttl_seconds = 0.0;
};

/// Monotonic counters plus point-in-time occupancy; a snapshot type.
struct SweepCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Sweeps too large for the byte budget, never admitted.
  uint64_t rejected = 0;
  /// TTL'd warm entries dropped by the lookup that found them expired.
  uint64_t expired = 0;
  /// Expired sweeps served inside a stale window (stale-while-revalidate).
  uint64_t stale_served = 0;
  /// Occupancy at snapshot time.
  size_t bytes_in_use = 0;
  size_t entries = 0;

  uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    const uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

/// \brief Size-aware LRU memo of per-source reliability sweeps.
///
/// One sweep is n doubles — orders of magnitude heavier than a scalar cache
/// entry — so admission and eviction are by *bytes*, not entry count: the
/// cache evicts least-recently-used sweeps until the budget holds, and a
/// single sweep larger than the whole budget is rejected outright (admitting
/// it would flush everything for an entry that can never share). Values are
/// handed out as `shared_ptr<const>` so eviction never invalidates a reader
/// mid-derivation.
///
/// Thread-safe; one mutex guards the whole cache (operations are O(1) and
/// rare next to the O(K(m+n)) sweeps they memoize).
class SweepCache {
 public:
  /// `max_bytes` counts payload bytes (vector data); >= 1 enforced.
  /// `registry` (optional, not owned, must outlive the cache) receives the
  /// sweep_cache_* instruments; when nullptr a private registry is owned.
  explicit SweepCache(size_t max_bytes,
                      obs::MetricsRegistry* registry = nullptr);

  /// Returns the memoized sweep and refreshes its recency, or nullptr. An
  /// entry past its TTL deadline is dropped by the lookup that discovers it
  /// (counted in SweepCacheStats::expired) and reported as a miss. A live
  /// hit *promotes* a TTL'd entry to immortal: a real consumer proved the
  /// warm was wanted, so it graduates to the normal LRU/byte regime.
  /// `record_stats` = false makes the probe invisible to Stats() — for the
  /// engine's under-lock double check in the sweep-flight rendezvous, which
  /// would otherwise count one query's sweep acquisition twice.
  std::shared_ptr<const std::vector<double>> Lookup(const SweepCacheKey& key,
                                                    bool record_stats = true);

  /// Stale-while-revalidate lookup. Live entries behave exactly like
  /// Lookup() (including promote-on-hit). A TTL-expired entry whose deadline
  /// elapsed less than `max_stale_seconds` ago is served anyway with `stale`
  /// set and *without* promotion (it stays expired so the refresh replaces
  /// it); the first such observer gets `refresh_owner` = true. Sweep
  /// payloads are content-derived, so a stale sweep is byte-identical to a
  /// recomputed one — serving it cannot change any answer. Past the stale
  /// window the entry is reaped and the lookup is a miss.
  StaleSweepLookup LookupStale(const SweepCacheKey& key,
                               double max_stale_seconds,
                               bool record_stats = true);

  /// Releases the refresh-pending flag on `key`, re-arming LookupStale to
  /// elect a new refresh owner (for owners whose re-warm could not run).
  void ClearRefreshPending(const SweepCacheKey& key);

  /// Admits (or refreshes) `sweep` under `key`, evicting LRU entries until
  /// the byte budget holds. Oversized sweeps are rejected (see class note).
  /// `ttl_seconds` > 0 marks the entry as a speculative warm that expires
  /// after that long unless a Lookup hit promotes it first — the engine's
  /// scout-warmed sweeps use this so a warm no query ever wanted cannot pin
  /// cache bytes until LRU eviction. 0 (the default) admits immortal, the
  /// pre-TTL behavior; re-inserting an existing key applies the new TTL
  /// (a query-led re-insert thereby also promotes).
  void Insert(const SweepCacheKey& key,
              std::shared_ptr<const std::vector<double>> sweep,
              double ttl_seconds = 0.0);

  /// True when `key` is memoized and not expired. Touches neither recency
  /// nor stats — a pure probe, e.g. for the engine deciding whether a
  /// sweep-kind query is worth prebuilding a generation for (an expired
  /// warm is reported absent; the next Lookup reaps it).
  bool Contains(const SweepCacheKey& key) const;

  /// Snapshot of every live entry for the persistence journal, most-recent
  /// first. TTL'd entries carry their *remaining* TTL so a restart cannot
  /// extend a warm's life; entries already past their deadline are skipped
  /// (not reaped — this is a const probe like Contains).
  std::vector<SweepCacheExport> ExportEntries() const;

  /// Drops every entry (stats are kept).
  void Clear();

  SweepCacheStats Stats() const;
  size_t bytes_in_use() const;
  size_t size() const;
  size_t max_bytes() const { return max_bytes_; }

  /// Payload bytes one sweep vector occupies (the admission charge).
  static size_t SweepBytes(const std::vector<double>& sweep) {
    return sweep.size() * sizeof(double);
  }

 private:
  struct Entry {
    SweepCacheKey key;
    std::shared_ptr<const std::vector<double>> sweep;
    size_t bytes = 0;
    /// TTL state (see Insert): expired entries are reaped lazily by Lookup.
    bool expires = false;
    uint64_t deadline_ns = 0;
    /// A stale-while-revalidate re-warm is already owned for this entry.
    bool refresh_pending = false;
  };
  struct KeyHash {
    size_t operator()(const SweepCacheKey& key) const {
      return static_cast<size_t>(key.Hash());
    }
  };

  /// Updates the occupancy gauges from the locked fields (caller holds
  /// mutex_).
  void SyncGaugesLocked();

  const size_t max_bytes_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<SweepCacheKey, std::list<Entry>::iterator, KeyHash> index_;
  size_t bytes_in_use_ = 0;
  /// Private fallback when no shared registry was handed in.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* insertions_;
  obs::Counter* evictions_;
  obs::Counter* rejected_;
  obs::Counter* expired_;
  obs::Counter* stale_served_;
  obs::Gauge* bytes_gauge_;
  obs::Gauge* entries_gauge_;
};

}  // namespace relcomp
