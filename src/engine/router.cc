#include "engine/router.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <utility>

#include "common/format.h"

namespace relcomp {

namespace {

/// Minimal recursive-descent JSON reader for the tournament profile — no
/// external dependency, just enough of RFC 8259 for the documents this repo
/// itself emits (objects, arrays, strings with the common escapes, numbers,
/// bools, null).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Get(std::string_view key) const {
    for (const auto& [name, value] : object) {
      if (name == key) return &value;
    }
    return nullptr;
  }
  double NumberOr(std::string_view key, double fallback) const {
    const JsonValue* value = Get(key);
    return value != nullptr && value->type == Type::kNumber ? value->number
                                                            : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    RELCOMP_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const char* what) const {
    return Status::InvalidArgument(
        StrFormat("router profile JSON: %s (at offset %zu)", what, pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of document");
    const char c = text_[pos_];
    JsonValue value;
    switch (c) {
      case '{': {
        ++pos_;
        value.type = JsonValue::Type::kObject;
        if (Consume('}')) return value;
        for (;;) {
          SkipWs();
          std::string key;
          RELCOMP_RETURN_NOT_OK(ParseString(&key));
          if (!Consume(':')) return Error("expected ':' in object");
          RELCOMP_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
          value.object.emplace_back(std::move(key), std::move(member));
          if (Consume(',')) continue;
          if (Consume('}')) return value;
          return Error("expected ',' or '}' in object");
        }
      }
      case '[': {
        ++pos_;
        value.type = JsonValue::Type::kArray;
        if (Consume(']')) return value;
        for (;;) {
          RELCOMP_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
          value.array.push_back(std::move(element));
          if (Consume(',')) continue;
          if (Consume(']')) return value;
          return Error("expected ',' or ']' in array");
        }
      }
      case '"': {
        value.type = JsonValue::Type::kString;
        RELCOMP_RETURN_NOT_OK(ParseString(&value.string));
        return value;
      }
      case 't':
        if (!ConsumeLiteral("true")) return Error("bad literal");
        value.type = JsonValue::Type::kBool;
        value.boolean = true;
        return value;
      case 'f':
        if (!ConsumeLiteral("false")) return Error("bad literal");
        value.type = JsonValue::Type::kBool;
        return value;
      case 'n':
        if (!ConsumeLiteral("null")) return Error("bad literal");
        return value;
      default:
        return ParseNumber();
    }
  }

  Status ParseString(std::string* out) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          // Profiles are ASCII; decode BMP escapes to keep the reader total.
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else {
            out->push_back('?');
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t begin = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == begin) return Error("expected value");
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    try {
      value.number = std::stod(std::string(text_.substr(begin, pos_ - begin)));
    } catch (...) {
      return Error("bad number");
    }
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

constexpr EstimatorKind kAllKinds[] = {
    EstimatorKind::kMonteCarlo,      EstimatorKind::kBfsSharing,
    EstimatorKind::kProbTree,        EstimatorKind::kLazyPropagationPlus,
    EstimatorKind::kRecursive,       EstimatorKind::kRecursiveStratified,
    EstimatorKind::kLazyPropagation, EstimatorKind::kProbTreeLpPlus,
    EstimatorKind::kProbTreeRhh,     EstimatorKind::kProbTreeRss,
};

}  // namespace

bool EstimatorKindFromName(std::string_view name, EstimatorKind* kind) {
  for (const EstimatorKind candidate : kAllKinds) {
    if (name == EstimatorKindName(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

RouterModel RouterModel::Default(
    const std::vector<BackendCapabilities>& backends,
    const GraphFeatures& graph, const RouterOptions& options) {
  RouterModel model;
  const double m = static_cast<double>(graph.num_edges);
  // Expected sampled-subgraph size: each edge survives with its probability,
  // floored so degenerate graphs still produce a usable (ordering-only)
  // curve.
  const double sampled = std::max(1.0, m * std::max(0.01, graph.mean_edge_prob));
  for (const BackendCapabilities& backend : backends) {
    BackendProfile profile;
    profile.kind = backend.kind;
    const auto seconds_at = [&](double k) {
      return options.edge_visit_seconds *
             (backend.hints.per_query_edge_cost * m +
              backend.hints.per_sample_edge_cost * k * sampled);
    };
    // Two points pin the affine prior exactly under piecewise-linear
    // interpolation.
    profile.curve.push_back(CurvePoint{1.0, seconds_at(1.0), 0.25});
    const double k1 = 4096.0;
    profile.curve.push_back(CurvePoint{k1, seconds_at(k1), 0.25 / k1});
    model.profiles_.push_back(std::move(profile));
  }
  return model;
}

Result<RouterModel> RouterModel::FromJson(std::string_view json) {
  JsonParser parser(json);
  RELCOMP_ASSIGN_OR_RETURN(JsonValue document, parser.Parse());
  if (document.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("router profile JSON: document must be an object");
  }
  const JsonValue* backends = document.Get("backends");
  if (backends == nullptr || backends->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument(
        "router profile JSON: missing \"backends\" array");
  }
  RouterModel model;
  for (const JsonValue& entry : backends->array) {
    if (entry.type != JsonValue::Type::kObject) continue;
    const JsonValue* kind_name = entry.Get("kind");
    EstimatorKind kind;
    if (kind_name == nullptr || kind_name->type != JsonValue::Type::kString ||
        !EstimatorKindFromName(kind_name->string, &kind)) {
      continue;  // unknown backend: a newer profile, skip it
    }
    BackendProfile profile;
    profile.kind = kind;
    profile.converged_k = entry.NumberOr("converged_k", 0.0);
    if (const JsonValue* curve = entry.Get("curve");
        curve != nullptr && curve->type == JsonValue::Type::kArray) {
      for (const JsonValue& point : curve->array) {
        if (point.type != JsonValue::Type::kObject) continue;
        CurvePoint parsed;
        parsed.k = point.NumberOr("k", 0.0);
        parsed.seconds = point.NumberOr("seconds", 0.0);
        parsed.variance = point.NumberOr("variance", 0.0);
        if (parsed.k > 0.0 && parsed.seconds >= 0.0) {
          profile.curve.push_back(parsed);
        }
      }
    }
    if (profile.curve.empty()) continue;
    std::sort(profile.curve.begin(), profile.curve.end(),
              [](const CurvePoint& a, const CurvePoint& b) { return a.k < b.k; });
    model.profiles_.push_back(std::move(profile));
  }
  if (model.profiles_.empty()) {
    return Status::InvalidArgument(
        "router profile JSON: no backend with a usable latency curve");
  }
  return model;
}

const RouterModel::BackendProfile* RouterModel::Find(EstimatorKind kind) const {
  for (const BackendProfile& profile : profiles_) {
    if (profile.kind == kind) return &profile;
  }
  return nullptr;
}

double RouterModel::Interpolate(const std::vector<CurvePoint>& curve, double k,
                                double CurvePoint::*field) {
  if (curve.empty()) return 0.0;
  const CurvePoint& front = curve.front();
  if (curve.size() == 1 || k <= front.k) {
    // Through-the-origin scaling below the first measured point (latency is
    // near-linear in K; callers never consult variance down here).
    return front.k > 0.0 ? front.*field * (k / front.k) : front.*field;
  }
  for (size_t i = 1; i < curve.size(); ++i) {
    if (k <= curve[i].k) {
      const CurvePoint& a = curve[i - 1];
      const CurvePoint& b = curve[i];
      const double dk = b.k - a.k;
      if (dk <= 0.0) return b.*field;
      const double t = (k - a.k) / dk;
      return a.*field + t * (b.*field - a.*field);
    }
  }
  // Linear extrapolation along the last segment, floored at zero.
  const CurvePoint& a = curve[curve.size() - 2];
  const CurvePoint& b = curve.back();
  const double dk = b.k - a.k;
  const double slope = dk > 0.0 ? (b.*field - a.*field) / dk : 0.0;
  return std::max(0.0, b.*field + slope * (k - b.k));
}

double RouterModel::PredictSeconds(EstimatorKind kind, double k) const {
  const BackendProfile* profile = Find(kind);
  return profile == nullptr ? 0.0
                            : Interpolate(profile->curve, k,
                                          &CurvePoint::seconds);
}

double RouterModel::PredictVariance(EstimatorKind kind, double k) const {
  const BackendProfile* profile = Find(kind);
  return profile == nullptr ? 0.0
                            : Interpolate(profile->curve, k,
                                          &CurvePoint::variance);
}

EstimatorRouter::EstimatorRouter(RouterModel model, RouterOptions options,
                                 RouterStaticConfig static_config,
                                 GraphFeatures graph,
                                 std::vector<BackendCapabilities> candidates,
                                 size_t num_threads,
                                 obs::MetricsRegistry* registry)
    : model_(std::move(model)),
      options_(std::move(options)),
      static_(static_config),
      graph_(graph),
      candidates_(std::move(candidates)),
      num_threads_(num_threads == 0 ? 1 : num_threads),
      registry_(registry) {
  fallbacks_ = registry_->GetCounter("router_fallbacks");
  predicted_vs_actual_ = registry_->GetHistogram("router_predicted_vs_actual");
}

const BackendCapabilities* EstimatorRouter::FindCandidate(
    EstimatorKind kind) const {
  for (const BackendCapabilities& candidate : candidates_) {
    if (candidate.kind == kind) return &candidate;
  }
  return nullptr;
}

bool EstimatorRouter::Capable(const BackendCapabilities& candidate,
                              WorkloadKind workload, bool is_sweep) const {
  if (is_sweep) return candidate.source_sweep;
  if (workload == WorkloadKind::kDistance) return candidate.distance;
  return true;  // every kind answers st
}

QueryPlan EstimatorRouter::StaticPlan() const {
  QueryPlan plan;
  plan.kind = static_.kind;
  plan.num_samples = static_.num_samples;
  plan.num_strata = static_.num_strata;
  plan.routed = false;
  plan.fallback = false;
  plan.predicted_seconds =
      model_.PredictSeconds(static_.kind, static_.num_samples);
  return plan;
}

uint64_t EstimatorRouter::QuantizeKey(const QueryFeatures& features,
                                      double* eps_bucket,
                                      bool* is_sweep) const {
  *is_sweep = IsSweepWorkload(features.workload);
  // Degree bucket: log2 — decisions are stable across sources of similar
  // degree, and same-bucket sources share a memoized plan.
  uint32_t degree_bucket = 0;
  for (uint32_t d = features.out_degree; d != 0; d >>= 1) ++degree_bucket;
  // Escape probability rounded *up* to 1/64ths: conservative for the budget
  // cut (a larger eps can only raise the routed K).
  const double eps = std::clamp(features.escape_prob, 0.0, 1.0);
  const uint32_t eps_index =
      static_cast<uint32_t>(std::min(64.0, std::ceil(eps * 64.0)));
  *eps_bucket = static_cast<double>(eps_index) / 64.0;
  // Sweep plans must be identical for every (k, eta, workload-tag) over one
  // source — the sweep-sharing contract — so sweep kinds collapse to one tag
  // and drop the parameter.
  const uint64_t tag =
      *is_sweep ? 0xFFu : static_cast<uint64_t>(features.workload);
  const uint64_t param = *is_sweep ? 0u : features.param;
  return (tag << 56) | (static_cast<uint64_t>(degree_bucket) << 48) |
         (static_cast<uint64_t>(eps_index) << 40) | param;
}

QueryPlan EstimatorRouter::Compute(const QueryFeatures& features, double eps,
                                   bool is_sweep) {
  QueryPlan plan = StaticPlan();
  plan.routed = true;

  // Budget lever — equal worst-case accuracy: R(s, t) <= eps for every t,
  // and x(1-x) increases on [0, 1/2], so worst-case sampling variance at
  // budget K' is eps(1-eps)/K'. Choosing K' = 4 eps (1-eps) K keeps that at
  // most 0.25/K, the static budget's worst case over the whole query space.
  double efficiency = 1.0;
  if (eps < 0.5) efficiency = 4.0 * eps * (1.0 - eps);
  uint32_t budget = static_cast<uint32_t>(
      std::ceil(static_cast<double>(static_.num_samples) * efficiency));
  const uint32_t floor_budget =
      std::min(options_.min_budget, static_.num_samples);
  budget = std::clamp(budget, std::max(1u, floor_budget), static_.num_samples);
  plan.num_samples = budget;

  // Backend lever — hysteresis-gated switch by predicted latency at the
  // routed budget; a static kind that cannot answer the workload is replaced
  // by the cheapest capable candidate (enabling the query instead of
  // failing it).
  const BackendCapabilities* static_candidate = FindCandidate(static_.kind);
  const bool static_capable =
      static_candidate != nullptr &&
      Capable(*static_candidate, features.workload, is_sweep);
  EstimatorKind chosen = static_.kind;
  double chosen_seconds =
      static_capable
          ? model_.PredictSeconds(static_.kind,
                                  static_cast<double>(budget))
          : 0.0;
  if (!static_capable) {
    double best = std::numeric_limits<double>::infinity();
    bool found = false;
    for (const BackendCapabilities& candidate : candidates_) {
      if (!Capable(candidate, features.workload, is_sweep)) continue;
      const double seconds =
          model_.PredictSeconds(candidate.kind, static_cast<double>(budget));
      if (!found || seconds < best) {
        chosen = candidate.kind;
        best = seconds;
        found = true;
      }
    }
    if (found) chosen_seconds = best;
    // No capable candidate: keep the static kind; the query fails exactly
    // as it would with the router off.
  } else if (chosen_seconds > 0.0) {
    for (const BackendCapabilities& candidate : candidates_) {
      if (candidate.kind == chosen) continue;
      if (!Capable(candidate, features.workload, is_sweep)) continue;
      const double seconds =
          model_.PredictSeconds(candidate.kind, static_cast<double>(budget));
      if (seconds > 0.0 &&
          seconds < chosen_seconds * (1.0 - options_.hysteresis_margin)) {
        chosen = candidate.kind;
        chosen_seconds = seconds;
      }
    }
  }
  plan.kind = chosen;
  plan.predicted_seconds = chosen_seconds;

  // Strata lever — a sweep worth real time parallelizes across the machine
  // through the existing stratum work-stealing scheduler; tiny sweeps skip
  // the scheduler overhead and keep the static S.
  plan.num_strata = static_.num_strata;
  if (is_sweep) {
    const BackendCapabilities* chosen_candidate = FindCandidate(chosen);
    if (chosen_candidate != nullptr && chosen_candidate->stratified_sweep &&
        num_threads_ > 1 && chosen_seconds > options_.stratify_min_seconds) {
      const uint32_t strata =
          std::max(static_.num_strata,
                   static_cast<uint32_t>(2 * num_threads_));
      plan.num_strata = std::min(strata, std::max(1u, options_.max_strata));
    }
  }
  return plan;
}

QueryPlan EstimatorRouter::Decide(const QueryFeatures& features) {
  decisions_total_.fetch_add(1, std::memory_order_relaxed);
  QueryPlan plan;
  if (fallback_engaged_.load(std::memory_order_relaxed)) {
    plan = StaticPlan();
    plan.fallback = true;
    fallbacks_->Inc();
  } else {
    double eps = 0.0;
    bool is_sweep = false;
    const uint64_t key = QuantizeKey(features, &eps, &is_sweep);
    std::lock_guard<std::mutex> lock(memo_mutex_);
    auto it = memo_.find(key);
    if (it == memo_.end()) {
      it = memo_.emplace(key, Compute(features, eps, is_sweep)).first;
    }
    plan = it->second;
  }
  registry_
      ->GetCounter("router_decisions", "kind", EstimatorKindName(plan.kind))
      ->Inc();
  return plan;
}

void EstimatorRouter::RecordObserved(const QueryPlan& plan,
                                     double observed_seconds) {
  if (plan.predicted_seconds <= 0.0) return;
  if (observed_seconds < options_.fallback_min_seconds) return;
  const double ratio = observed_seconds / plan.predicted_seconds;
  predicted_vs_actual_->Record(static_cast<uint64_t>(
      std::min(ratio * 1000.0, 1e18)));  // milli-ratio; 1000 = on the money
  if (!plan.routed || plan.fallback) return;
  if (fallback_engaged_.load(std::memory_order_relaxed)) return;
  if (ratio > options_.fallback_gate) {
    const uint64_t streak =
        consecutive_regressions_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (streak >= options_.fallback_min_observations) {
      // Sticky for the engine's lifetime: once routing demonstrably
      // regresses, every later decision is the paper-faithful default.
      fallback_engaged_.store(true, std::memory_order_relaxed);
    }
  } else {
    consecutive_regressions_.store(0, std::memory_order_relaxed);
  }
}

}  // namespace relcomp
