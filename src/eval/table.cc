#include "eval/table.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

namespace relcomp {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) {
        line.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::ToCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  auto render = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += escape(row[c]);
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  };
  render(headers_);
  for (const auto& row : rows_) render(row);
  return out;
}

Status MaybeWriteCsv(const TextTable& table, const std::string& name) {
  const char* dir = std::getenv("RELCOMP_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return Status::OK();
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open for writing: " + path);
  out << table.ToCsv();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace relcomp
