#pragma once

#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"
#include "reliability/estimator.h"

namespace relcomp {

/// \brief Workload generation knobs (Section 3.1.3).
struct QueryGenOptions {
  /// Number of distinct s-t pairs (the paper uses 100).
  uint32_t num_pairs = 100;
  /// Required shortest-path hop distance between s and t (2 by default; the
  /// sensitivity study of Section 3.9 varies this in {2, 4, 6, 8}).
  uint32_t hop_distance = 2;
  uint64_t seed = 7;
  /// Source re-draws before giving up on filling the workload.
  uint32_t max_attempts = 100000;
};

/// \brief Generates distinct s-t pairs by the paper's procedure: draw a
/// source uniformly at random, BFS `hop_distance` hops, pick a target
/// uniformly among the nodes at exactly that distance; re-draw the source if
/// none exists.
///
/// Returns NotFound if not a single valid pair exists; otherwise returns up
/// to num_pairs pairs (possibly fewer on very sparse graphs).
Result<std::vector<ReliabilityQuery>> GenerateQueries(
    const UncertainGraph& graph, const QueryGenOptions& options);

}  // namespace relcomp
