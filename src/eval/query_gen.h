#pragma once

#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"
#include "reliability/estimator.h"
#include "reliability/workload.h"

namespace relcomp {

/// \brief Workload generation knobs (Section 3.1.3).
struct QueryGenOptions {
  /// Number of distinct s-t pairs (the paper uses 100).
  uint32_t num_pairs = 100;
  /// Required shortest-path hop distance between s and t (2 by default; the
  /// sensitivity study of Section 3.9 varies this in {2, 4, 6, 8}).
  uint32_t hop_distance = 2;
  uint64_t seed = 7;
  /// Source re-draws before giving up on filling the workload.
  uint32_t max_attempts = 100000;
};

/// \brief Generates distinct s-t pairs by the paper's procedure: draw a
/// source uniformly at random, BFS `hop_distance` hops, pick a target
/// uniformly among the nodes at exactly that distance; re-draw the source if
/// none exists.
///
/// Returns NotFound if not a single valid pair exists; otherwise returns up
/// to num_pairs pairs (possibly fewer on very sparse graphs).
Result<std::vector<ReliabilityQuery>> GenerateQueries(
    const UncertainGraph& graph, const QueryGenOptions& options);

/// \brief Knobs for a mixed-workload stream over the four engine workloads.
struct MixedWorkloadOptions {
  /// Underlying s-t pair catalogue (sources and targets are drawn from it).
  QueryGenOptions pairs;
  /// Total queries emitted.
  uint32_t num_queries = 200;
  /// Relative draw weights per workload kind; a zero weight removes the
  /// kind from the mix. Must not all be zero.
  double st_weight = 0.4;
  double top_k_weight = 0.2;
  double reliable_set_weight = 0.2;
  double distance_weight = 0.2;
  /// Parameters stamped onto the non-st kinds.
  uint32_t k = 10;        ///< top-k
  double eta = 0.2;       ///< reliable-set threshold
  uint32_t max_hops = 4;  ///< distance bound
  /// Seed for the workload mix (independent of `pairs.seed`).
  uint64_t seed = 99;
};

/// \brief Emits a mixed stream of EngineQuerys: each query draws a workload
/// kind by the configured weights and an s-t pair (uniformly) from the
/// generated catalogue — top-k / reliable-set queries use the pair's source,
/// st / distance queries the full pair. Deterministic in the seeds.
Result<std::vector<EngineQuery>> GenerateMixedWorkload(
    const UncertainGraph& graph, const MixedWorkloadOptions& options);

}  // namespace relcomp
