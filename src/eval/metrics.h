#pragma once

#include <cstddef>
#include <vector>

namespace relcomp {

/// \brief Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (the 1/(T-1) form of Eq. 11).
  double SampleVariance() const;
  double StdDev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// \brief Average variance V_K, average reliability R_K, and the index of
/// dispersion rho_K = V_K / R_K over a query workload (Eq. 11-13 +
/// Section 3.1.4).
struct DispersionPoint {
  double avg_variance = 0.0;     ///< V_K
  double avg_reliability = 0.0;  ///< R_K
  /// rho_K; 0 when both V_K and R_K are 0 (degenerate all-zero workloads
  /// count as converged).
  double dispersion = 0.0;
};

/// Combines per-pair repeat statistics into a DispersionPoint.
/// `per_pair` holds one RunningStats per s-t pair, each fed T repeats.
DispersionPoint CombineDispersion(const std::vector<RunningStats>& per_pair);

/// \brief Relative error of `estimates` against `ground` (Eq. 14), averaged
/// over pairs. Pairs whose ground truth is 0 are skipped (the paper's
/// workloads have strictly positive MC-at-convergence reliabilities).
double RelativeError(const std::vector<double>& estimates,
                     const std::vector<double>& ground);

/// \brief Pairwise deviation D of relative errors across estimators
/// (Eq. 15): mean absolute difference over all ordered pairs.
double PairwiseDeviation(const std::vector<double>& relative_errors);

}  // namespace relcomp
