#include "eval/convergence.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "common/rng.h"

namespace relcomp {

const KPoint* ConvergenceReport::FindK(uint32_t k) const {
  for (const KPoint& p : points) {
    if (p.k == k) return &p;
  }
  return nullptr;
}

Result<KPoint> MeasureAtK(Estimator& estimator,
                          const std::vector<ReliabilityQuery>& queries,
                          uint32_t k, uint32_t repeats, uint64_t seed,
                          bool prepare_between_runs) {
  if (queries.empty()) {
    return Status::InvalidArgument("MeasureAtK: empty workload");
  }
  if (repeats == 0) {
    return Status::InvalidArgument("MeasureAtK: repeats must be positive");
  }
  Rng seeder(seed ^ (static_cast<uint64_t>(k) * 0x9E3779B97F4A7C15ULL));
  KPoint point;
  point.k = k;
  std::vector<RunningStats> per_pair(queries.size());
  double seconds_sum = 0.0;
  size_t runs = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (uint32_t rep = 0; rep < repeats; ++rep) {
      const uint64_t run_seed = seeder.NextU64();
      if (prepare_between_runs) {
        RELCOMP_RETURN_NOT_OK(estimator.PrepareForNextQuery(run_seed ^ 0xA11CE));
      }
      EstimateOptions opts;
      opts.num_samples = k;
      opts.seed = run_seed;
      RELCOMP_ASSIGN_OR_RETURN(EstimateResult result,
                               estimator.Estimate(queries[qi], opts));
      per_pair[qi].Add(result.reliability);
      seconds_sum += result.seconds;
      point.peak_memory_bytes =
          std::max(point.peak_memory_bytes, result.peak_memory_bytes);
      ++runs;
    }
  }
  const DispersionPoint d = CombineDispersion(per_pair);
  point.avg_variance = d.avg_variance;
  point.avg_reliability = d.avg_reliability;
  point.dispersion = d.dispersion;
  point.avg_query_seconds = seconds_sum / static_cast<double>(runs);
  point.per_pair_reliability.reserve(per_pair.size());
  for (const RunningStats& stats : per_pair) {
    point.per_pair_reliability.push_back(stats.mean());
  }
  return point;
}

Result<ConvergenceReport> RunConvergence(
    Estimator& estimator, const std::vector<ReliabilityQuery>& queries,
    const ConvergenceOptions& options) {
  if (options.initial_k == 0 || options.step_k == 0) {
    return Status::InvalidArgument("RunConvergence: K parameters must be positive");
  }
  ConvergenceReport report;
  report.estimator_name = std::string(estimator.name());
  for (uint32_t k = options.initial_k; k <= options.max_k; k += options.step_k) {
    RELCOMP_ASSIGN_OR_RETURN(
        KPoint point, MeasureAtK(estimator, queries, k, options.repeats,
                                 options.seed, options.prepare_between_runs));
    report.points.push_back(std::move(point));
    if (report.converged_k == 0 &&
        report.points.back().dispersion < options.dispersion_threshold) {
      report.converged_k = k;
      if (options.stop_at_convergence) break;
    }
  }
  if (report.points.empty()) {
    return Status::InvalidArgument("RunConvergence: empty K range");
  }
  return report;
}

namespace {
constexpr char kReportMagic[8] = {'R', 'E', 'L', 'C', 'O', 'N', 'V', '1'};
}  // namespace

Status SaveConvergenceReport(const ConvergenceReport& report,
                             const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open for writing: " + path);
  auto write_u64 = [&out](uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto write_f64 = [&out](double v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  out.write(kReportMagic, sizeof(kReportMagic));
  write_u64(report.estimator_name.size());
  out.write(report.estimator_name.data(),
            static_cast<std::streamsize>(report.estimator_name.size()));
  write_u64(report.converged_k);
  write_u64(report.points.size());
  for (const KPoint& p : report.points) {
    write_u64(p.k);
    write_f64(p.avg_variance);
    write_f64(p.avg_reliability);
    write_f64(p.dispersion);
    write_f64(p.avg_query_seconds);
    write_u64(p.peak_memory_bytes);
    write_u64(p.per_pair_reliability.size());
    for (double r : p.per_pair_reliability) write_f64(r);
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<ConvergenceReport> LoadConvergenceReport(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("no cached report: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kReportMagic, sizeof(magic)) != 0) {
    return Status::IOError("not a convergence report: " + path);
  }
  auto read_u64 = [&in]() {
    uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  auto read_f64 = [&in]() {
    double v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  ConvergenceReport report;
  const uint64_t name_len = read_u64();
  if (name_len > 256) return Status::IOError("corrupt report: " + path);
  report.estimator_name.resize(name_len);
  in.read(report.estimator_name.data(), static_cast<std::streamsize>(name_len));
  report.converged_k = static_cast<uint32_t>(read_u64());
  const uint64_t num_points = read_u64();
  if (num_points > 100000) return Status::IOError("corrupt report: " + path);
  report.points.resize(num_points);
  for (KPoint& p : report.points) {
    p.k = static_cast<uint32_t>(read_u64());
    p.avg_variance = read_f64();
    p.avg_reliability = read_f64();
    p.dispersion = read_f64();
    p.avg_query_seconds = read_f64();
    p.peak_memory_bytes = read_u64();
    const uint64_t pairs = read_u64();
    if (pairs > 1000000) return Status::IOError("corrupt report: " + path);
    p.per_pair_reliability.resize(pairs);
    for (double& r : p.per_pair_reliability) r = read_f64();
  }
  if (!in.good()) return Status::IOError("truncated report: " + path);
  return report;
}

}  // namespace relcomp
