#include "eval/metrics.h"

#include <cmath>

namespace relcomp {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::SampleVariance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(SampleVariance()); }

DispersionPoint CombineDispersion(const std::vector<RunningStats>& per_pair) {
  DispersionPoint point;
  if (per_pair.empty()) return point;
  double var_sum = 0.0;
  double rel_sum = 0.0;
  for (const RunningStats& stats : per_pair) {
    var_sum += stats.SampleVariance();
    rel_sum += stats.mean();
  }
  point.avg_variance = var_sum / static_cast<double>(per_pair.size());
  point.avg_reliability = rel_sum / static_cast<double>(per_pair.size());
  if (point.avg_reliability > 0.0) {
    point.dispersion = point.avg_variance / point.avg_reliability;
  } else {
    point.dispersion = 0.0;  // all-zero workload: nothing left to resolve
  }
  return point;
}

double RelativeError(const std::vector<double>& estimates,
                     const std::vector<double>& ground) {
  double sum = 0.0;
  size_t used = 0;
  const size_t n = std::min(estimates.size(), ground.size());
  for (size_t i = 0; i < n; ++i) {
    if (ground[i] <= 0.0) continue;
    sum += std::fabs(estimates[i] - ground[i]) / ground[i];
    ++used;
  }
  return used > 0 ? sum / static_cast<double>(used) : 0.0;
}

double PairwiseDeviation(const std::vector<double>& relative_errors) {
  const size_t n = relative_errors.size();
  if (n < 2) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      sum += std::fabs(relative_errors[i] - relative_errors[j]);
    }
  }
  return sum / static_cast<double>(n * (n - 1));
}

}  // namespace relcomp
