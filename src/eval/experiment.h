#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "eval/convergence.h"
#include "eval/query_gen.h"
#include "graph/datasets.h"
#include "reliability/estimator_factory.h"

namespace relcomp {

/// \brief Shared configuration for the bench binaries; every knob has an
/// environment override so one `for b in bench/*; do $b; done` loop can be
/// re-run at different scales.
///
/// Environment variables: RELCOMP_SCALE (tiny|small|medium|large),
/// RELCOMP_PAIRS, RELCOMP_REPEATS, RELCOMP_MAX_K, RELCOMP_SEED,
/// RELCOMP_THREADS (worker-thread ceiling for the engine benches),
/// RELCOMP_CACHE_DIR (convergence-scan cache shared by the bench binaries;
/// set to empty to disable), RELCOMP_QUIET (suppress progress on stderr).
struct BenchConfig {
  /// Default tiny: the full 6x6 convergence matrix with BFS Sharing in it is
  /// exactly as expensive as the paper reports (its Tables 9-14 run to
  /// thousands of seconds per query on a server); tiny keeps the whole bench
  /// suite in minutes while preserving every ordering. Use
  /// RELCOMP_SCALE=small|medium|large to grow.
  Scale scale = Scale::kTiny;
  uint32_t num_pairs = 15;   ///< paper: 100
  uint32_t repeats = 10;     ///< paper: T = 100
  uint32_t initial_k = 250;  ///< paper protocol
  uint32_t step_k = 250;
  uint32_t max_k = 2000;
  double dispersion_threshold = 1e-3;
  uint64_t seed = 20190410;  ///< arXiv date of the paper
  /// Largest worker-thread count the engine benches sweep to (the sweep is
  /// 1, 2, 4, ... up to this); 0 = hardware concurrency.
  uint32_t num_threads = 0;
  /// Directory for cached convergence scans ("" = no cache). Benches share
  /// one matrix of scans; the first binary pays, the rest reuse.
  std::string cache_dir = ".relcomp_cache";
  /// Progress lines on stderr while scanning.
  bool verbose = true;

  static BenchConfig FromEnv();

  ConvergenceOptions MakeConvergenceOptions(bool stop_at_convergence = true) const;
  /// One-line description printed at the top of every bench.
  std::string Describe() const;
};

/// \brief Caches datasets, workloads, MC ground truths, and convergence runs
/// so a bench binary touching several tables does each expensive step once.
class ExperimentContext {
 public:
  explicit ExperimentContext(BenchConfig config) : config_(std::move(config)) {}

  const BenchConfig& config() const { return config_; }

  /// Generates (and caches) the dataset.
  Result<const Dataset*> GetDataset(DatasetId id);

  /// The workload of s-t pairs at `hop_distance` (cached per (id, h)).
  Result<const std::vector<ReliabilityQuery>*> GetQueries(DatasetId id,
                                                          uint32_t hop_distance = 2);

  /// Builds an estimator of `kind` over the dataset (cached; index built
  /// once per binary).
  Result<Estimator*> GetEstimator(DatasetId id, EstimatorKind kind);

  /// Full convergence scan for (dataset, estimator) at h = 2 (cached).
  /// `full_curve` keeps scanning past convergence (Figure 7/9-11 traces).
  Result<const ConvergenceReport*> GetConvergence(DatasetId id, EstimatorKind kind,
                                                  bool full_curve = false);

  /// Per-pair MC reliability at MC's convergence: the ground truth of
  /// Eq. 14 (cached).
  Result<const std::vector<double>*> GetGroundTruth(DatasetId id);

 private:
  BenchConfig config_;
  std::map<int, Dataset> datasets_;
  std::map<std::pair<int, uint32_t>, std::vector<ReliabilityQuery>> queries_;
  std::map<std::pair<int, int>, std::unique_ptr<Estimator>> estimators_;
  std::map<std::tuple<int, int, bool>, ConvergenceReport> convergence_;
  std::map<int, std::vector<double>> ground_truth_;
};

}  // namespace relcomp
