#include "eval/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/format.h"
#include "common/timer.h"

namespace relcomp {

namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  uint64_t parsed = 0;
  return ParseUint64(value, &parsed) ? parsed : fallback;
}

}  // namespace

BenchConfig BenchConfig::FromEnv() {
  BenchConfig config;
  if (std::getenv("RELCOMP_SCALE") != nullptr) config.scale = ScaleFromEnv();
  config.num_pairs = static_cast<uint32_t>(EnvU64("RELCOMP_PAIRS", config.num_pairs));
  config.repeats = static_cast<uint32_t>(EnvU64("RELCOMP_REPEATS", config.repeats));
  config.max_k = static_cast<uint32_t>(EnvU64("RELCOMP_MAX_K", config.max_k));
  config.seed = EnvU64("RELCOMP_SEED", config.seed);
  config.num_threads =
      static_cast<uint32_t>(EnvU64("RELCOMP_THREADS", config.num_threads));
  if (const char* dir = std::getenv("RELCOMP_CACHE_DIR"); dir != nullptr) {
    config.cache_dir = dir;
  }
  if (std::getenv("RELCOMP_QUIET") != nullptr) config.verbose = false;
  return config;
}

ConvergenceOptions BenchConfig::MakeConvergenceOptions(
    bool stop_at_convergence) const {
  ConvergenceOptions options;
  options.initial_k = initial_k;
  options.step_k = step_k;
  options.max_k = max_k;
  options.repeats = repeats;
  options.dispersion_threshold = dispersion_threshold;
  options.seed = seed ^ 0xC0FFEE;
  options.stop_at_convergence = stop_at_convergence;
  return options;
}

std::string BenchConfig::Describe() const {
  return StrFormat(
      "scale=%s pairs=%u repeats=%u K=%u..%u step %u rho<%g seed=%llu "
      "(paper: 100 pairs, T=100; see EXPERIMENTS.md)",
      ScaleName(scale), num_pairs, repeats, initial_k, max_k, step_k,
      dispersion_threshold, static_cast<unsigned long long>(seed));
}

Result<const Dataset*> ExperimentContext::GetDataset(DatasetId id) {
  const int key = static_cast<int>(id);
  auto it = datasets_.find(key);
  if (it == datasets_.end()) {
    RELCOMP_ASSIGN_OR_RETURN(Dataset dataset,
                             MakeDataset(id, config_.scale, config_.seed));
    it = datasets_.emplace(key, std::move(dataset)).first;
  }
  return &it->second;
}

Result<const std::vector<ReliabilityQuery>*> ExperimentContext::GetQueries(
    DatasetId id, uint32_t hop_distance) {
  const auto key = std::make_pair(static_cast<int>(id), hop_distance);
  auto it = queries_.find(key);
  if (it == queries_.end()) {
    RELCOMP_ASSIGN_OR_RETURN(const Dataset* dataset, GetDataset(id));
    QueryGenOptions options;
    options.num_pairs = config_.num_pairs;
    options.hop_distance = hop_distance;
    options.seed = config_.seed ^ (0xABCDEFULL + hop_distance);
    RELCOMP_ASSIGN_OR_RETURN(std::vector<ReliabilityQuery> queries,
                             GenerateQueries(dataset->graph, options));
    it = queries_.emplace(key, std::move(queries)).first;
  }
  return &it->second;
}

Result<Estimator*> ExperimentContext::GetEstimator(DatasetId id,
                                                   EstimatorKind kind) {
  const auto key = std::make_pair(static_cast<int>(id), static_cast<int>(kind));
  auto it = estimators_.find(key);
  if (it == estimators_.end()) {
    RELCOMP_ASSIGN_OR_RETURN(const Dataset* dataset, GetDataset(id));
    FactoryOptions factory;
    factory.index_seed = config_.seed ^ 0x1D1CE;
    // The BFS Sharing index must cover the largest K the scan may reach
    // (the paper's L=1500 "safe bound", scaled to the configured max).
    factory.bfs_sharing.index_samples = std::max(config_.max_k, 1500u);
    RELCOMP_ASSIGN_OR_RETURN(std::unique_ptr<Estimator> estimator,
                             MakeEstimator(kind, dataset->graph, factory));
    it = estimators_.emplace(key, std::move(estimator)).first;
  }
  return it->second.get();
}

Result<const ConvergenceReport*> ExperimentContext::GetConvergence(
    DatasetId id, EstimatorKind kind, bool full_curve) {
  const auto key =
      std::make_tuple(static_cast<int>(id), static_cast<int>(kind), full_curve);
  auto it = convergence_.find(key);
  if (it != convergence_.end()) return &it->second;

  // Cross-process cache: the convergence matrix is shared by several bench
  // binaries; key every protocol knob so stale results can never be reused.
  std::string cache_path;
  if (!config_.cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.cache_dir, ec);
    std::string kind_name = EstimatorKindName(kind);
    for (char& c : kind_name) {
      if (c == '+') c = 'P';
    }
    cache_path = StrFormat(
        "%s/conv_%s_%s_%s_p%u_r%u_k%u-%u-%u_t%g_s%llu_f%d.bin",
        config_.cache_dir.c_str(), ScaleName(config_.scale), DatasetName(id),
        kind_name.c_str(), config_.num_pairs, config_.repeats, config_.initial_k,
        config_.step_k, config_.max_k, config_.dispersion_threshold,
        static_cast<unsigned long long>(config_.seed), full_curve ? 1 : 0);
    Result<ConvergenceReport> cached = LoadConvergenceReport(cache_path);
    if (cached.ok()) {
      it = convergence_.emplace(key, cached.MoveValue()).first;
      return &it->second;
    }
  }

  if (config_.verbose) {
    std::fprintf(stderr, "[relcomp] convergence scan: %s / %s ...\n",
                 DatasetName(id), EstimatorKindName(kind));
  }
  RELCOMP_ASSIGN_OR_RETURN(Estimator * estimator, GetEstimator(id, kind));
  RELCOMP_ASSIGN_OR_RETURN(const std::vector<ReliabilityQuery>* queries,
                           GetQueries(id));
  Timer timer;
  RELCOMP_ASSIGN_OR_RETURN(
      ConvergenceReport report,
      RunConvergence(*estimator, *queries,
                     config_.MakeConvergenceOptions(!full_curve)));
  if (config_.verbose) {
    std::fprintf(stderr, "[relcomp]   done in %.1f s (K@conv=%u)\n",
                 timer.ElapsedSeconds(), report.converged_k);
  }
  if (!cache_path.empty()) {
    const Status saved = SaveConvergenceReport(report, cache_path);
    if (!saved.ok() && config_.verbose) {
      std::fprintf(stderr, "[relcomp]   cache write failed: %s\n",
                   saved.ToString().c_str());
    }
  }
  it = convergence_.emplace(key, std::move(report)).first;
  return &it->second;
}

Result<const std::vector<double>*> ExperimentContext::GetGroundTruth(
    DatasetId id) {
  const int key = static_cast<int>(id);
  auto it = ground_truth_.find(key);
  if (it == ground_truth_.end()) {
    RELCOMP_ASSIGN_OR_RETURN(
        const ConvergenceReport* mc,
        GetConvergence(id, EstimatorKind::kMonteCarlo, /*full_curve=*/false));
    const KPoint* point =
        mc->converged() ? mc->FindK(mc->converged_k) : &mc->FinalPoint();
    it = ground_truth_.emplace(key, point->per_pair_reliability).first;
  }
  return &it->second;
}

}  // namespace relcomp
