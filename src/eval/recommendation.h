#pragma once

#include <string>
#include <vector>

#include "reliability/estimator_factory.h"

namespace relcomp {

/// \brief Star ratings (1-4) of Table 17, per metric.
struct StarRatings {
  int variance = 0;
  int accuracy = 0;
  int running_time = 0;
  int memory = 0;
};

/// The paper's Table 17 ratings for the six headline estimators.
StarRatings PaperRatings(EstimatorKind kind);

/// Renders the Table 17 style summary for the six estimators.
std::string RatingsTable();

/// \brief Inputs to the Figure 18 decision tree.
struct ScenarioConstraints {
  /// Is online memory tight? (left branch of the tree)
  bool memory_constrained = false;
  /// Is estimator variance critical (need RHH/RSS-grade variance)?
  bool need_low_variance = false;
  /// Is per-query latency critical?
  bool need_fast_queries = true;
};

/// \brief Figure 18: walks the decision tree and returns the recommended
/// estimator(s) in preference order, with a textual explanation of the path.
struct Recommendation {
  std::vector<EstimatorKind> estimators;
  std::string explanation;
};
Recommendation RecommendEstimator(const ScenarioConstraints& constraints);

}  // namespace relcomp
