#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace relcomp {

/// \brief Minimal column-aligned ASCII table + CSV writer used by the bench
/// binaries to print the paper's tables and figure series.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  size_t num_rows() const { return rows_.size(); }

  /// Column-aligned rendering with a header separator.
  std::string ToString() const;
  /// RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string ToCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes `table` as `<name>.csv` under $RELCOMP_CSV_DIR if that variable is
/// set; silently succeeds (no-op) otherwise.
Status MaybeWriteCsv(const TextTable& table, const std::string& name);

}  // namespace relcomp
