#include "eval/query_gen.h"

#include <unordered_set>

#include "common/format.h"
#include "common/rng.h"

namespace relcomp {

namespace {

/// Nodes at exactly `hops` BFS hops from `s` (bounded-depth BFS).
std::vector<NodeId> NodesAtDistance(const UncertainGraph& graph, NodeId s,
                                    uint32_t hops, std::vector<uint32_t>& dist,
                                    uint32_t epoch,
                                    std::vector<NodeId>& queue) {
  queue.clear();
  queue.push_back(s);
  dist[s] = epoch;  // dist stores epoch * (max_h+2) + d, encoded below
  std::vector<NodeId> at_target;
  std::vector<uint32_t> depth;
  depth.assign(1, 0);
  for (size_t head = 0; head < queue.size(); ++head) {
    const NodeId v = queue[head];
    const uint32_t d = depth[head];
    if (d == hops) {
      at_target.push_back(v);
      continue;  // no need to expand past the target ring
    }
    for (const AdjEntry& a : graph.OutEdges(v)) {
      if (dist[a.neighbor] == epoch) continue;
      dist[a.neighbor] = epoch;
      queue.push_back(a.neighbor);
      depth.push_back(d + 1);
    }
  }
  return at_target;
}

}  // namespace

Result<std::vector<ReliabilityQuery>> GenerateQueries(
    const UncertainGraph& graph, const QueryGenOptions& options) {
  if (graph.num_nodes() < 2) {
    return Status::InvalidArgument("query generation needs >= 2 nodes");
  }
  if (options.hop_distance == 0) {
    return Status::InvalidArgument("hop_distance must be >= 1");
  }
  Rng rng(options.seed);
  std::vector<uint32_t> visited_epoch(graph.num_nodes(), 0);
  std::vector<NodeId> queue;
  queue.reserve(graph.num_nodes());

  std::vector<ReliabilityQuery> queries;
  std::unordered_set<uint64_t> used;
  uint32_t epoch = 0;
  for (uint32_t attempt = 0;
       attempt < options.max_attempts && queries.size() < options.num_pairs;
       ++attempt) {
    const NodeId s = static_cast<NodeId>(rng.UniformInt(graph.num_nodes()));
    ++epoch;
    const std::vector<NodeId> ring =
        NodesAtDistance(graph, s, options.hop_distance, visited_epoch, epoch,
                        queue);
    if (ring.empty()) continue;
    const NodeId t = ring[rng.UniformInt(ring.size())];
    const uint64_t key = (static_cast<uint64_t>(s) << 32) | t;
    if (!used.insert(key).second) continue;
    queries.push_back(ReliabilityQuery{s, t});
  }
  if (queries.empty()) {
    return Status::NotFound(
        StrFormat("no s-t pair at hop distance %u", options.hop_distance));
  }
  return queries;
}

Result<std::vector<EngineQuery>> GenerateMixedWorkload(
    const UncertainGraph& graph, const MixedWorkloadOptions& options) {
  const double weights[kNumWorkloadKinds] = {
      options.st_weight, options.top_k_weight, options.reliable_set_weight,
      options.distance_weight};
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      return Status::InvalidArgument("workload weights must be >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("at least one workload weight must be > 0");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("mixed workload: k must be positive");
  }
  if (options.eta < 0.0 || options.eta > 1.0) {
    return Status::InvalidArgument("mixed workload: eta must be in [0, 1]");
  }
  RELCOMP_ASSIGN_OR_RETURN(std::vector<ReliabilityQuery> pairs,
                           GenerateQueries(graph, options.pairs));

  Rng rng(options.seed);
  std::vector<EngineQuery> queries;
  queries.reserve(options.num_queries);
  for (uint32_t i = 0; i < options.num_queries; ++i) {
    const ReliabilityQuery& pair =
        pairs[rng.UniformInt(pairs.size())];
    double draw = rng.NextDouble() * total;
    // Pick the first kind whose cumulative weight covers the draw; rounding
    // fall-through lands on the last nonzero-weight kind, never a zero one.
    size_t kind = 0;
    size_t last_nonzero = 0;
    for (size_t j = 0; j < kNumWorkloadKinds; ++j) {
      if (weights[j] > 0.0) last_nonzero = j;
    }
    while (kind < last_nonzero &&
           (weights[kind] == 0.0 || draw >= weights[kind])) {
      draw -= weights[kind];
      ++kind;
    }
    switch (static_cast<WorkloadKind>(kind)) {
      case WorkloadKind::kSt:
        queries.push_back(EngineQuery::St(pair.source, pair.target));
        break;
      case WorkloadKind::kTopK:
        queries.push_back(EngineQuery::TopK(pair.source, options.k));
        break;
      case WorkloadKind::kReliableSet:
        queries.push_back(EngineQuery::ReliableSet(pair.source, options.eta));
        break;
      case WorkloadKind::kDistance:
        queries.push_back(
            EngineQuery::Distance(pair.source, pair.target, options.max_hops));
        break;
    }
  }
  return queries;
}

}  // namespace relcomp
