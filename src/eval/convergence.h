#pragma once

#include <vector>

#include "common/status.h"
#include "eval/metrics.h"
#include "reliability/estimator.h"

namespace relcomp {

/// \brief Convergence protocol of Section 3.1.4: starting from K = 250 and
/// stepping by 250, repeat every query T times, and declare convergence once
/// the index of dispersion rho_K = V_K / R_K drops below 0.001.
struct ConvergenceOptions {
  uint32_t initial_k = 250;
  uint32_t step_k = 250;
  /// Give up past this K (the paper's plots go to ~2000).
  uint32_t max_k = 3000;
  /// T repeats per (pair, K). The paper uses 100; benchmark defaults scale
  /// this down (see BenchConfig).
  uint32_t repeats = 20;
  double dispersion_threshold = 1e-3;
  uint64_t seed = 99;
  /// Resample index-based estimators between runs (BFS Sharing must, to keep
  /// repeats independent; no-op for the others).
  bool prepare_between_runs = true;
  /// Stop scanning K once converged (set false to trace full curves for the
  /// Figure 7 style plots).
  bool stop_at_convergence = true;
};

/// \brief One K on the convergence curve.
struct KPoint {
  uint32_t k = 0;
  double avg_variance = 0.0;     ///< V_K (Eq. 12)
  double avg_reliability = 0.0;  ///< R_K (Eq. 13)
  double dispersion = 0.0;       ///< rho_K
  /// Mean wall-clock seconds of one query at this K (averaged over pairs and
  /// repeats; excludes PrepareForNextQuery, reported separately).
  double avg_query_seconds = 0.0;
  /// Max online working memory over all runs (excludes graph and index).
  size_t peak_memory_bytes = 0;
  /// Per-pair mean estimate over the T repeats (input to Eq. 14).
  std::vector<double> per_pair_reliability;
};

/// \brief Full convergence record for one estimator on one workload.
struct ConvergenceReport {
  std::string estimator_name;
  std::vector<KPoint> points;
  /// K at convergence; 0 if the threshold was never reached within max_k.
  uint32_t converged_k = 0;

  bool converged() const { return converged_k != 0; }
  /// Point with the given K (nullptr if that K was not measured).
  const KPoint* FindK(uint32_t k) const;
  /// The convergence point if converged, else the last measured point.
  const KPoint& FinalPoint() const { return points.back(); }
};

/// Runs the protocol for `estimator` over `queries`.
Result<ConvergenceReport> RunConvergence(Estimator& estimator,
                                         const std::vector<ReliabilityQuery>& queries,
                                         const ConvergenceOptions& options);

/// Measures a single (estimator, K) point without scanning (used for the
/// fixed-K=1000 protocol of Tables 3-14).
Result<KPoint> MeasureAtK(Estimator& estimator,
                          const std::vector<ReliabilityQuery>& queries,
                          uint32_t k, uint32_t repeats, uint64_t seed,
                          bool prepare_between_runs = true);

/// \name Convergence-report persistence
///
/// Convergence scans are the dominant cost of the bench suite and several
/// binaries need the same (dataset, estimator) scans; ExperimentContext uses
/// these to share results across processes via a small binary cache file per
/// scan (see BenchConfig / RELCOMP_CACHE_DIR).
/// @{
Status SaveConvergenceReport(const ConvergenceReport& report,
                             const std::string& path);
Result<ConvergenceReport> LoadConvergenceReport(const std::string& path);
/// @}

}  // namespace relcomp
