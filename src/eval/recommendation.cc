#include "eval/recommendation.h"

#include "common/format.h"
#include "eval/table.h"

namespace relcomp {

StarRatings PaperRatings(EstimatorKind kind) {
  // Table 17 of the paper, verbatim.
  switch (kind) {
    case EstimatorKind::kMonteCarlo:
      return {1, 3, 2, 4};
    case EstimatorKind::kBfsSharing:
      return {1, 3, 1, 2};
    case EstimatorKind::kProbTree:
      return {1, 3, 3, 3};
    case EstimatorKind::kLazyPropagationPlus:
      return {1, 3, 3, 4};
    case EstimatorKind::kRecursive:
      return {4, 4, 4, 1};
    case EstimatorKind::kRecursiveStratified:
      return {4, 4, 4, 1};
    default:
      return {};
  }
}

namespace {
std::string Stars(int n) { return std::string(static_cast<size_t>(n), '*'); }
}  // namespace

std::string RatingsTable() {
  TextTable table({"Method", "Variance", "Accuracy", "Running Time", "Memory"});
  for (EstimatorKind kind : TheSixEstimators()) {
    const StarRatings r = PaperRatings(kind);
    table.AddRow({EstimatorKindName(kind), Stars(r.variance), Stars(r.accuracy),
                  Stars(r.running_time), Stars(r.memory)});
  }
  return table.ToString();
}

Recommendation RecommendEstimator(const ScenarioConstraints& constraints) {
  Recommendation rec;
  std::string path = "decision tree (Figure 18): ";
  if (constraints.memory_constrained) {
    path += "memory=smaller -> {MC, LP+, ProbTree}";
    if (constraints.need_fast_queries) {
      path += "; time=faster -> {LP+, ProbTree}";
      rec.estimators = {EstimatorKind::kProbTree,
                        EstimatorKind::kLazyPropagationPlus};
    } else {
      path += "; time=slower acceptable -> MC";
      rec.estimators = {EstimatorKind::kMonteCarlo,
                        EstimatorKind::kLazyPropagationPlus,
                        EstimatorKind::kProbTree};
    }
    if (constraints.need_low_variance) {
      path += "; variance: ProbTree slightly lower than other MC-based";
      rec.estimators = {EstimatorKind::kProbTree};
    }
  } else {
    path += "memory=larger ok -> {BFSSharing, RSS, RHH}";
    if (constraints.need_low_variance) {
      path += "; variance=lower -> {RSS, RHH}";
      if (constraints.need_fast_queries) {
        path += "; time=faster -> {RSS, RHH} (fastest at convergence)";
      }
      rec.estimators = {EstimatorKind::kRecursiveStratified,
                        EstimatorKind::kRecursive};
    } else {
      path += "; variance=higher ok -> BFSSharing (but 4x slower than MC)";
      rec.estimators = {EstimatorKind::kBfsSharing};
    }
  }
  rec.explanation = path;
  return rec;
}

}  // namespace relcomp
