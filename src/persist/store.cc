#include "persist/store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/format.h"
#include "common/wire.h"
#include "graph/graph_io.h"
#include "persist/snapshot.h"

namespace relcomp {

namespace {

constexpr uint32_t kManifestFlagBfs = 1u << 0;
constexpr uint32_t kManifestFlagProbTree = 1u << 1;

/// The identity a snapshot was built for. A snapshot is applied only when
/// every field matches the restarting engine's (graph, options) — anything
/// else is a mismatch and the engine rebuilds from source.
struct Manifest {
  uint64_t fingerprint = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint64_t index_seed = 0;
  uint32_t flags = 0;
  uint32_t bfs_samples = 0;
  uint32_t prob_tree_width = 0;
  uint32_t prob_tree_max_distance = 0;
  uint8_t prob_tree_distance_distributions = 0;
};

std::string SerializeManifest(const Manifest& m) {
  std::string out;
  WireWriter writer(&out);
  writer.PutU64(m.fingerprint);
  writer.PutU64(m.num_nodes);
  writer.PutU64(m.num_edges);
  writer.PutU64(m.index_seed);
  writer.PutU32(m.flags);
  writer.PutU32(m.bfs_samples);
  writer.PutU32(m.prob_tree_width);
  writer.PutU32(m.prob_tree_max_distance);
  writer.PutU8(m.prob_tree_distance_distributions);
  for (int i = 0; i < 7; ++i) writer.PutU8(0);  // pad
  return out;
}

bool ParseManifest(const void* data, size_t size, Manifest* m) {
  WireReader reader(data, size);
  return reader.ReadU64(&m->fingerprint) && reader.ReadU64(&m->num_nodes) &&
         reader.ReadU64(&m->num_edges) && reader.ReadU64(&m->index_seed) &&
         reader.ReadU32(&m->flags) && reader.ReadU32(&m->bfs_samples) &&
         reader.ReadU32(&m->prob_tree_width) &&
         reader.ReadU32(&m->prob_tree_max_distance) &&
         reader.ReadU8(&m->prob_tree_distance_distributions);
}

Manifest ManifestFor(const UncertainGraph& graph, const FactoryOptions& options,
                     bool with_bfs, bool with_prob_tree) {
  Manifest m;
  m.fingerprint = GraphFingerprint(graph);
  m.num_nodes = graph.num_nodes();
  m.num_edges = graph.num_edges();
  m.index_seed = options.index_seed;
  m.flags = (with_bfs ? kManifestFlagBfs : 0) |
            (with_prob_tree ? kManifestFlagProbTree : 0);
  m.bfs_samples = with_bfs ? options.bfs_sharing.index_samples : 0;
  m.prob_tree_width = with_prob_tree ? options.prob_tree.width : 0;
  m.prob_tree_max_distance =
      with_prob_tree ? options.prob_tree.max_distance : 0;
  m.prob_tree_distance_distributions =
      with_prob_tree && options.prob_tree.precompute_distance_distributions
          ? 1
          : 0;
  return m;
}

bool ManifestMatches(const Manifest& have, const Manifest& want) {
  return have.fingerprint == want.fingerprint &&
         have.num_nodes == want.num_nodes &&
         have.num_edges == want.num_edges &&
         have.index_seed == want.index_seed &&
         (have.flags & want.flags) == want.flags &&
         (!(want.flags & kManifestFlagBfs) ||
          have.bfs_samples == want.bfs_samples) &&
         (!(want.flags & kManifestFlagProbTree) ||
          (have.prob_tree_width == want.prob_tree_width &&
           have.prob_tree_max_distance == want.prob_tree_max_distance &&
           have.prob_tree_distance_distributions ==
               want.prob_tree_distance_distributions));
}

}  // namespace

PersistentStore::PersistentStore(std::string dir,
                                 obs::MetricsRegistry* metrics)
    : dir_(std::move(dir)),
      snapshot_path_(dir_ + "/snapshot.relsnap"),
      journal_path_(dir_ + "/warm.journal") {
  if (metrics == nullptr) return;
  corruption_detected_ =
      metrics->GetCounter("persist_corruption_detected_total");
  recovered_snapshot_ =
      metrics->GetCounter("persist_recovered_total", "source", "snapshot");
  recovered_journal_ =
      metrics->GetCounter("persist_recovered_total", "source", "journal");
  recovered_rebuild_ =
      metrics->GetCounter("persist_recovered_total", "source", "rebuild");
  snapshot_mismatch_ = metrics->GetCounter("persist_snapshot_mismatch_total");
  journal_entries_ = metrics->GetCounter("persist_journal_entries_total");
  journal_replayed_ = metrics->GetCounter("persist_journal_replayed_total");
  journal_torn_ = metrics->GetCounter("persist_journal_torn_total");
  snapshot_bytes_ = metrics->GetGauge("persist_snapshot_bytes");
}

void PersistentStore::Count(obs::Counter* counter, uint64_t delta) {
  if (counter != nullptr && delta > 0) counter->Inc(delta);
}

Result<std::unique_ptr<PersistentStore>> PersistentStore::Open(
    const std::string& dir, obs::MetricsRegistry* metrics) {
  if (dir.empty()) {
    return Status::InvalidArgument("persistence directory must be non-empty");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError(StrFormat("create persistence directory %s: %s",
                                     dir.c_str(), ec.message().c_str()));
  }
  return std::unique_ptr<PersistentStore>(new PersistentStore(dir, metrics));
}

Status PersistentStore::WriteSnapshot(const UncertainGraph& graph,
                                      const FactoryOptions& options,
                                      const BfsSharingIndex* bfs_index,
                                      const ProbTreeIndex* prob_tree) {
  const Manifest manifest = ManifestFor(graph, options, bfs_index != nullptr,
                                        prob_tree != nullptr);
  SnapshotWriter writer;
  writer.AddSection(kSectionManifest, SerializeManifest(manifest));
  {
    std::string payload;
    AppendGraphBlock(graph, &payload);
    writer.AddSection(kSectionGraph, std::move(payload));
  }
  if (bfs_index != nullptr) {
    std::string payload;
    bfs_index->AppendBlock(&payload);
    writer.AddSection(kSectionBfsIndex, std::move(payload));
  }
  if (prob_tree != nullptr) {
    std::string payload;
    prob_tree->AppendBlock(&payload);
    writer.AddSection(kSectionProbTree, std::move(payload));
  }
  RELCOMP_RETURN_NOT_OK(writer.Commit(snapshot_path_));
  if (snapshot_bytes_ != nullptr) {
    struct stat st;
    if (::stat(snapshot_path_.c_str(), &st) == 0) {
      snapshot_bytes_->Set(static_cast<double>(st.st_size));
    }
  }
  return Status::OK();
}

void PersistentStore::QuarantineSnapshot(const Status& why) {
  Count(corruption_detected_);
  // Move the bad file out of the open path (keeping the bytes for a
  // post-mortem) so the next startup goes straight to rebuild instead of
  // re-detecting the same corruption.
  ::rename(snapshot_path_.c_str(), (snapshot_path_ + ".corrupt").c_str());
  (void)why;
}

SnapshotArtifacts PersistentStore::OpenSnapshot(const UncertainGraph& graph,
                                                const FactoryOptions& options) {
  SnapshotArtifacts artifacts;
  Result<std::unique_ptr<SnapshotReader>> opened =
      SnapshotReader::Open(snapshot_path_);
  if (!opened.ok()) {
    if (opened.status().code() != StatusCode::kNotFound) {
      // Truncation, bad magic, checksum mismatch, or version refusal — all
      // detected before a single payload byte was trusted.
      QuarantineSnapshot(opened.status());
    }
    return artifacts;
  }
  const std::unique_ptr<SnapshotReader> reader = opened.MoveValue();

  const SnapshotReader::Section* manifest_section =
      reader->Find(kSectionManifest);
  Manifest manifest;
  if (manifest_section == nullptr ||
      !ParseManifest(manifest_section->data, manifest_section->size,
                     &manifest)) {
    QuarantineSnapshot(Status::IOError("snapshot manifest missing/malformed"));
    return artifacts;
  }
  // Restore exactly the sections the snapshot carries, each validated
  // against the caller's configuration for that section; graph identity and
  // index seed must always match.
  Manifest need = ManifestFor(graph, options, /*with_bfs=*/true,
                              /*with_prob_tree=*/true);
  need.flags = manifest.flags;
  need.bfs_samples = (manifest.flags & kManifestFlagBfs)
                         ? options.bfs_sharing.index_samples
                         : 0;
  need.prob_tree_width = (manifest.flags & kManifestFlagProbTree)
                             ? options.prob_tree.width
                             : 0;
  need.prob_tree_max_distance = (manifest.flags & kManifestFlagProbTree)
                                    ? options.prob_tree.max_distance
                                    : 0;
  need.prob_tree_distance_distributions =
      (manifest.flags & kManifestFlagProbTree) &&
              options.prob_tree.precompute_distance_distributions
          ? 1
          : 0;
  if (!ManifestMatches(manifest, need)) {
    // Built for a different graph or configuration: not corruption — the
    // bytes are intact — so leave the file alone and rebuild from source.
    Count(snapshot_mismatch_);
    return artifacts;
  }

  if (manifest.flags & kManifestFlagBfs) {
    const SnapshotReader::Section* section = reader->Find(kSectionBfsIndex);
    if (section == nullptr) {
      QuarantineSnapshot(Status::IOError("BFS section missing"));
      return artifacts;
    }
    Result<std::shared_ptr<BfsSharingIndex>> index = BfsSharingIndex::FromBlock(
        graph, section->data, section->size, reader->backing());
    if (!index.ok()) {
      QuarantineSnapshot(index.status());
      return artifacts;
    }
    artifacts.bfs_index = index.MoveValue();
  }
  if (manifest.flags & kManifestFlagProbTree) {
    const SnapshotReader::Section* section = reader->Find(kSectionProbTree);
    if (section == nullptr) {
      QuarantineSnapshot(Status::IOError("ProbTree section missing"));
      return artifacts;
    }
    Result<ProbTreeIndex> index =
        ProbTreeIndex::FromBlock(section->data, section->size);
    if (!index.ok()) {
      QuarantineSnapshot(index.status());
      return artifacts;
    }
    artifacts.prob_tree =
        std::make_shared<const ProbTreeIndex>(index.MoveValue());
  }
  artifacts.valid = true;
  Count(recovered_snapshot_);
  return artifacts;
}

Result<UncertainGraph> PersistentStore::LoadGraphFromSnapshot() {
  RELCOMP_ASSIGN_OR_RETURN(std::unique_ptr<SnapshotReader> reader,
                           SnapshotReader::Open(snapshot_path_));
  const SnapshotReader::Section* section = reader->Find(kSectionGraph);
  if (section == nullptr) {
    return Status::NotFound("snapshot has no graph section");
  }
  return ParseGraphBlock(section->data, section->size);
}

Status PersistentStore::AppendWarm(uint8_t type, const std::string& payload) {
  if (journal_.has_value() && journal_->poisoned()) {
    // A failed append may have left a torn tail; anything appended after it
    // would be unreachable to replay. Reopen so the next append lands in a
    // fresh O_APPEND stream (replay still stops at the torn frame — the
    // cache re-journals everything on the next full flush anyway).
    journal_.reset();
  }
  if (!journal_.has_value()) {
    RELCOMP_ASSIGN_OR_RETURN(JournalWriter writer,
                             JournalWriter::Open(journal_path_));
    journal_.emplace(std::move(writer));
  }
  RELCOMP_RETURN_NOT_OK(journal_->Append(type, payload));
  Count(journal_entries_);
  return Status::OK();
}

Status PersistentStore::SyncJournal() {
  if (!journal_.has_value()) return Status::OK();
  return journal_->Sync();
}

Result<JournalReplay> PersistentStore::ReplayWarm() {
  RELCOMP_ASSIGN_OR_RETURN(JournalReplay replay,
                           ReplayJournal(journal_path_));
  if (replay.torn_tail) {
    // The expected crash shape: a frame died mid-write. The intact prefix
    // is still good; count the detection.
    Count(journal_torn_);
    Count(corruption_detected_);
  }
  return replay;
}

Status PersistentStore::ResetJournal() {
  journal_.reset();
  const int fd =
      ::open(journal_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError(StrFormat("truncate journal %s: %s",
                                     journal_path_.c_str(),
                                     std::strerror(errno)));
  }
  ::close(fd);
  return Status::OK();
}

void PersistentStore::CountRebuild() { Count(recovered_rebuild_); }

void PersistentStore::CountJournalRecovered(uint64_t entries) {
  Count(journal_replayed_, entries);
  Count(recovered_journal_, entries);
}

}  // namespace relcomp
