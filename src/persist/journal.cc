#include "persist/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"
#include "common/fault_injection.h"
#include "common/format.h"
#include "common/wire.h"

namespace relcomp {

namespace {

constexpr size_t kFrameHeaderSize = 12;  // len u32 + crc u32 + type u8 + pad[3]

bool WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<JournalWriter> JournalWriter::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError(
        StrFormat("open journal %s: %s", path.c_str(), std::strerror(errno)));
  }
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    const Status status = Status::IOError(
        StrFormat("lseek %s: %s", path.c_str(), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  return JournalWriter(path, fd, static_cast<uint64_t>(end));
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      offset_(other.offset_),
      poisoned_(other.poisoned_) {
  other.fd_ = -1;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    offset_ = other.offset_;
    poisoned_ = other.poisoned_;
    other.fd_ = -1;
  }
  return *this;
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status JournalWriter::Append(uint8_t type, const std::string& payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("journal writer is closed");
  }
  if (poisoned_) {
    return Status::FailedPrecondition(
        "journal writer poisoned by an earlier failed append; reopen to "
        "resume");
  }
  // Frame body first so the CRC covers type + payload contiguously.
  std::string body;
  body.reserve(1 + payload.size());
  body.push_back(static_cast<char>(type));
  body.append(payload);
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  WireWriter writer(&frame);
  writer.PutU32(static_cast<uint32_t>(payload.size()));
  writer.PutU32(Crc32c(body.data(), body.size()));
  writer.PutU8(type);
  writer.PutU8(0);
  writer.PutU8(0);
  writer.PutU8(0);
  writer.PutBytes(payload.data(), payload.size());

  FaultInjector& injector = FaultInjector::Global();
  if (injector.ShouldInject(FaultSite::kCrashPoint,
                            FileOpKey(path_, offset_))) {
    poisoned_ = true;
    return Status::Internal("simulated crash (before journal append)");
  }
  if (injector.ShouldInject(FaultSite::kFileShortWrite,
                            FileOpKey(path_, offset_))) {
    // Persist a torn prefix of the frame, the way a crash mid-write would.
    WriteAll(fd_, frame.data(), frame.size() / 2);
    poisoned_ = true;
    return Status::Internal("simulated crash (torn journal append)");
  }
  if (!WriteAll(fd_, frame.data(), frame.size())) {
    poisoned_ = true;
    return Status::IOError(
        StrFormat("append %s: %s", path_.c_str(), std::strerror(errno)));
  }
  offset_ += frame.size();
  return Status::OK();
}

Status JournalWriter::Sync() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("journal writer is closed");
  }
  FaultInjector& injector = FaultInjector::Global();
  if (injector.ShouldInject(FaultSite::kFsyncFailure,
                            FileOpKey(path_, offset_))) {
    return Status::IOError(
        StrFormat("injected fsync failure for %s", path_.c_str()));
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError(
        StrFormat("fsync %s: %s", path_.c_str(), std::strerror(errno)));
  }
  return Status::OK();
}

Result<JournalReplay> ReplayJournal(const std::string& path) {
  JournalReplay replay;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return replay;  // no journal: zero records
    return Status::IOError(
        StrFormat("open journal %s: %s", path.c_str(), std::strerror(errno)));
  }
  // Journals are bounded (periodic flushes of the warm caches), so a whole-
  // file read keeps the frame scan trivial.
  std::string data;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::IOError(
          StrFormat("read journal %s: %s", path.c_str(),
                    std::strerror(errno)));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  WireReader reader(data.data(), data.size());
  while (!reader.exhausted()) {
    uint32_t payload_len = 0, crc = 0;
    uint8_t type = 0;
    if (!reader.ReadU32(&payload_len) || !reader.ReadU32(&crc) ||
        !reader.ReadU8(&type) || !reader.Skip(3) ||
        reader.remaining() < payload_len) {
      replay.torn_tail = true;  // short final frame: crash mid-append
      break;
    }
    const uint8_t* payload = reader.cursor();
    reader.Skip(payload_len);
    // CRC covers type + payload; recompute with chaining over the two spans.
    uint32_t actual = Crc32c(&type, 1);
    actual = Crc32c(payload, payload_len, actual);
    if (actual != crc) {
      replay.torn_tail = true;  // torn or bit-flipped tail frame
      break;
    }
    JournalRecord record;
    record.type = type;
    record.payload.assign(reinterpret_cast<const char*>(payload), payload_len);
    replay.records.push_back(std::move(record));
  }
  return replay;
}

}  // namespace relcomp
