#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace relcomp {

/// Container format version. SnapshotReader::Open refuses any other value —
/// a version bump invalidates old snapshots by construction (the engine then
/// rebuilds from source), never misparses them.
inline constexpr uint32_t kSnapshotVersion = 1;

/// Section ids of the engine snapshot. The container itself is agnostic —
/// any (id, payload) pair round-trips — these are the ids PersistentStore
/// writes.
inline constexpr uint32_t kSectionManifest = 1;
inline constexpr uint32_t kSectionGraph = 2;
inline constexpr uint32_t kSectionBfsIndex = 3;
inline constexpr uint32_t kSectionProbTree = 4;

/// \brief Builds and atomically publishes one snapshot container.
///
/// On-disk layout (see src/persist/README.md for the byte-level spec):
///
///   FileHeader   magic "RELSNAP1", version, section count, total file
///                size, CRC32C of the section table, CRC32C of the header
///                itself — 32 bytes.
///   SectionTable one 32-byte entry per section: id, payload CRC32C,
///                offset, length.
///   Payloads     each aligned to a 64-byte boundary (zero padding), so an
///                mmap'd section starts 8-byte aligned for zero-copy u64
///                access.
///
/// Commit() publishes atomically: the full image is written to `<path>.tmp`,
/// fsync'd, renamed over `path`, and the directory fsync'd — a crash at any
/// step leaves either the old snapshot or the new one, never a torn file
/// visible under `path`. Every write/fsync step probes the fault-injection
/// sites kCrashPoint / kFileShortWrite / kFsyncFailure (content-derived
/// keys), which is how the crash matrix in tests/persist_test.cc kills the
/// publish at every step.
class SnapshotWriter {
 public:
  /// Registers `payload` under `id` (order preserved; ids must be unique).
  void AddSection(uint32_t id, std::string payload);

  /// Writes and atomically publishes the container to `path`. An injected
  /// crash returns kInternal with "simulated crash" and abandons the
  /// operation exactly where it stands (torn tmp file, missing fsync, ...);
  /// an injected or real fsync failure aborts *before* rename, so the
  /// previous snapshot stays live. Real I/O errors return kIOError.
  Status Commit(const std::string& path) const;

 private:
  struct Pending {
    uint32_t id;
    std::string payload;
  };
  std::vector<Pending> sections_;
};

/// \brief Opens, validates, and mmaps a snapshot container.
///
/// Open() verifies everything up front — magic, version, header CRC, file
/// size, section-table CRC, and every section's payload CRC32C — so a
/// successful open hands out sections whose bytes are proven intact, and a
/// single flipped bit anywhere fails the open with kIOError. Sections are
/// zero-copy views into the read-only mapping; backing() keeps the mapping
/// alive for consumers (e.g. an mmap'd index) that outlive the reader.
class SnapshotReader {
 public:
  struct Section {
    uint32_t id = 0;
    const uint8_t* data = nullptr;
    size_t size = 0;
    /// Byte offset of the payload within the file (tests use this to place
    /// targeted bit flips).
    size_t file_offset = 0;
  };

  /// kNotFound when `path` does not exist; kIOError for every validation
  /// failure (truncation, bad magic, version mismatch, CRC mismatch).
  static Result<std::unique_ptr<SnapshotReader>> Open(const std::string& path);

  ~SnapshotReader() = default;
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  /// The section with `id`, or nullptr.
  const Section* Find(uint32_t id) const;
  const std::vector<Section>& sections() const { return sections_; }

  /// Shared handle on the underlying mapping; a section's bytes stay valid
  /// exactly as long as a copy of this handle lives.
  const std::shared_ptr<const void>& backing() const { return backing_; }

  size_t file_size() const { return file_size_; }

 private:
  SnapshotReader() = default;

  std::shared_ptr<const void> backing_;
  std::vector<Section> sections_;
  size_t file_size_ = 0;
};

}  // namespace relcomp
