#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace relcomp {

/// Record types of the engine's warm-state journal.
inline constexpr uint8_t kJournalRecordSweep = 1;
inline constexpr uint8_t kJournalRecordResult = 2;

/// \brief Append-only, torn-tail-tolerant record log for warm state.
///
/// Frame format (see src/persist/README.md):
///
///   payload_len u32 | crc u32 | type u8 | pad u8[3] | payload bytes
///
/// where crc is the CRC32C of (type byte + payload). Appends go through a
/// single O_APPEND descriptor; Sync() makes everything appended so far
/// durable. A crash mid-append leaves a torn final frame that replay detects
/// (short frame or CRC mismatch) and discards — every frame before it is
/// intact because frames are written with one write(2) call each.
///
/// Not thread-safe; the engine serializes flushes behind its journal mutex.
class JournalWriter {
 public:
  /// Opens (creating if needed) `path` for appending.
  static Result<JournalWriter> Open(const std::string& path);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Appends one framed record. After any failure (real or injected) the
  /// writer is poisoned: the tail may be torn, and appending more frames
  /// after a torn one would make them unreachable to replay — so every
  /// subsequent Append fails fast with kFailedPrecondition until the journal
  /// is reopened.
  Status Append(uint8_t type, const std::string& payload);

  /// fsync the journal (probes the fsync-failure fault site).
  Status Sync();

  /// Bytes successfully appended through this writer (journal offset for
  /// fault keys).
  uint64_t offset() const { return offset_; }
  bool poisoned() const { return poisoned_; }

 private:
  JournalWriter(std::string path, int fd, uint64_t offset)
      : path_(std::move(path)), fd_(fd), offset_(offset) {}

  std::string path_;
  int fd_ = -1;
  uint64_t offset_ = 0;
  bool poisoned_ = false;
};

/// One intact record recovered by replay.
struct JournalRecord {
  uint8_t type = 0;
  std::string payload;
};

/// Result of a replay pass: every intact frame, in append order, plus
/// whether a torn tail was discarded to get there.
struct JournalReplay {
  std::vector<JournalRecord> records;
  /// True when the file ends in a short or checksum-failing frame — the
  /// expected shape after a crash mid-append, not an error.
  bool torn_tail = false;
};

/// Reads every intact frame of `path`. Stops cleanly at the first torn
/// frame (sets torn_tail) — a missing file replays as zero records.
/// kIOError only for real I/O failures, never for torn data.
Result<JournalReplay> ReplayJournal(const std::string& path);

}  // namespace relcomp
