#include "persist/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/crc32c.h"
#include "common/fault_injection.h"
#include "common/format.h"
#include "common/wire.h"

namespace relcomp {

namespace {

constexpr char kSnapshotMagic[8] = {'R', 'E', 'L', 'S', 'N', 'A', 'P', '1'};
constexpr size_t kHeaderSize = 32;
constexpr size_t kTableEntrySize = 32;
constexpr size_t kPayloadAlign = 64;
constexpr size_t kWriteChunk = 1 << 20;

/// Ordinal namespace for the non-chunk fault probes of one Commit. Chunk
/// writes use their byte offset as ordinal; protocol steps use these
/// markers, far above any realistic file size.
constexpr uint64_t kOrdinalCreate = 0xFFFF0000ULL;
constexpr uint64_t kOrdinalBeforeFsync = 0xFFFF0001ULL;
constexpr uint64_t kOrdinalFsync = 0xFFFF0002ULL;
constexpr uint64_t kOrdinalBeforeRename = 0xFFFF0003ULL;
constexpr uint64_t kOrdinalBeforeDirFsync = 0xFFFF0004ULL;

size_t AlignUp(size_t v, size_t align) {
  return (v + align - 1) / align * align;
}

/// write(2) until `size` bytes are on their way, retrying real short writes
/// and EINTR. Returns false with errno set on a real error.
bool WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

Status SyncDirectory(const std::string& file_path) {
  const size_t slash = file_path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : file_path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError(
        StrFormat("open directory %s: %s", dir.c_str(), std::strerror(errno)));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError(
        StrFormat("fsync directory %s: %s", dir.c_str(), std::strerror(errno)));
  }
  return Status::OK();
}

Status SimulatedCrash(int fd, const char* where) {
  // A SIGKILL leaves the fd to be closed by the kernel with no further
  // writes — mirror that: close and abandon everything (no unlink, no
  // rename), so the on-disk state is exactly what a real crash leaves.
  if (fd >= 0) ::close(fd);
  return Status::Internal(StrFormat("simulated crash (%s)", where));
}

}  // namespace

void SnapshotWriter::AddSection(uint32_t id, std::string payload) {
  sections_.push_back(Pending{id, std::move(payload)});
}

Status SnapshotWriter::Commit(const std::string& path) const {
  // Lay out the image: header, table, 64-byte-aligned payloads.
  const size_t table_size = sections_.size() * kTableEntrySize;
  size_t offset = AlignUp(kHeaderSize + table_size, kPayloadAlign);
  std::string table;
  WireWriter table_writer(&table);
  std::vector<size_t> offsets;
  offsets.reserve(sections_.size());
  for (const Pending& section : sections_) {
    offsets.push_back(offset);
    table_writer.PutU32(section.id);
    table_writer.PutU32(Crc32c(section.payload.data(), section.payload.size()));
    table_writer.PutU64(offset);
    table_writer.PutU64(section.payload.size());
    table_writer.PutU64(0);  // reserved
    offset = AlignUp(offset + section.payload.size(), kPayloadAlign);
  }
  const size_t file_size = offset;

  std::string image;
  image.reserve(file_size);
  WireWriter header(&image);
  header.PutBytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  header.PutU32(kSnapshotVersion);
  header.PutU32(static_cast<uint32_t>(sections_.size()));
  header.PutU64(file_size);
  header.PutU32(Crc32c(table.data(), table.size()));
  header.PutU32(Crc32c(image.data(), image.size()));  // header_crc over [0,28)
  image.append(table);
  for (size_t i = 0; i < sections_.size(); ++i) {
    image.resize(offsets[i], '\0');
    image.append(sections_[i].payload);
  }
  image.resize(file_size, '\0');

  FaultInjector& injector = FaultInjector::Global();
  if (injector.ShouldInject(FaultSite::kCrashPoint,
                            FileOpKey(path, kOrdinalCreate))) {
    return SimulatedCrash(-1, "before tmp create");
  }

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError(
        StrFormat("create %s: %s", tmp.c_str(), std::strerror(errno)));
  }

  for (size_t pos = 0; pos < image.size(); pos += kWriteChunk) {
    const size_t chunk = std::min(kWriteChunk, image.size() - pos);
    if (injector.ShouldInject(FaultSite::kCrashPoint, FileOpKey(path, pos))) {
      return SimulatedCrash(fd, "mid-write");
    }
    if (injector.ShouldInject(FaultSite::kFileShortWrite,
                              FileOpKey(path, pos))) {
      // Persist a prefix, then die — the torn tmp a real partial write
      // leaves. The published snapshot is untouched.
      WriteAll(fd, image.data() + pos, chunk / 2);
      return SimulatedCrash(fd, "short write");
    }
    if (!WriteAll(fd, image.data() + pos, chunk)) {
      const Status status = Status::IOError(
          StrFormat("write %s: %s", tmp.c_str(), std::strerror(errno)));
      ::close(fd);
      return status;
    }
  }

  if (injector.ShouldInject(FaultSite::kCrashPoint,
                            FileOpKey(path, kOrdinalBeforeFsync))) {
    return SimulatedCrash(fd, "before fsync");
  }
  if (injector.ShouldInject(FaultSite::kFsyncFailure,
                            FileOpKey(path, kOrdinalFsync))) {
    // fsync failed: the tmp file's durability is unknown, so the publish
    // MUST abort before rename — the previous snapshot stays live.
    ::close(fd);
    return Status::IOError(
        StrFormat("injected fsync failure for %s", tmp.c_str()));
  }
  if (::fsync(fd) != 0) {
    const Status status = Status::IOError(
        StrFormat("fsync %s: %s", tmp.c_str(), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  ::close(fd);

  if (injector.ShouldInject(FaultSite::kCrashPoint,
                            FileOpKey(path, kOrdinalBeforeRename))) {
    return SimulatedCrash(-1, "after fsync, before rename");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError(StrFormat("rename %s -> %s: %s", tmp.c_str(),
                                     path.c_str(), std::strerror(errno)));
  }
  if (injector.ShouldInject(FaultSite::kCrashPoint,
                            FileOpKey(path, kOrdinalBeforeDirFsync))) {
    // The rename happened but its durability isn't guaranteed yet; after a
    // real crash here the reopen sees either old or new — both valid.
    return SimulatedCrash(-1, "after rename, before dir fsync");
  }
  return SyncDirectory(path);
}

Result<std::unique_ptr<SnapshotReader>> SnapshotReader::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(
          StrFormat("snapshot %s does not exist", path.c_str()));
    }
    return Status::IOError(
        StrFormat("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::IOError(
        StrFormat("fstat %s: %s", path.c_str(), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  const size_t file_size = static_cast<size_t>(st.st_size);
  if (file_size < kHeaderSize) {
    ::close(fd);
    return Status::IOError(StrFormat("snapshot %s truncated: %zu bytes",
                                     path.c_str(), file_size));
  }
  void* map = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) {
    return Status::IOError(
        StrFormat("mmap %s: %s", path.c_str(), std::strerror(errno)));
  }
  std::shared_ptr<const void> backing(
      map, [file_size](const void* p) {
        ::munmap(const_cast<void*>(p), file_size);
      });
  const uint8_t* base = static_cast<const uint8_t*>(map);

  WireReader header(base, kHeaderSize);
  char magic[8];
  uint32_t version = 0, section_count = 0, table_crc = 0, header_crc = 0;
  uint64_t declared_size = 0;
  header.ReadBytes(magic, sizeof(magic));
  header.ReadU32(&version);
  header.ReadU32(&section_count);
  header.ReadU64(&declared_size);
  header.ReadU32(&table_crc);
  header.ReadU32(&header_crc);
  if (std::memcmp(magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::IOError(
        StrFormat("snapshot %s: bad magic", path.c_str()));
  }
  if (version != kSnapshotVersion) {
    // Refusal, not corruption: a different format version is never parsed.
    return Status::IOError(StrFormat("snapshot %s: unsupported version %u "
                                     "(this build reads version %u)",
                                     path.c_str(), version, kSnapshotVersion));
  }
  if (Crc32c(base, kHeaderSize - sizeof(uint32_t)) != header_crc) {
    return Status::IOError(
        StrFormat("snapshot %s: header checksum mismatch", path.c_str()));
  }
  if (declared_size != file_size) {
    return Status::IOError(
        StrFormat("snapshot %s: declared size %llu != file size %zu",
                  path.c_str(),
                  static_cast<unsigned long long>(declared_size), file_size));
  }
  const size_t table_size = size_t{section_count} * kTableEntrySize;
  if (kHeaderSize + table_size > file_size) {
    return Status::IOError(
        StrFormat("snapshot %s: section table overruns file", path.c_str()));
  }
  if (Crc32c(base + kHeaderSize, table_size) != table_crc) {
    return Status::IOError(
        StrFormat("snapshot %s: section table checksum mismatch",
                  path.c_str()));
  }

  std::unique_ptr<SnapshotReader> reader(new SnapshotReader());
  reader->backing_ = std::move(backing);
  reader->file_size_ = file_size;
  reader->sections_.reserve(section_count);
  WireReader table(base + kHeaderSize, table_size);
  for (uint32_t i = 0; i < section_count; ++i) {
    uint32_t id = 0, crc = 0;
    uint64_t offset = 0, length = 0, reserved = 0;
    table.ReadU32(&id);
    table.ReadU32(&crc);
    table.ReadU64(&offset);
    table.ReadU64(&length);
    table.ReadU64(&reserved);
    if (offset > file_size || length > file_size - offset) {
      return Status::IOError(
          StrFormat("snapshot %s: section %u overruns file", path.c_str(), id));
    }
    if (Crc32c(base + offset, length) != crc) {
      return Status::IOError(StrFormat(
          "snapshot %s: section %u checksum mismatch", path.c_str(), id));
    }
    Section section;
    section.id = id;
    section.data = base + offset;
    section.size = length;
    section.file_offset = offset;
    reader->sections_.push_back(section);
  }
  return reader;
}

const SnapshotReader::Section* SnapshotReader::Find(uint32_t id) const {
  for (const Section& section : sections_) {
    if (section.id == id) return &section;
  }
  return nullptr;
}

}  // namespace relcomp
