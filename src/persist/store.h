#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "graph/uncertain_graph.h"
#include "obs/metrics.h"
#include "persist/journal.h"
#include "reliability/estimator_factory.h"

namespace relcomp {

/// What OpenSnapshot recovered. `valid` is false when there was no usable
/// snapshot (absent, corrupt, version-refused, or built for a different
/// graph/config) — the engine then rebuilds from source; nothing here is
/// ever a hard error on the cold-start path.
struct SnapshotArtifacts {
  bool valid = false;
  /// Mmap-backed BFS Sharing generation (null when the snapshot carries no
  /// BFS section). Shares the snapshot mapping — O(1) cold start.
  std::shared_ptr<const BfsSharingIndex> bfs_index;
  /// Restored ProbTree index (null when absent).
  std::shared_ptr<const ProbTreeIndex> prob_tree;
};

/// \brief The engine's crash-safe persistence root: one checksummed snapshot
/// (`<dir>/snapshot.relsnap`) plus one append-only warm-state journal
/// (`<dir>/warm.journal`).
///
/// Recovery policy (see src/persist/README.md, "Restart semantics"):
///  - every corruption mode is *detected* (per-section CRC32C, header and
///    table checksums, journal frame CRCs), counted in
///    `persist_corruption_detected_total`, and degraded — a bad snapshot is
///    quarantined to `<path>.corrupt` and the engine rebuilds from source; a
///    torn journal tail is discarded and the intact prefix replayed;
///  - a snapshot built for a different graph, seed, or index configuration
///    is a *mismatch* (`persist_snapshot_mismatch_total`), not corruption:
///    it is left in place and ignored (a config rollback would make it
///    usable again);
///  - successful recoveries count in `persist_recovered_total` labelled by
///    source (`snapshot` or `journal`); rebuilds forced while persistence
///    is configured count under source `rebuild`.
class PersistentStore {
 public:
  /// Opens (creating if needed) the persistence directory. `metrics` may be
  /// null (counters are then dropped).
  static Result<std::unique_ptr<PersistentStore>> Open(
      const std::string& dir, obs::MetricsRegistry* metrics);

  const std::string& snapshot_path() const { return snapshot_path_; }
  const std::string& journal_path() const { return journal_path_; }

  /// Writes and atomically publishes a snapshot of the graph plus whichever
  /// indexes are non-null, under a manifest recording the graph fingerprint
  /// and the index configuration in `options`.
  Status WriteSnapshot(const UncertainGraph& graph,
                       const FactoryOptions& options,
                       const BfsSharingIndex* bfs_index,
                       const ProbTreeIndex* prob_tree);

  /// Opens the snapshot and restores its artifacts if it is intact AND was
  /// built for exactly this (graph, options) identity. Never a hard error:
  /// corruption quarantines + counts, mismatch counts, absence is silent —
  /// all return `valid == false`.
  SnapshotArtifacts OpenSnapshot(const UncertainGraph& graph,
                                 const FactoryOptions& options);

  /// Reconstructs the graph stored in the snapshot (tools/tests; the engine
  /// gets its graph from the caller and only validates the fingerprint).
  Result<UncertainGraph> LoadGraphFromSnapshot();

  /// \name Warm-state journal
  /// @{
  /// Appends one record (opening the journal on first use); callers batch
  /// appends and then Sync once.
  Status AppendWarm(uint8_t type, const std::string& payload);
  Status SyncJournal();
  /// Replays every intact record; counts replays and torn tails.
  Result<JournalReplay> ReplayWarm();
  /// Truncates the journal (after the restored warm state has been folded
  /// back into the caches, the next flush re-journals it fresh).
  Status ResetJournal();
  /// @}

  /// Count a rebuild-from-source forced while persistence is configured.
  void CountRebuild();
  /// Count entries successfully replayed into the warm caches.
  void CountJournalRecovered(uint64_t entries);

 private:
  PersistentStore(std::string dir, obs::MetricsRegistry* metrics);

  void Count(obs::Counter* counter, uint64_t delta = 1);
  /// Quarantines a corrupt snapshot out of the open path (rename to
  /// `<path>.corrupt`) so the next startup doesn't re-detect it.
  void QuarantineSnapshot(const Status& why);

  std::string dir_;
  std::string snapshot_path_;
  std::string journal_path_;
  std::optional<JournalWriter> journal_;

  obs::Counter* corruption_detected_ = nullptr;
  obs::Counter* recovered_snapshot_ = nullptr;
  obs::Counter* recovered_journal_ = nullptr;
  obs::Counter* recovered_rebuild_ = nullptr;
  obs::Counter* snapshot_mismatch_ = nullptr;
  obs::Counter* journal_entries_ = nullptr;
  obs::Counter* journal_replayed_ = nullptr;
  obs::Counter* journal_torn_ = nullptr;
  obs::Gauge* snapshot_bytes_ = nullptr;
};

}  // namespace relcomp
