#include "obs/trace.h"

#include <algorithm>

#include "common/format.h"

namespace relcomp::obs {

namespace {

size_t RoundUpToPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// SplitMix64 finalizer — local copy so obs stays dependency-light.
uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kQuery:
      return "query";
    case SpanKind::kScout:
      return "scout";
    case SpanKind::kQueueWait:
      return "queue_wait";
    case SpanKind::kCacheProbe:
      return "cache_probe";
    case SpanKind::kCoalescedWait:
      return "coalesced_wait";
    case SpanKind::kSweepFlight:
      return "sweep_flight";
    case SpanKind::kSweepWait:
      return "sweep_wait";
    case SpanKind::kPrepare:
      return "prepare";
    case SpanKind::kStratum:
      return "stratum";
    case SpanKind::kMerge:
      return "merge";
    case SpanKind::kPublish:
      return "publish";
    case SpanKind::kDerive:
      return "derive";
    case SpanKind::kEstimate:
      return "estimate";
    case SpanKind::kSample:
      return "sample";
    case SpanKind::kBfs:
      return "bfs";
  }
  return "unknown";
}

TraceRing::TraceRing(size_t capacity)
    : mask_(RoundUpToPowerOfTwo(capacity < 2 ? 2 : capacity) - 1),
      slots_(new Slot[mask_ + 1]) {}

void TraceRing::Publish(const TraceSpan& span) {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Seqlock stamp: odd while the write is in flight, even (2*ticket + 2,
  // unique per ticket) once done. A reader seeing either an odd stamp or a
  // stamp change across its copy skips the slot.
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  slot.span = span;
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<TraceSpan> TraceRing::Snapshot() const {
  std::vector<TraceSpan> spans;
  spans.reserve(mask_ + 1);
  for (size_t i = 0; i <= mask_; ++i) {
    const Slot& slot = slots_[i];
    const uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
    TraceSpan copy = slot.span;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != before) continue;  // torn
    spans.push_back(copy);
  }
  // Oldest first across the wrap point: tickets grow monotonically, and the
  // begin timestamp orders spans within and across queries well enough for
  // telemetry readers.
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.query_id != b.query_id) return a.query_id < b.query_id;
              return a.span_id < b.span_id;
            });
  return spans;
}

Tracer::Tracer(const TracerOptions& options)
    : options_(options),
      engaged_(options.sample_rate > 0.0 || options.slow_query_ms > 0.0),
      sample_threshold_(
          options.sample_rate >= 1.0
              ? ~uint64_t{0}
              : static_cast<uint64_t>(
                    options.sample_rate <= 0.0
                        ? 0.0
                        : options.sample_rate * 18446744073709551615.0)) {
  if (engaged_) {
    ring_ = std::make_unique<TraceRing>(options_.ring_capacity);
  }
}

bool Tracer::ShouldSample(uint64_t query_id) const {
  if (sample_threshold_ == 0) return false;
  if (sample_threshold_ == ~uint64_t{0}) return true;
  return MixId(query_id) <= sample_threshold_;
}

void Tracer::Finish(const TraceBuffer& buffer) {
  if (!engaged_ || buffer.size() == 0) return;
  if (ShouldSample(buffer.query_id())) {
    sampled_.fetch_add(1, std::memory_order_relaxed);
    for (uint32_t i = 0; i < buffer.size(); ++i) {
      ring_->Publish(buffer[i]);
    }
  }
  if (options_.slow_query_ms > 0.0) {
    const TraceSpan& root = buffer[0];
    const double elapsed_ms =
        static_cast<double>(root.end_ns - root.begin_ns) * 1e-6;
    if (elapsed_ms > options_.slow_query_ms) {
      // Slow path by definition: formatting may allocate freely here.
      slow_.fetch_add(1, std::memory_order_relaxed);
      std::string dump = StrFormat(
          "slow query id=%llu thread=%u %.3f ms (threshold %.3f ms)\n",
          static_cast<unsigned long long>(root.query_id), root.thread,
          elapsed_ms, options_.slow_query_ms);
      dump += FormatSpanTree(&buffer[0], buffer.size());
      if (buffer.dropped() > 0) {
        dump += StrFormat("  (+%u spans dropped: buffer full)\n",
                          buffer.dropped());
      }
      std::lock_guard<std::mutex> lock(slow_mutex_);
      slow_log_.push_back(std::move(dump));
      while (slow_log_.size() > options_.max_slow_entries) {
        slow_log_.pop_front();
      }
    }
  }
}

std::vector<std::string> Tracer::SlowQueryLog() const {
  std::lock_guard<std::mutex> lock(slow_mutex_);
  return std::vector<std::string>(slow_log_.begin(), slow_log_.end());
}

std::string Tracer::FormatSpanTree(const TraceSpan* spans, size_t count) {
  if (count == 0) return "";
  // Children in id order under each parent; ids are assigned in Begin order,
  // so this is also chronological begin order.
  std::vector<std::vector<uint32_t>> children(count);
  std::vector<uint32_t> roots;
  for (size_t i = 0; i < count; ++i) {
    const uint32_t parent = spans[i].parent_id;
    if (parent < count && parent != spans[i].span_id) {
      children[parent].push_back(static_cast<uint32_t>(i));
    } else {
      roots.push_back(static_cast<uint32_t>(i));
    }
  }
  const uint64_t origin_ns = spans[roots.empty() ? 0 : roots[0]].begin_ns;
  std::string out;
  // Iterative DFS (explicit stack) — span trees are shallow, but the
  // formatter must not assume so.
  std::vector<std::pair<uint32_t, int>> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    const TraceSpan& span = spans[index];
    out.append(static_cast<size_t>(2 * (depth + 1)), ' ');
    out += SpanKindName(span.kind);
    if (span.kind == SpanKind::kStratum || span.kind == SpanKind::kCacheProbe) {
      out += StrFormat("[%u]", span.detail);
    }
    out += StrFormat(
        " +%.3f ms %.3f ms\n",
        static_cast<double>(span.begin_ns - origin_ns) * 1e-6,
        static_cast<double>(span.end_ns - span.begin_ns) * 1e-6);
    const std::vector<uint32_t>& kids = children[index];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return out;
}

}  // namespace relcomp::obs
