#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace relcomp::obs {

/// Stable per-thread shard slot: each thread gets a small integer once and
/// keeps it forever, so instrument shards see (mostly) disjoint writers.
size_t ThreadShardSlot();

/// \brief Monotonic counter, sharded across cache lines so concurrent
/// increments from many workers do not serialize on one atomic.
///
/// Inc() is one relaxed fetch_add on (usually) the calling thread's own
/// cache line; Value() merges the shards. Thread-safe throughout.
class Counter {
 public:
  static constexpr size_t kShards = 8;

  void Inc(uint64_t delta = 1) {
    shards_[ThreadShardSlot() % kShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every shard. Not atomic with respect to concurrent Inc() calls;
  /// callers reset between batches, like EngineStats::Reset always has.
  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kShards];
};

/// \brief Point-in-time double value with Set / Add / SetMax updates.
/// All updates are lock-free CAS loops; thread-safe throughout.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  /// Monotone high-water update (peak memory style).
  void SetMax(double value) {
    double current = value_.load(std::memory_order_relaxed);
    while (value > current &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged view of one Histogram at scrape time; quantiles are computed here
/// so one merge serves any number of quantile reads.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< exact smallest recorded value (0 when empty)
  uint64_t max = 0;  ///< exact largest recorded value (0 when empty)
  std::vector<uint64_t> buckets;  ///< merged per-bucket counts

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Nearest-rank quantile (q in [0, 1]) read from the log buckets: the
  /// midpoint of the bucket holding the rank, clamped to the exact tracked
  /// [min, max] so Quantile(1.0) == max and quantile order can never invert
  /// against the exact extremes. Relative error is bounded by the bucket
  /// half-width: <= 1/16 of the value.
  uint64_t Quantile(double q) const;
};

/// \brief Fixed-size log-bucketed histogram of non-negative uint64 values
/// (nanoseconds by convention; bytes work equally).
///
/// Buckets: values 0..15 are exact; above that, 8 sub-buckets per power of
/// two (relative width 1/8), 496 buckets total covering the full uint64
/// range — no configuration, no allocation after construction, O(1) Record.
/// Shards per thread group keep Record contention low; Snapshot() merges.
class Histogram {
 public:
  static constexpr size_t kShards = 4;
  static constexpr uint32_t kBuckets = 496;

  /// O(1), lock-free, allocation-free: one bucket fetch_add plus the
  /// count/sum/min/max bookkeeping on the calling thread's shard.
  void Record(uint64_t value) {
    Shard& shard = shards_[ThreadShardSlot() % kShards];
    shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = shard.min.load(std::memory_order_relaxed);
    while (value < seen && !shard.min.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
    seen = shard.max.load(std::memory_order_relaxed);
    while (value > seen && !shard.max.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  /// Seconds convenience for latency call sites: records whole nanoseconds
  /// (negative inputs clamp to 0).
  void RecordSeconds(double seconds) {
    Record(seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e9));
  }

  HistogramSnapshot Snapshot() const;

  /// Zeroes everything; same non-atomicity caveat as Counter::Reset.
  void Reset();

  /// The bucket that holds `value`.
  static uint32_t BucketIndex(uint64_t value);
  /// Smallest value mapping to bucket `index`.
  static uint64_t BucketLowerBound(uint32_t index);
  /// Number of distinct values mapping to bucket `index`.
  static uint64_t BucketWidth(uint32_t index);

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{~uint64_t{0}};
    std::atomic<uint64_t> max{0};
    std::atomic<uint64_t> buckets[kBuckets]{};
  };
  Shard shards_[kShards];
};

/// \brief Process-scoped owner of named instruments.
///
/// GetCounter / GetGauge / GetHistogram create on first use and return the
/// same stable pointer forever after (instruments are never destroyed before
/// the registry), so hot paths resolve their instruments once at
/// construction time and record through raw pointers. Names follow the
/// Prometheus convention ([a-z0-9_], `_total` counters, `_ns` / `_bytes`
/// units); an instrument may carry one label pair, and equal names with
/// different label values form a family (e.g. engine_queries_total by
/// workload). Thread-safe; lookup takes a mutex, recording does not.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name, std::string_view label_key = {},
                      std::string_view label_value = {});
  Gauge* GetGauge(std::string_view name, std::string_view label_key = {},
                  std::string_view label_value = {});
  Histogram* GetHistogram(std::string_view name,
                          std::string_view label_key = {},
                          std::string_view label_value = {});

  /// One machine-readable scrape of every instrument: counters, gauges, and
  /// histograms (count / sum / min / max / mean / p50 / p90 / p95 / p99 plus
  /// the non-empty buckets). Implemented in obs/export.cc.
  std::string ExportJson() const;

  /// Prometheus text exposition format (# TYPE lines, cumulative `le`
  /// buckets, `_sum` / `_count` series). Implemented in obs/export.cc.
  std::string ExportText() const;

 private:
  /// Full instrument identity; std::map keeps export order stable.
  struct Key {
    std::string name;
    std::string label_key;
    std::string label_value;

    bool operator<(const Key& other) const {
      if (name != other.name) return name < other.name;
      if (label_key != other.label_key) return label_key < other.label_key;
      return label_value < other.label_value;
    }
  };

  mutable std::mutex mutex_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace relcomp::obs
