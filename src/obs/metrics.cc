#include "obs/metrics.h"

#include <cmath>

namespace relcomp::obs {

size_t ThreadShardSlot() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

uint32_t Histogram::BucketIndex(uint64_t value) {
  if (value < 16) return static_cast<uint32_t>(value);
  const int exponent = 63 - __builtin_clzll(value);
  return static_cast<uint32_t>(8 + (exponent - 3) * 8 +
                               ((value >> (exponent - 3)) & 7));
}

uint64_t Histogram::BucketLowerBound(uint32_t index) {
  if (index < 16) return index;
  const uint32_t exponent = 3 + (index - 8) / 8;
  const uint32_t sub = (index - 8) % 8;
  return (uint64_t{8} + sub) << (exponent - 3);
}

uint64_t Histogram::BucketWidth(uint32_t index) {
  if (index < 16) return 1;
  return uint64_t{1} << ((index - 8) / 8);
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (uint32_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      // Midpoint of the bucket, clamped to the exact extremes: the true
      // value lies in [lower, lower + width), so the estimate is off by at
      // most half the bucket width (<= 1/16 relative).
      uint64_t value =
          Histogram::BucketLowerBound(i) + (Histogram::BucketWidth(i) - 1) / 2;
      if (value < min) value = min;
      if (value > max) value = max;
      return value;
    }
  }
  return max;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.buckets.assign(kBuckets, 0);
  uint64_t min_seen = ~uint64_t{0};
  for (const Shard& shard : shards_) {
    snapshot.count += shard.count.load(std::memory_order_relaxed);
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
    const uint64_t shard_min = shard.min.load(std::memory_order_relaxed);
    if (shard_min < min_seen) min_seen = shard_min;
    const uint64_t shard_max = shard.max.load(std::memory_order_relaxed);
    if (shard_max > snapshot.max) snapshot.max = shard_max;
    for (uint32_t i = 0; i < kBuckets; ++i) {
      snapshot.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  snapshot.min = snapshot.count == 0 ? 0 : min_seen;
  return snapshot;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.min.store(~uint64_t{0}, std::memory_order_relaxed);
    shard.max.store(0, std::memory_order_relaxed);
    for (std::atomic<uint64_t>& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view label_key,
                                     std::string_view label_value) {
  const Key key{std::string(name), std::string(label_key),
                std::string(label_value)};
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = counters_.try_emplace(key);
  if (inserted) it->second = std::make_unique<Counter>();
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view label_key,
                                 std::string_view label_value) {
  const Key key{std::string(name), std::string(label_key),
                std::string(label_value)};
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = gauges_.try_emplace(key);
  if (inserted) it->second = std::make_unique<Gauge>();
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view label_key,
                                         std::string_view label_value) {
  const Key key{std::string(name), std::string(label_key),
                std::string(label_value)};
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = histograms_.try_emplace(key);
  if (inserted) it->second = std::make_unique<Histogram>();
  return it->second.get();
}

}  // namespace relcomp::obs
