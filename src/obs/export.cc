// Exporters over the MetricsRegistry: one-scrape JSON and Prometheus text
// exposition. Kept out of metrics.cc so the hot-path instrument code never
// pulls string formatting into its translation unit.

#include <string>

#include "common/format.h"
#include "obs/metrics.h"

namespace relcomp::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

/// `{"name":"x","labels":{"k":"v"}` prefix shared by every instrument line.
std::string JsonHead(const std::string& name, const std::string& label_key,
                     const std::string& label_value) {
  std::string out = StrFormat("{\"name\":\"%s\"", JsonEscape(name).c_str());
  if (!label_key.empty()) {
    out += StrFormat(",\"labels\":{\"%s\":\"%s\"}",
                     JsonEscape(label_key).c_str(),
                     JsonEscape(label_value).c_str());
  }
  return out;
}

/// `name{key="value"}` Prometheus series name (extra label appended inside
/// the braces when `extra` is non-empty).
std::string PromSeries(const std::string& name, const std::string& label_key,
                       const std::string& label_value,
                       const std::string& extra = "") {
  std::string labels;
  if (!label_key.empty()) {
    labels = StrFormat("%s=\"%s\"", label_key.c_str(), label_value.c_str());
  }
  if (!extra.empty()) {
    if (!labels.empty()) labels += ",";
    labels += extra;
  }
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

std::string FormatDouble(double value) {
  // Shortest-ish stable form: integers print without a fraction.
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value > -1e15 && value < 1e15) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  return StrFormat("%.9g", value);
}

}  // namespace

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": [";
  bool first = true;
  for (const auto& [key, counter] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += JsonHead(key.name, key.label_key, key.label_value);
    out += StrFormat(",\"value\":%llu}",
                     static_cast<unsigned long long>(counter->Value()));
  }
  out += "\n  ],\n  \"gauges\": [";
  first = true;
  for (const auto& [key, gauge] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += JsonHead(key.name, key.label_key, key.label_value);
    out += StrFormat(",\"value\":%s}", FormatDouble(gauge->Value()).c_str());
  }
  out += "\n  ],\n  \"histograms\": [";
  first = true;
  for (const auto& [key, histogram] : histograms_) {
    const HistogramSnapshot snapshot = histogram->Snapshot();
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += JsonHead(key.name, key.label_key, key.label_value);
    out += StrFormat(
        ",\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu,"
        "\"mean\":%s,\"p50\":%llu,\"p90\":%llu,\"p95\":%llu,\"p99\":%llu",
        static_cast<unsigned long long>(snapshot.count),
        static_cast<unsigned long long>(snapshot.sum),
        static_cast<unsigned long long>(snapshot.min),
        static_cast<unsigned long long>(snapshot.max),
        FormatDouble(snapshot.mean()).c_str(),
        static_cast<unsigned long long>(snapshot.Quantile(0.50)),
        static_cast<unsigned long long>(snapshot.Quantile(0.90)),
        static_cast<unsigned long long>(snapshot.Quantile(0.95)),
        static_cast<unsigned long long>(snapshot.Quantile(0.99)));
    // Sparse buckets: only non-empty ones, as (upper bound, count) pairs.
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (uint32_t i = 0; i < snapshot.buckets.size(); ++i) {
      if (snapshot.buckets[i] == 0) continue;
      const uint64_t upper =
          Histogram::BucketLowerBound(i) + Histogram::BucketWidth(i) - 1;
      out += StrFormat("%s{\"le\":%llu,\"count\":%llu}",
                       first_bucket ? "" : ",",
                       static_cast<unsigned long long>(upper),
                       static_cast<unsigned long long>(snapshot.buckets[i]));
      first_bucket = false;
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string MetricsRegistry::ExportText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  // Families sharing a name emit one # TYPE line (maps are name-sorted).
  std::string last_typed;
  for (const auto& [key, counter] : counters_) {
    if (key.name != last_typed) {
      out += StrFormat("# TYPE %s counter\n", key.name.c_str());
      last_typed = key.name;
    }
    out += StrFormat(
        "%s %llu\n",
        PromSeries(key.name, key.label_key, key.label_value).c_str(),
        static_cast<unsigned long long>(counter->Value()));
  }
  last_typed.clear();
  for (const auto& [key, gauge] : gauges_) {
    if (key.name != last_typed) {
      out += StrFormat("# TYPE %s gauge\n", key.name.c_str());
      last_typed = key.name;
    }
    out += StrFormat(
        "%s %s\n",
        PromSeries(key.name, key.label_key, key.label_value).c_str(),
        FormatDouble(gauge->Value()).c_str());
  }
  last_typed.clear();
  for (const auto& [key, histogram] : histograms_) {
    if (key.name != last_typed) {
      out += StrFormat("# TYPE %s histogram\n", key.name.c_str());
      last_typed = key.name;
    }
    const HistogramSnapshot snapshot = histogram->Snapshot();
    // Cumulative le buckets, non-empty ones only, then the +Inf / sum /
    // count triplet Prometheus requires.
    uint64_t cumulative = 0;
    for (uint32_t i = 0; i < snapshot.buckets.size(); ++i) {
      if (snapshot.buckets[i] == 0) continue;
      cumulative += snapshot.buckets[i];
      const uint64_t upper =
          Histogram::BucketLowerBound(i) + Histogram::BucketWidth(i) - 1;
      out += StrFormat(
          "%s %llu\n",
          PromSeries(key.name + "_bucket", key.label_key, key.label_value,
                     StrFormat("le=\"%llu\"",
                               static_cast<unsigned long long>(upper)))
              .c_str(),
          static_cast<unsigned long long>(cumulative));
    }
    out += StrFormat(
        "%s %llu\n",
        PromSeries(key.name + "_bucket", key.label_key, key.label_value,
                   "le=\"+Inf\"")
            .c_str(),
        static_cast<unsigned long long>(snapshot.count));
    out += StrFormat(
        "%s %llu\n",
        PromSeries(key.name + "_sum", key.label_key, key.label_value).c_str(),
        static_cast<unsigned long long>(snapshot.sum));
    out += StrFormat(
        "%s %llu\n",
        PromSeries(key.name + "_count", key.label_key, key.label_value)
            .c_str(),
        static_cast<unsigned long long>(snapshot.count));
  }
  return out;
}

}  // namespace relcomp::obs
