#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.h"

namespace relcomp::obs {

/// Stages of one engine query, in the order the pipeline visits them:
/// Submit -> queue -> cache probe -> single-flight / sweep-flight ->
/// prepare / adopt -> per-stratum execute / steal -> merge -> publish.
enum class SpanKind : uint8_t {
  kQuery,          ///< root: Submit (enqueue) to result publication
  kScout,          ///< root of a warm-ahead scout sweep (no query behind it)
  kQueueWait,      ///< enqueue to dispatch on a worker
  kCacheProbe,     ///< result-cache (detail 0) / sweep-cache (detail 1) probe
  kCoalescedWait,  ///< waiting on a query-level single-flight leader
  kSweepFlight,    ///< participation in a sweep-level flight, claim to ready
  kSweepWait,      ///< waiting for another participant to finalize the sweep
  kPrepare,        ///< PrepareForNextQuery / prebuilt-generation adoption
  kStratum,        ///< one executed sweep stratum (detail = stratum index)
  kMerge,          ///< deterministic stratum merge by the finalizer
  kPublish,        ///< cache insert + flight retirement + waiter wakeup
  kDerive,         ///< deriving a top-k / reliable-set view from a sweep
  kEstimate,       ///< a non-sweep estimator call (st / distance)
  kSample,         ///< estimator-internal MC sampling loop
  kBfs,            ///< estimator-internal shared-BFS pass (BFS Sharing)
};

const char* SpanKindName(SpanKind kind);

/// One closed interval of one query's execution. Timestamps are absolute
/// StopwatchNs::Now() readings, so spans from different queries and threads
/// share one timeline.
struct TraceSpan {
  uint64_t query_id = 0;
  uint64_t begin_ns = 0;
  uint64_t end_ns = 0;
  uint32_t span_id = 0;
  uint32_t parent_id = 0;  ///< TraceBuffer::kNone for the root
  uint32_t detail = 0;     ///< kind-specific (stratum index, workload tag)
  uint32_t thread = 0;     ///< worker id that recorded the span
  SpanKind kind = SpanKind::kQuery;
};

/// \brief Fixed-capacity span collector for one traced query.
///
/// Lives on the worker's stack for the duration of RunOne: Begin/End never
/// allocate, never lock, and never fail (a full buffer counts drops instead).
/// Single-threaded by design — a query executes on exactly one worker, and
/// estimator-internal spans reach the same buffer through
/// EstimateOptions::trace on that same thread.
class TraceBuffer {
 public:
  static constexpr uint32_t kNone = 0xffffffffu;
  static constexpr uint32_t kCapacity = 96;

  /// Arms the buffer for one query; spans recorded before Start are dropped.
  void Start(uint64_t query_id, uint32_t thread) {
    count_ = 0;
    dropped_ = 0;
    query_id_ = query_id;
    thread_ = thread;
  }

  /// Opens a span beginning now; returns its id (kNone when full — End on
  /// kNone is a no-op, so callers never need to check).
  uint32_t Begin(SpanKind kind, uint32_t parent = kNone, uint32_t detail = 0) {
    return BeginAt(kind, StopwatchNs::Now(), parent, detail);
  }

  /// Opens a span with an explicit begin timestamp (e.g. the enqueue stamp
  /// captured before the worker dispatched).
  uint32_t BeginAt(SpanKind kind, uint64_t begin_ns, uint32_t parent = kNone,
                   uint32_t detail = 0) {
    if (count_ >= kCapacity) {
      ++dropped_;
      return kNone;
    }
    TraceSpan& span = spans_[count_];
    span.query_id = query_id_;
    span.begin_ns = begin_ns;
    span.end_ns = begin_ns;
    span.span_id = count_;
    span.parent_id = parent;
    span.detail = detail;
    span.thread = thread_;
    span.kind = kind;
    return count_++;
  }

  /// Closes `span` now (no-op on kNone).
  void End(uint32_t span) { EndAt(span, StopwatchNs::Now()); }

  void EndAt(uint32_t span, uint64_t end_ns) {
    if (span >= count_) return;
    spans_[span].end_ns = end_ns;
  }

  uint32_t size() const { return count_; }
  const TraceSpan& operator[](uint32_t i) const { return spans_[i]; }
  uint32_t dropped() const { return dropped_; }
  uint64_t query_id() const { return query_id_; }

 private:
  TraceSpan spans_[kCapacity];
  uint32_t count_ = 0;
  uint32_t dropped_ = 0;
  uint64_t query_id_ = 0;
  uint32_t thread_ = 0;
};

/// RAII span: no-ops throughout when constructed with a null buffer, so
/// call sites read identically whether the query is traced or not.
class ScopedSpan {
 public:
  ScopedSpan(TraceBuffer* buffer, SpanKind kind,
             uint32_t parent = TraceBuffer::kNone, uint32_t detail = 0)
      : buffer_(buffer),
        span_(buffer == nullptr ? TraceBuffer::kNone
                                : buffer->Begin(kind, parent, detail)) {}

  ~ScopedSpan() {
    if (buffer_ != nullptr) buffer_->End(span_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Id for nesting children under this span (kNone when untraced).
  uint32_t id() const { return span_; }

 private:
  TraceBuffer* buffer_;
  uint32_t span_;
};

/// \brief Bounded lock-free ring of published spans, newest overwriting
/// oldest.
///
/// Publish is wait-free (one ticket fetch_add plus a seqlock-stamped slot
/// write); Snapshot is best-effort — a slot being overwritten mid-read is
/// detected by its odd / changed sequence stamp and skipped. Telemetry
/// semantics: readers may miss spans under heavy churn, never see torn ones.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  void Publish(const TraceSpan& span);

  /// Consistent copies of the resident spans, oldest first.
  std::vector<TraceSpan> Snapshot() const;

  uint64_t published() const {
    return next_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return mask_ + 1; }

 private:
  struct alignas(64) Slot {
    /// 0 = never written; odd = write in progress; even = ticket*2+2.
    std::atomic<uint64_t> seq{0};
    TraceSpan span;
  };

  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
};

struct TracerOptions {
  /// Fraction of queries whose span trees are published to the ring
  /// (deterministic in the query id). 0 disables sampling entirely.
  double sample_rate = 0.0;
  /// Queries slower than this get their span tree formatted into the
  /// slow-query log regardless of sampling. 0 disables the log.
  double slow_query_ms = 0.0;
  /// Ring capacity in spans (rounded up to a power of two).
  size_t ring_capacity = 4096;
  /// Formatted slow-query dumps retained (oldest evicted).
  size_t max_slow_entries = 32;
};

/// \brief Per-engine trace sink: sampling decision, span ring, slow-query
/// log.
///
/// When neither sampling nor the slow-query log is configured, engaged() is
/// false and the engine skips tracing entirely — the hot path then performs
/// zero allocations and zero tracer calls beyond that one predicate.
class Tracer {
 public:
  explicit Tracer(const TracerOptions& options = {});

  /// True when queries should carry a TraceBuffer at all.
  bool engaged() const { return engaged_; }

  const TracerOptions& options() const { return options_; }

  /// Monotonic id for the next traced query (allocation-free).
  uint64_t NextQueryId() {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Deterministic per-query sampling decision (a hash of the id against
  /// sample_rate), so a given id samples identically on every run.
  bool ShouldSample(uint64_t query_id) const;

  /// Terminal sink for one query's spans: publishes them to the ring when
  /// the query is sampled, and formats the span tree into the slow-query
  /// log when the root exceeded slow_query_ms.
  void Finish(const TraceBuffer& buffer);

  /// nullptr when not engaged.
  const TraceRing* ring() const { return ring_.get(); }

  uint64_t sampled_queries() const {
    return sampled_.load(std::memory_order_relaxed);
  }
  uint64_t slow_queries() const {
    return slow_.load(std::memory_order_relaxed);
  }

  /// Retained slow-query dumps, oldest first.
  std::vector<std::string> SlowQueryLog() const;

  /// Indented tree rendering of one buffer's spans (offset from the root +
  /// duration per line).
  static std::string FormatSpanTree(const TraceSpan* spans, size_t count);

 private:
  const TracerOptions options_;
  const bool engaged_;
  /// sample_rate scaled to the uint64 hash range; ~0 means "always".
  const uint64_t sample_threshold_;
  std::unique_ptr<TraceRing> ring_;
  std::atomic<uint64_t> next_query_id_{0};
  std::atomic<uint64_t> sampled_{0};
  std::atomic<uint64_t> slow_{0};
  mutable std::mutex slow_mutex_;
  std::deque<std::string> slow_log_;
};

}  // namespace relcomp::obs
