#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/subgraph.h"
#include "reliability/estimator.h"

namespace relcomp {

/// \brief Options for the FWD (fixed-width) ProbTree index.
struct ProbTreeOptions {
  /// Tree-decomposition width w. The index is (near-)lossless for w <= 2:
  /// between any boundary pair of a bag there are at most two paths, whose
  /// union probability 1-(1-p1)(1-p2) is precomputed (the paper's O(w^2)
  /// adaptation of [32]). Larger widths trade accuracy for more reduction.
  uint32_t width = 2;

  /// Reproduces the *original* ProbTree of [32], which precomputes the full
  /// distance probability distribution for every boundary pair (needed for
  /// shortest-path queries) at O(w^2 d) per bag instead of the paper's
  /// reliability-only O(w^2). Pure build-time/size ablation: s-t reliability
  /// answers are identical either way (Section 2.7, "Our adaptation in
  /// complexity": 4062 s -> 2482 s on BioMine).
  bool precompute_distance_distributions = false;
  /// Length cap d for the distributions (the graph-diameter bound of [32]).
  uint32_t max_distance = 16;
};

/// \brief Build-time statistics for Figure 13 style reporting.
struct ProbTreeBuildStats {
  double build_seconds = 0.0;
  size_t num_bags = 0;
  size_t root_nodes = 0;
  size_t root_edges = 0;
};

/// \brief One directed probabilistic edge held by a bag or by the root.
struct ProbTreeEdge {
  NodeId tail = kInvalidNode;
  NodeId head = kInvalidNode;
  double prob = 0.0;
  /// -1 for an original graph edge; otherwise the id of the child bag whose
  /// aggregation produced this virtual edge.
  int32_t origin = -1;
  /// Survival function of the tail->head distance: survival[l] = P(no path
  /// of length <= l+1 exists). Only populated when
  /// ProbTreeOptions::precompute_distance_distributions is set (the [32]
  /// original); empty in the paper's reliability-only mode.
  std::vector<double> survival;

  /// P(shortest tail->head distance == length), from the survival function.
  /// Returns 0 when distributions were not built or length is out of range.
  double DistanceProbability(uint32_t length) const;
};

/// \brief FWD ProbTree index (Algorithm 7; Maniu et al. [32]).
///
/// A relaxed tree decomposition: nodes of (current) degree <= w are
/// repeatedly absorbed into bags; removing a node adds a clique of virtual
/// edges between its neighbors whose probabilities aggregate the direct
/// edges and the two-hop paths through the removed node. What remains is the
/// root graph. A query (s, t) merges the bags on the root-paths of s and t
/// back in (dropping the virtual edges they contributed) and runs any
/// estimator on the much smaller extracted graph (Algorithm 8).
class ProbTreeIndex {
 public:
  /// Builds the index. O(n + m) decomposition, O(w^2) aggregation per bag.
  static Result<ProbTreeIndex> Build(const UncertainGraph& graph,
                                     const ProbTreeOptions& options);

  /// Builds the index into a shareable immutable handle. The decomposition is
  /// seed-free and ExtractQueryGraph is const, so one index serves any number
  /// of estimator replicas concurrently (the engine's replica path builds it
  /// once instead of once per worker).
  static Result<std::shared_ptr<const ProbTreeIndex>> BuildShared(
      const UncertainGraph& graph, const ProbTreeOptions& options);

  /// Persists / restores the index (Figure 13c measures loading time).
  Status SaveToFile(const std::string& path) const;
  static Result<ProbTreeIndex> LoadFromFile(const std::string& path);

  /// Serializes the index as a snapshot-section payload — the SaveToFile
  /// byte stream without the file magic (the snapshot container supplies
  /// identity and checksums). Distance distributions (survival vectors) are
  /// not persisted, matching SaveToFile.
  void AppendBlock(std::string* out) const;

  /// Reconstructs an index from an AppendBlock payload. Bounds-checked;
  /// a truncated or malformed payload returns kIOError.
  static Result<ProbTreeIndex> FromBlock(const void* data, size_t size);

  /// Builds the equivalent query graph for (s, t) with remapped endpoints.
  Result<RootedGraph> ExtractQueryGraph(NodeId s, NodeId t) const;

  /// Logical bytes of the resident index.
  size_t MemoryBytes() const;

  const ProbTreeBuildStats& stats() const { return stats_; }

  /// \name Introspection (tests / examples)
  /// @{
  struct Bag {
    NodeId covered = kInvalidNode;        ///< the node this bag removed
    std::vector<NodeId> nodes;            ///< covered + boundary
    std::vector<NodeId> boundary;         ///< nodes \ {covered}, size <= w
    std::vector<ProbTreeEdge> edges;      ///< absorbed + child-virtual edges
    int32_t parent = -1;                  ///< bag id, or -1 for the root
  };
  size_t num_bags() const { return bags_.size(); }
  const Bag& bag(size_t i) const { return bags_[i]; }
  /// Bag that covers `v`, or -1 if `v` lives in the root.
  int32_t CoveredIn(NodeId v) const { return covered_in_[v]; }
  const std::vector<ProbTreeEdge>& root_edges() const { return root_edges_; }
  /// @}

 private:
  ProbTreeIndex() = default;

  size_t num_nodes_ = 0;
  std::vector<Bag> bags_;
  std::vector<ProbTreeEdge> root_edges_;
  std::vector<int32_t> covered_in_;  // per node: bag id or -1
  ProbTreeBuildStats stats_;
};

/// Which estimator runs on the extracted query graph (Section 3.8 couples
/// ProbTree with the faster estimators; Table 16).
enum class ProbTreeInner {
  kMonteCarlo = 0,  ///< the paper's default (as in [32])
  kLazyPropagationPlus,
  kRecursive,            ///< RHH
  kRecursiveStratified,  ///< RSS
};

/// \brief ProbTree-backed s-t reliability estimator (Algorithm 8).
///
/// Holds its index through a `shared_ptr<const>`: replicas created over the
/// same index (CreateWithIndex) share one copy and only pay for private
/// per-query state.
class ProbTreeEstimator : public Estimator {
 public:
  static Result<std::unique_ptr<ProbTreeEstimator>> Create(
      const UncertainGraph& graph, const ProbTreeOptions& options,
      ProbTreeInner inner = ProbTreeInner::kMonteCarlo);

  /// Replica path: wraps an existing shared index instead of building one.
  static Result<std::unique_ptr<ProbTreeEstimator>> CreateWithIndex(
      const UncertainGraph& graph, std::shared_ptr<const ProbTreeIndex> index,
      ProbTreeInner inner = ProbTreeInner::kMonteCarlo);

  std::string_view name() const override { return name_; }
  const UncertainGraph& graph() const override { return graph_; }

  /// Samples run on the reduced query graph (cheaper than MC's full-graph
  /// BFS), plus a small fixed query-graph extraction per query.
  CostHints cost_hints() const override {
    CostHints hints;
    hints.per_sample_edge_cost = 0.8;
    hints.per_query_edge_cost = 1.0;  // extraction walks the tree once
    return hints;
  }
  size_t IndexMemoryBytes() const override { return index_->MemoryBytes(); }
  /// The whole ProbTree index is held via a shareable immutable handle.
  size_t SharedIndexBytes() const override { return index_->MemoryBytes(); }
  const void* SharedIndexIdentity() const override { return index_.get(); }

  const ProbTreeIndex& index() const { return *index_; }
  std::shared_ptr<const ProbTreeIndex> shared_index() const { return index_; }

 protected:
  Result<double> DoEstimate(const ReliabilityQuery& query,
                            const EstimateOptions& options,
                            MemoryTracker* memory) override;

 private:
  ProbTreeEstimator(const UncertainGraph& graph,
                    std::shared_ptr<const ProbTreeIndex> index,
                    ProbTreeInner inner);

  const UncertainGraph& graph_;
  std::shared_ptr<const ProbTreeIndex> index_;
  ProbTreeInner inner_;
  std::string name_;
};

}  // namespace relcomp
