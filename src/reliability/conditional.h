#pragma once

#include <vector>

#include "graph/subgraph.h"
#include "reliability/estimator.h"

namespace relcomp {

/// \brief Conditional s-t reliability (paper Section 2.9, Khan et al. [23]):
/// R(s, t | C) where the condition C forces a set of edges to be present
/// (e.g. links just observed up) and another set to be absent (links known
/// down). With independent edges, conditioning simply fixes those edges'
/// states — exactly the machinery the recursive estimators use internally.
struct ReliabilityCondition {
  std::vector<EdgeId> present;  ///< edges known to exist
  std::vector<EdgeId> absent;   ///< edges known to have failed
};

/// Estimates R(s, t | condition) by conditioned Monte Carlo: present edges
/// always traversable, absent edges never, the rest tossed per P(e).
/// Fails if the same edge is listed both present and absent or any id is out
/// of range.
Result<double> ConditionalReliabilityMonteCarlo(const UncertainGraph& graph,
                                                NodeId s, NodeId t,
                                                const ReliabilityCondition&
                                                    condition,
                                                uint32_t num_samples,
                                                uint64_t seed);

/// Exact R(s, t | condition) by enumerating the free edges only (test
/// oracle; feasible when the number of *unconditioned* edges is <= 24).
Result<double> ExactConditionalReliability(const UncertainGraph& graph, NodeId s,
                                           NodeId t,
                                           const ReliabilityCondition& condition,
                                           uint32_t max_free_edges = 24);

}  // namespace relcomp
