#include "reliability/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace relcomp {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();
constexpr double kFlowEpsilon = 1e-12;
/// Capacity standing in for -log(1 - p) when p == 1 (uncuttable edge).
constexpr double kCertainEdgeCapacity = 1e18;

/// Dijkstra on -log P(e), skipping edges marked in `removed` (may be null).
ReliablePath MostReliablePathImpl(const UncertainGraph& graph, NodeId s, NodeId t,
                                  const std::vector<uint8_t>* removed) {
  ReliablePath path;
  if (s == t) {
    path.nodes = {s};
    path.probability = 1.0;
    return path;
  }
  const size_t n = graph.num_nodes();
  std::vector<double> cost(n, kInfinity);  // -log of best path probability
  std::vector<EdgeId> via(n, kInvalidEdge);
  using HeapEntry = std::pair<double, NodeId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  cost[s] = 0.0;
  heap.emplace(0.0, s);
  while (!heap.empty()) {
    const auto [c, v] = heap.top();
    heap.pop();
    if (c > cost[v]) continue;
    if (v == t) break;
    for (const AdjEntry& a : graph.OutEdges(v)) {
      if (removed != nullptr && (*removed)[a.edge]) continue;
      const double next = c - std::log(a.prob);
      if (next < cost[a.neighbor]) {
        cost[a.neighbor] = next;
        via[a.neighbor] = a.edge;
        heap.emplace(next, a.neighbor);
      }
    }
  }
  if (cost[t] == kInfinity) return path;  // unreachable
  // Reconstruct backwards through the predecessor edges.
  std::vector<NodeId> reverse_nodes;
  NodeId v = t;
  while (v != s) {
    reverse_nodes.push_back(v);
    v = graph.edge(via[v]).tail;
  }
  reverse_nodes.push_back(s);
  path.nodes.assign(reverse_nodes.rbegin(), reverse_nodes.rend());
  path.probability = std::exp(-cost[t]);
  return path;
}

Status ValidatePair(const UncertainGraph& graph, NodeId s, NodeId t) {
  if (!graph.HasNode(s) || !graph.HasNode(t)) {
    return Status::InvalidArgument("bounds: query node out of range");
  }
  return Status::OK();
}

}  // namespace

Result<ReliablePath> MostReliablePath(const UncertainGraph& graph, NodeId s,
                                      NodeId t) {
  RELCOMP_RETURN_NOT_OK(ValidatePair(graph, s, t));
  return MostReliablePathImpl(graph, s, t, nullptr);
}

Result<double> ReliabilityLowerBound(const UncertainGraph& graph, NodeId s,
                                     NodeId t, uint32_t max_paths) {
  RELCOMP_RETURN_NOT_OK(ValidatePair(graph, s, t));
  if (s == t) return 1.0;
  std::vector<uint8_t> removed(graph.num_edges(), 0);
  double miss_all = 1.0;  // prod_i (1 - P(path_i))
  for (uint32_t i = 0; i < max_paths; ++i) {
    const ReliablePath path = MostReliablePathImpl(graph, s, t, &removed);
    if (!path.exists() || path.probability <= 0.0) break;
    miss_all *= (1.0 - path.probability);
    // Drop the path's edges so the next path is edge-disjoint (independent).
    for (size_t j = 0; j + 1 < path.nodes.size(); ++j) {
      const NodeId u = path.nodes[j];
      const NodeId w = path.nodes[j + 1];
      // Remove the best edge used between u and w (any u->w edge works: we
      // remove the most probable remaining one, matching the Dijkstra pick).
      EdgeId best = kInvalidEdge;
      for (const AdjEntry& a : graph.OutEdges(u)) {
        if (a.neighbor != w || removed[a.edge]) continue;
        if (best == kInvalidEdge || a.prob > graph.prob(best)) best = a.edge;
      }
      if (best != kInvalidEdge) removed[best] = 1;
    }
  }
  return 1.0 - miss_all;
}

Result<double> ReliabilityUpperBound(const UncertainGraph& graph, NodeId s,
                                     NodeId t) {
  RELCOMP_RETURN_NOT_OK(ValidatePair(graph, s, t));
  if (s == t) return 1.0;

  // Max-flow (Edmonds-Karp) with capacities -log(1 - P(e)). The min cut C
  // minimizes sum -log(1 - p_e), i.e. maximizes prod (1 - p_e), giving the
  // tightest single-cut bound R <= 1 - prod_{e in C} (1 - p_e)
  //                             = 1 - exp(-maxflow).
  struct Arc {
    NodeId to;
    double cap;
    size_t rev;  // index of the reverse arc in arcs[to]
  };
  const size_t n = graph.num_nodes();
  std::vector<std::vector<Arc>> arcs(n);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const EdgeRecord& rec = graph.edge(e);
    if (rec.tail == rec.head) continue;
    const double cap =
        rec.prob >= 1.0 ? kCertainEdgeCapacity : -std::log1p(-rec.prob);
    arcs[rec.tail].push_back(Arc{rec.head, cap, arcs[rec.head].size()});
    arcs[rec.head].push_back(Arc{rec.tail, 0.0, arcs[rec.tail].size() - 1});
  }

  double total_flow = 0.0;
  std::vector<std::pair<NodeId, size_t>> parent(n);  // (node, arc index)
  std::vector<uint8_t> visited(n);
  while (true) {
    std::fill(visited.begin(), visited.end(), 0);
    std::queue<NodeId> queue;
    queue.push(s);
    visited[s] = 1;
    bool found = false;
    while (!queue.empty() && !found) {
      const NodeId v = queue.front();
      queue.pop();
      for (size_t i = 0; i < arcs[v].size(); ++i) {
        const Arc& arc = arcs[v][i];
        if (visited[arc.to] || arc.cap <= kFlowEpsilon) continue;
        visited[arc.to] = 1;
        parent[arc.to] = {v, i};
        if (arc.to == t) {
          found = true;
          break;
        }
        queue.push(arc.to);
      }
    }
    if (!found) break;
    // Bottleneck along the augmenting path.
    double bottleneck = kInfinity;
    for (NodeId v = t; v != s;) {
      const auto [u, i] = parent[v];
      bottleneck = std::min(bottleneck, arcs[u][i].cap);
      v = u;
    }
    for (NodeId v = t; v != s;) {
      const auto [u, i] = parent[v];
      arcs[u][i].cap -= bottleneck;
      arcs[v][arcs[u][i].rev].cap += bottleneck;
      v = u;
    }
    total_flow += bottleneck;
    if (total_flow >= kCertainEdgeCapacity) break;  // cut requires certain edge
  }
  if (total_flow >= kCertainEdgeCapacity) return 1.0;
  return std::clamp(1.0 - std::exp(-total_flow), 0.0, 1.0);
}

Result<ReliabilityBounds> ComputeReliabilityBounds(const UncertainGraph& graph,
                                                   NodeId s, NodeId t,
                                                   uint32_t max_paths) {
  ReliabilityBounds bounds;
  RELCOMP_ASSIGN_OR_RETURN(bounds.lower,
                           ReliabilityLowerBound(graph, s, t, max_paths));
  RELCOMP_ASSIGN_OR_RETURN(bounds.upper, ReliabilityUpperBound(graph, s, t));
  return bounds;
}

}  // namespace relcomp
