#include "reliability/top_k.h"

#include <algorithm>

#include "common/rng.h"

namespace relcomp {

namespace {

/// Ranks per-node reliabilities, dropping the source, ties toward smaller id.
std::vector<ReliableTarget> RankTopK(const std::vector<double>& reliability,
                                     NodeId source, uint32_t k) {
  std::vector<ReliableTarget> ranked;
  ranked.reserve(reliability.size());
  for (NodeId v = 0; v < reliability.size(); ++v) {
    if (v != source && reliability[v] > 0.0) {
      ranked.push_back(ReliableTarget{v, reliability[v]});
    }
  }
  const size_t keep = std::min<size_t>(k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + keep, ranked.end(),
                    [](const ReliableTarget& a, const ReliableTarget& b) {
                      if (a.reliability != b.reliability) {
                        return a.reliability > b.reliability;
                      }
                      return a.node < b.node;
                    });
  ranked.resize(keep);
  return ranked;
}

}  // namespace

Result<std::vector<ReliableTarget>> TopKReliableTargetsMonteCarlo(
    const UncertainGraph& graph, NodeId source, uint32_t k,
    uint32_t num_samples, uint64_t seed) {
  if (!graph.HasNode(source)) {
    return Status::InvalidArgument("top-k: source out of range");
  }
  if (k == 0 || num_samples == 0) {
    return Status::InvalidArgument("top-k: k and num_samples must be positive");
  }
  Rng rng(seed);
  std::vector<uint32_t> hit_count(graph.num_nodes(), 0);
  std::vector<uint32_t> visit_epoch(graph.num_nodes(), 0);
  std::vector<NodeId> queue;
  queue.reserve(graph.num_nodes());
  for (uint32_t i = 1; i <= num_samples; ++i) {
    queue.clear();
    queue.push_back(source);
    visit_epoch[source] = i;
    for (size_t head = 0; head < queue.size(); ++head) {
      const NodeId v = queue[head];
      for (const AdjEntry& a : graph.OutEdges(v)) {
        if (visit_epoch[a.neighbor] == i) continue;
        if (!rng.Bernoulli(a.prob)) continue;
        visit_epoch[a.neighbor] = i;
        ++hit_count[a.neighbor];
        queue.push_back(a.neighbor);
      }
    }
  }
  std::vector<double> reliability(graph.num_nodes(), 0.0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    reliability[v] =
        static_cast<double>(hit_count[v]) / static_cast<double>(num_samples);
  }
  return RankTopK(reliability, source, k);
}

Result<std::vector<ReliableTarget>> TopKReliableTargetsBfsSharing(
    BfsSharingEstimator& estimator, NodeId source, uint32_t k,
    uint32_t num_samples) {
  if (k == 0) {
    return Status::InvalidArgument("top-k: k must be positive");
  }
  RELCOMP_ASSIGN_OR_RETURN(std::vector<double> reliability,
                           estimator.ReliabilityFromSource(source, num_samples));
  return RankTopK(reliability, source, k);
}

}  // namespace relcomp
