#include "reliability/top_k.h"

#include <algorithm>

#include "reliability/mc_sampling.h"

namespace relcomp {

std::vector<ReliableTarget> RankTopKTargets(
    const std::vector<double>& reliability, NodeId source, uint32_t k) {
  std::vector<ReliableTarget> ranked;
  ranked.reserve(reliability.size());
  for (NodeId v = 0; v < reliability.size(); ++v) {
    if (v != source && reliability[v] > 0.0) {
      ranked.push_back(ReliableTarget{v, reliability[v]});
    }
  }
  const size_t keep = std::min<size_t>(k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + keep, ranked.end(),
                    [](const ReliableTarget& a, const ReliableTarget& b) {
                      if (a.reliability != b.reliability) {
                        return a.reliability > b.reliability;
                      }
                      return a.node < b.node;
                    });
  ranked.resize(keep);
  return ranked;
}

Result<std::vector<ReliableTarget>> TopKReliableTargetsMonteCarlo(
    const UncertainGraph& graph, NodeId source, uint32_t k,
    uint32_t num_samples, uint64_t seed, uint32_t num_strata) {
  if (!graph.HasNode(source)) {
    return Status::InvalidArgument("top-k: source out of range");
  }
  if (k == 0 || num_samples == 0) {
    return Status::InvalidArgument("top-k: k and num_samples must be positive");
  }
  RELCOMP_ASSIGN_OR_RETURN(std::vector<double> reliability,
                           MonteCarloReliabilityFromSource(
                               graph, source, num_samples, seed, num_strata));
  return RankTopKTargets(reliability, source, k);
}

Result<std::vector<ReliableTarget>> TopKReliableTargetsBfsSharing(
    BfsSharingEstimator& estimator, NodeId source, uint32_t k,
    uint32_t num_samples) {
  if (k == 0) {
    return Status::InvalidArgument("top-k: k must be positive");
  }
  RELCOMP_ASSIGN_OR_RETURN(std::vector<double> reliability,
                           estimator.ReliabilityFromSource(source, num_samples));
  return RankTopKTargets(reliability, source, k);
}

}  // namespace relcomp
