#pragma once

#include <vector>

#include "graph/subgraph.h"
#include "reliability/estimator.h"

namespace relcomp {

class Rng;

/// \brief Distance-constrained s-t reliability R_d(s, t): the probability
/// that t is reachable from s within at most `max_hops` hops.
///
/// This is the query Jin et al. [20] originally designed recursive sampling
/// for (the paper's Section 2.4 adapts it to the unconstrained case; this
/// module keeps the original semantics available). Setting
/// max_hops >= n - 1 recovers plain s-t reliability.
struct DistanceConstrainedQuery {
  NodeId source = kInvalidNode;
  NodeId target = kInvalidNode;
  uint32_t max_hops = 0;
};

/// \brief Monte Carlo estimator for R_d(s, t): per sample, a lazily-sampled
/// BFS that stops expanding past `max_hops` levels (unbiased; variance
/// R_d (1 - R_d) / K).
class DistanceConstrainedMonteCarlo {
 public:
  explicit DistanceConstrainedMonteCarlo(const UncertainGraph& graph);

  /// Estimates R_d(s, t) with `num_samples` samples. `memory`, when given,
  /// receives the call's working-set accounting (epoch marks, BFS queue,
  /// depth array).
  Result<double> Estimate(const DistanceConstrainedQuery& query,
                          uint32_t num_samples, uint64_t seed,
                          MemoryTracker* memory = nullptr);

 private:
  const UncertainGraph& graph_;
  std::vector<uint32_t> visit_epoch_;
  std::vector<NodeId> queue_;
  std::vector<uint32_t> depth_;
  uint32_t epoch_ = 0;
};

/// \brief Recursive (RHH-style) estimator for R_d(s, t): conditions on
/// DFS-chosen edges exactly like Algorithm 4, but the path / cut / base-case
/// checks are all depth-bounded.
class DistanceConstrainedRecursive {
 public:
  DistanceConstrainedRecursive(const UncertainGraph& graph,
                               uint32_t threshold = 5);

  /// `memory`, when given, receives the call's working-set accounting (edge
  /// states, epoch marks, BFS queue, depth array).
  Result<double> Estimate(const DistanceConstrainedQuery& query,
                          uint32_t num_samples, uint64_t seed,
                          MemoryTracker* memory = nullptr);

 private:
  double Recurse(const DistanceConstrainedQuery& query, uint32_t k,
                 std::vector<EdgeState>& states, Rng& rng);
  double BaseMonteCarlo(const DistanceConstrainedQuery& query, uint32_t k,
                        const std::vector<EdgeState>& states, Rng& rng);
  /// Hop distance from s to t over edges whose state passes `keep`;
  /// kInvalidDistance if unreachable.
  template <typename KeepFn>
  uint32_t BoundedDistance(NodeId s, NodeId t, uint32_t max_hops,
                           const std::vector<EdgeState>& states, KeepFn keep);
  /// First undetermined out-edge of the included-edge component truncated at
  /// `max_hops` (DFS order); kInvalidEdge if none.
  EdgeId SelectEdge(const DistanceConstrainedQuery& query,
                    const std::vector<EdgeState>& states);

  const UncertainGraph& graph_;
  uint32_t threshold_;
  std::vector<uint32_t> visit_epoch_;
  std::vector<NodeId> queue_;
  std::vector<uint32_t> depth_;
  uint32_t epoch_ = 0;
};

/// \brief Exact R_d(s, t) by enumerating all 2^m worlds (tiny graphs; test
/// oracle for both estimators above).
Result<double> ExactDistanceConstrainedReliability(const UncertainGraph& graph,
                                                   const DistanceConstrainedQuery&
                                                       query,
                                                   uint32_t max_edges = 24);

}  // namespace relcomp
