#pragma once

#include <memory>
#include <vector>

#include "reliability/distance_constrained.h"
#include "reliability/estimator.h"

namespace relcomp {

/// \brief Per-node reliability from `source`: K sampled worlds, one full BFS
/// each (no early target exit), per-node hit counting. O(K (m + n)), no
/// index.
///
/// This is the single sweep core behind TopKReliableTargetsMonteCarlo,
/// ReliableSetMonteCarlo, and MonteCarloEstimator::EstimateFromSource (the
/// engine's dispatch path) — one implementation, so all three produce
/// bit-identical per-node reliabilities for equal (source, num_samples,
/// seed, num_strata).
///
/// `num_strata` partitions the budget into S fixed strata (stratum j draws
/// StratumSampleCount(K, S, j) samples from Rng(StratumSeed(seed, j, S)))
/// and merges their hit counts in stratum order: the result is a canonical
/// function of (source, K, seed, S), identical whether the strata run
/// back-to-back here or spread across engine workers. S <= 1 is the legacy
/// unstratified sweep, bit-identical to the pre-strata behaviour.
Result<std::vector<double>> MonteCarloReliabilityFromSource(
    const UncertainGraph& graph, NodeId source, uint32_t num_samples,
    uint64_t seed, uint32_t num_strata = 1);

/// \brief Basic Monte Carlo sampling with BFS and lazy edge sampling
/// (Algorithm 1 of the paper; hit-and-miss Monte Carlo [12]).
///
/// Per sample: BFS from s; each edge is tossed with probability P(e) the
/// first time the BFS reaches its tail; the sample terminates early as soon
/// as t is visited. Unbiased; variance R(1-R)/K (Eq. 4); time O(K(m+n)).
/// Both the s-t estimate and the source sweep honor
/// EstimateOptions::num_strata (see MonteCarloReliabilityFromSource).
class MonteCarloEstimator : public Estimator {
 public:
  explicit MonteCarloEstimator(const UncertainGraph& graph);

  std::string_view name() const override { return "MC"; }
  const UncertainGraph& graph() const override { return graph_; }

  /// The router's cost baseline: one BFS over one sampled subgraph per
  /// sample, no fixed per-query work, sweeps amortized.
  CostHints cost_hints() const override {
    CostHints hints;
    hints.per_sample_edge_cost = 1.0;
    hints.sweep_amortized = true;
    return hints;
  }

  /// Source sweep for top-k / reliable-set dispatch (the shared
  /// MonteCarloReliabilityFromSource core, stratified when
  /// options.num_strata > 1).
  bool SupportsSourceSweep() const override { return true; }
  Result<std::vector<double>> EstimateFromSource(
      NodeId source, const EstimateOptions& options) override;

  /// One stratum of the sweep above, as raw hit counts: the engine's
  /// work-stealing currency. Merging all strata == EstimateFromSource with
  /// the same num_strata, bit for bit.
  bool SupportsStratifiedSweep() const override { return true; }
  Result<std::vector<uint32_t>> EstimateSweepStratumHits(
      NodeId source, uint32_t stratum, uint32_t num_strata,
      const EstimateOptions& options) override;

  /// Distance-constrained dispatch via the depth-bounded sampler of
  /// distance_constrained.h (per-replica scratch, reused across queries).
  bool SupportsDistanceConstrained() const override { return true; }
  Result<double> EstimateDistanceConstrained(
      const ReliabilityQuery& query, uint32_t max_hops,
      const EstimateOptions& options) override;

 protected:
  Result<double> DoEstimate(const ReliabilityQuery& query,
                            const EstimateOptions& options,
                            MemoryTracker* memory) override;

 private:
  /// Advances the sweep epoch window for `samples` more marks, re-zeroing
  /// the epoch array only when the counter would wrap.
  void ReserveSweepEpochs(uint32_t samples);

  const UncertainGraph& graph_;
  // Epoch-marked visited array: reused across samples without clearing.
  std::vector<uint32_t> visit_epoch_;
  std::vector<NodeId> queue_;
  uint32_t epoch_ = 0;
  // Sweep scratch, epoch-reused across EstimateFromSource calls (allocated
  // on the first sweep; hot serving paths never re-allocate).
  std::vector<uint32_t> sweep_hits_;
  std::vector<uint32_t> sweep_epoch_;
  std::vector<NodeId> sweep_queue_;
  uint32_t sweep_epoch_base_ = 0;
  // Depth-bounded sampler for distance queries, built on first use so pure
  // s-t / sweep replicas pay nothing for it.
  std::unique_ptr<DistanceConstrainedMonteCarlo> distance_;
};

}  // namespace relcomp
