#pragma once

#include <memory>
#include <vector>

#include "reliability/distance_constrained.h"
#include "reliability/estimator.h"

namespace relcomp {

/// \brief Per-node reliability from `source`: K sampled worlds, one full BFS
/// each (no early target exit), per-node hit counting. O(K (m + n)), no
/// index.
///
/// This is the single sweep core behind TopKReliableTargetsMonteCarlo,
/// ReliableSetMonteCarlo, and MonteCarloEstimator::EstimateFromSource (the
/// engine's dispatch path) — one implementation, so all three produce
/// bit-identical per-node reliabilities for equal (source, num_samples,
/// seed).
Result<std::vector<double>> MonteCarloReliabilityFromSource(
    const UncertainGraph& graph, NodeId source, uint32_t num_samples,
    uint64_t seed);

/// \brief Basic Monte Carlo sampling with BFS and lazy edge sampling
/// (Algorithm 1 of the paper; hit-and-miss Monte Carlo [12]).
///
/// Per sample: BFS from s; each edge is tossed with probability P(e) the
/// first time the BFS reaches its tail; the sample terminates early as soon
/// as t is visited. Unbiased; variance R(1-R)/K (Eq. 4); time O(K(m+n)).
class MonteCarloEstimator : public Estimator {
 public:
  explicit MonteCarloEstimator(const UncertainGraph& graph);

  std::string_view name() const override { return "MC"; }
  const UncertainGraph& graph() const override { return graph_; }

  /// Source sweep for top-k / reliable-set dispatch (the shared
  /// MonteCarloReliabilityFromSource core).
  bool SupportsSourceSweep() const override { return true; }
  Result<std::vector<double>> EstimateFromSource(
      NodeId source, const EstimateOptions& options) override;

  /// Distance-constrained dispatch via the depth-bounded sampler of
  /// distance_constrained.h (per-replica scratch, reused across queries).
  bool SupportsDistanceConstrained() const override { return true; }
  Result<double> EstimateDistanceConstrained(
      const ReliabilityQuery& query, uint32_t max_hops,
      const EstimateOptions& options) override;

 protected:
  Result<double> DoEstimate(const ReliabilityQuery& query,
                            const EstimateOptions& options,
                            MemoryTracker* memory) override;

 private:
  const UncertainGraph& graph_;
  // Epoch-marked visited array: reused across samples without clearing.
  std::vector<uint32_t> visit_epoch_;
  std::vector<NodeId> queue_;
  uint32_t epoch_ = 0;
  // Sweep scratch, epoch-reused across EstimateFromSource calls (allocated
  // on the first sweep; hot serving paths never re-allocate).
  std::vector<uint32_t> sweep_hits_;
  std::vector<uint32_t> sweep_epoch_;
  std::vector<NodeId> sweep_queue_;
  uint32_t sweep_epoch_base_ = 0;
  // Depth-bounded sampler for distance queries, built on first use so pure
  // s-t / sweep replicas pay nothing for it.
  std::unique_ptr<DistanceConstrainedMonteCarlo> distance_;
};

}  // namespace relcomp
