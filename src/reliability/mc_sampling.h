#pragma once

#include <vector>

#include "reliability/estimator.h"

namespace relcomp {

/// \brief Basic Monte Carlo sampling with BFS and lazy edge sampling
/// (Algorithm 1 of the paper; hit-and-miss Monte Carlo [12]).
///
/// Per sample: BFS from s; each edge is tossed with probability P(e) the
/// first time the BFS reaches its tail; the sample terminates early as soon
/// as t is visited. Unbiased; variance R(1-R)/K (Eq. 4); time O(K(m+n)).
class MonteCarloEstimator : public Estimator {
 public:
  explicit MonteCarloEstimator(const UncertainGraph& graph);

  std::string_view name() const override { return "MC"; }
  const UncertainGraph& graph() const override { return graph_; }

 protected:
  Result<double> DoEstimate(const ReliabilityQuery& query,
                            const EstimateOptions& options,
                            MemoryTracker* memory) override;

 private:
  const UncertainGraph& graph_;
  // Epoch-marked visited array: reused across samples without clearing.
  std::vector<uint32_t> visit_epoch_;
  std::vector<NodeId> queue_;
  uint32_t epoch_ = 0;
};

}  // namespace relcomp
