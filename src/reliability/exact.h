#pragma once

#include <cstdint>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace relcomp {

/// \brief Exact R(s, t) by enumerating all 2^m possible worlds (Eq. 2).
///
/// Only feasible for tiny graphs; fails with OutOfRange when
/// m > max_edges (default 26 => 64M worlds). Test oracle #1.
Result<double> ExactReliabilityEnumeration(const UncertainGraph& graph, NodeId s,
                                           NodeId t, uint32_t max_edges = 26);

/// \brief Exact R(s, t) by the factoring (recursive conditioning) method:
/// R = P(e) R(G | e) + (1 - P(e)) R(G - e), terminating on an included s-t
/// path (1) or an excluded s-t cut (0).
///
/// Handles graphs with up to a few dozen relevant edges thanks to pruning;
/// fails with OutOfRange once `max_steps` recursion nodes are expanded.
/// Test oracle #2 (cross-validates oracle #1 and the estimators).
Result<double> ExactReliabilityFactoring(const UncertainGraph& graph, NodeId s,
                                         NodeId t,
                                         uint64_t max_steps = 50'000'000);

}  // namespace relcomp
