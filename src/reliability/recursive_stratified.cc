#include "reliability/recursive_stratified.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace relcomp {

RecursiveStratifiedEstimator::RecursiveStratifiedEstimator(
    const UncertainGraph& graph, const RssOptions& options)
    : graph_(graph), options_(options) {}

Result<double> RecursiveStratifiedEstimator::DoEstimate(
    const ReliabilityQuery& query, const EstimateOptions& options,
    MemoryTracker* memory) {
  if (query.source == query.target) return 1.0;
  Rng rng(options.seed);
  return Recurse(graph_, query.source, query.target, options.num_samples, rng,
                 memory);
}

std::vector<EdgeId> RecursiveStratifiedEstimator::SelectEdgesBfs(
    const UncertainGraph& g, NodeId s, uint32_t r) const {
  std::vector<EdgeId> selected;
  selected.reserve(r);
  std::vector<uint8_t> visited(g.num_nodes(), 0);
  std::vector<uint8_t> edge_taken(g.num_edges(), 0);
  std::vector<NodeId> queue;
  queue.push_back(s);
  visited[s] = 1;
  for (size_t head = 0; head < queue.size() && selected.size() < r; ++head) {
    const NodeId v = queue[head];
    for (const AdjEntry& a : g.OutEdges(v)) {
      if (a.prob < 1.0 && !edge_taken[a.edge]) {
        edge_taken[a.edge] = 1;
        selected.push_back(a.edge);
        if (selected.size() >= r) break;
      }
      if (!visited[a.neighbor]) {
        visited[a.neighbor] = 1;
        queue.push_back(a.neighbor);
      }
    }
  }
  return selected;
}

Result<double> RecursiveStratifiedEstimator::Recurse(const UncertainGraph& g,
                                                     NodeId s, NodeId t,
                                                     uint32_t k, Rng& rng,
                                                     MemoryTracker* memory) {
  if (k < options_.threshold || g.num_edges() < options_.num_strata) {
    return PlainMonteCarlo(g, s, t, k, rng);
  }

  const std::vector<EdgeId> selected =
      SelectEdgesBfs(g, s, options_.num_strata);
  if (selected.empty()) {
    // No tossable edge is reachable from s: reachability is deterministic.
    return PlainMonteCarlo(g, s, t, std::max<uint32_t>(k, 1), rng);
  }
  const uint32_t r = static_cast<uint32_t>(selected.size());

  // Stratum probabilities pi_i (Eq. 10): stratum 0 excludes every selected
  // edge; stratum i >= 1 includes edge i and excludes all earlier ones.
  std::vector<double> pi(r + 1, 0.0);
  {
    double prefix_absent = 1.0;  // prod_{j < i} (1 - p_j)
    for (uint32_t i = 1; i <= r; ++i) {
      const double p = g.prob(selected[i - 1]);
      pi[i] = prefix_absent * p;
      prefix_absent *= (1.0 - p);
    }
    pi[0] = prefix_absent;
  }

  std::vector<EdgeState> states(g.num_edges(), EdgeState::kUndetermined);
  ScopedAllocation level_mem(memory, states.size() * sizeof(EdgeState) +
                                         (r + 1) * sizeof(double));

  double estimate = 0.0;
  for (uint32_t i = 0; i <= r; ++i) {
    if (pi[i] <= 0.0) continue;
    // Proportional allocation K_i = pi_i * K (Alg. 5 line 13), clamped to at
    // least one sample: skipping low-mass strata entirely would bias the
    // estimate low by the skipped mass (tail strata are finished by a single
    // conditioned-MC sample below, so the clamp costs almost nothing).
    const uint32_t ki = std::max<uint32_t>(
        1, static_cast<uint32_t>(std::lround(pi[i] * static_cast<double>(k))));

    // Stratum status vector (Table 1): edges before i absent, edge i (if any)
    // present, the rest undetermined.
    const uint32_t fixed = i == 0 ? r : i;
    for (uint32_t j = 0; j < fixed; ++j) {
      states[selected[j]] = EdgeState::kExcluded;
    }
    if (i >= 1) states[selected[i - 1]] = EdgeState::kIncluded;

    double mu = 0.0;
    if (ki < options_.threshold) {
      // The recursive call would hit its base case immediately; conditioned
      // MC on the parent graph is equivalent and skips the graph copy.
      mu = ConditionedMonteCarlo(g, s, t, ki, states, rng);
    } else {
      RELCOMP_ASSIGN_OR_RETURN(SimplifyResult simplified,
                               SimplifyGraph(g, s, t, states));
      switch (simplified.outcome) {
        case SimplifyOutcome::kCertainOne:
          mu = 1.0;
          break;
        case SimplifyOutcome::kCertainZero:
          mu = 0.0;
          break;
        case SimplifyOutcome::kReduced: {
          const UncertainGraph& child = simplified.rooted.graph;
          ScopedAllocation child_mem(memory, child.MemoryBytes());
          RELCOMP_ASSIGN_OR_RETURN(
              mu, Recurse(child, simplified.rooted.source,
                          simplified.rooted.target, ki, rng, memory));
          break;
        }
      }
    }
    estimate += pi[i] * mu;

    // Reset the stratum's states for the next iteration.
    for (uint32_t j = 0; j < fixed; ++j) {
      states[selected[j]] = EdgeState::kUndetermined;
    }
    if (i >= 1) states[selected[i - 1]] = EdgeState::kUndetermined;
  }
  return estimate;
}

double RecursiveStratifiedEstimator::ConditionedMonteCarlo(
    const UncertainGraph& g, NodeId s, NodeId t, uint32_t k,
    const std::vector<EdgeState>& states, Rng& rng) {
  if (k == 0) return 0.0;
  if (s == t) return 1.0;
  std::vector<uint32_t> visit_epoch(g.num_nodes(), 0);
  std::vector<NodeId> queue;
  uint32_t epoch = 0;
  uint32_t hits = 0;
  for (uint32_t i = 0; i < k; ++i) {
    ++epoch;
    queue.clear();
    queue.push_back(s);
    visit_epoch[s] = epoch;
    bool reached = false;
    for (size_t head = 0; head < queue.size() && !reached; ++head) {
      const NodeId v = queue[head];
      for (const AdjEntry& a : g.OutEdges(v)) {
        if (visit_epoch[a.neighbor] == epoch) continue;
        const EdgeState st = states[a.edge];
        if (st == EdgeState::kExcluded) continue;
        if (st == EdgeState::kUndetermined && a.prob < 1.0 &&
            !rng.Bernoulli(a.prob)) {
          continue;
        }
        if (a.neighbor == t) {
          reached = true;
          break;
        }
        visit_epoch[a.neighbor] = epoch;
        queue.push_back(a.neighbor);
      }
    }
    if (reached) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double RecursiveStratifiedEstimator::PlainMonteCarlo(const UncertainGraph& g,
                                                     NodeId s, NodeId t,
                                                     uint32_t k, Rng& rng) {
  if (k == 0 || s == t) return s == t ? 1.0 : 0.0;
  std::vector<uint32_t> visit_epoch(g.num_nodes(), 0);
  std::vector<NodeId> queue;
  queue.reserve(g.num_nodes());
  uint32_t epoch = 0;
  uint32_t hits = 0;
  for (uint32_t i = 0; i < k; ++i) {
    ++epoch;
    queue.clear();
    queue.push_back(s);
    visit_epoch[s] = epoch;
    bool reached = false;
    for (size_t head = 0; head < queue.size() && !reached; ++head) {
      const NodeId v = queue[head];
      for (const AdjEntry& a : g.OutEdges(v)) {
        if (visit_epoch[a.neighbor] == epoch) continue;
        if (a.prob < 1.0 && !rng.Bernoulli(a.prob)) continue;
        if (a.neighbor == t) {
          reached = true;
          break;
        }
        visit_epoch[a.neighbor] = epoch;
        queue.push_back(a.neighbor);
      }
    }
    if (reached) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

}  // namespace relcomp
