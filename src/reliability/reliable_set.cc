#include "reliability/reliable_set.h"

#include <algorithm>

#include "common/rng.h"

namespace relcomp {

namespace {

Result<ReliableSetResult> FilterAndRank(std::vector<double> reliability,
                                        NodeId source, double threshold,
                                        uint32_t num_samples) {
  ReliableSetResult result;
  result.num_samples = num_samples;
  for (NodeId v = 0; v < reliability.size(); ++v) {
    if (v != source && reliability[v] >= threshold) {
      result.members.push_back(ReliableTarget{v, reliability[v]});
    }
  }
  std::sort(result.members.begin(), result.members.end(),
            [](const ReliableTarget& a, const ReliableTarget& b) {
              if (a.reliability != b.reliability) {
                return a.reliability > b.reliability;
              }
              return a.node < b.node;
            });
  return result;
}

Status Validate(double threshold, uint32_t num_samples) {
  if (threshold < 0.0 || threshold > 1.0) {
    return Status::InvalidArgument("reliable set: threshold must be in [0, 1]");
  }
  if (num_samples == 0) {
    return Status::InvalidArgument("reliable set: num_samples must be positive");
  }
  return Status::OK();
}

}  // namespace

Result<ReliableSetResult> ReliableSetMonteCarlo(const UncertainGraph& graph,
                                                NodeId source, double threshold,
                                                uint32_t num_samples,
                                                uint64_t seed) {
  if (!graph.HasNode(source)) {
    return Status::InvalidArgument("reliable set: source out of range");
  }
  RELCOMP_RETURN_NOT_OK(Validate(threshold, num_samples));
  Rng rng(seed);
  std::vector<uint32_t> hit_count(graph.num_nodes(), 0);
  std::vector<uint32_t> visit_epoch(graph.num_nodes(), 0);
  std::vector<NodeId> queue;
  queue.reserve(graph.num_nodes());
  for (uint32_t i = 1; i <= num_samples; ++i) {
    queue.clear();
    queue.push_back(source);
    visit_epoch[source] = i;
    for (size_t head = 0; head < queue.size(); ++head) {
      for (const AdjEntry& a : graph.OutEdges(queue[head])) {
        if (visit_epoch[a.neighbor] == i) continue;
        if (!rng.Bernoulli(a.prob)) continue;
        visit_epoch[a.neighbor] = i;
        ++hit_count[a.neighbor];
        queue.push_back(a.neighbor);
      }
    }
  }
  std::vector<double> reliability(graph.num_nodes(), 0.0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    reliability[v] =
        static_cast<double>(hit_count[v]) / static_cast<double>(num_samples);
  }
  return FilterAndRank(std::move(reliability), source, threshold, num_samples);
}

Result<ReliableSetResult> ReliableSetBfsSharing(BfsSharingEstimator& estimator,
                                                NodeId source, double threshold,
                                                uint32_t num_samples) {
  RELCOMP_RETURN_NOT_OK(Validate(threshold, num_samples));
  RELCOMP_ASSIGN_OR_RETURN(std::vector<double> reliability,
                           estimator.ReliabilityFromSource(source, num_samples));
  return FilterAndRank(std::move(reliability), source, threshold, num_samples);
}

}  // namespace relcomp
