#include "reliability/reliable_set.h"

#include <algorithm>

#include "reliability/mc_sampling.h"

namespace relcomp {

namespace {

Status Validate(double threshold, uint32_t num_samples) {
  if (threshold < 0.0 || threshold > 1.0) {
    return Status::InvalidArgument("reliable set: threshold must be in [0, 1]");
  }
  if (num_samples == 0) {
    return Status::InvalidArgument("reliable set: num_samples must be positive");
  }
  return Status::OK();
}

}  // namespace

ReliableSetResult FilterReliableSet(const std::vector<double>& reliability,
                                    NodeId source, double threshold,
                                    uint32_t num_samples) {
  ReliableSetResult result;
  result.num_samples = num_samples;
  for (NodeId v = 0; v < reliability.size(); ++v) {
    if (v != source && reliability[v] >= threshold) {
      result.members.push_back(ReliableTarget{v, reliability[v]});
    }
  }
  std::sort(result.members.begin(), result.members.end(),
            [](const ReliableTarget& a, const ReliableTarget& b) {
              if (a.reliability != b.reliability) {
                return a.reliability > b.reliability;
              }
              return a.node < b.node;
            });
  return result;
}

Result<ReliableSetResult> ReliableSetMonteCarlo(const UncertainGraph& graph,
                                                NodeId source, double threshold,
                                                uint32_t num_samples,
                                                uint64_t seed,
                                                uint32_t num_strata) {
  if (!graph.HasNode(source)) {
    return Status::InvalidArgument("reliable set: source out of range");
  }
  RELCOMP_RETURN_NOT_OK(Validate(threshold, num_samples));
  RELCOMP_ASSIGN_OR_RETURN(std::vector<double> reliability,
                           MonteCarloReliabilityFromSource(
                               graph, source, num_samples, seed, num_strata));
  return FilterReliableSet(reliability, source, threshold,
                           num_samples);
}

Result<ReliableSetResult> ReliableSetBfsSharing(BfsSharingEstimator& estimator,
                                                NodeId source, double threshold,
                                                uint32_t num_samples) {
  RELCOMP_RETURN_NOT_OK(Validate(threshold, num_samples));
  RELCOMP_ASSIGN_OR_RETURN(std::vector<double> reliability,
                           estimator.ReliabilityFromSource(source, num_samples));
  return FilterReliableSet(reliability, source, threshold,
                           num_samples);
}

}  // namespace relcomp
