#include "reliability/conditional.h"

#include "common/format.h"
#include "common/rng.h"

namespace relcomp {

namespace {

Result<std::vector<EdgeState>> BuildStates(const UncertainGraph& graph,
                                           const ReliabilityCondition& condition) {
  std::vector<EdgeState> states(graph.num_edges(), EdgeState::kUndetermined);
  for (EdgeId e : condition.present) {
    if (e >= graph.num_edges()) {
      return Status::InvalidArgument(StrFormat("edge id %u out of range", e));
    }
    states[e] = EdgeState::kIncluded;
  }
  for (EdgeId e : condition.absent) {
    if (e >= graph.num_edges()) {
      return Status::InvalidArgument(StrFormat("edge id %u out of range", e));
    }
    if (states[e] == EdgeState::kIncluded) {
      return Status::InvalidArgument(
          StrFormat("edge id %u conditioned both present and absent", e));
    }
    states[e] = EdgeState::kExcluded;
  }
  return states;
}

}  // namespace

Result<double> ConditionalReliabilityMonteCarlo(
    const UncertainGraph& graph, NodeId s, NodeId t,
    const ReliabilityCondition& condition, uint32_t num_samples, uint64_t seed) {
  if (!graph.HasNode(s) || !graph.HasNode(t)) {
    return Status::InvalidArgument("conditional reliability: node out of range");
  }
  if (num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  RELCOMP_ASSIGN_OR_RETURN(const std::vector<EdgeState> states,
                           BuildStates(graph, condition));
  if (s == t) return 1.0;

  Rng rng(seed);
  std::vector<uint32_t> visit_epoch(graph.num_nodes(), 0);
  std::vector<NodeId> queue;
  queue.reserve(graph.num_nodes());
  uint32_t epoch = 0;
  uint32_t hits = 0;
  for (uint32_t i = 0; i < num_samples; ++i) {
    ++epoch;
    queue.clear();
    queue.push_back(s);
    visit_epoch[s] = epoch;
    bool reached = false;
    for (size_t head = 0; head < queue.size() && !reached; ++head) {
      for (const AdjEntry& a : graph.OutEdges(queue[head])) {
        if (visit_epoch[a.neighbor] == epoch) continue;
        const EdgeState st = states[a.edge];
        if (st == EdgeState::kExcluded) continue;
        if (st == EdgeState::kUndetermined && !rng.Bernoulli(a.prob)) continue;
        if (a.neighbor == t) {
          reached = true;
          break;
        }
        visit_epoch[a.neighbor] = epoch;
        queue.push_back(a.neighbor);
      }
    }
    if (reached) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(num_samples);
}

Result<double> ExactConditionalReliability(const UncertainGraph& graph, NodeId s,
                                           NodeId t,
                                           const ReliabilityCondition& condition,
                                           uint32_t max_free_edges) {
  if (!graph.HasNode(s) || !graph.HasNode(t)) {
    return Status::InvalidArgument("conditional reliability: node out of range");
  }
  RELCOMP_ASSIGN_OR_RETURN(const std::vector<EdgeState> states,
                           BuildStates(graph, condition));
  if (s == t) return 1.0;

  std::vector<EdgeId> free_edges;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (states[e] == EdgeState::kUndetermined) free_edges.push_back(e);
  }
  if (free_edges.size() > max_free_edges) {
    return Status::OutOfRange(
        StrFormat("exact conditional enumeration infeasible: %zu free edges",
                  free_edges.size()));
  }

  double reliability = 0.0;
  std::vector<uint8_t> mask(graph.num_edges(), 0);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    mask[e] = states[e] == EdgeState::kIncluded ? 1 : 0;
  }
  std::vector<uint8_t> visited(graph.num_nodes(), 0);
  std::vector<NodeId> queue;
  const uint64_t worlds = 1ULL << free_edges.size();
  for (uint64_t w = 0; w < worlds; ++w) {
    double pr = 1.0;
    for (size_t j = 0; j < free_edges.size(); ++j) {
      const bool exists = (w >> j) & 1ULL;
      mask[free_edges[j]] = exists ? 1 : 0;
      const double p = graph.prob(free_edges[j]);
      pr *= exists ? p : 1.0 - p;
    }
    if (pr == 0.0) continue;
    std::fill(visited.begin(), visited.end(), 0);
    queue.clear();
    queue.push_back(s);
    visited[s] = 1;
    bool reached = false;
    for (size_t head = 0; head < queue.size() && !reached; ++head) {
      for (const AdjEntry& a : graph.OutEdges(queue[head])) {
        if (!mask[a.edge] || visited[a.neighbor]) continue;
        if (a.neighbor == t) {
          reached = true;
          break;
        }
        visited[a.neighbor] = 1;
        queue.push_back(a.neighbor);
      }
    }
    if (reached) reliability += pr;
  }
  return reliability;
}

}  // namespace relcomp
