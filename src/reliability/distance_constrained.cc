#include "reliability/distance_constrained.h"

#include <algorithm>

#include "common/format.h"
#include "common/rng.h"

namespace relcomp {

namespace {

Status ValidateQuery(const UncertainGraph& graph,
                     const DistanceConstrainedQuery& query,
                     uint32_t num_samples) {
  if (!graph.HasNode(query.source) || !graph.HasNode(query.target)) {
    return Status::InvalidArgument("distance-constrained query node out of range");
  }
  if (num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Monte Carlo
// ---------------------------------------------------------------------------

DistanceConstrainedMonteCarlo::DistanceConstrainedMonteCarlo(
    const UncertainGraph& graph)
    : graph_(graph), visit_epoch_(graph.num_nodes(), 0) {}

Result<double> DistanceConstrainedMonteCarlo::Estimate(
    const DistanceConstrainedQuery& query, uint32_t num_samples, uint64_t seed,
    MemoryTracker* memory) {
  RELCOMP_RETURN_NOT_OK(ValidateQuery(graph_, query, num_samples));
  // Online structures: epoch marks plus the depth-annotated BFS queue.
  ScopedAllocation working(
      memory,
      graph_.num_nodes() * (sizeof(uint32_t) * 2 + sizeof(NodeId)));
  if (query.source == query.target) return 1.0;
  if (query.max_hops == 0) return 0.0;
  Rng rng(seed);

  uint32_t hits = 0;
  for (uint32_t i = 0; i < num_samples; ++i) {
    ++epoch_;
    queue_.clear();
    depth_.clear();
    queue_.push_back(query.source);
    depth_.push_back(0);
    visit_epoch_[query.source] = epoch_;
    bool reached = false;
    for (size_t head = 0; head < queue_.size() && !reached; ++head) {
      const NodeId v = queue_[head];
      const uint32_t d = depth_[head];
      if (d >= query.max_hops) continue;  // cannot expand further
      for (const AdjEntry& a : graph_.OutEdges(v)) {
        if (visit_epoch_[a.neighbor] == epoch_) continue;
        if (!rng.Bernoulli(a.prob)) continue;
        if (a.neighbor == query.target) {
          reached = true;
          break;
        }
        visit_epoch_[a.neighbor] = epoch_;
        queue_.push_back(a.neighbor);
        depth_.push_back(d + 1);
      }
    }
    if (reached) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(num_samples);
}

// ---------------------------------------------------------------------------
// Recursive (RHH-style)
// ---------------------------------------------------------------------------

DistanceConstrainedRecursive::DistanceConstrainedRecursive(
    const UncertainGraph& graph, uint32_t threshold)
    : graph_(graph), threshold_(threshold), visit_epoch_(graph.num_nodes(), 0) {}

template <typename KeepFn>
uint32_t DistanceConstrainedRecursive::BoundedDistance(
    NodeId s, NodeId t, uint32_t max_hops, const std::vector<EdgeState>& states,
    KeepFn keep) {
  if (s == t) return 0;
  ++epoch_;
  queue_.clear();
  depth_.clear();
  queue_.push_back(s);
  depth_.push_back(0);
  visit_epoch_[s] = epoch_;
  for (size_t head = 0; head < queue_.size(); ++head) {
    const NodeId v = queue_[head];
    const uint32_t d = depth_[head];
    if (d >= max_hops) continue;
    for (const AdjEntry& a : graph_.OutEdges(v)) {
      if (!keep(states[a.edge]) || visit_epoch_[a.neighbor] == epoch_) continue;
      if (a.neighbor == t) return d + 1;
      visit_epoch_[a.neighbor] = epoch_;
      queue_.push_back(a.neighbor);
      depth_.push_back(d + 1);
    }
  }
  return static_cast<uint32_t>(-1);
}

EdgeId DistanceConstrainedRecursive::SelectEdge(
    const DistanceConstrainedQuery& query,
    const std::vector<EdgeState>& states) {
  // DFS over included edges, depth-bounded; first undetermined out-edge of a
  // node still within the hop budget wins.
  ++epoch_;
  std::vector<std::pair<NodeId, uint32_t>> stack;
  stack.emplace_back(query.source, 0);
  visit_epoch_[query.source] = epoch_;
  EdgeId selected = kInvalidEdge;
  while (!stack.empty()) {
    const auto [v, d] = stack.back();
    stack.pop_back();
    if (d >= query.max_hops) continue;
    for (const AdjEntry& a : graph_.OutEdges(v)) {
      if (states[a.edge] == EdgeState::kIncluded) {
        if (visit_epoch_[a.neighbor] != epoch_) {
          visit_epoch_[a.neighbor] = epoch_;
          stack.emplace_back(a.neighbor, d + 1);
        }
      } else if (states[a.edge] == EdgeState::kUndetermined &&
                 selected == kInvalidEdge) {
        selected = a.edge;
      }
    }
  }
  return selected;
}

double DistanceConstrainedRecursive::Recurse(const DistanceConstrainedQuery& query,
                                             uint32_t k,
                                             std::vector<EdgeState>& states,
                                             Rng& rng) {
  if (k <= threshold_) return BaseMonteCarlo(query, k, states, rng);

  const auto included = [](EdgeState st) { return st == EdgeState::kIncluded; };
  const auto not_excluded = [](EdgeState st) {
    return st != EdgeState::kExcluded;
  };
  // NOTE: with a hop bound, contracted "certain" prefixes still consume hops,
  // so the path check uses the bounded distance over included edges only.
  if (BoundedDistance(query.source, query.target, query.max_hops, states,
                      included) != static_cast<uint32_t>(-1)) {
    return 1.0;
  }
  if (BoundedDistance(query.source, query.target, query.max_hops, states,
                      not_excluded) == static_cast<uint32_t>(-1)) {
    return 0.0;
  }

  const EdgeId e = SelectEdge(query, states);
  if (e == kInvalidEdge) {
    // All undetermined edges sit beyond the hop budget: outcome is already
    // determined by the cut check above failing to... fall back to sampling.
    return BaseMonteCarlo(query, k, states, rng);
  }
  const double p = graph_.prob(e);
  uint32_t k1 = static_cast<uint32_t>(static_cast<double>(k) * p);
  k1 = std::min(std::max<uint32_t>(k1, 1), k - 1);
  states[e] = EdgeState::kIncluded;
  const double r1 = Recurse(query, k1, states, rng);
  states[e] = EdgeState::kExcluded;
  const double r2 = Recurse(query, k - k1, states, rng);
  states[e] = EdgeState::kUndetermined;
  return p * r1 + (1.0 - p) * r2;
}

double DistanceConstrainedRecursive::BaseMonteCarlo(
    const DistanceConstrainedQuery& query, uint32_t k,
    const std::vector<EdgeState>& states, Rng& rng) {
  if (k == 0) return 0.0;
  uint32_t hits = 0;
  for (uint32_t i = 0; i < k; ++i) {
    ++epoch_;
    queue_.clear();
    depth_.clear();
    queue_.push_back(query.source);
    depth_.push_back(0);
    visit_epoch_[query.source] = epoch_;
    bool reached = false;
    for (size_t head = 0; head < queue_.size() && !reached; ++head) {
      const NodeId v = queue_[head];
      const uint32_t d = depth_[head];
      if (d >= query.max_hops) continue;
      for (const AdjEntry& a : graph_.OutEdges(v)) {
        if (visit_epoch_[a.neighbor] == epoch_) continue;
        const EdgeState st = states[a.edge];
        if (st == EdgeState::kExcluded) continue;
        if (st == EdgeState::kUndetermined && !rng.Bernoulli(a.prob)) continue;
        if (a.neighbor == query.target) {
          reached = true;
          break;
        }
        visit_epoch_[a.neighbor] = epoch_;
        queue_.push_back(a.neighbor);
        depth_.push_back(d + 1);
      }
    }
    if (reached) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

Result<double> DistanceConstrainedRecursive::Estimate(
    const DistanceConstrainedQuery& query, uint32_t num_samples, uint64_t seed,
    MemoryTracker* memory) {
  RELCOMP_RETURN_NOT_OK(ValidateQuery(graph_, query, num_samples));
  // Online structures: the edge-state vector dominates, plus the epoch /
  // queue / depth arrays shared with the bounded-distance checks.
  ScopedAllocation working(
      memory,
      graph_.num_edges() * sizeof(EdgeState) +
          graph_.num_nodes() * (sizeof(uint32_t) * 2 + sizeof(NodeId)));
  if (query.source == query.target) return 1.0;
  if (query.max_hops == 0) return 0.0;
  Rng rng(seed);
  std::vector<EdgeState> states(graph_.num_edges(), EdgeState::kUndetermined);
  return Recurse(query, num_samples, states, rng);
}

// ---------------------------------------------------------------------------
// Exact oracle
// ---------------------------------------------------------------------------

Result<double> ExactDistanceConstrainedReliability(
    const UncertainGraph& graph, const DistanceConstrainedQuery& query,
    uint32_t max_edges) {
  RELCOMP_RETURN_NOT_OK(ValidateQuery(graph, query, 1));
  const size_t m = graph.num_edges();
  if (m > max_edges) {
    return Status::OutOfRange(
        StrFormat("exact distance-constrained enumeration infeasible: m=%zu", m));
  }
  if (query.source == query.target) return 1.0;
  if (query.max_hops == 0) return 0.0;

  double reliability = 0.0;
  std::vector<uint8_t> mask(m, 0);
  std::vector<uint32_t> dist(graph.num_nodes());
  std::vector<NodeId> queue;
  const uint64_t worlds = 1ULL << m;
  for (uint64_t w = 0; w < worlds; ++w) {
    double pr = 1.0;
    for (size_t e = 0; e < m; ++e) {
      mask[e] = (w >> e) & 1ULL;
      pr *= mask[e] ? graph.prob(static_cast<EdgeId>(e))
                    : 1.0 - graph.prob(static_cast<EdgeId>(e));
    }
    if (pr == 0.0) continue;
    // Depth-bounded BFS in this world.
    std::fill(dist.begin(), dist.end(), static_cast<uint32_t>(-1));
    queue.clear();
    queue.push_back(query.source);
    dist[query.source] = 0;
    bool reached = false;
    for (size_t head = 0; head < queue.size() && !reached; ++head) {
      const NodeId v = queue[head];
      if (dist[v] >= query.max_hops) continue;
      for (const AdjEntry& a : graph.OutEdges(v)) {
        if (!mask[a.edge] || dist[a.neighbor] != static_cast<uint32_t>(-1)) {
          continue;
        }
        if (a.neighbor == query.target) {
          reached = true;
          break;
        }
        dist[a.neighbor] = dist[v] + 1;
        queue.push_back(a.neighbor);
      }
    }
    if (reached) reliability += pr;
  }
  return reliability;
}

}  // namespace relcomp
