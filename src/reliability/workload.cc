#include "reliability/workload.h"

#include <cstring>

#include "common/format.h"
#include "common/rng.h"
#include "reliability/reliable_set.h"

namespace relcomp {

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kSt:
      return "st";
    case WorkloadKind::kTopK:
      return "top-k";
    case WorkloadKind::kReliableSet:
      return "reliable-set";
    case WorkloadKind::kDistance:
      return "distance";
  }
  return "unknown";
}

EngineQuery EngineQuery::St(NodeId source, NodeId target) {
  EngineQuery query;
  query.workload = WorkloadKind::kSt;
  query.source = source;
  query.target = target;
  return query;
}

EngineQuery EngineQuery::TopK(NodeId source, uint32_t k) {
  EngineQuery query;
  query.workload = WorkloadKind::kTopK;
  query.source = source;
  query.k = k;
  return query;
}

EngineQuery EngineQuery::ReliableSet(NodeId source, double eta) {
  EngineQuery query;
  query.workload = WorkloadKind::kReliableSet;
  query.source = source;
  query.eta = eta;
  return query;
}

EngineQuery EngineQuery::Distance(NodeId source, NodeId target,
                                  uint32_t max_hops) {
  EngineQuery query;
  query.workload = WorkloadKind::kDistance;
  query.source = source;
  query.target = target;
  query.max_hops = max_hops;
  return query;
}

bool EngineQuery::operator==(const EngineQuery& other) const {
  // Only the fields the workload tag actually uses participate — a
  // hand-built query carrying stale values in the other fields is equal to
  // (and hashes with, see HashWorkloadQuery) its factory-built twin. eta
  // compares bitwise to stay consistent with the hash (0.0 vs -0.0 are
  // distinct queries, matching their distinct bit patterns).
  if (workload != other.workload || source != other.source) return false;
  switch (workload) {
    case WorkloadKind::kSt:
      return target == other.target;
    case WorkloadKind::kTopK:
      return k == other.k;
    case WorkloadKind::kReliableSet:
      return std::memcmp(&eta, &other.eta, sizeof(eta)) == 0;
    case WorkloadKind::kDistance:
      return target == other.target && max_hops == other.max_hops;
  }
  // Out-of-enum tag (rejected by ValidateWorkload before any engine use):
  // compare every field so equality at least stays reflexive.
  return target == other.target && k == other.k &&
         std::memcmp(&eta, &other.eta, sizeof(eta)) == 0 &&
         max_hops == other.max_hops;
}

std::string EngineQuery::Describe() const {
  switch (workload) {
    case WorkloadKind::kSt:
      return StrFormat("st(s=%u, t=%u)", source, target);
    case WorkloadKind::kTopK:
      return StrFormat("top-k(s=%u, k=%u)", source, k);
    case WorkloadKind::kReliableSet:
      return StrFormat("reliable-set(s=%u, eta=%.4f)", source, eta);
    case WorkloadKind::kDistance:
      return StrFormat("distance(s=%u, t=%u, d=%u)", source, target, max_hops);
  }
  return "unknown";
}

uint64_t HashWorkloadQuery(uint64_t seed, const EngineQuery& query) {
  // Mirrors operator==: only the tag and the fields it uses are folded, so
  // equal queries always hash equal even when their unused fields differ.
  uint64_t h = HashCombineSeed(seed, static_cast<uint64_t>(query.workload));
  h = HashCombineSeed(h, query.source);
  switch (query.workload) {
    case WorkloadKind::kSt:
      h = HashCombineSeed(h, query.target);
      break;
    case WorkloadKind::kTopK:
      h = HashCombineSeed(h, query.k);
      break;
    case WorkloadKind::kReliableSet: {
      uint64_t eta_bits = 0;
      static_assert(sizeof(eta_bits) == sizeof(query.eta));
      std::memcpy(&eta_bits, &query.eta, sizeof(eta_bits));
      h = HashCombineSeed(h, eta_bits);
      break;
    }
    case WorkloadKind::kDistance:
      h = HashCombineSeed(h, query.target);
      h = HashCombineSeed(h, query.max_hops);
      break;
  }
  return h;
}

Status ValidateWorkload(const UncertainGraph& graph, const EngineQuery& query) {
  // Reject tags outside the enum up front: downstream code (per-workload
  // stats counters, dispatch) indexes kNumWorkloadKinds-sized arrays by tag.
  if (static_cast<size_t>(query.workload) >= kNumWorkloadKinds) {
    return Status::InvalidArgument("unknown workload kind");
  }
  if (!graph.HasNode(query.source)) {
    return Status::InvalidArgument(
        StrFormat("%s: source out of range", query.Describe().c_str()));
  }
  switch (query.workload) {
    case WorkloadKind::kSt:
    case WorkloadKind::kDistance:
      if (!graph.HasNode(query.target)) {
        return Status::InvalidArgument(
            StrFormat("%s: target out of range", query.Describe().c_str()));
      }
      break;
    case WorkloadKind::kTopK:
      if (query.k == 0) {
        return Status::InvalidArgument(
            StrFormat("%s: k must be positive", query.Describe().c_str()));
      }
      break;
    case WorkloadKind::kReliableSet:
      if (!(query.eta >= 0.0 && query.eta <= 1.0)) {
        return Status::InvalidArgument(
            StrFormat("%s: eta must be in [0, 1]", query.Describe().c_str()));
      }
      break;
  }
  return Status::OK();
}

WorkloadResult DeriveFromSweep(const EngineQuery& query,
                               const std::vector<double>& reliability,
                               uint32_t num_samples) {
  WorkloadResult result;
  result.num_samples = num_samples;
  if (query.workload == WorkloadKind::kTopK) {
    result.targets = RankTopKTargets(reliability, query.source, query.k);
  } else {
    ReliableSetResult set = FilterReliableSet(reliability, query.source,
                                              query.eta, num_samples);
    result.targets = std::move(set.members);
    result.num_samples = set.num_samples;
  }
  // Working set of the derivation itself: the shared vector it scans.
  result.peak_memory_bytes = reliability.size() * sizeof(double);
  return result;
}

Result<WorkloadResult> DispatchWorkload(Estimator& replica,
                                        const EngineQuery& query,
                                        const EstimateOptions& options) {
  WorkloadResult result;
  switch (query.workload) {
    case WorkloadKind::kSt: {
      RELCOMP_ASSIGN_OR_RETURN(EstimateResult estimate,
                               replica.Estimate(query.AsSt(), options));
      result.reliability = estimate.reliability;
      result.num_samples = estimate.num_samples;
      result.peak_memory_bytes = estimate.peak_memory_bytes;
      return result;
    }
    case WorkloadKind::kDistance: {
      if (!replica.SupportsDistanceConstrained()) {
        return Status::NotSupported(
            StrFormat("%s: estimator has no distance-constrained support "
                      "(use MC or RHH)",
                      query.Describe().c_str()));
      }
      MemoryTracker tracker;
      EstimateOptions tracked = options;
      tracked.memory = &tracker;
      RELCOMP_ASSIGN_OR_RETURN(
          result.reliability,
          replica.EstimateDistanceConstrained(query.AsSt(), query.max_hops,
                                              tracked));
      result.num_samples = options.num_samples;
      result.peak_memory_bytes = tracker.peak_bytes();
      return result;
    }
    case WorkloadKind::kTopK:
    case WorkloadKind::kReliableSet: {
      if (!replica.SupportsSourceSweep()) {
        return Status::NotSupported(
            StrFormat("%s: estimator has no source-sweep support "
                      "(use MC or BFSSharing)",
                      query.Describe().c_str()));
      }
      MemoryTracker tracker;
      EstimateOptions tracked = options;
      tracked.memory = &tracker;
      RELCOMP_ASSIGN_OR_RETURN(
          std::vector<double> reliability,
          replica.EstimateFromSource(query.source, tracked));
      result = DeriveFromSweep(query, reliability, options.num_samples);
      result.peak_memory_bytes = tracker.peak_bytes();
      return result;
    }
  }
  return Status::InvalidArgument("unknown workload kind");
}

}  // namespace relcomp
