#pragma once

#include <vector>

#include "common/status.h"
#include "reliability/bfs_sharing.h"

namespace relcomp {

/// \brief One ranked answer of a top-k reliability search.
struct ReliableTarget {
  NodeId node = kInvalidNode;
  double reliability = 0.0;
};

/// \brief Top-k reliability search: the k nodes with the highest reliability
/// from a given source (excluding the source itself).
///
/// This is the query BFS Sharing [45] was originally designed for (the
/// benchmark study adapts it to single s-t pairs; this module keeps the
/// original available). Ties are broken toward smaller node ids so results
/// are deterministic.
///
/// Ranks per-node reliabilities into the top-k targets: drops the source and
/// zero-reliability nodes, sorts by decreasing reliability with ties toward
/// smaller node ids, keeps at most k. Shared by the standalone searches below
/// and the engine's workload dispatch (reliability/workload.h), so both rank
/// identically.
std::vector<ReliableTarget> RankTopKTargets(
    const std::vector<double>& reliability, NodeId source, uint32_t k);

/// \name Estimation strategies
/// @{

/// Plain Monte Carlo: K sampled worlds, one reachability set each; per-node
/// hit counting. O(K (m + n)) total, no index. `num_strata` is the
/// stratified-partition width of the underlying sweep (see
/// MonteCarloReliabilityFromSource): results are a canonical function of
/// (source, K, seed, num_strata), so a caller reproducing an engine answer
/// must pass the engine's stratum count; 1 is the legacy unstratified sweep.
Result<std::vector<ReliableTarget>> TopKReliableTargetsMonteCarlo(
    const UncertainGraph& graph, NodeId source, uint32_t k,
    uint32_t num_samples, uint64_t seed, uint32_t num_strata = 1);

/// BFS Sharing: a single shared word-parallel BFS yields every node's
/// world-membership bit-vector at once; the top-k drop out of the popcounts.
/// Reuses the estimator's pre-built index (call PrepareForNextQuery between
/// successive searches, as for s-t queries).
Result<std::vector<ReliableTarget>> TopKReliableTargetsBfsSharing(
    BfsSharingEstimator& estimator, NodeId source, uint32_t k,
    uint32_t num_samples);
/// @}

}  // namespace relcomp
