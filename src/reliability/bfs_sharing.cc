#include "reliability/bfs_sharing.h"

#include <cstring>
#include <deque>
#include <fstream>

#include "common/format.h"
#include "common/rng.h"
#include "common/timer.h"
#include "common/wire.h"

namespace relcomp {

namespace {
constexpr char kIndexMagic[8] = {'R', 'E', 'L', 'B', 'F', 'S', 'I', 'X'};

/// The background-prepare artifact: a fully sampled generation, held mutable
/// so the adopting replica regains in-place-resample ownership.
class PreparedBfsGeneration : public PreparedGeneration {
 public:
  explicit PreparedBfsGeneration(std::shared_ptr<BfsSharingIndex> index)
      : index(std::move(index)) {}
  size_t MemoryBytes() const override {
    return index == nullptr ? 0 : index->MemoryBytes();
  }
  std::shared_ptr<BfsSharingIndex> index;
};

/// The shared-prepared-state snapshot: a read-only view of an already
/// prepared replica's generation, adoptable in O(1) by stratum thieves.
class SharedBfsGeneration : public PreparedGeneration {
 public:
  explicit SharedBfsGeneration(std::shared_ptr<const BfsSharingIndex> index)
      : index(std::move(index)) {}
  size_t MemoryBytes() const override {
    return index == nullptr ? 0 : index->MemoryBytes();
  }
  std::shared_ptr<const BfsSharingIndex> index;
};

}  // namespace

std::atomic<uint64_t> BfsSharingIndex::build_count_{0};

Result<std::shared_ptr<BfsSharingIndex>> BfsSharingIndex::Build(
    const UncertainGraph& graph, const BfsSharingOptions& options,
    uint64_t seed) {
  if (options.index_samples == 0) {
    return Status::InvalidArgument("BFS Sharing: index_samples must be positive");
  }
  std::shared_ptr<BfsSharingIndex> index(new BfsSharingIndex());
  index->num_samples_ = options.index_samples;
  index->num_edges_ = graph.num_edges();
  index->words_per_edge_ = (options.index_samples + 63) / 64;
  index->words_.assign(index->num_edges_ * index->words_per_edge_, 0);
  index->words_data_ = index->words_.data();
  index->num_words_ = index->words_.size();
  index->Resample(graph, seed);
  build_count_.fetch_add(1, std::memory_order_relaxed);
  return index;
}

void BfsSharingIndex::Resample(const UncertainGraph& graph, uint64_t seed) {
  Timer timer;
  // A mapped generation reads its words out of a read-only snapshot
  // mapping; materialize a private copy before the first in-place refill.
  // (The engine never takes this path — replicas over a shared mapped
  // generation have no ownership and swap to fresh builds — but direct
  // index users must not be able to scribble on the mapping.)
  if (backing_ != nullptr) {
    words_.assign(words_data_, words_data_ + num_words_);
    words_data_ = words_.data();
    backing_.reset();
  }
  Rng rng(seed);
  // FillBernoulliWords consumes the identical RNG stream as the historical
  // per-edge BitVector fill, so generations stay bit-identical across the
  // storage change (and across graph storage layouts, which preserve edge
  // ids and bitwise probabilities).
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    BitVector::FillBernoulliWords(words_.data() + e * words_per_edge_,
                                  num_samples_, graph.prob(e), rng);
  }
  build_seconds_ = timer.ElapsedSeconds();
}

size_t BfsSharingIndex::MemoryBytes() const {
  return num_words_ * sizeof(uint64_t);
}

void BfsSharingIndex::AppendBlock(std::string* out) const {
  WireWriter writer(out);
  writer.PutU32(num_samples_);
  writer.PutU32(0);  // pad: keeps the word block 8-byte aligned
  writer.PutU64(num_edges_);
  writer.PutBytes(words_data_, num_words_ * sizeof(uint64_t));
}

Result<std::shared_ptr<BfsSharingIndex>> BfsSharingIndex::FromBlock(
    const UncertainGraph& graph, const void* data, size_t size,
    std::shared_ptr<const void> backing) {
  WireReader reader(data, size);
  uint32_t l = 0, pad = 0;
  uint64_t m = 0;
  if (!reader.ReadU32(&l) || !reader.ReadU32(&pad) || !reader.ReadU64(&m)) {
    return Status::IOError("BFS Sharing block: truncated header");
  }
  if (l == 0) {
    return Status::IOError("BFS Sharing block: zero samples");
  }
  if (m != graph.num_edges()) {
    return Status::InvalidArgument(
        StrFormat("BFS Sharing block: index has %llu edges, graph has %zu",
                  static_cast<unsigned long long>(m), graph.num_edges()));
  }
  const size_t words_per_edge = (l + 63) / 64;
  const size_t num_words = static_cast<size_t>(m) * words_per_edge;
  if (reader.remaining() != num_words * sizeof(uint64_t)) {
    return Status::IOError(
        StrFormat("BFS Sharing block: expected %zu word bytes, have %zu",
                  num_words * sizeof(uint64_t), reader.remaining()));
  }
  Timer timer;
  std::shared_ptr<BfsSharingIndex> index(new BfsSharingIndex());
  index->num_samples_ = l;
  index->num_edges_ = m;
  index->words_per_edge_ = words_per_edge;
  index->num_words_ = num_words;
  const uint8_t* words = reader.cursor();
  if (backing != nullptr &&
      reinterpret_cast<uintptr_t>(words) % alignof(uint64_t) == 0) {
    // Zero-copy: read the worlds straight out of the mapped block. This is
    // the O(1) cold-start path — no word is touched until a BFS reads it.
    index->words_data_ = reinterpret_cast<const uint64_t*>(words);
    index->backing_ = std::move(backing);
  } else {
    index->words_.resize(num_words);
    std::memcpy(index->words_.data(), words, num_words * sizeof(uint64_t));
    index->words_data_ = index->words_.data();
  }
  index->build_seconds_ = timer.ElapsedSeconds();
  build_count_.fetch_add(1, std::memory_order_relaxed);
  return index;
}

Status BfsSharingIndex::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open for writing: " + path);
  out.write(kIndexMagic, sizeof(kIndexMagic));
  const uint64_t m = num_edges_;
  const uint32_t l = num_samples_;
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(&l), sizeof(l));
  // The packed block IS the historical per-edge layout (ceil(L/64) words per
  // edge, edge-id order), so one bulk write preserves the on-disk format
  // byte for byte.
  out.write(reinterpret_cast<const char*>(words_data_),
            static_cast<std::streamsize>(num_words_ * sizeof(uint64_t)));
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::shared_ptr<BfsSharingIndex>> BfsSharingIndex::LoadFromFile(
    const UncertainGraph& graph, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open for reading: " + path);
  char magic[8];
  uint64_t m = 0;
  uint32_t l = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  in.read(reinterpret_cast<char*>(&l), sizeof(l));
  if (!in.good() || std::memcmp(magic, kIndexMagic, sizeof(magic)) != 0) {
    return Status::IOError("not a BFS Sharing index: " + path);
  }
  if (m != graph.num_edges()) {
    return Status::InvalidArgument(
        StrFormat("index has %llu edges, graph has %zu",
                  static_cast<unsigned long long>(m), graph.num_edges()));
  }
  if (l == 0) {
    return Status::IOError("BFS Sharing index has zero samples: " + path);
  }
  Timer timer;
  std::shared_ptr<BfsSharingIndex> index(new BfsSharingIndex());
  index->num_samples_ = l;
  index->num_edges_ = m;
  index->words_per_edge_ = (l + 63) / 64;
  index->words_.assign(m * index->words_per_edge_, 0);
  index->words_data_ = index->words_.data();
  index->num_words_ = index->words_.size();
  in.read(reinterpret_cast<char*>(index->words_.data()),
          static_cast<std::streamsize>(index->words_.size() * sizeof(uint64_t)));
  if (!in.good()) return Status::IOError("truncated BFS Sharing index: " + path);
  index->build_seconds_ = timer.ElapsedSeconds();
  build_count_.fetch_add(1, std::memory_order_relaxed);
  return index;
}

BfsSharingEstimator::BfsSharingEstimator(
    const UncertainGraph& graph, std::shared_ptr<const BfsSharingIndex> index)
    : graph_(graph),
      index_(std::move(index)),
      node_bits_(graph.num_nodes()),
      visit_epoch_(graph.num_nodes(), 0),
      in_queue_epoch_(graph.num_nodes(), 0) {
  options_.index_samples = shared_index()->num_samples();
}

Result<std::unique_ptr<BfsSharingEstimator>> BfsSharingEstimator::Create(
    const UncertainGraph& graph, const BfsSharingOptions& options,
    uint64_t index_seed) {
  RELCOMP_ASSIGN_OR_RETURN(std::shared_ptr<BfsSharingIndex> index,
                           BfsSharingIndex::Build(graph, options, index_seed));
  RELCOMP_ASSIGN_OR_RETURN(std::unique_ptr<BfsSharingEstimator> estimator,
                           Create(graph, index));
  // Privately built: keep the mutable handle so PrepareForNextQuery can
  // resample in place instead of allocating fresh generations.
  estimator->owned_ = std::move(index);
  return estimator;
}

Result<std::unique_ptr<BfsSharingEstimator>> BfsSharingEstimator::Create(
    const UncertainGraph& graph, std::shared_ptr<const BfsSharingIndex> index) {
  if (index == nullptr) {
    return Status::InvalidArgument("BFS Sharing: index must not be null");
  }
  if (index->num_edges() != graph.num_edges()) {
    return Status::InvalidArgument(
        StrFormat("BFS Sharing: index has %zu edges, graph has %zu",
                  index->num_edges(), graph.num_edges()));
  }
  return std::unique_ptr<BfsSharingEstimator>(
      new BfsSharingEstimator(graph, std::move(index)));
}

Status BfsSharingEstimator::PrepareForNextQuery(uint64_t seed) {
  // Exclusive ownership (owned_ + the copy inside index_): refill the
  // worlds in place — bit-identical to a fresh build, zero allocation. This
  // is the steady state on the serving path, where every query re-arms. A
  // transient snapshot held elsewhere (e.g. a stats reader) pushes the count
  // above 2 and falls through to one fresh build; either path yields the
  // same worlds.
  if (owned_ != nullptr && owned_.use_count() == 2) {
    owned_->Resample(graph_, seed);
    return Status::OK();
  }
  // Generation swap: replicas sharing the old generation keep reading it
  // untouched; this replica alone moves to the fresh worlds. The old
  // generation is freed when its last reader lets go.
  RELCOMP_ASSIGN_OR_RETURN(std::shared_ptr<BfsSharingIndex> fresh,
                           BfsSharingIndex::Build(graph_, options_, seed));
  index_.store(std::shared_ptr<const BfsSharingIndex>(fresh),
               std::memory_order_release);
  owned_ = std::move(fresh);
  return Status::OK();
}

Result<std::unique_ptr<PreparedGeneration>>
BfsSharingEstimator::BuildPreparedGeneration(uint64_t seed) const {
  // Reads only graph_ and options_ (both frozen at construction), so a
  // builder thread may run this while the serving thread is mid-BFS on the
  // current generation. Build(seed) is what PrepareForNextQuery's swap path
  // installs, and the in-place Resample path is bit-identical to it.
  RELCOMP_ASSIGN_OR_RETURN(std::shared_ptr<BfsSharingIndex> fresh,
                           BfsSharingIndex::Build(graph_, options_, seed));
  return std::unique_ptr<PreparedGeneration>(
      new PreparedBfsGeneration(std::move(fresh)));
}

Status BfsSharingEstimator::AdoptPreparedGeneration(
    std::unique_ptr<PreparedGeneration> generation) {
  auto* prepared = dynamic_cast<PreparedBfsGeneration*>(generation.get());
  if (prepared == nullptr || prepared->index == nullptr) {
    return Status::InvalidArgument(
        "BFS Sharing: not a prepared BFS Sharing generation");
  }
  if (prepared->index->num_edges() != graph_.num_edges() ||
      prepared->index->num_samples() != options_.index_samples) {
    return Status::InvalidArgument(
        "BFS Sharing: prepared generation shape mismatch");
  }
  // Same publication order as PrepareForNextQuery's swap path: readers of
  // index_ move to the fresh worlds; the generation is exclusively ours, so
  // later inline prepares resample it in place.
  index_.store(std::shared_ptr<const BfsSharingIndex>(prepared->index),
               std::memory_order_release);
  owned_ = std::move(prepared->index);
  return Status::OK();
}

Result<std::shared_ptr<const PreparedGeneration>>
BfsSharingEstimator::ShareCurrentPreparedState() const {
  // The current generation, read-only. Safe to hand out mid-serving: the
  // serving path never mutates a generation, and the sharer's next inline
  // PrepareForNextQuery sees the extra reference (owned_ use_count > 2) and
  // swaps to a fresh generation instead of resampling under the reader.
  return std::shared_ptr<const PreparedGeneration>(
      new SharedBfsGeneration(shared_index()));
}

Status BfsSharingEstimator::AdoptSharedPreparedState(
    std::shared_ptr<const PreparedGeneration> state) {
  const auto* shared = dynamic_cast<const SharedBfsGeneration*>(state.get());
  if (shared == nullptr || shared->index == nullptr) {
    return Status::InvalidArgument(
        "BFS Sharing: not a shared BFS Sharing generation");
  }
  if (shared->index->num_edges() != graph_.num_edges() ||
      shared->index->num_samples() != options_.index_samples) {
    return Status::InvalidArgument(
        "BFS Sharing: shared generation shape mismatch");
  }
  // Read-only share: this replica reads the sharer's worlds and gives up
  // in-place-resample ownership (its next inline prepare builds or swaps).
  index_.store(shared->index, std::memory_order_release);
  owned_.reset();
  return Status::OK();
}

size_t BfsSharingEstimator::IndexMemoryBytes() const {
  return shared_index()->MemoryBytes();
}

Result<double> BfsSharingEstimator::DoEstimate(const ReliabilityQuery& query,
                                               const EstimateOptions& options,
                                               MemoryTracker* memory) {
  const NodeId s = query.source;
  const NodeId t = query.target;
  const uint32_t k = options.num_samples;
  if (s == t) return 1.0;

  // Working state: K-bit I_v per visited node plus bookkeeping arrays.
  ScopedAllocation working(memory, graph_.num_nodes() * 2 * sizeof(uint32_t));
  const std::shared_ptr<const BfsSharingIndex> index = shared_index();
  RELCOMP_RETURN_NOT_OK(RunSharedBfs(*index, s, /*world_offset=*/0, k,
                                     &working));

  if (visit_epoch_[t] != epoch_) return 0.0;
  return static_cast<double>(node_bits_[t].Count()) / static_cast<double>(k);
}

Result<std::vector<double>> BfsSharingEstimator::ReliabilityFromSource(
    NodeId source, uint32_t num_samples, MemoryTracker* memory) {
  if (!graph_.HasNode(source)) {
    return Status::InvalidArgument("BFS Sharing: source out of range");
  }
  // Working state: bookkeeping arrays + the result vector up front; the
  // per-node K-bit vectors are grown in as the BFS visits nodes.
  ScopedAllocation working(memory,
                           graph_.num_nodes() * 2 * sizeof(uint32_t) +
                               graph_.num_nodes() * sizeof(double));
  const std::shared_ptr<const BfsSharingIndex> index = shared_index();
  RELCOMP_RETURN_NOT_OK(RunSharedBfs(*index, source, /*world_offset=*/0,
                                     num_samples, &working));
  std::vector<double> reliability(graph_.num_nodes(), 0.0);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (visit_epoch_[v] == epoch_) {
      reliability[v] = static_cast<double>(node_bits_[v].Count()) /
                       static_cast<double>(num_samples);
    }
  }
  return reliability;
}

Result<std::vector<uint32_t>> BfsSharingEstimator::SourceHitCountsInWorldRange(
    NodeId source, uint32_t world_offset, uint32_t world_count,
    MemoryTracker* memory) {
  if (!graph_.HasNode(source)) {
    return Status::InvalidArgument("BFS Sharing: source out of range");
  }
  ScopedAllocation working(memory,
                           graph_.num_nodes() * 2 * sizeof(uint32_t) +
                               graph_.num_nodes() * sizeof(uint32_t));
  std::vector<uint32_t> hits(graph_.num_nodes(), 0);
  if (world_count == 0) return hits;
  const std::shared_ptr<const BfsSharingIndex> index = shared_index();
  RELCOMP_RETURN_NOT_OK(
      RunSharedBfs(*index, source, world_offset, world_count, &working));
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (visit_epoch_[v] == epoch_) {
      hits[v] = static_cast<uint32_t>(node_bits_[v].Count());
    }
  }
  return hits;
}

Result<std::vector<uint32_t>> BfsSharingEstimator::EstimateSweepStratumHits(
    NodeId source, uint32_t stratum, uint32_t num_strata,
    const EstimateOptions& options) {
  if (num_strata == 0 || stratum >= num_strata) {
    return Status::InvalidArgument("sweep stratum: index out of range");
  }
  if (options.num_samples == 0 ||
      options.num_samples > shared_index()->num_samples()) {
    return Status::InvalidArgument(
        StrFormat("BFS Sharing: K=%u exceeds indexed worlds L=%u",
                  options.num_samples, shared_index()->num_samples()));
  }
  // Cancellation point: one poll per world slice (the stratum boundary the
  // engine's scheduler also polls at).
  if (options.cancel != nullptr && options.cancel->Cancelled()) {
    return options.cancel->ToStatus();
  }
  // Stratum j owns the world slice [offset, offset + count) of the budget's
  // [0, K) range; slice counts sum exactly to the whole-range counts.
  obs::ScopedSpan bfs_span(options.trace, obs::SpanKind::kBfs,
                           options.trace_parent, stratum);
  return SourceHitCountsInWorldRange(
      source, StratumSampleOffset(options.num_samples, num_strata, stratum),
      StratumSampleCount(options.num_samples, num_strata, stratum),
      options.memory);
}

Status BfsSharingEstimator::RunSharedBfs(const BfsSharingIndex& index, NodeId s,
                                         uint32_t world_offset, uint32_t k,
                                         ScopedAllocation* working) {
  if (k == 0 || world_offset > index.num_samples() ||
      k > index.num_samples() - world_offset) {
    return Status::InvalidArgument(
        StrFormat("BFS Sharing: world range [%u, %u) exceeds indexed "
                  "worlds L=%u",
                  world_offset, world_offset + k, index.num_samples()));
  }
  ++epoch_;
  auto visit = [&](NodeId v) {
    visit_epoch_[v] = epoch_;
    BitVector& bv = node_bits_[v];
    bv.Resize(k);
    bv.ClearAll();
    if (working != nullptr) working->Grow(bv.MemoryBytes());
  };
  auto visited = [&](NodeId v) { return visit_epoch_[v] == epoch_; };

  visit(s);
  node_bits_[s].SetAll();  // I_s = [1 1 ... 1]

  // Cascading update (Algorithm 3): fix-point propagation of new worlds
  // through already-visited nodes.
  std::deque<NodeId> cascade;
  auto CascadeFrom = [&](NodeId from) {
    cascade.clear();
    cascade.push_back(from);
    while (!cascade.empty()) {
      const NodeId w = cascade.front();
      cascade.pop_front();
      for (const AdjEntry& a : graph_.OutEdges(w)) {
        if (!visited(a.neighbor)) continue;
        if (node_bits_[a.neighbor].OrWithAndWords(
                node_bits_[w], index.edge_words(a.edge),
                index.words_per_edge(), world_offset)) {
          cascade.push_back(a.neighbor);
        }
      }
    }
  };

  // Main worklist BFS (Algorithm 2). No early termination even if t gains
  // worlds early: cascading updates must run to completion.
  std::deque<NodeId> worklist;
  for (const AdjEntry& a : graph_.OutEdges(s)) {
    if (in_queue_epoch_[a.neighbor] != epoch_) {
      in_queue_epoch_[a.neighbor] = epoch_;
      worklist.push_back(a.neighbor);
    }
  }
  while (!worklist.empty()) {
    const NodeId v = worklist.front();
    worklist.pop_front();
    if (visited(v)) continue;
    visit(v);
    BitVector& iv = node_bits_[v];
    for (const AdjEntry& a : graph_.InEdges(v)) {
      if (visited(a.neighbor)) {
        iv.OrWithAndWords(node_bits_[a.neighbor], index.edge_words(a.edge),
                          index.words_per_edge(), world_offset);
      }
    }
    for (const AdjEntry& a : graph_.OutEdges(v)) {
      if (!visited(a.neighbor)) {
        if (in_queue_epoch_[a.neighbor] != epoch_) {
          in_queue_epoch_[a.neighbor] = epoch_;
          worklist.push_back(a.neighbor);
        }
      } else if (node_bits_[a.neighbor].OrWithAndWords(
                     iv, index.edge_words(a.edge), index.words_per_edge(),
                     world_offset)) {
        CascadeFrom(a.neighbor);
      }
    }
  }
  return Status::OK();
}

Status BfsSharingEstimator::SaveToFile(const std::string& path) const {
  return shared_index()->SaveToFile(path);
}

Result<std::unique_ptr<BfsSharingEstimator>> BfsSharingEstimator::LoadFromFile(
    const UncertainGraph& graph, const std::string& path) {
  RELCOMP_ASSIGN_OR_RETURN(std::shared_ptr<BfsSharingIndex> index,
                           BfsSharingIndex::LoadFromFile(graph, path));
  RELCOMP_ASSIGN_OR_RETURN(std::unique_ptr<BfsSharingEstimator> estimator,
                           Create(graph, index));
  estimator->owned_ = std::move(index);
  return estimator;
}

}  // namespace relcomp
