#include "reliability/bfs_sharing.h"

#include <cstring>
#include <deque>
#include <fstream>

#include "common/format.h"
#include "common/rng.h"
#include "common/timer.h"

namespace relcomp {

namespace {
constexpr char kIndexMagic[8] = {'R', 'E', 'L', 'B', 'F', 'S', 'I', 'X'};
}

BfsSharingEstimator::BfsSharingEstimator(const UncertainGraph& graph,
                                         const BfsSharingOptions& options)
    : graph_(graph),
      options_(options),
      node_bits_(graph.num_nodes()),
      visit_epoch_(graph.num_nodes(), 0),
      in_queue_epoch_(graph.num_nodes(), 0) {}

Result<std::unique_ptr<BfsSharingEstimator>> BfsSharingEstimator::Create(
    const UncertainGraph& graph, const BfsSharingOptions& options,
    uint64_t index_seed) {
  if (options.index_samples == 0) {
    return Status::InvalidArgument("BFS Sharing: index_samples must be positive");
  }
  std::unique_ptr<BfsSharingEstimator> estimator(
      new BfsSharingEstimator(graph, options));
  Timer timer;
  estimator->ResampleIndex(index_seed);
  estimator->index_build_seconds_ = timer.ElapsedSeconds();
  return estimator;
}

void BfsSharingEstimator::ResampleIndex(uint64_t seed) {
  Rng rng(seed);
  edge_bits_.resize(graph_.num_edges());
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    edge_bits_[e].Resize(options_.index_samples);
    edge_bits_[e].FillBernoulli(graph_.prob(e), rng);
  }
}

Status BfsSharingEstimator::PrepareForNextQuery(uint64_t seed) {
  ResampleIndex(seed);
  return Status::OK();
}

size_t BfsSharingEstimator::IndexMemoryBytes() const {
  size_t total = edge_bits_.size() * sizeof(BitVector);
  for (const BitVector& bv : edge_bits_) total += bv.MemoryBytes();
  return total;
}

Result<double> BfsSharingEstimator::DoEstimate(const ReliabilityQuery& query,
                                               const EstimateOptions& options,
                                               MemoryTracker* memory) {
  const NodeId s = query.source;
  const NodeId t = query.target;
  const uint32_t k = options.num_samples;
  if (s == t) return 1.0;

  // Working state: K-bit I_v per visited node plus bookkeeping arrays.
  ScopedAllocation working(memory, graph_.num_nodes() * 2 * sizeof(uint32_t));
  RELCOMP_RETURN_NOT_OK(RunSharedBfs(s, k, &working));

  if (visit_epoch_[t] != epoch_) return 0.0;
  return static_cast<double>(node_bits_[t].Count()) / static_cast<double>(k);
}

Result<std::vector<double>> BfsSharingEstimator::ReliabilityFromSource(
    NodeId source, uint32_t num_samples) {
  if (!graph_.HasNode(source)) {
    return Status::InvalidArgument("BFS Sharing: source out of range");
  }
  RELCOMP_RETURN_NOT_OK(RunSharedBfs(source, num_samples, nullptr));
  std::vector<double> reliability(graph_.num_nodes(), 0.0);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (visit_epoch_[v] == epoch_) {
      reliability[v] = static_cast<double>(node_bits_[v].Count()) /
                       static_cast<double>(num_samples);
    }
  }
  return reliability;
}

Status BfsSharingEstimator::RunSharedBfs(NodeId s, uint32_t k,
                                         ScopedAllocation* working) {
  if (k == 0 || k > options_.index_samples) {
    return Status::InvalidArgument(
        StrFormat("BFS Sharing: K=%u exceeds indexed worlds L=%u", k,
                  options_.index_samples));
  }
  ++epoch_;
  auto visit = [&](NodeId v) {
    visit_epoch_[v] = epoch_;
    BitVector& bv = node_bits_[v];
    bv.Resize(k);
    bv.ClearAll();
    if (working != nullptr) working->Grow(bv.MemoryBytes());
  };
  auto visited = [&](NodeId v) { return visit_epoch_[v] == epoch_; };

  visit(s);
  node_bits_[s].SetAll();  // I_s = [1 1 ... 1]

  // Cascading update (Algorithm 3): fix-point propagation of new worlds
  // through already-visited nodes.
  std::deque<NodeId> cascade;
  auto CascadeFrom = [&](NodeId from) {
    cascade.clear();
    cascade.push_back(from);
    while (!cascade.empty()) {
      const NodeId w = cascade.front();
      cascade.pop_front();
      for (const AdjEntry& a : graph_.OutEdges(w)) {
        if (!visited(a.neighbor)) continue;
        if (node_bits_[a.neighbor].OrWithAnd(node_bits_[w], edge_bits_[a.edge])) {
          cascade.push_back(a.neighbor);
        }
      }
    }
  };

  // Main worklist BFS (Algorithm 2). No early termination even if t gains
  // worlds early: cascading updates must run to completion.
  std::deque<NodeId> worklist;
  for (const AdjEntry& a : graph_.OutEdges(s)) {
    if (in_queue_epoch_[a.neighbor] != epoch_) {
      in_queue_epoch_[a.neighbor] = epoch_;
      worklist.push_back(a.neighbor);
    }
  }
  while (!worklist.empty()) {
    const NodeId v = worklist.front();
    worklist.pop_front();
    if (visited(v)) continue;
    visit(v);
    BitVector& iv = node_bits_[v];
    for (const AdjEntry& a : graph_.InEdges(v)) {
      if (visited(a.neighbor)) {
        iv.OrWithAnd(node_bits_[a.neighbor], edge_bits_[a.edge]);
      }
    }
    for (const AdjEntry& a : graph_.OutEdges(v)) {
      if (!visited(a.neighbor)) {
        if (in_queue_epoch_[a.neighbor] != epoch_) {
          in_queue_epoch_[a.neighbor] = epoch_;
          worklist.push_back(a.neighbor);
        }
      } else if (node_bits_[a.neighbor].OrWithAnd(iv, edge_bits_[a.edge])) {
        CascadeFrom(a.neighbor);
      }
    }
  }
  return Status::OK();
}

Status BfsSharingEstimator::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open for writing: " + path);
  out.write(kIndexMagic, sizeof(kIndexMagic));
  const uint64_t m = edge_bits_.size();
  const uint32_t l = options_.index_samples;
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(&l), sizeof(l));
  for (const BitVector& bv : edge_bits_) {
    out.write(reinterpret_cast<const char*>(bv.words().data()),
              static_cast<std::streamsize>(bv.words().size() * sizeof(uint64_t)));
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::unique_ptr<BfsSharingEstimator>> BfsSharingEstimator::LoadFromFile(
    const UncertainGraph& graph, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open for reading: " + path);
  char magic[8];
  uint64_t m = 0;
  uint32_t l = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  in.read(reinterpret_cast<char*>(&l), sizeof(l));
  if (!in.good() || std::memcmp(magic, kIndexMagic, sizeof(magic)) != 0) {
    return Status::IOError("not a BFS Sharing index: " + path);
  }
  if (m != graph.num_edges()) {
    return Status::InvalidArgument(
        StrFormat("index has %llu edges, graph has %zu",
                  static_cast<unsigned long long>(m), graph.num_edges()));
  }
  BfsSharingOptions options;
  options.index_samples = l;
  std::unique_ptr<BfsSharingEstimator> estimator(
      new BfsSharingEstimator(graph, options));
  Timer timer;
  estimator->edge_bits_.resize(m);
  for (auto& bv : estimator->edge_bits_) {
    bv.Resize(l);
    in.read(reinterpret_cast<char*>(bv.mutable_words().data()),
            static_cast<std::streamsize>(bv.words().size() * sizeof(uint64_t)));
    if (!in.good()) return Status::IOError("truncated BFS Sharing index: " + path);
  }
  estimator->index_build_seconds_ = timer.ElapsedSeconds();
  return estimator;
}

}  // namespace relcomp
