#include "reliability/estimator_factory.h"

#include "reliability/mc_sampling.h"

namespace relcomp {

const char* EstimatorKindName(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kMonteCarlo:
      return "MC";
    case EstimatorKind::kBfsSharing:
      return "BFSSharing";
    case EstimatorKind::kProbTree:
      return "ProbTree";
    case EstimatorKind::kLazyPropagationPlus:
      return "LP+";
    case EstimatorKind::kRecursive:
      return "RHH";
    case EstimatorKind::kRecursiveStratified:
      return "RSS";
    case EstimatorKind::kLazyPropagation:
      return "LP";
    case EstimatorKind::kProbTreeLpPlus:
      return "ProbTree+LP+";
    case EstimatorKind::kProbTreeRhh:
      return "ProbTree+RHH";
    case EstimatorKind::kProbTreeRss:
      return "ProbTree+RSS";
  }
  return "Unknown";
}

std::vector<EstimatorKind> TheSixEstimators() {
  return {EstimatorKind::kMonteCarlo,          EstimatorKind::kBfsSharing,
          EstimatorKind::kProbTree,            EstimatorKind::kLazyPropagationPlus,
          EstimatorKind::kRecursive,           EstimatorKind::kRecursiveStratified};
}

Result<std::unique_ptr<Estimator>> MakeEstimator(EstimatorKind kind,
                                                 const UncertainGraph& graph,
                                                 const FactoryOptions& options) {
  switch (kind) {
    case EstimatorKind::kMonteCarlo:
      return std::unique_ptr<Estimator>(new MonteCarloEstimator(graph));
    case EstimatorKind::kBfsSharing: {
      RELCOMP_ASSIGN_OR_RETURN(
          std::unique_ptr<BfsSharingEstimator> estimator,
          BfsSharingEstimator::Create(graph, options.bfs_sharing,
                                      options.index_seed));
      return std::unique_ptr<Estimator>(std::move(estimator));
    }
    case EstimatorKind::kProbTree:
    case EstimatorKind::kProbTreeLpPlus:
    case EstimatorKind::kProbTreeRhh:
    case EstimatorKind::kProbTreeRss: {
      ProbTreeInner inner = ProbTreeInner::kMonteCarlo;
      if (kind == EstimatorKind::kProbTreeLpPlus) {
        inner = ProbTreeInner::kLazyPropagationPlus;
      } else if (kind == EstimatorKind::kProbTreeRhh) {
        inner = ProbTreeInner::kRecursive;
      } else if (kind == EstimatorKind::kProbTreeRss) {
        inner = ProbTreeInner::kRecursiveStratified;
      }
      RELCOMP_ASSIGN_OR_RETURN(
          std::unique_ptr<ProbTreeEstimator> estimator,
          ProbTreeEstimator::Create(graph, options.prob_tree, inner));
      return std::unique_ptr<Estimator>(std::move(estimator));
    }
    case EstimatorKind::kLazyPropagationPlus: {
      LazyPropagationOptions lp;
      lp.corrected = true;
      return std::unique_ptr<Estimator>(new LazyPropagationEstimator(graph, lp));
    }
    case EstimatorKind::kLazyPropagation: {
      LazyPropagationOptions lp;
      lp.corrected = false;
      return std::unique_ptr<Estimator>(new LazyPropagationEstimator(graph, lp));
    }
    case EstimatorKind::kRecursive:
      return std::unique_ptr<Estimator>(
          new RecursiveEstimator(graph, options.recursive));
    case EstimatorKind::kRecursiveStratified:
      return std::unique_ptr<Estimator>(
          new RecursiveStratifiedEstimator(graph, options.rss));
  }
  return Status::InvalidArgument("unknown estimator kind");
}

Result<std::vector<std::unique_ptr<Estimator>>> MakeEstimatorReplicas(
    EstimatorKind kind, const UncertainGraph& graph, size_t count,
    const FactoryOptions& options) {
  if (count == 0) {
    return Status::InvalidArgument("replica count must be positive");
  }
  std::vector<std::unique_ptr<Estimator>> replicas;
  replicas.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    RELCOMP_ASSIGN_OR_RETURN(std::unique_ptr<Estimator> replica,
                             MakeEstimator(kind, graph, options));
    replicas.push_back(std::move(replica));
  }
  return replicas;
}

}  // namespace relcomp
