#include "reliability/estimator_factory.h"

#include <algorithm>

#include "reliability/mc_sampling.h"

namespace relcomp {

namespace {

/// ProbTree inner estimator for the coupled kinds (Table 16).
ProbTreeInner InnerFor(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kProbTreeLpPlus:
      return ProbTreeInner::kLazyPropagationPlus;
    case EstimatorKind::kProbTreeRhh:
      return ProbTreeInner::kRecursive;
    case EstimatorKind::kProbTreeRss:
      return ProbTreeInner::kRecursiveStratified;
    default:
      return ProbTreeInner::kMonteCarlo;
  }
}

}  // namespace

const char* EstimatorKindName(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kMonteCarlo:
      return "MC";
    case EstimatorKind::kBfsSharing:
      return "BFSSharing";
    case EstimatorKind::kProbTree:
      return "ProbTree";
    case EstimatorKind::kLazyPropagationPlus:
      return "LP+";
    case EstimatorKind::kRecursive:
      return "RHH";
    case EstimatorKind::kRecursiveStratified:
      return "RSS";
    case EstimatorKind::kLazyPropagation:
      return "LP";
    case EstimatorKind::kProbTreeLpPlus:
      return "ProbTree+LP+";
    case EstimatorKind::kProbTreeRhh:
      return "ProbTree+RHH";
    case EstimatorKind::kProbTreeRss:
      return "ProbTree+RSS";
  }
  return "Unknown";
}

std::vector<EstimatorKind> TheSixEstimators() {
  return {EstimatorKind::kMonteCarlo,          EstimatorKind::kBfsSharing,
          EstimatorKind::kProbTree,            EstimatorKind::kLazyPropagationPlus,
          EstimatorKind::kRecursive,           EstimatorKind::kRecursiveStratified};
}

Result<std::unique_ptr<Estimator>> MakeEstimator(EstimatorKind kind,
                                                 const UncertainGraph& graph,
                                                 const FactoryOptions& options) {
  switch (kind) {
    case EstimatorKind::kMonteCarlo:
      return std::unique_ptr<Estimator>(new MonteCarloEstimator(graph));
    case EstimatorKind::kBfsSharing: {
      RELCOMP_ASSIGN_OR_RETURN(
          std::unique_ptr<BfsSharingEstimator> estimator,
          BfsSharingEstimator::Create(graph, options.bfs_sharing,
                                      options.index_seed));
      return std::unique_ptr<Estimator>(std::move(estimator));
    }
    case EstimatorKind::kProbTree:
    case EstimatorKind::kProbTreeLpPlus:
    case EstimatorKind::kProbTreeRhh:
    case EstimatorKind::kProbTreeRss: {
      RELCOMP_ASSIGN_OR_RETURN(
          std::unique_ptr<ProbTreeEstimator> estimator,
          ProbTreeEstimator::Create(graph, options.prob_tree, InnerFor(kind)));
      return std::unique_ptr<Estimator>(std::move(estimator));
    }
    case EstimatorKind::kLazyPropagationPlus: {
      LazyPropagationOptions lp;
      lp.corrected = true;
      return std::unique_ptr<Estimator>(new LazyPropagationEstimator(graph, lp));
    }
    case EstimatorKind::kLazyPropagation: {
      LazyPropagationOptions lp;
      lp.corrected = false;
      return std::unique_ptr<Estimator>(new LazyPropagationEstimator(graph, lp));
    }
    case EstimatorKind::kRecursive:
      return std::unique_ptr<Estimator>(
          new RecursiveEstimator(graph, options.recursive));
    case EstimatorKind::kRecursiveStratified:
      return std::unique_ptr<Estimator>(
          new RecursiveStratifiedEstimator(graph, options.rss));
  }
  return Status::InvalidArgument("unknown estimator kind");
}

Result<std::vector<std::unique_ptr<Estimator>>> MakeEstimatorReplicas(
    EstimatorKind kind, const UncertainGraph& graph, size_t count,
    const FactoryOptions& options) {
  if (count == 0) {
    return Status::InvalidArgument("replica count must be positive");
  }
  std::vector<std::unique_ptr<Estimator>> replicas;
  replicas.reserve(count);
  switch (kind) {
    // Index-carrying kinds: build the immutable index once, share it —
    // unless the persistence tier preloaded one (snapshot cold-start).
    case EstimatorKind::kBfsSharing: {
      std::shared_ptr<const BfsSharingIndex> index =
          options.preloaded_bfs_index;
      if (index == nullptr) {
        RELCOMP_ASSIGN_OR_RETURN(
            index, BfsSharingIndex::Build(graph, options.bfs_sharing,
                                          options.index_seed));
      }
      for (size_t i = 0; i < count; ++i) {
        RELCOMP_ASSIGN_OR_RETURN(std::unique_ptr<BfsSharingEstimator> replica,
                                 BfsSharingEstimator::Create(graph, index));
        replicas.push_back(std::move(replica));
      }
      return replicas;
    }
    case EstimatorKind::kProbTree:
    case EstimatorKind::kProbTreeLpPlus:
    case EstimatorKind::kProbTreeRhh:
    case EstimatorKind::kProbTreeRss: {
      std::shared_ptr<const ProbTreeIndex> index = options.preloaded_prob_tree;
      if (index == nullptr) {
        RELCOMP_ASSIGN_OR_RETURN(
            index, ProbTreeIndex::BuildShared(graph, options.prob_tree));
      }
      for (size_t i = 0; i < count; ++i) {
        RELCOMP_ASSIGN_OR_RETURN(
            std::unique_ptr<ProbTreeEstimator> replica,
            ProbTreeEstimator::CreateWithIndex(graph, index, InnerFor(kind)));
        replicas.push_back(std::move(replica));
      }
      return replicas;
    }
    // Index-free kinds: independent instances are already O(1) to build.
    default:
      break;
  }
  for (size_t i = 0; i < count; ++i) {
    RELCOMP_ASSIGN_OR_RETURN(std::unique_ptr<Estimator> replica,
                             MakeEstimator(kind, graph, options));
    replicas.push_back(std::move(replica));
  }
  return replicas;
}

IndexMemoryReport ReportIndexMemory(
    const std::vector<std::unique_ptr<Estimator>>& replicas) {
  IndexMemoryReport report;
  std::vector<const void*> seen;
  for (const std::unique_ptr<Estimator>& replica : replicas) {
    if (replica == nullptr) continue;
    const void* identity = replica->SharedIndexIdentity();
    const size_t shared = replica->SharedIndexBytes();
    const size_t total = replica->IndexMemoryBytes();
    report.replica_bytes += total - (identity != nullptr ? shared : 0);
    if (identity == nullptr) continue;
    if (std::find(seen.begin(), seen.end(), identity) == seen.end()) {
      seen.push_back(identity);
      report.shared_bytes += shared;
      ++report.shared_indexes;
    }
  }
  return report;
}

}  // namespace relcomp
