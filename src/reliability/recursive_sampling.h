#pragma once

#include <memory>
#include <vector>

#include "graph/subgraph.h"
#include "reliability/distance_constrained.h"
#include "reliability/estimator.h"

namespace relcomp {

class Rng;

/// \brief How the next expandable edge is chosen (Alg. 4 line 9). The paper
/// follows [20]'s experimentally optimal DFS expansion; the alternatives are
/// kept for the ablation bench.
enum class EdgeSelectionStrategy {
  kDfs = 0,  ///< first undetermined out-edge along a depth-first expansion
  kBfs,      ///< first undetermined out-edge in breadth-first order
  kRandom,   ///< uniform over all expandable undetermined edges
};

/// \brief Options for recursive (Hansen–Hurwitz style) sampling.
struct RecursiveSamplingOptions {
  /// When a branch's sample budget drops to this threshold or below, the
  /// branch is finished with non-recursive MC sampling (Alg. 4 lines 1-2).
  /// The paper finds 5 optimal for both recursive methods (Figure 16).
  uint32_t threshold = 5;
  /// Next-edge policy; kDfs reproduces the paper.
  EdgeSelectionStrategy selection = EdgeSelectionStrategy::kDfs;
};

/// \brief Recursive sampling "RHH" (Algorithm 4; Jin et al. [20], adapted
/// from distance-constrained to plain s-t reliability).
///
/// Divide and conquer over edge existence: pick an expandable edge e by DFS
/// from the certainly-reached component, condition on e, and split the
/// sample budget deterministically — K1 = floor(P(e) K) to the inclusion
/// branch, K - K1 to the exclusion branch — which removes e's sampling
/// uncertainty and provably reduces variance (Theorem 2 in [20]). Branches
/// terminate on an s-t path of included edges (R = 1), an s-t cut of
/// excluded edges (R = 0), or budget <= threshold (plain MC on the residual).
class RecursiveEstimator : public Estimator {
 public:
  RecursiveEstimator(const UncertainGraph& graph,
                     const RecursiveSamplingOptions& options = {});

  std::string_view name() const override { return "RHH"; }
  const UncertainGraph& graph() const override { return graph_; }

  /// Recursion overhead on top of the residual MC runs (graph
  /// simplification per branch), paid back in variance, not time.
  CostHints cost_hints() const override {
    CostHints hints;
    hints.per_sample_edge_cost = 1.2;
    return hints;
  }

  /// Distance-constrained dispatch via the depth-bounded recursive sampler
  /// of distance_constrained.h — the query this algorithm was originally
  /// designed for [20] (same threshold as the s-t configuration; the
  /// sampler is built on first use so s-t-only replicas pay nothing).
  bool SupportsDistanceConstrained() const override { return true; }
  Result<double> EstimateDistanceConstrained(
      const ReliabilityQuery& query, uint32_t max_hops,
      const EstimateOptions& options) override {
    if (distance_ == nullptr) {
      distance_ = std::make_unique<DistanceConstrainedRecursive>(
          graph_, options_.threshold);
    }
    return distance_->Estimate(
        DistanceConstrainedQuery{query.source, query.target, max_hops},
        options.num_samples, options.seed, options.memory);
  }

 protected:
  Result<double> DoEstimate(const ReliabilityQuery& query,
                            const EstimateOptions& options,
                            MemoryTracker* memory) override;

 private:
  double Recurse(NodeId s, NodeId t, uint32_t k, std::vector<EdgeState>& states,
                 Rng& rng, MemoryTracker* memory, size_t depth);
  /// Non-recursive base case: MC over the residual graph conditioned on
  /// `states` (included edges always exist, excluded never, the rest tossed).
  double BaseMonteCarlo(NodeId s, NodeId t, uint32_t k,
                        const std::vector<EdgeState>& states, Rng& rng);

  const UncertainGraph& graph_;
  RecursiveSamplingOptions options_;
  std::unique_ptr<DistanceConstrainedRecursive> distance_;
  // Scratch shared by reachability checks / edge selection / base MC.
  std::vector<uint32_t> visit_epoch_;
  std::vector<NodeId> queue_;
  std::vector<EdgeId> candidates_;  // kRandom strategy candidate pool
  uint32_t epoch_ = 0;
  size_t max_depth_seen_ = 0;
};

}  // namespace relcomp
