#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "common/bitvector.h"
#include "reliability/estimator.h"

namespace relcomp {

/// \brief Options for the BFS Sharing index [45].
struct BfsSharingOptions {
  /// L: number of pre-sampled possible worlds stored per edge. The paper
  /// uses L = 1500 as a "safe bound" since K at convergence is not known
  /// apriori (Section 3.7). Queries may use any K <= L.
  uint32_t index_samples = 1500;
};

/// \brief One immutable generation of the BFS Sharing index: the L-bit edge
/// vectors of Figure 3 (bit i = "edge exists in pre-sampled world i").
///
/// A generation is frozen at Build()/LoadFromFile() and never mutated, so any
/// number of estimator replicas may read it concurrently through a
/// `shared_ptr<const BfsSharingIndex>` — the engine builds the index once for
/// all worker threads instead of once per replica. Resampling
/// (BfsSharingEstimator::PrepareForNextQuery) creates a *new* generation and
/// swaps the pointer; the old generation is freed when its last reader drops
/// it.
class BfsSharingIndex {
 public:
  /// Samples a fresh generation: O(L m) time, O(L m) space. Deterministic in
  /// `seed` (bit-identical worlds for equal seeds and options). The returned
  /// handle is the only mutable reference; share it onward as
  /// `shared_ptr<const>`.
  static Result<std::shared_ptr<BfsSharingIndex>> Build(
      const UncertainGraph& graph, const BfsSharingOptions& options,
      uint64_t seed);

  /// Restores a generation persisted by SaveToFile (Figure 13c measures
  /// this). The graph is needed only to validate the edge count.
  static Result<std::shared_ptr<BfsSharingIndex>> LoadFromFile(
      const UncertainGraph& graph, const std::string& path);

  /// Serializes this generation as a snapshot-section payload: {L u32,
  /// pad u32, m u64} then the packed words verbatim. The word block starts
  /// 16 bytes in, so inside a 64-byte-aligned snapshot section it is 8-byte
  /// aligned for the zero-copy FromBlock path.
  void AppendBlock(std::string* out) const;

  /// Reconstructs a generation from an AppendBlock payload — zero-copy when
  /// `data` is 8-byte aligned: the generation reads the words directly out
  /// of the (typically mmap'd) block and holds `backing` alive, which is
  /// what makes snapshot cold-start O(1) instead of O(L m). A mapped
  /// generation is never resampled through the block (Resample materializes
  /// a private copy first), so the mapping stays read-only.
  static Result<std::shared_ptr<BfsSharingIndex>> FromBlock(
      const UncertainGraph& graph, const void* data, size_t size,
      std::shared_ptr<const void> backing);

  /// True when the words are read out of an external (mmap'd) block rather
  /// than owned memory.
  bool mapped() const { return backing_ != nullptr; }

  /// Refills every edge's worlds in place — bit-identical to a fresh
  /// Build(graph, options, seed) with this generation's L, but with zero
  /// allocation (the serving path's steady state: every query re-arms).
  /// Caller must hold the generation exclusively: no other replica may read
  /// the bit content concurrently (size-only readers like MemoryBytes are
  /// unaffected — refilling never changes shapes).
  void Resample(const UncertainGraph& graph, uint64_t seed);

  /// Persists the edge bit-vectors to `path`.
  Status SaveToFile(const std::string& path) const;

  /// L, the number of worlds stored per edge.
  uint32_t num_samples() const { return num_samples_; }
  size_t num_edges() const { return num_edges_; }

  /// The edge vectors live in one dense block of `words_per_edge()` 64-bit
  /// words per edge (= ceil(L / 64)), packed back to back in edge-id order —
  /// no per-edge vector headers, one allocation per generation. edge_words(e)
  /// is the start of edge e's block; bits [0, L) of the block are worlds,
  /// the block tail (if L % 64 != 0) is kept zero so popcounts stay exact.
  size_t words_per_edge() const { return words_per_edge_; }
  const uint64_t* edge_words(EdgeId e) const {
    return words_data_ + static_cast<size_t>(e) * words_per_edge_;
  }

  /// Edge bit-vector bytes resident in memory.
  size_t MemoryBytes() const;

  /// Seconds spent sampling (or loading) this generation.
  double build_seconds() const { return build_seconds_; }

  /// Process-wide count of Build()/LoadFromFile() completions (in-place
  /// Resample()s allocate nothing and are not counted). Lets tests and the
  /// CI smoke bench assert that N engine replicas triggered exactly one
  /// index construction.
  static uint64_t BuildCount() {
    return build_count_.load(std::memory_order_relaxed);
  }

 private:
  BfsSharingIndex() = default;

  uint32_t num_samples_ = 0;
  double build_seconds_ = 0.0;
  size_t num_edges_ = 0;
  size_t words_per_edge_ = 0;
  /// num_edges * words_per_edge words, edge blocks back to back — owned
  /// storage for built/loaded generations, empty for mapped ones.
  std::vector<uint64_t> words_;
  /// The words every reader goes through: words_.data() for owned
  /// generations, a pointer into `backing_` for mapped ones.
  const uint64_t* words_data_ = nullptr;
  size_t num_words_ = 0;
  /// Keeps a mapped generation's snapshot mapping alive (null when owned).
  std::shared_ptr<const void> backing_;
  static std::atomic<uint64_t> build_count_;
};

/// \brief Indexing via BFS Sharing (Algorithms 2 + 3; Zhu et al. [45],
/// adapted from top-k reliability search to single s-t queries).
///
/// Offline, K possible worlds are materialized as one bit-vector of L bits
/// per edge (bit i = edge exists in world i). Online, a single BFS carries a
/// bit-vector I_v per node (worlds where v is reachable from s), propagating
/// I_v |= I_u & I_e word-parallel across all worlds at once, with cascading
/// fix-point updates when a visited node gains new worlds. No early
/// termination is possible (the paper's key observation: this makes BFS
/// Sharing ~4x slower than plain MC despite the shared index).
///
/// This implementation follows the paper's *corrected* complexity analysis:
/// online time is O(K(m+n)) — it grows with K — not independent of K as
/// claimed in [45].
///
/// Memory split: the index generation is immutable and shareable across
/// replicas (see BfsSharingIndex); only the per-query scratch (node
/// bit-vectors, visit epochs) is private to this instance. The serving path
/// is read-only on the index, so replicas sharing one generation answer
/// concurrently without synchronization.
class BfsSharingEstimator : public Estimator {
 public:
  /// Builds a private generation-0 index (O(L m) time, O(n + L m) space).
  static Result<std::unique_ptr<BfsSharingEstimator>> Create(
      const UncertainGraph& graph, const BfsSharingOptions& options,
      uint64_t index_seed);

  /// Wraps an existing (possibly shared) index generation — the replica path:
  /// N estimators over one `shared_ptr<const>` index cost one build.
  static Result<std::unique_ptr<BfsSharingEstimator>> Create(
      const UncertainGraph& graph,
      std::shared_ptr<const BfsSharingIndex> index);

  /// Loads a previously saved index from `path` (Figure 13c measures this).
  static Result<std::unique_ptr<BfsSharingEstimator>> LoadFromFile(
      const UncertainGraph& graph, const std::string& path);

  /// Persists the current index generation to `path`.
  Status SaveToFile(const std::string& path) const;

  std::string_view name() const override { return "BFSSharing"; }
  const UncertainGraph& graph() const override { return graph_; }

  /// Cheap per sample (offline worlds, one shared BFS over bit-vector
  /// words), but the inter-query resample rewrites L bits per edge — the
  /// dominant per-query term the router must price in.
  CostHints cost_hints() const override {
    CostHints hints;
    hints.per_sample_edge_cost = 0.25;
    hints.per_query_edge_cost =
        static_cast<double>(shared_index() == nullptr
                                ? 0
                                : shared_index()->num_samples()) /
        64.0;  // resample writes L bits/edge = L/64 words/edge
    hints.sweep_amortized = true;
    return hints;
  }

  /// Edge bit-vector bytes resident in memory (the current generation).
  size_t IndexMemoryBytes() const override;
  /// The whole index is held via a shareable immutable generation.
  size_t SharedIndexBytes() const override { return IndexMemoryBytes(); }
  const void* SharedIndexIdentity() const override {
    return shared_index().get();
  }

  /// Re-samples all edge bit-vectors. Required between successive queries to
  /// keep their answers independent (Table 15 measures this per-query cost).
  /// When this replica exclusively owns its generation, the worlds are
  /// refilled in place (zero allocation — the serving-path steady state);
  /// otherwise a fresh generation is built and atomically swapped in,
  /// leaving generations still referenced by other replicas untouched.
  Status PrepareForNextQuery(uint64_t seed) override;

  /// Background-prepare surface: BuildPreparedGeneration samples the worlds
  /// PrepareForNextQuery(seed) would install — bit-identical, reading only
  /// the graph and the options, so a builder thread can overlap it with this
  /// replica's in-flight BFS. AdoptPreparedGeneration swaps it in as an
  /// exclusively-owned generation (subsequent inline prepares resample it in
  /// place again).
  bool SupportsPreparedGenerations() const override { return true; }
  Result<std::unique_ptr<PreparedGeneration>> BuildPreparedGeneration(
      uint64_t seed) const override;
  Status AdoptPreparedGeneration(
      std::unique_ptr<PreparedGeneration> generation) override;

  /// Shared-prepared-state surface: a prepared replica hands its current
  /// generation to sibling replicas as a read-only snapshot, adopted in
  /// O(1) — how stratum thieves skip re-running the sharer's O(L·m)
  /// resample. The ownership discipline of PrepareForNextQuery (in-place
  /// resampling only at use_count == 2) makes the share race-free: a
  /// generation with outstanding readers is never refilled in place.
  bool SupportsSharedPreparedState() const override { return true; }
  Result<std::shared_ptr<const PreparedGeneration>> ShareCurrentPreparedState()
      const override;
  Status AdoptSharedPreparedState(
      std::shared_ptr<const PreparedGeneration> state) override;

  /// The generation this replica currently reads (atomic snapshot).
  std::shared_ptr<const BfsSharingIndex> shared_index() const {
    return index_.load(std::memory_order_acquire);
  }

  /// Seconds spent building (or loading) the current generation.
  double index_build_seconds() const { return shared_index()->build_seconds(); }
  /// L, the number of worlds stored per edge.
  uint32_t index_samples() const { return options_.index_samples; }

  /// One shared BFS, all targets at once: the reliability of every node from
  /// `source` over the first `num_samples` indexed worlds (0 for nodes the
  /// BFS never reaches). This is the primitive behind the original top-k
  /// reliability search of [45] (see top_k.h). `memory`, when given,
  /// receives the sweep's working-set accounting (node bit-vectors, epochs,
  /// the result vector).
  Result<std::vector<double>> ReliabilityFromSource(
      NodeId source, uint32_t num_samples, MemoryTracker* memory = nullptr);

  /// Per-node reachable-world counts over the world slice [world_offset,
  /// world_offset + world_count) of the current generation: the shared BFS
  /// run against a bit-range of the edge vectors (no copy). Because each
  /// indexed world is independent, counts over disjoint slices sum to
  /// exactly the whole-range counts — which is why a stratified BFS Sharing
  /// sweep is bit-identical to the serial sweep for *every* stratum count,
  /// provided all strata read the same generation (same prepare seed).
  Result<std::vector<uint32_t>> SourceHitCountsInWorldRange(
      NodeId source, uint32_t world_offset, uint32_t world_count,
      MemoryTracker* memory = nullptr);

  /// Engine dispatch surface for top-k / reliable-set workloads: the sweep
  /// above over the current index generation. Like DoEstimate, the per-call
  /// seed is unused — re-arm via PrepareForNextQuery to pick the worlds
  /// (the engine does this with a content-derived seed before every query).
  /// options.num_strata is ignored: slices sum exactly, so the sweep is
  /// stratification-invariant (see SourceHitCountsInWorldRange).
  bool SupportsSourceSweep() const override { return true; }
  Result<std::vector<double>> EstimateFromSource(
      NodeId source, const EstimateOptions& options) override {
    // Cancellation point: BFS Sharing's sweep is one bit-parallel BFS over
    // the whole world range — short next to an MC sweep — so the poll sits
    // at the call boundary (the engine's stratum scheduler polls between
    // slices on top of this).
    if (options.cancel != nullptr && options.cancel->Cancelled()) {
      return options.cancel->ToStatus();
    }
    obs::ScopedSpan bfs_span(options.trace, obs::SpanKind::kBfs,
                             options.trace_parent);
    return ReliabilityFromSource(source, options.num_samples, options.memory);
  }

  /// One stratum = one world slice of the budget's [0, K) range.
  bool SupportsStratifiedSweep() const override { return true; }
  Result<std::vector<uint32_t>> EstimateSweepStratumHits(
      NodeId source, uint32_t stratum, uint32_t num_strata,
      const EstimateOptions& options) override;

 protected:
  Result<double> DoEstimate(const ReliabilityQuery& query,
                            const EstimateOptions& options,
                            MemoryTracker* memory) override;

 private:
  BfsSharingEstimator(const UncertainGraph& graph,
                      std::shared_ptr<const BfsSharingIndex> index);

  /// Core of Algorithms 2+3: fills node_bits_ / visit_epoch_ for all nodes
  /// reached from `source`, with cascading fix-point updates, over the world
  /// slice [world_offset, world_offset + num_samples) of the edge vectors
  /// (0 for the whole-range sweep). Reads only `index` and this replica's
  /// private scratch.
  Status RunSharedBfs(const BfsSharingIndex& index, NodeId source,
                      uint32_t world_offset, uint32_t num_samples,
                      ScopedAllocation* working);

  const UncertainGraph& graph_;
  BfsSharingOptions options_;
  /// Current generation. Atomic so StatsSnapshot readers may observe the
  /// pointer while this replica's worker swaps generations; readers never
  /// touch bit content (sizes only).
  std::atomic<std::shared_ptr<const BfsSharingIndex>> index_;
  /// Mutable handle to the current generation IFF this replica built it
  /// privately (Create-with-options, LoadFromFile, or a past generation
  /// swap); nullptr while reading a generation handed in from outside that
  /// other replicas may share. Exclusive ownership (use_count == 2: this +
  /// the copy inside index_) enables in-place resampling.
  std::shared_ptr<BfsSharingIndex> owned_;

  /// Per-query scratch, epoch-reused: node bit-vectors I_v and visited marks.
  std::vector<BitVector> node_bits_;
  std::vector<uint32_t> visit_epoch_;
  std::vector<uint32_t> in_queue_epoch_;
  uint32_t epoch_ = 0;
};

}  // namespace relcomp
