#pragma once

#include <memory>
#include <vector>

#include "common/bitvector.h"
#include "reliability/estimator.h"

namespace relcomp {

/// \brief Options for the BFS Sharing index [45].
struct BfsSharingOptions {
  /// L: number of pre-sampled possible worlds stored per edge. The paper
  /// uses L = 1500 as a "safe bound" since K at convergence is not known
  /// apriori (Section 3.7). Queries may use any K <= L.
  uint32_t index_samples = 1500;
};

/// \brief Indexing via BFS Sharing (Algorithms 2 + 3; Zhu et al. [45],
/// adapted from top-k reliability search to single s-t queries).
///
/// Offline, K possible worlds are materialized as one bit-vector of L bits
/// per edge (bit i = edge exists in world i). Online, a single BFS carries a
/// bit-vector I_v per node (worlds where v is reachable from s), propagating
/// I_v |= I_u & I_e word-parallel across all worlds at once, with cascading
/// fix-point updates when a visited node gains new worlds. No early
/// termination is possible (the paper's key observation: this makes BFS
/// Sharing ~4x slower than plain MC despite the shared index).
///
/// This implementation follows the paper's *corrected* complexity analysis:
/// online time is O(K(m+n)) — it grows with K — not independent of K as
/// claimed in [45].
class BfsSharingEstimator : public Estimator {
 public:
  /// Builds the offline index (O(L m) time, O(n + L m) space).
  static Result<std::unique_ptr<BfsSharingEstimator>> Create(
      const UncertainGraph& graph, const BfsSharingOptions& options,
      uint64_t index_seed);

  /// Loads a previously saved index from `path` (Figure 13c measures this).
  static Result<std::unique_ptr<BfsSharingEstimator>> LoadFromFile(
      const UncertainGraph& graph, const std::string& path);

  /// Persists the edge bit-vectors to `path`.
  Status SaveToFile(const std::string& path) const;

  std::string_view name() const override { return "BFSSharing"; }
  const UncertainGraph& graph() const override { return graph_; }

  /// Edge bit-vector bytes resident in memory.
  size_t IndexMemoryBytes() const override;

  /// Re-samples all edge bit-vectors. Required between successive queries to
  /// keep their answers independent (Table 15 measures this per-query cost).
  Status PrepareForNextQuery(uint64_t seed) override;

  /// Seconds spent building (or loading) the index.
  double index_build_seconds() const { return index_build_seconds_; }
  /// L, the number of worlds stored per edge.
  uint32_t index_samples() const { return options_.index_samples; }

  /// One shared BFS, all targets at once: the reliability of every node from
  /// `source` over the first `num_samples` indexed worlds (0 for nodes the
  /// BFS never reaches). This is the primitive behind the original top-k
  /// reliability search of [45] (see top_k.h).
  Result<std::vector<double>> ReliabilityFromSource(NodeId source,
                                                    uint32_t num_samples);

 protected:
  Result<double> DoEstimate(const ReliabilityQuery& query,
                            const EstimateOptions& options,
                            MemoryTracker* memory) override;

 private:
  BfsSharingEstimator(const UncertainGraph& graph,
                      const BfsSharingOptions& options);

  void ResampleIndex(uint64_t seed);

  /// Core of Algorithms 2+3: fills node_bits_ / visit_epoch_ for all nodes
  /// reached from `source`, with cascading fix-point updates.
  Status RunSharedBfs(NodeId source, uint32_t num_samples,
                      ScopedAllocation* working);

  const UncertainGraph& graph_;
  BfsSharingOptions options_;
  double index_build_seconds_ = 0.0;
  /// One L-bit vector per edge: the compact structure of Figure 3.
  std::vector<BitVector> edge_bits_;

  /// Per-query scratch, epoch-reused: node bit-vectors I_v and visited marks.
  std::vector<BitVector> node_bits_;
  std::vector<uint32_t> visit_epoch_;
  std::vector<uint32_t> in_queue_epoch_;
  uint32_t epoch_ = 0;
};

}  // namespace relcomp
