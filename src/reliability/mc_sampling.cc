#include "reliability/mc_sampling.h"

#include <limits>

#include "common/cancel.h"
#include "common/rng.h"

namespace relcomp {

namespace {

/// How many samples run between cooperative-cancellation polls. A poll is
/// one predicted branch plus (rarely) a clock read; results are identical
/// for any poll cadence because a cancelled call abandons everything.
constexpr uint32_t kCancelPollStride = 64;

/// One stratum of the sweep core: `num_samples` sampled worlds drawn from
/// Rng(seed), one full BFS each, hits *accumulated* into `hit_count`
/// (caller zeroes it once per sweep, then strata add in). Visited marks use
/// absolute epochs (epoch_base + 1 .. epoch_base + num_samples), so a caller
/// reusing `visit_epoch` across sweeps skips the O(n) clear; the RNG
/// consumption — and thus the counts — is identical either way. Polls
/// `cancel` (may be null) every kCancelPollStride samples; a cancelled call
/// leaves `hit_count` partially accumulated, so the caller must discard it.
Status AccumulateSweepHits(const UncertainGraph& graph, NodeId source,
                           uint32_t num_samples, uint64_t seed,
                           std::vector<uint32_t>& hit_count,
                           std::vector<uint32_t>& visit_epoch,
                           std::vector<NodeId>& queue, uint32_t epoch_base,
                           const CancelToken* cancel) {
  Rng rng(seed);
  visit_epoch.resize(graph.num_nodes(), 0);
  queue.reserve(graph.num_nodes());
  for (uint32_t i = 1; i <= num_samples; ++i) {
    if (cancel != nullptr && (i % kCancelPollStride) == 1 &&
        cancel->Cancelled()) {
      return cancel->ToStatus();
    }
    const uint32_t epoch = epoch_base + i;
    queue.clear();
    queue.push_back(source);
    visit_epoch[source] = epoch;
    for (size_t head = 0; head < queue.size(); ++head) {
      const NodeId v = queue[head];
      for (const AdjEntry& a : graph.OutEdges(v)) {
        if (visit_epoch[a.neighbor] == epoch) continue;
        if (!rng.Bernoulli(a.prob)) continue;
        visit_epoch[a.neighbor] = epoch;
        ++hit_count[a.neighbor];
        queue.push_back(a.neighbor);
      }
    }
  }
  return Status::OK();
}

Status ValidateSweep(const UncertainGraph& graph, NodeId source,
                     uint32_t num_samples) {
  if (!graph.HasNode(source)) {
    return Status::InvalidArgument("source sweep: source out of range");
  }
  if (num_samples == 0) {
    return Status::InvalidArgument(
        "source sweep: num_samples must be positive");
  }
  return Status::OK();
}

/// Full stratified sweep into `hit_count` (zeroed here): strata accumulate
/// in index order, which is what the engine's stratum merge replays. Polls
/// `cancel` at every stratum boundary (and, inside AccumulateSweepHits,
/// every few dozen samples); a cancelled sweep's counts must be discarded.
Status StratifiedSweepHits(const UncertainGraph& graph, NodeId source,
                           uint32_t num_samples, uint64_t seed,
                           uint32_t num_strata,
                           std::vector<uint32_t>& hit_count,
                           std::vector<uint32_t>& visit_epoch,
                           std::vector<NodeId>& queue, uint32_t epoch_base,
                           const CancelToken* cancel) {
  hit_count.assign(graph.num_nodes(), 0);
  if (num_strata <= 1) {
    return AccumulateSweepHits(graph, source, num_samples, seed, hit_count,
                               visit_epoch, queue, epoch_base, cancel);
  }
  uint32_t consumed = 0;
  for (uint32_t j = 0; j < num_strata; ++j) {
    if (cancel != nullptr && cancel->Cancelled()) return cancel->ToStatus();
    const uint32_t samples = StratumSampleCount(num_samples, num_strata, j);
    if (samples == 0) continue;
    RELCOMP_RETURN_NOT_OK(AccumulateSweepHits(
        graph, source, samples, StratumSeed(seed, j, num_strata), hit_count,
        visit_epoch, queue, epoch_base + consumed, cancel));
    consumed += samples;
  }
  return Status::OK();
}

std::vector<double> HitsToReliability(const std::vector<uint32_t>& hit_count,
                                      uint32_t num_samples) {
  std::vector<double> reliability(hit_count.size(), 0.0);
  for (size_t v = 0; v < hit_count.size(); ++v) {
    reliability[v] =
        static_cast<double>(hit_count[v]) / static_cast<double>(num_samples);
  }
  return reliability;
}

}  // namespace

Result<std::vector<double>> MonteCarloReliabilityFromSource(
    const UncertainGraph& graph, NodeId source, uint32_t num_samples,
    uint64_t seed, uint32_t num_strata) {
  RELCOMP_RETURN_NOT_OK(ValidateSweep(graph, source, num_samples));
  std::vector<uint32_t> hit_count;
  std::vector<uint32_t> visit_epoch;
  std::vector<NodeId> queue;
  RELCOMP_RETURN_NOT_OK(StratifiedSweepHits(graph, source, num_samples, seed,
                                            num_strata, hit_count, visit_epoch,
                                            queue, /*epoch_base=*/0,
                                            /*cancel=*/nullptr));
  return HitsToReliability(hit_count, num_samples);
}

MonteCarloEstimator::MonteCarloEstimator(const UncertainGraph& graph)
    : graph_(graph), visit_epoch_(graph.num_nodes(), 0) {
  queue_.reserve(graph.num_nodes());
}

void MonteCarloEstimator::ReserveSweepEpochs(uint32_t samples) {
  if (sweep_epoch_base_ > std::numeric_limits<uint32_t>::max() - samples) {
    sweep_epoch_.assign(sweep_epoch_.size(), 0);
    sweep_epoch_base_ = 0;
  }
}

Result<std::vector<double>> MonteCarloEstimator::EstimateFromSource(
    NodeId source, const EstimateOptions& options) {
  RELCOMP_RETURN_NOT_OK(ValidateSweep(graph_, source, options.num_samples));
  // Working state: hit counts, epoch marks, BFS queue, result vector.
  ScopedAllocation working(
      options.memory,
      graph_.num_nodes() * (3 * sizeof(uint32_t) + sizeof(double)));
  ReserveSweepEpochs(options.num_samples);
  // Trace the sampling loop itself (validation and scratch setup excluded).
  obs::ScopedSpan sample_span(options.trace, obs::SpanKind::kSample,
                              options.trace_parent, options.num_strata);
  const Status swept = StratifiedSweepHits(
      graph_, source, options.num_samples, options.seed, options.num_strata,
      sweep_hits_, sweep_epoch_, sweep_queue_, sweep_epoch_base_,
      options.cancel);
  // Epochs advance even for a cancelled sweep: the partially used epoch
  // range must never be reused, or stale visit marks could leak into the
  // next sweep's counts.
  sweep_epoch_base_ += options.num_samples;
  RELCOMP_RETURN_NOT_OK(swept);
  return HitsToReliability(sweep_hits_, options.num_samples);
}

Result<std::vector<uint32_t>> MonteCarloEstimator::EstimateSweepStratumHits(
    NodeId source, uint32_t stratum, uint32_t num_strata,
    const EstimateOptions& options) {
  RELCOMP_RETURN_NOT_OK(ValidateSweep(graph_, source, options.num_samples));
  if (num_strata == 0 || stratum >= num_strata) {
    return Status::InvalidArgument("sweep stratum: index out of range");
  }
  // Working state: the hit-count result, epoch marks, BFS queue.
  ScopedAllocation working(options.memory,
                           graph_.num_nodes() * 3 * sizeof(uint32_t));
  std::vector<uint32_t> hits(graph_.num_nodes(), 0);
  const uint32_t samples =
      StratumSampleCount(options.num_samples, num_strata, stratum);
  if (samples > 0) {
    ReserveSweepEpochs(samples);
    obs::ScopedSpan sample_span(options.trace, obs::SpanKind::kSample,
                                options.trace_parent, stratum);
    const Status run = AccumulateSweepHits(
        graph_, source, samples, StratumSeed(options.seed, stratum, num_strata),
        hits, sweep_epoch_, sweep_queue_, sweep_epoch_base_, options.cancel);
    sweep_epoch_base_ += samples;  // never reuse a partially used epoch range
    RELCOMP_RETURN_NOT_OK(run);
  }
  return hits;
}

Result<double> MonteCarloEstimator::EstimateDistanceConstrained(
    const ReliabilityQuery& query, uint32_t max_hops,
    const EstimateOptions& options) {
  if (distance_ == nullptr) {
    distance_ = std::make_unique<DistanceConstrainedMonteCarlo>(graph_);
  }
  return distance_->Estimate(
      DistanceConstrainedQuery{query.source, query.target, max_hops},
      options.num_samples, options.seed, options.memory);
}

Result<double> MonteCarloEstimator::DoEstimate(const ReliabilityQuery& query,
                                               const EstimateOptions& options,
                                               MemoryTracker* memory) {
  const NodeId s = query.source;
  const NodeId t = query.target;
  const uint32_t k = options.num_samples;
  const uint32_t num_strata = options.num_strata == 0 ? 1 : options.num_strata;

  // Online structures: the epoch array and the BFS queue.
  ScopedAllocation working(
      memory, visit_epoch_.size() * sizeof(uint32_t) +
                  graph_.num_nodes() * sizeof(NodeId));

  if (s == t) return 1.0;

  // Stratified hit-and-miss: stratum j draws its budget slice from its own
  // derived stream, hits sum across strata — the same canonical-in-(content,
  // S) core as the source sweep (num_strata == 1 is the legacy loop,
  // bit-identical to the pre-strata path).
  uint32_t hits = 0;
  for (uint32_t j = 0; j < num_strata; ++j) {
    const uint32_t stratum_samples = StratumSampleCount(k, num_strata, j);
    if (stratum_samples == 0) continue;
    Rng rng(StratumSeed(options.seed, j, num_strata));
    for (uint32_t i = 0; i < stratum_samples; ++i) {
      ++epoch_;
      queue_.clear();
      queue_.push_back(s);
      visit_epoch_[s] = epoch_;
      bool reached = false;
      for (size_t head = 0; head < queue_.size() && !reached; ++head) {
        const NodeId v = queue_[head];
        for (const AdjEntry& a : graph_.OutEdges(v)) {
          if (visit_epoch_[a.neighbor] == epoch_) continue;
          if (!rng.Bernoulli(a.prob)) continue;  // lazy sampling on request
          if (a.neighbor == t) {                 // early stop at current round
            reached = true;
            break;
          }
          visit_epoch_[a.neighbor] = epoch_;
          queue_.push_back(a.neighbor);
        }
      }
      if (reached) ++hits;
      if (options.cancel != nullptr && (i % 64) == 0 &&
          options.cancel->Cancelled()) {
        return options.cancel->ToStatus();
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

}  // namespace relcomp
