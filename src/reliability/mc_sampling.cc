#include "reliability/mc_sampling.h"

#include <limits>

#include "common/rng.h"

namespace relcomp {

namespace {

/// Sweep core shared by the free function and the estimator's reusable-
/// scratch path: K sampled worlds, one full BFS each, per-node hit counts.
/// Visited marks use absolute epochs (epoch_base + 1 .. epoch_base + K), so
/// a caller reusing `visit_epoch` across sweeps skips the O(n) clear; the
/// RNG consumption — and thus the result — is identical either way.
Result<std::vector<double>> SourceSweep(const UncertainGraph& graph,
                                        NodeId source, uint32_t num_samples,
                                        uint64_t seed,
                                        std::vector<uint32_t>& hit_count,
                                        std::vector<uint32_t>& visit_epoch,
                                        std::vector<NodeId>& queue,
                                        uint32_t epoch_base) {
  if (!graph.HasNode(source)) {
    return Status::InvalidArgument("source sweep: source out of range");
  }
  if (num_samples == 0) {
    return Status::InvalidArgument("source sweep: num_samples must be positive");
  }
  Rng rng(seed);
  hit_count.assign(graph.num_nodes(), 0);
  visit_epoch.resize(graph.num_nodes(), 0);
  queue.reserve(graph.num_nodes());
  for (uint32_t i = 1; i <= num_samples; ++i) {
    const uint32_t epoch = epoch_base + i;
    queue.clear();
    queue.push_back(source);
    visit_epoch[source] = epoch;
    for (size_t head = 0; head < queue.size(); ++head) {
      const NodeId v = queue[head];
      for (const AdjEntry& a : graph.OutEdges(v)) {
        if (visit_epoch[a.neighbor] == epoch) continue;
        if (!rng.Bernoulli(a.prob)) continue;
        visit_epoch[a.neighbor] = epoch;
        ++hit_count[a.neighbor];
        queue.push_back(a.neighbor);
      }
    }
  }
  std::vector<double> reliability(graph.num_nodes(), 0.0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    reliability[v] =
        static_cast<double>(hit_count[v]) / static_cast<double>(num_samples);
  }
  return reliability;
}

}  // namespace

Result<std::vector<double>> MonteCarloReliabilityFromSource(
    const UncertainGraph& graph, NodeId source, uint32_t num_samples,
    uint64_t seed) {
  std::vector<uint32_t> hit_count;
  std::vector<uint32_t> visit_epoch;
  std::vector<NodeId> queue;
  return SourceSweep(graph, source, num_samples, seed, hit_count, visit_epoch,
                     queue, /*epoch_base=*/0);
}

MonteCarloEstimator::MonteCarloEstimator(const UncertainGraph& graph)
    : graph_(graph), visit_epoch_(graph.num_nodes(), 0) {
  queue_.reserve(graph.num_nodes());
}

Result<std::vector<double>> MonteCarloEstimator::EstimateFromSource(
    NodeId source, const EstimateOptions& options) {
  // Working state: hit counts, epoch marks, BFS queue, result vector.
  ScopedAllocation working(
      options.memory,
      graph_.num_nodes() * (3 * sizeof(uint32_t) + sizeof(double)));
  // Reused scratch: advance the epoch window past every mark the previous
  // sweep left behind; re-zero only when the counter would wrap.
  if (sweep_epoch_base_ >
      std::numeric_limits<uint32_t>::max() - options.num_samples) {
    sweep_epoch_.assign(sweep_epoch_.size(), 0);
    sweep_epoch_base_ = 0;
  }
  Result<std::vector<double>> result =
      SourceSweep(graph_, source, options.num_samples, options.seed,
                  sweep_hits_, sweep_epoch_, sweep_queue_, sweep_epoch_base_);
  if (result.ok()) sweep_epoch_base_ += options.num_samples;
  return result;
}

Result<double> MonteCarloEstimator::EstimateDistanceConstrained(
    const ReliabilityQuery& query, uint32_t max_hops,
    const EstimateOptions& options) {
  if (distance_ == nullptr) {
    distance_ = std::make_unique<DistanceConstrainedMonteCarlo>(graph_);
  }
  return distance_->Estimate(
      DistanceConstrainedQuery{query.source, query.target, max_hops},
      options.num_samples, options.seed, options.memory);
}

Result<double> MonteCarloEstimator::DoEstimate(const ReliabilityQuery& query,
                                               const EstimateOptions& options,
                                               MemoryTracker* memory) {
  const NodeId s = query.source;
  const NodeId t = query.target;
  const uint32_t k = options.num_samples;
  Rng rng(options.seed);

  // Online structures: the epoch array and the BFS queue.
  ScopedAllocation working(
      memory, visit_epoch_.size() * sizeof(uint32_t) +
                  graph_.num_nodes() * sizeof(NodeId));

  if (s == t) return 1.0;

  uint32_t hits = 0;
  for (uint32_t i = 0; i < k; ++i) {
    ++epoch_;
    queue_.clear();
    queue_.push_back(s);
    visit_epoch_[s] = epoch_;
    bool reached = false;
    for (size_t head = 0; head < queue_.size() && !reached; ++head) {
      const NodeId v = queue_[head];
      for (const AdjEntry& a : graph_.OutEdges(v)) {
        if (visit_epoch_[a.neighbor] == epoch_) continue;
        if (!rng.Bernoulli(a.prob)) continue;  // lazy sampling on request
        if (a.neighbor == t) {                 // early stop at current round
          reached = true;
          break;
        }
        visit_epoch_[a.neighbor] = epoch_;
        queue_.push_back(a.neighbor);
      }
    }
    if (reached) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

}  // namespace relcomp
