#include "reliability/mc_sampling.h"

#include "common/rng.h"

namespace relcomp {

MonteCarloEstimator::MonteCarloEstimator(const UncertainGraph& graph)
    : graph_(graph), visit_epoch_(graph.num_nodes(), 0) {
  queue_.reserve(graph.num_nodes());
}

Result<double> MonteCarloEstimator::DoEstimate(const ReliabilityQuery& query,
                                               const EstimateOptions& options,
                                               MemoryTracker* memory) {
  const NodeId s = query.source;
  const NodeId t = query.target;
  const uint32_t k = options.num_samples;
  Rng rng(options.seed);

  // Online structures: the epoch array and the BFS queue.
  ScopedAllocation working(
      memory, visit_epoch_.size() * sizeof(uint32_t) +
                  graph_.num_nodes() * sizeof(NodeId));

  if (s == t) return 1.0;

  uint32_t hits = 0;
  for (uint32_t i = 0; i < k; ++i) {
    ++epoch_;
    queue_.clear();
    queue_.push_back(s);
    visit_epoch_[s] = epoch_;
    bool reached = false;
    for (size_t head = 0; head < queue_.size() && !reached; ++head) {
      const NodeId v = queue_[head];
      for (const AdjEntry& a : graph_.OutEdges(v)) {
        if (visit_epoch_[a.neighbor] == epoch_) continue;
        if (!rng.Bernoulli(a.prob)) continue;  // lazy sampling on request
        if (a.neighbor == t) {                 // early stop at current round
          reached = true;
          break;
        }
        visit_epoch_[a.neighbor] = epoch_;
        queue_.push_back(a.neighbor);
      }
    }
    if (reached) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

}  // namespace relcomp
