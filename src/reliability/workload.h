#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "reliability/estimator.h"
#include "reliability/top_k.h"

namespace relcomp {

/// \brief The reliability workload family of the benchmark study. The paper
/// frames s-t reliability as one instance of a family: BFS Sharing [45] was
/// originally a top-k source sweep, reliable-set is Section 2.9, and
/// distance-constrained reliability is the query recursive sampling [20] was
/// designed for. The engine dispatches all of them through one pipeline.
enum class WorkloadKind : uint8_t {
  kSt = 0,          ///< R(s, t): probability t is reachable from s
  kTopK,            ///< k most reliable targets from s (source sweep)
  kReliableSet,     ///< all targets with reliability >= eta from s
  kDistance,        ///< R_d(s, t): reachable within at most d hops
};

inline constexpr size_t kNumWorkloadKinds = 4;

/// Short display name ("st", "top-k", "reliable-set", "distance").
const char* WorkloadKindName(WorkloadKind kind);

/// True for the workload kinds answered by one per-source reliability sweep
/// (EstimateFromSource): top-k and reliable-set. Every sweep-kind query over
/// one source is a derived view of the same vector — the engine's
/// sweep-sharing layer exploits exactly this.
inline constexpr bool IsSweepWorkload(WorkloadKind kind) {
  return kind == WorkloadKind::kTopK || kind == WorkloadKind::kReliableSet;
}

/// \brief One typed, parameterized query the engine can dispatch, cache, and
/// coalesce — a tagged variant over the four workload kinds.
///
/// The layout is flat (tag + the union of all parameter fields); equality
/// and hashing consider only the tag and the fields it uses, so the cache
/// key and the derived per-query seed are well-defined for every kind and a
/// hand-built query carrying stale values in unused fields behaves exactly
/// like its factory-built twin.
struct EngineQuery {
  WorkloadKind workload = WorkloadKind::kSt;
  NodeId source = kInvalidNode;
  /// St / Distance only.
  NodeId target = kInvalidNode;
  /// TopK only: how many targets to rank.
  uint32_t k = 0;
  /// ReliableSet only: the reliability threshold eta in [0, 1].
  double eta = 0.0;
  /// Distance only: the hop bound d.
  uint32_t max_hops = 0;

  /// \name QoS (never part of identity)
  /// Deadlines and cancellation describe *this submission*, not the answer —
  /// equality and hashing ignore them (the tag-switched operator== below
  /// never reads them), so a query with a deadline coalesces with, and is
  /// served from the cache of, the same query without one.
  /// @{
  /// Per-query deadline in milliseconds from submission; 0 uses
  /// EngineOptions::default_deadline_ms (which may itself be 0 = none).
  double deadline_ms = 0.0;
  /// Optional caller-owned cancellation handle; must outlive the engine call
  /// that carries it. The engine copies queries into cache keys and flight
  /// tables, but never dereferences this pointer after the call returns.
  const CancelToken* cancel = nullptr;
  /// @}

  EngineQuery() = default;
  /// Wraps a plain s-t query. Explicit so brace-initialized
  /// ReliabilityQuery literals keep resolving to the s-t overloads.
  explicit EngineQuery(const ReliabilityQuery& query)
      : source(query.source), target(query.target) {}

  /// \name Factory constructors, one per workload kind.
  /// @{
  static EngineQuery St(NodeId source, NodeId target);
  static EngineQuery TopK(NodeId source, uint32_t k);
  static EngineQuery ReliableSet(NodeId source, double eta);
  static EngineQuery Distance(NodeId source, NodeId target, uint32_t max_hops);
  /// @}

  /// The s-t view of this query (valid for kSt and kDistance).
  ReliabilityQuery AsSt() const { return ReliabilityQuery{source, target}; }

  bool operator==(const EngineQuery& other) const;

  /// e.g. "top-k(s=3, k=10)" — for logs and error messages.
  std::string Describe() const;
};

/// Folds every field of `query` (including the workload tag) into `seed`
/// with HashCombineSeed. Used for both the engine's content-derived
/// per-query seeds and the result-cache key hash, so two workloads over the
/// same nodes can never alias.
uint64_t HashWorkloadQuery(uint64_t seed, const EngineQuery& query);

/// Validates `query` against `graph`: node ranges for every kind, k > 0 for
/// top-k, eta in [0, 1] for reliable-set.
Status ValidateWorkload(const UncertainGraph& graph, const EngineQuery& query);

/// \brief Polymorphic outcome of one dispatched workload query.
///
/// Scalar kinds (st, distance) fill `reliability`; sweep kinds (top-k,
/// reliable-set) fill `targets` (ranked by decreasing reliability, ties
/// toward smaller node ids, source excluded).
struct WorkloadResult {
  double reliability = 0.0;
  std::vector<ReliableTarget> targets;
  uint32_t num_samples = 0;
  /// Peak working-set bytes of the executing estimator call — reported for
  /// every kind (s-t via EstimateResult; sweeps and distance via the
  /// MemoryTracker plumbed through EstimateOptions::memory).
  size_t peak_memory_bytes = 0;
  /// The answer was derived from a TTL-expired sweep served inside the
  /// stale-while-revalidate window (engine sweep path only; DispatchWorkload
  /// never sets it).
  bool served_stale = false;
};

/// \brief Derives a sweep-kind query's answer from an already-computed
/// per-source reliability vector — the same RankTopKTargets /
/// FilterReliableSet cores DispatchWorkload runs after its own sweep, so for
/// equal vectors the derived answer is bit-identical to a direct dispatch.
/// `query` must be a sweep kind (IsSweepWorkload); `num_samples` is the
/// sample budget the sweep consumed.
WorkloadResult DeriveFromSweep(const EngineQuery& query,
                               const std::vector<double>& reliability,
                               uint32_t num_samples);

/// \brief Executes `query` on `replica` — the engine's per-worker dispatch
/// surface.
///
/// - kSt runs Estimator::Estimate (all kinds).
/// - kTopK / kReliableSet run Estimator::EstimateFromSource and rank/filter
///   with the same helpers as the standalone TopKReliableTargets* /
///   ReliableSet* APIs, so engine answers are bit-identical to them for
///   equal (source, num_samples, seed). Supported by MC and BFS Sharing.
/// - kDistance runs Estimator::EstimateDistanceConstrained (MC, RHH).
///
/// Unsupported (kind, workload) combinations return NotSupported — a
/// per-query failure, never a crash.
Result<WorkloadResult> DispatchWorkload(Estimator& replica,
                                        const EngineQuery& query,
                                        const EstimateOptions& options);

}  // namespace relcomp
