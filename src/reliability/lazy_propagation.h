#pragma once

#include <cstdint>
#include <vector>

#include "reliability/estimator.h"

namespace relcomp {

/// \brief Options for Lazy Propagation sampling.
struct LazyPropagationOptions {
  /// true  => LP+ : the paper's corrected re-arm `X' + c_v + 1`
  ///                (Section 2.6, "Our correction in the algorithm").
  /// false => LP  : the original (buggy) re-arm `X' + c_v` from [30], kept
  ///                to reproduce the over-estimation shown in Figure 5.
  bool corrected = true;
};

/// \brief Lazy Propagation sampling (Algorithm 6; Li et al. [30], adapted to
/// s-t reliability).
///
/// Instead of tossing every probed edge per sample, each edge draws a
/// geometric variate that says after how many expansions of its tail it will
/// exist next; a per-node min-heap fires edges whose round matches the tail's
/// expansion counter c_v. Expected probing cost drops by a factor 1/P(e).
/// Statistically equivalent to MC (same variance).
class LazyPropagationEstimator : public Estimator {
 public:
  LazyPropagationEstimator(const UncertainGraph& graph,
                           const LazyPropagationOptions& options = {});

  std::string_view name() const override { return options_.corrected ? "LP+" : "LP"; }
  const UncertainGraph& graph() const override { return graph_; }

  /// Heap-ordered lazy edge arming: fewer edges fire per sample than MC
  /// visits, but each firing pays a log-heap operation.
  CostHints cost_hints() const override {
    CostHints hints;
    hints.per_sample_edge_cost = 1.5;
    return hints;
  }

 protected:
  Result<double> DoEstimate(const ReliabilityQuery& query,
                            const EstimateOptions& options,
                            MemoryTracker* memory) override;

 private:
  /// One lazily-armed edge: fires when its tail's counter reaches `round`.
  struct Armed {
    uint64_t round = 0;
    EdgeId edge = kInvalidEdge;
    bool operator>(const Armed& other) const { return round > other.round; }
  };
  /// Binary min-heap on Armed::round (std::priority_queue on a flat vector).
  struct NodeHeap {
    std::vector<Armed> entries;  // heapified, std::greater ordering
    void Push(Armed a);
    const Armed& Top() const { return entries.front(); }
    Armed Pop();
    bool Empty() const { return entries.empty(); }
  };

  const UncertainGraph& graph_;
  LazyPropagationOptions options_;
  /// Re-armed entries deferred past the current drain (LP variant only).
  std::vector<Armed> pending_;
};

}  // namespace relcomp
