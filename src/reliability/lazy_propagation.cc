#include "reliability/lazy_propagation.h"

#include <algorithm>

#include "common/rng.h"

namespace relcomp {

void LazyPropagationEstimator::NodeHeap::Push(Armed a) {
  entries.push_back(a);
  std::push_heap(entries.begin(), entries.end(), std::greater<>());
}

LazyPropagationEstimator::Armed LazyPropagationEstimator::NodeHeap::Pop() {
  std::pop_heap(entries.begin(), entries.end(), std::greater<>());
  Armed a = entries.back();
  entries.pop_back();
  return a;
}

LazyPropagationEstimator::LazyPropagationEstimator(
    const UncertainGraph& graph, const LazyPropagationOptions& options)
    : graph_(graph), options_(options) {}

Result<double> LazyPropagationEstimator::DoEstimate(
    const ReliabilityQuery& query, const EstimateOptions& options,
    MemoryTracker* memory) {
  const NodeId s = query.source;
  const NodeId t = query.target;
  const uint32_t k = options.num_samples;
  Rng rng(options.seed);
  const size_t n = graph_.num_nodes();

  if (s == t) return 1.0;

  // Per-query lazy state: expansion counters c_v and per-node heaps h_v,
  // both created on first visit (Alg. 6 lines 12-18).
  std::vector<uint64_t> counter(n, 0);
  std::vector<uint8_t> initialized(n, 0);
  std::vector<NodeHeap> heaps(n);
  // Per-sample visited marks (epoch-stamped) + BFS worklist.
  std::vector<uint32_t> visit_epoch(n, 0);
  std::vector<NodeId> worklist;
  worklist.reserve(n);

  ScopedAllocation working(
      memory, n * (sizeof(uint64_t) + sizeof(uint8_t) + sizeof(uint32_t)) +
                  n * sizeof(NodeHeap) + n * sizeof(NodeId));

  uint32_t hits = 0;
  uint32_t epoch = 0;
  for (uint32_t i = 0; i < k; ++i) {
    ++epoch;
    worklist.clear();
    worklist.push_back(s);
    visit_epoch[s] = epoch;
    bool reached = false;
    for (size_t head = 0; head < worklist.size() && !reached; ++head) {
      const NodeId v = worklist[head];
      if (!initialized[v]) {
        initialized[v] = 1;
        counter[v] = 0;
        auto& heap = heaps[v];
        heap.entries.reserve(graph_.OutDegree(v));
        for (const AdjEntry& a : graph_.OutEdges(v)) {
          heap.Push(Armed{rng.Geometric(a.prob) /* + c_v == 0 */, a.edge});
        }
        working.Grow(graph_.OutDegree(v) * sizeof(Armed));
      }
      auto& heap = heaps[v];
      // Drain every edge armed for this expansion round. When t is hit we
      // still finish the ties so the lazy state stays consistent across
      // samples, then stop the sample (early termination).
      //
      // LP+ (corrected): re-arm at c_v + 1 + X' — the edge skips exactly X'
      // future expansions, reproducing independent Bernoulli(p) probes.
      //
      // LP (original bug, Section 2.6 / Example 1): re-arm at c_v + X', one
      // round too early. Deferring re-armed entries past the current drain
      // and catching up on anything armed for a past round (round <= c_v)
      // realizes the paper's described behaviour — "node 2 will be probed
      // again [in the next world]" — without the infinite re-fire a literal
      // same-round replay would cause. Net effect: inter-fire gaps shrink
      // from X'+1 to max(X', 1), inflating the per-round edge presence rate
      // to p / (1 - p + p^2) > p, i.e. the over-estimation of Figure 5.
      pending_.clear();
      auto armed_now = [&]() {
        if (heap.Empty()) return false;
        return options_.corrected ? heap.Top().round == counter[v]
                                  : heap.Top().round <= counter[v];
      };
      while (armed_now()) {
        const Armed fired = heap.Pop();
        const EdgeRecord& rec = graph_.edge(fired.edge);
        const NodeId nbr = rec.head;
        const uint64_t base = counter[v] + (options_.corrected ? 1 : 0);
        const Armed rearmed{base + rng.Geometric(rec.prob), fired.edge};
        if (options_.corrected) {
          heap.Push(rearmed);  // always a future round; safe to re-insert now
        } else {
          pending_.push_back(rearmed);  // defer so this round fires each edge once
        }
        if (visit_epoch[nbr] != epoch) {
          visit_epoch[nbr] = epoch;
          if (nbr == t) {
            reached = true;
            // keep draining ties; do not expand further nodes
          } else {
            worklist.push_back(nbr);
          }
        }
      }
      for (const Armed& a : pending_) heap.Push(a);
      counter[v] += 1;
    }
    if (reached) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

}  // namespace relcomp
