#include "reliability/exact.h"

#include <vector>

#include "common/format.h"
#include "graph/subgraph.h"

namespace relcomp {

namespace {

/// BFS over edges whose state satisfies `keep`; returns whether t is reached.
template <typename KeepFn>
bool StateReachable(const UncertainGraph& g, NodeId s, NodeId t,
                    const std::vector<EdgeState>& states, KeepFn keep) {
  if (s == t) return true;
  std::vector<uint8_t> visited(g.num_nodes(), 0);
  std::vector<NodeId> queue;
  queue.push_back(s);
  visited[s] = 1;
  for (size_t head = 0; head < queue.size(); ++head) {
    const NodeId v = queue[head];
    for (const AdjEntry& a : g.OutEdges(v)) {
      if (!keep(states[a.edge]) || visited[a.neighbor]) continue;
      if (a.neighbor == t) return true;
      visited[a.neighbor] = 1;
      queue.push_back(a.neighbor);
    }
  }
  return false;
}

/// First undetermined out-edge of the component certainly reached via
/// included edges, in DFS preorder from s; kInvalidEdge if none.
EdgeId SelectEdgeDfs(const UncertainGraph& g, NodeId s,
                     const std::vector<EdgeState>& states) {
  std::vector<uint8_t> visited(g.num_nodes(), 0);
  std::vector<NodeId> stack;
  stack.push_back(s);
  visited[s] = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (const AdjEntry& a : g.OutEdges(v)) {
      if (states[a.edge] == EdgeState::kUndetermined) return a.edge;
      if (states[a.edge] == EdgeState::kIncluded && !visited[a.neighbor]) {
        visited[a.neighbor] = 1;
        stack.push_back(a.neighbor);
      }
    }
  }
  return kInvalidEdge;
}

struct FactoringContext {
  const UncertainGraph& graph;
  NodeId s;
  NodeId t;
  std::vector<EdgeState> states;
  uint64_t steps = 0;
  uint64_t max_steps = 0;
  bool exhausted = false;
};

double FactorRecurse(FactoringContext& ctx) {
  if (ctx.exhausted) return 0.0;
  if (++ctx.steps > ctx.max_steps) {
    ctx.exhausted = true;
    return 0.0;
  }
  const auto included = [](EdgeState st) { return st == EdgeState::kIncluded; };
  const auto not_excluded = [](EdgeState st) {
    return st != EdgeState::kExcluded;
  };
  if (StateReachable(ctx.graph, ctx.s, ctx.t, ctx.states, included)) return 1.0;
  if (!StateReachable(ctx.graph, ctx.s, ctx.t, ctx.states, not_excluded)) {
    return 0.0;
  }
  const EdgeId e = SelectEdgeDfs(ctx.graph, ctx.s, ctx.states);
  if (e == kInvalidEdge) {
    // Unreachable: a residual s-t path always passes through an undetermined
    // edge leaving the certainly-reached component.
    return 0.0;
  }
  const double p = ctx.graph.prob(e);
  ctx.states[e] = EdgeState::kIncluded;
  const double with_e = FactorRecurse(ctx);
  ctx.states[e] = EdgeState::kExcluded;
  const double without_e = FactorRecurse(ctx);
  ctx.states[e] = EdgeState::kUndetermined;
  return p * with_e + (1.0 - p) * without_e;
}

}  // namespace

Result<double> ExactReliabilityEnumeration(const UncertainGraph& graph, NodeId s,
                                           NodeId t, uint32_t max_edges) {
  if (!graph.HasNode(s) || !graph.HasNode(t)) {
    return Status::InvalidArgument("exact enumeration: query node out of range");
  }
  const size_t m = graph.num_edges();
  if (m > max_edges) {
    return Status::OutOfRange(
        StrFormat("exact enumeration infeasible: m=%zu > %u", m, max_edges));
  }
  if (s == t) return 1.0;

  double reliability = 0.0;
  std::vector<uint8_t> mask(m, 0);
  std::vector<uint8_t> visited(graph.num_nodes(), 0);
  std::vector<NodeId> queue;
  const uint64_t worlds = 1ULL << m;
  for (uint64_t w = 0; w < worlds; ++w) {
    double pr = 1.0;
    for (size_t e = 0; e < m; ++e) {
      mask[e] = (w >> e) & 1ULL;
      pr *= mask[e] ? graph.prob(static_cast<EdgeId>(e))
                    : 1.0 - graph.prob(static_cast<EdgeId>(e));
    }
    if (pr == 0.0) continue;
    std::fill(visited.begin(), visited.end(), 0);
    queue.clear();
    queue.push_back(s);
    visited[s] = 1;
    bool reached = false;
    for (size_t head = 0; head < queue.size() && !reached; ++head) {
      for (const AdjEntry& a : graph.OutEdges(queue[head])) {
        if (!mask[a.edge] || visited[a.neighbor]) continue;
        if (a.neighbor == t) {
          reached = true;
          break;
        }
        visited[a.neighbor] = 1;
        queue.push_back(a.neighbor);
      }
    }
    if (reached) reliability += pr;
  }
  return reliability;
}

Result<double> ExactReliabilityFactoring(const UncertainGraph& graph, NodeId s,
                                         NodeId t, uint64_t max_steps) {
  if (!graph.HasNode(s) || !graph.HasNode(t)) {
    return Status::InvalidArgument("exact factoring: query node out of range");
  }
  if (s == t) return 1.0;
  FactoringContext ctx{graph, s, t,
                       std::vector<EdgeState>(graph.num_edges(),
                                              EdgeState::kUndetermined),
                       0, max_steps, false};
  const double r = FactorRecurse(ctx);
  if (ctx.exhausted) {
    return Status::OutOfRange(
        StrFormat("exact factoring exceeded %llu steps",
                  static_cast<unsigned long long>(max_steps)));
  }
  return r;
}

}  // namespace relcomp
