#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "common/cancel.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "graph/uncertain_graph.h"
#include "obs/trace.h"

namespace relcomp {

/// \brief An s-t reliability query: the probability R(s, t) that `target` is
/// reachable from `source` under possible-world semantics (Eq. 2).
struct ReliabilityQuery {
  NodeId source = kInvalidNode;
  NodeId target = kInvalidNode;
};

/// \brief Per-call knobs shared by all estimators.
struct EstimateOptions {
  /// Number of samples K. Recursive estimators interpret this as the total
  /// sample budget they split across branches/strata.
  uint32_t num_samples = 1000;
  /// Seed for this call; equal seeds give bit-identical results.
  uint64_t seed = 0;
  /// Stratified sample partitioning: the budget K is split into this many
  /// fixed strata, stratum j drawing from StratumSeed(seed, j, num_strata).
  /// The result is a canonical function of (query content, num_strata) —
  /// NOT of thread count or execution order — so an engine may run the
  /// strata of one call on many workers (EstimateSweepStratumHits) and merge
  /// bit-identically to a serial call with the same num_strata. num_strata
  /// <= 1 is the legacy unstratified path, bit-identical to pre-strata
  /// behaviour. Honored by the MC cores (sweeps and s-t DoEstimate); BFS
  /// Sharing sweeps are stratified by world *slices* of one generation, so
  /// their results are identical for every num_strata; estimators without a
  /// stratified core ignore it.
  uint32_t num_strata = 1;
  /// Optional sink for the call's working-set accounting (the paper's
  /// "online memory usage" metric). Consulted by the dispatch-surface calls
  /// (EstimateFromSource, EstimateDistanceConstrained) — Estimate() tracks
  /// internally and reports through EstimateResult instead. Never part of
  /// the determinism contract: results are identical with or without it.
  MemoryTracker* memory = nullptr;
  /// Optional per-query trace collector (engine-owned). Estimator cores that
  /// do stage-shaped work (MC sample loops, BFS Sharing world slices) emit
  /// kSample / kBfs spans into it, parented under `trace_parent`. Like
  /// `memory`, never part of the determinism contract: results are
  /// bit-identical with tracing on or off.
  obs::TraceBuffer* trace = nullptr;
  /// Span id in `trace` the estimator's spans attach under
  /// (obs::TraceBuffer::kNone = root).
  uint32_t trace_parent = obs::TraceBuffer::kNone;
  /// Optional cooperative-cancellation token (engine-owned, may be null).
  /// Cores with long sample loops poll it at stratum boundaries (MC
  /// additionally every few dozen samples) and return kDeadlineExceeded /
  /// kCancelled instead of finishing. All-or-nothing: a cancelled call
  /// never returns a partial estimate, so completed calls are bit-identical
  /// with or without a token attached (polling consumes no randomness).
  const CancelToken* cancel = nullptr;
};

/// \brief Outcome of one estimation call.
struct EstimateResult {
  /// The reliability estimate in [0, 1].
  double reliability = 0.0;
  /// Samples actually consumed (== EstimateOptions::num_samples except for
  /// degenerate early exits).
  uint32_t num_samples = 0;
  /// Wall-clock seconds spent inside the call.
  double seconds = 0.0;
  /// Peak logical bytes of the estimator's online working structures for
  /// this call (excludes the input graph and any prebuilt index; see
  /// Estimator::IndexMemoryBytes).
  size_t peak_memory_bytes = 0;
};

/// \brief Per-kind asymptotic cost terms an estimator reports about itself.
///
/// Consumed by the engine's EstimatorRouter to seed its Default cost model
/// (RouterModel::Default) when no calibrated tournament profile is loaded.
/// These are rough *priors*, not measurements — the unit is "edge visits",
/// normalized so plain MC costs 1.0 per sample per expected sampled edge;
/// a calibrated profile (estimator_tournament --json) always overrides them.
/// Never part of the determinism contract: changing a hint changes routing
/// predictions, never the answer a given (kind, K, S, seed) produces.
struct CostHints {
  /// Edge-visit cost of one sample / possible world, relative to MC's BFS
  /// over one sampled subgraph (multiplied by K and the expected sampled
  /// edge count when predicting a call).
  double per_sample_edge_cost = 1.0;
  /// Fixed per-query edge-visit cost independent of K, in multiples of the
  /// graph's edge count m (BFS Sharing's inter-query resample is L bits per
  /// edge, so it reports ~L here; index-free kinds report 0).
  double per_query_edge_cost = 0.0;
  /// True when one EstimateFromSource amortizes the per-sample work across
  /// every target, so a full sweep costs about the same as one s-t call.
  bool sweep_amortized = false;
};

/// \brief Opaque artifact of an inter-query maintenance step performed off
/// the serving path.
///
/// Estimators whose PrepareForNextQuery does real work (BFS Sharing's world
/// resampling) can split it in two: BuildPreparedGeneration constructs the
/// exact artifact PrepareForNextQuery(seed) would install — on any thread,
/// overlapping the previous query's BFS — and AdoptPreparedGeneration
/// installs it on the serving thread in O(1). The concrete payload is
/// estimator-specific; callers only move the handle between the two calls.
class PreparedGeneration {
 public:
  virtual ~PreparedGeneration() = default;

  /// Logical bytes this ready-but-unadopted artifact keeps resident (a BFS
  /// Sharing generation is index-sized: the full L-bit-per-edge vectors).
  /// Lets the GenerationPrebuilder bound its ready pool by bytes and memory
  /// reports account prebuilt generations alongside the live index.
  virtual size_t MemoryBytes() const { return 0; }
};

/// \brief Common interface of the six s-t reliability estimators.
///
/// An estimator binds to one UncertainGraph at construction and answers many
/// queries. Implementations are deterministic in EstimateOptions::seed and
/// reusable (scratch is reset per call); they are not thread-safe per
/// instance — use one instance per thread.
///
/// Beyond the core s-t Estimate, the interface carries an optional workload
/// dispatch surface (source sweeps for top-k / reliable-set, distance-
/// constrained estimation) so engine replicas can answer the whole workload
/// family of reliability/workload.h. Kinds that cannot answer a workload
/// return NotSupported from the defaults.
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Short display name ("MC", "BFSSharing", "ProbTree", "LP+", "RHH",
  /// "RSS").
  virtual std::string_view name() const = 0;

  /// The graph this estimator answers queries over.
  virtual const UncertainGraph& graph() const = 0;

  /// Estimates R(s, t). Validates the query, times the call, and accounts
  /// the working memory; the algorithm itself is in DoEstimate.
  Result<EstimateResult> Estimate(const ReliabilityQuery& query,
                                  const EstimateOptions& options);

  /// Asymptotic cost terms of this estimator (see CostHints): the router's
  /// fallback priors when no calibrated profile is available. The default is
  /// MC-shaped (1.0 per sample per edge, no fixed per-query work).
  virtual CostHints cost_hints() const { return CostHints{}; }

  /// Logical bytes of any prebuilt index kept resident for queries
  /// (BFS Sharing edge bit-vectors, ProbTree bags); 0 for index-free
  /// estimators.
  virtual size_t IndexMemoryBytes() const { return 0; }

  /// The portion of IndexMemoryBytes() held through an immutable index that
  /// may be shared with other replicas (see MakeEstimatorReplicas). Memory
  /// reports must count each shared index once, not once per replica —
  /// deduplicate by SharedIndexIdentity(). 0 for index-free estimators.
  virtual size_t SharedIndexBytes() const { return 0; }

  /// Stable identity of the shared index this replica currently holds (the
  /// index object's address), or nullptr when it holds none. Two replicas
  /// returning the same non-null identity read literally the same index.
  virtual const void* SharedIndexIdentity() const { return nullptr; }

  /// Inter-query maintenance hook. BFS Sharing must resample its possible
  /// worlds between successive queries to keep answers independent
  /// (Table 15); all other estimators are no-ops.
  virtual Status PrepareForNextQuery(uint64_t seed) {
    (void)seed;
    return Status::OK();
  }

  /// \name Background-prepare surface (generation prebuilding)
  /// @{

  /// True when PrepareForNextQuery's work can be built off-thread through
  /// BuildPreparedGeneration / AdoptPreparedGeneration (BFS Sharing).
  virtual bool SupportsPreparedGenerations() const { return false; }

  /// Builds, without touching this instance's mutable state, the artifact
  /// PrepareForNextQuery(seed) would install — bit-identical by contract.
  /// Must be safe to call from a background thread while this instance
  /// concurrently serves queries (it may only read construction-time
  /// immutable state: the graph and the options). Default: NotSupported.
  virtual Result<std::unique_ptr<PreparedGeneration>> BuildPreparedGeneration(
      uint64_t seed) const;

  /// Installs a generation built by BuildPreparedGeneration on *any* replica
  /// bound to the same graph and options (replicas are interchangeable).
  /// Serving-thread only, like PrepareForNextQuery. Default: NotSupported.
  virtual Status AdoptPreparedGeneration(
      std::unique_ptr<PreparedGeneration> generation);

  /// True when a *prepared* replica can hand its per-query prepared state
  /// to sibling replicas in O(1) (BFS Sharing: the freshly resampled
  /// generation, shared read-only), so workers stealing strata of one
  /// sweep skip re-running the O(L·m) prepare the leader already did.
  virtual bool SupportsSharedPreparedState() const { return false; }

  /// Read-only snapshot of this replica's current prepared state,
  /// adoptable by any replica of the same graph and options.
  /// Precondition: PrepareForNextQuery (or an adoption) ran for the
  /// current query. Default: NotSupported.
  virtual Result<std::shared_ptr<const PreparedGeneration>>
  ShareCurrentPreparedState() const;

  /// Points this replica at `state` (a ShareCurrentPreparedState snapshot):
  /// bit-identical to having run PrepareForNextQuery with the sharer's
  /// seed, in O(1). The replica yields any in-place-resample ownership
  /// until its next inline prepare (shared generations are never mutated
  /// under a reader). Serving-thread only. Default: NotSupported.
  virtual Status AdoptSharedPreparedState(
      std::shared_ptr<const PreparedGeneration> state);

  /// @}

  /// \name Workload dispatch surface (source sweeps, distance bounds)
  /// @{

  /// True when EstimateFromSource is implemented natively (one sweep
  /// amortized across every candidate target — MC and BFS Sharing).
  virtual bool SupportsSourceSweep() const { return false; }

  /// Source sweep: the reliability of every node from `source` (index =
  /// node id; 0 for unreachable nodes, including any value for the source
  /// itself — callers exclude it). Deterministic in `options.seed` exactly
  /// like Estimate. Default: NotSupported.
  virtual Result<std::vector<double>> EstimateFromSource(
      NodeId source, const EstimateOptions& options);

  /// True when one source sweep can execute as independent strata through
  /// EstimateSweepStratumHits (MC and BFS Sharing). Implies
  /// SupportsSourceSweep.
  virtual bool SupportsStratifiedSweep() const { return false; }

  /// Runs stratum `stratum` of the `num_strata`-way partition of the source
  /// sweep defined by (source, options.num_samples, options.seed): per-node
  /// *hit counts* over this stratum's sample slice (index = node id). The
  /// contract that makes engine-side work stealing semantically invisible:
  /// summing every stratum's counts in index order and dividing by
  /// options.num_samples is bit-identical to EstimateFromSource with
  /// options.num_strata == num_strata — on any thread, in any claim order.
  /// options.num_samples is the TOTAL budget K (the callee derives its
  /// slice via StratumSampleCount / StratumSampleOffset) and options.seed is
  /// the sweep seed (the callee derives its stratum seed). Strata of one
  /// sweep may run on different replicas; each replica must be prepared
  /// identically first (same PrepareForNextQuery seed). Default:
  /// NotSupported.
  virtual Result<std::vector<uint32_t>> EstimateSweepStratumHits(
      NodeId source, uint32_t stratum, uint32_t num_strata,
      const EstimateOptions& options);

  /// True when EstimateDistanceConstrained is implemented natively (MC and
  /// RHH, the estimators the distance-constrained variants of
  /// reliability/distance_constrained.h are built on).
  virtual bool SupportsDistanceConstrained() const { return false; }

  /// Distance-constrained reliability R_d(s, t): reachable within at most
  /// `max_hops` hops. Deterministic in `options.seed`. Default: NotSupported.
  virtual Result<double> EstimateDistanceConstrained(
      const ReliabilityQuery& query, uint32_t max_hops,
      const EstimateOptions& options);

  /// @}

 protected:
  /// Algorithm body: returns the reliability estimate, reporting working
  /// structures to `memory`.
  virtual Result<double> DoEstimate(const ReliabilityQuery& query,
                                    const EstimateOptions& options,
                                    MemoryTracker* memory) = 0;
};

}  // namespace relcomp
