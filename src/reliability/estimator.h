#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace relcomp {

/// \brief An s-t reliability query: the probability R(s, t) that `target` is
/// reachable from `source` under possible-world semantics (Eq. 2).
struct ReliabilityQuery {
  NodeId source = kInvalidNode;
  NodeId target = kInvalidNode;
};

/// \brief Per-call knobs shared by all estimators.
struct EstimateOptions {
  /// Number of samples K. Recursive estimators interpret this as the total
  /// sample budget they split across branches/strata.
  uint32_t num_samples = 1000;
  /// Seed for this call; equal seeds give bit-identical results.
  uint64_t seed = 0;
  /// Optional sink for the call's working-set accounting (the paper's
  /// "online memory usage" metric). Consulted by the dispatch-surface calls
  /// (EstimateFromSource, EstimateDistanceConstrained) — Estimate() tracks
  /// internally and reports through EstimateResult instead. Never part of
  /// the determinism contract: results are identical with or without it.
  MemoryTracker* memory = nullptr;
};

/// \brief Outcome of one estimation call.
struct EstimateResult {
  /// The reliability estimate in [0, 1].
  double reliability = 0.0;
  /// Samples actually consumed (== EstimateOptions::num_samples except for
  /// degenerate early exits).
  uint32_t num_samples = 0;
  /// Wall-clock seconds spent inside the call.
  double seconds = 0.0;
  /// Peak logical bytes of the estimator's online working structures for
  /// this call (excludes the input graph and any prebuilt index; see
  /// Estimator::IndexMemoryBytes).
  size_t peak_memory_bytes = 0;
};

/// \brief Opaque artifact of an inter-query maintenance step performed off
/// the serving path.
///
/// Estimators whose PrepareForNextQuery does real work (BFS Sharing's world
/// resampling) can split it in two: BuildPreparedGeneration constructs the
/// exact artifact PrepareForNextQuery(seed) would install — on any thread,
/// overlapping the previous query's BFS — and AdoptPreparedGeneration
/// installs it on the serving thread in O(1). The concrete payload is
/// estimator-specific; callers only move the handle between the two calls.
class PreparedGeneration {
 public:
  virtual ~PreparedGeneration() = default;
};

/// \brief Common interface of the six s-t reliability estimators.
///
/// An estimator binds to one UncertainGraph at construction and answers many
/// queries. Implementations are deterministic in EstimateOptions::seed and
/// reusable (scratch is reset per call); they are not thread-safe per
/// instance — use one instance per thread.
///
/// Beyond the core s-t Estimate, the interface carries an optional workload
/// dispatch surface (source sweeps for top-k / reliable-set, distance-
/// constrained estimation) so engine replicas can answer the whole workload
/// family of reliability/workload.h. Kinds that cannot answer a workload
/// return NotSupported from the defaults.
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Short display name ("MC", "BFSSharing", "ProbTree", "LP+", "RHH",
  /// "RSS").
  virtual std::string_view name() const = 0;

  /// The graph this estimator answers queries over.
  virtual const UncertainGraph& graph() const = 0;

  /// Estimates R(s, t). Validates the query, times the call, and accounts
  /// the working memory; the algorithm itself is in DoEstimate.
  Result<EstimateResult> Estimate(const ReliabilityQuery& query,
                                  const EstimateOptions& options);

  /// Logical bytes of any prebuilt index kept resident for queries
  /// (BFS Sharing edge bit-vectors, ProbTree bags); 0 for index-free
  /// estimators.
  virtual size_t IndexMemoryBytes() const { return 0; }

  /// The portion of IndexMemoryBytes() held through an immutable index that
  /// may be shared with other replicas (see MakeEstimatorReplicas). Memory
  /// reports must count each shared index once, not once per replica —
  /// deduplicate by SharedIndexIdentity(). 0 for index-free estimators.
  virtual size_t SharedIndexBytes() const { return 0; }

  /// Stable identity of the shared index this replica currently holds (the
  /// index object's address), or nullptr when it holds none. Two replicas
  /// returning the same non-null identity read literally the same index.
  virtual const void* SharedIndexIdentity() const { return nullptr; }

  /// Inter-query maintenance hook. BFS Sharing must resample its possible
  /// worlds between successive queries to keep answers independent
  /// (Table 15); all other estimators are no-ops.
  virtual Status PrepareForNextQuery(uint64_t seed) {
    (void)seed;
    return Status::OK();
  }

  /// \name Background-prepare surface (generation prebuilding)
  /// @{

  /// True when PrepareForNextQuery's work can be built off-thread through
  /// BuildPreparedGeneration / AdoptPreparedGeneration (BFS Sharing).
  virtual bool SupportsPreparedGenerations() const { return false; }

  /// Builds, without touching this instance's mutable state, the artifact
  /// PrepareForNextQuery(seed) would install — bit-identical by contract.
  /// Must be safe to call from a background thread while this instance
  /// concurrently serves queries (it may only read construction-time
  /// immutable state: the graph and the options). Default: NotSupported.
  virtual Result<std::unique_ptr<PreparedGeneration>> BuildPreparedGeneration(
      uint64_t seed) const;

  /// Installs a generation built by BuildPreparedGeneration on *any* replica
  /// bound to the same graph and options (replicas are interchangeable).
  /// Serving-thread only, like PrepareForNextQuery. Default: NotSupported.
  virtual Status AdoptPreparedGeneration(
      std::unique_ptr<PreparedGeneration> generation);

  /// @}

  /// \name Workload dispatch surface (source sweeps, distance bounds)
  /// @{

  /// True when EstimateFromSource is implemented natively (one sweep
  /// amortized across every candidate target — MC and BFS Sharing).
  virtual bool SupportsSourceSweep() const { return false; }

  /// Source sweep: the reliability of every node from `source` (index =
  /// node id; 0 for unreachable nodes, including any value for the source
  /// itself — callers exclude it). Deterministic in `options.seed` exactly
  /// like Estimate. Default: NotSupported.
  virtual Result<std::vector<double>> EstimateFromSource(
      NodeId source, const EstimateOptions& options);

  /// True when EstimateDistanceConstrained is implemented natively (MC and
  /// RHH, the estimators the distance-constrained variants of
  /// reliability/distance_constrained.h are built on).
  virtual bool SupportsDistanceConstrained() const { return false; }

  /// Distance-constrained reliability R_d(s, t): reachable within at most
  /// `max_hops` hops. Deterministic in `options.seed`. Default: NotSupported.
  virtual Result<double> EstimateDistanceConstrained(
      const ReliabilityQuery& query, uint32_t max_hops,
      const EstimateOptions& options);

  /// @}

 protected:
  /// Algorithm body: returns the reliability estimate, reporting working
  /// structures to `memory`.
  virtual Result<double> DoEstimate(const ReliabilityQuery& query,
                                    const EstimateOptions& options,
                                    MemoryTracker* memory) = 0;
};

}  // namespace relcomp
