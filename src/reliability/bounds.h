#pragma once

#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace relcomp {

/// Polynomial-time reliability bounds and the most-reliable-path heuristic —
/// the "Theory: polynomial-time upper/lower bounds" and "most reliable path"
/// branches of the paper's Figure 2 taxonomy [5, 7, 8, 9, 26]. Useful as
/// sanity brackets around sampled estimates and as cheap pre-filters before
/// running a full estimator.

/// \brief A most-reliable s-t path: the single path maximizing the product
/// of its edge probabilities.
struct ReliablePath {
  /// Node sequence s = nodes.front() ... t = nodes.back(); empty if t is
  /// unreachable.
  std::vector<NodeId> nodes;
  /// Product of edge probabilities along the path (0 if unreachable).
  double probability = 0.0;

  bool exists() const { return !nodes.empty(); }
};

/// Dijkstra on -log P(e): the exact most reliable path in O(m log n).
/// Its probability is a lower bound on R(s, t) (the path alone already
/// realizes the connection).
Result<ReliablePath> MostReliablePath(const UncertainGraph& graph, NodeId s,
                                      NodeId t);

/// \brief Lower bound on R(s, t): the union probability of a greedy set of
/// edge-disjoint s-t paths (repeatedly extract the most reliable path, drop
/// its edges, retry). Edge-disjoint paths exist independently, so
/// R >= 1 - prod_i (1 - P(path_i)). `max_paths` caps the extraction.
Result<double> ReliabilityLowerBound(const UncertainGraph& graph, NodeId s,
                                     NodeId t, uint32_t max_paths = 8);

/// \brief Upper bound on R(s, t): for any s-t edge cut C, connection
/// requires at least one cut edge, so R <= 1 - prod_{e in C}(1 - P(e)).
/// The cut is chosen by max-flow/min-cut (Edmonds-Karp) with capacities
/// -log(1 - P(e)), which minimizes the bound over all cuts.
Result<double> ReliabilityUpperBound(const UncertainGraph& graph, NodeId s,
                                     NodeId t);

/// Convenience: both bounds at once.
struct ReliabilityBounds {
  double lower = 0.0;
  double upper = 1.0;
};
Result<ReliabilityBounds> ComputeReliabilityBounds(const UncertainGraph& graph,
                                                   NodeId s, NodeId t,
                                                   uint32_t max_paths = 8);

}  // namespace relcomp
