#pragma once

#include <vector>

#include "common/status.h"
#include "reliability/top_k.h"

namespace relcomp {

/// \brief Reliable-set query [22] (paper Section 2.9): all nodes whose
/// reliability from `source` is at least `threshold` eta.
///
/// Like top-k search, this amortizes one source-side sweep across every
/// candidate target instead of running per-pair estimators.
struct ReliableSetResult {
  /// Qualifying nodes in decreasing reliability (source excluded).
  std::vector<ReliableTarget> members;
  /// Samples used by the sweep.
  uint32_t num_samples = 0;
};

/// Filters per-node reliabilities by the eta threshold and sorts by
/// decreasing reliability (ties toward smaller node ids, source excluded).
/// Shared by the standalone sweeps below and the engine's workload dispatch
/// and sweep-sharing derivation (reliability/workload.h), so all filter
/// identically. Read-only on `reliability` — memoized sweep vectors are
/// filtered in place, never copied.
ReliableSetResult FilterReliableSet(const std::vector<double>& reliability,
                                    NodeId source, double threshold,
                                    uint32_t num_samples);

/// Monte Carlo sweep: K sampled worlds, per-node hit counts, filter by eta.
/// `num_strata` is the stratified-partition width of the sweep (see
/// MonteCarloReliabilityFromSource); pass the engine's stratum count to
/// reproduce an engine answer, 1 for the legacy unstratified sweep.
Result<ReliableSetResult> ReliableSetMonteCarlo(const UncertainGraph& graph,
                                                NodeId source, double threshold,
                                                uint32_t num_samples,
                                                uint64_t seed,
                                                uint32_t num_strata = 1);

/// BFS Sharing sweep over the pre-built index (one word-parallel BFS).
Result<ReliableSetResult> ReliableSetBfsSharing(BfsSharingEstimator& estimator,
                                                NodeId source, double threshold,
                                                uint32_t num_samples);

}  // namespace relcomp
