#include "reliability/estimator.h"

#include "common/format.h"
#include "common/timer.h"

namespace relcomp {

Result<EstimateResult> Estimator::Estimate(const ReliabilityQuery& query,
                                           const EstimateOptions& options) {
  const UncertainGraph& g = graph();
  if (!g.HasNode(query.source) || !g.HasNode(query.target)) {
    return Status::InvalidArgument(
        StrFormat("query (%u, %u) out of range for graph with %zu nodes",
                  query.source, query.target, g.num_nodes()));
  }
  if (options.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }

  MemoryTracker tracker;
  Timer timer;
  RELCOMP_ASSIGN_OR_RETURN(double reliability,
                           DoEstimate(query, options, &tracker));
  EstimateResult result;
  result.reliability = reliability;
  result.num_samples = options.num_samples;
  result.seconds = timer.ElapsedSeconds();
  result.peak_memory_bytes = tracker.peak_bytes();
  return result;
}

Result<std::unique_ptr<PreparedGeneration>> Estimator::BuildPreparedGeneration(
    uint64_t seed) const {
  (void)seed;
  return Status::NotSupported(
      StrFormat("%.*s has no prepared-generation support",
                static_cast<int>(name().size()), name().data()));
}

Status Estimator::AdoptPreparedGeneration(
    std::unique_ptr<PreparedGeneration> generation) {
  (void)generation;
  return Status::NotSupported(
      StrFormat("%.*s has no prepared-generation support",
                static_cast<int>(name().size()), name().data()));
}

Result<std::vector<double>> Estimator::EstimateFromSource(
    NodeId source, const EstimateOptions& options) {
  (void)source;
  (void)options;
  return Status::NotSupported(
      StrFormat("%.*s does not support source-sweep workloads "
                "(top-k / reliable-set need MC or BFSSharing)",
                static_cast<int>(name().size()), name().data()));
}

Result<std::shared_ptr<const PreparedGeneration>>
Estimator::ShareCurrentPreparedState() const {
  return Status::NotSupported(
      StrFormat("%.*s has no shared-prepared-state support",
                static_cast<int>(name().size()), name().data()));
}

Status Estimator::AdoptSharedPreparedState(
    std::shared_ptr<const PreparedGeneration> state) {
  (void)state;
  return Status::NotSupported(
      StrFormat("%.*s has no shared-prepared-state support",
                static_cast<int>(name().size()), name().data()));
}

Result<std::vector<uint32_t>> Estimator::EstimateSweepStratumHits(
    NodeId source, uint32_t stratum, uint32_t num_strata,
    const EstimateOptions& options) {
  (void)source;
  (void)stratum;
  (void)num_strata;
  (void)options;
  return Status::NotSupported(
      StrFormat("%.*s does not support stratified sweeps "
                "(use MC or BFSSharing)",
                static_cast<int>(name().size()), name().data()));
}

Result<double> Estimator::EstimateDistanceConstrained(
    const ReliabilityQuery& query, uint32_t max_hops,
    const EstimateOptions& options) {
  (void)query;
  (void)max_hops;
  (void)options;
  return Status::NotSupported(
      StrFormat("%.*s does not support distance-constrained workloads "
                "(use MC or RHH)",
                static_cast<int>(name().size()), name().data()));
}

}  // namespace relcomp
