#include "reliability/recursive_sampling.h"

#include <algorithm>

#include "common/rng.h"

namespace relcomp {

namespace {
/// Logical footprint of one recursion frame: the conditioned edge, the saved
/// state, budgets, and bookkeeping (Section 3.6: RHH/RSS keep the whole
/// recursion stack resident).
constexpr size_t kFrameBytes = 64;
}  // namespace

RecursiveEstimator::RecursiveEstimator(const UncertainGraph& graph,
                                       const RecursiveSamplingOptions& options)
    : graph_(graph), options_(options), visit_epoch_(graph.num_nodes(), 0) {
  queue_.reserve(graph.num_nodes());
}

Result<double> RecursiveEstimator::DoEstimate(const ReliabilityQuery& query,
                                              const EstimateOptions& options,
                                              MemoryTracker* memory) {
  if (query.source == query.target) return 1.0;
  Rng rng(options.seed);
  std::vector<EdgeState> states(graph_.num_edges(), EdgeState::kUndetermined);
  ScopedAllocation working(
      memory, states.size() * sizeof(EdgeState) +
                  visit_epoch_.size() * sizeof(uint32_t) +
                  graph_.num_nodes() * sizeof(NodeId));
  max_depth_seen_ = 0;
  const double r = Recurse(query.source, query.target, options.num_samples,
                           states, rng, memory, /*depth=*/0);
  return r;
}

double RecursiveEstimator::Recurse(NodeId s, NodeId t, uint32_t k,
                                   std::vector<EdgeState>& states, Rng& rng,
                                   MemoryTracker* memory, size_t depth) {
  // Account the recursion stack high-water mark.
  if (depth > max_depth_seen_ && memory != nullptr) {
    memory->Add((depth - max_depth_seen_) * kFrameBytes);
    max_depth_seen_ = depth;
  }

  if (k <= options_.threshold) {
    return BaseMonteCarlo(s, t, k, states, rng);
  }

  // Path check: traversal over included edges; cut check: BFS over
  // non-excluded. Both reuse the epoch-marked scratch. Along the way we also
  // pick the next expandable edge (an undetermined out-edge of the
  // certainly-reached component) per the configured strategy — depth-first
  // expansion is [20]'s experimentally best choice and the default.
  ++epoch_;
  queue_.clear();
  queue_.push_back(s);
  visit_epoch_[s] = epoch_;
  EdgeId selected = kInvalidEdge;
  candidates_.clear();
  const EdgeSelectionStrategy strategy = options_.selection;
  size_t head = 0;
  while (head < queue_.size()) {
    NodeId v;
    if (strategy == EdgeSelectionStrategy::kDfs) {
      v = queue_.back();  // LIFO: extend the current partial path
      queue_.pop_back();
    } else {
      v = queue_[head++];  // FIFO: expand level by level
    }
    bool found_path = false;
    for (const AdjEntry& a : graph_.OutEdges(v)) {
      if (states[a.edge] == EdgeState::kIncluded) {
        if (a.neighbor == t) {
          found_path = true;
          break;
        }
        if (visit_epoch_[a.neighbor] != epoch_) {
          visit_epoch_[a.neighbor] = epoch_;
          queue_.push_back(a.neighbor);
        }
      } else if (states[a.edge] == EdgeState::kUndetermined) {
        if (strategy == EdgeSelectionStrategy::kRandom) {
          candidates_.push_back(a.edge);
        } else if (selected == kInvalidEdge) {
          selected = a.edge;
        }
      }
    }
    if (found_path) return 1.0;  // E1 contains an s-t path
  }
  if (strategy == EdgeSelectionStrategy::kRandom && !candidates_.empty()) {
    selected = candidates_[rng.UniformInt(candidates_.size())];
  }

  // Cut check: is t still reachable when only excluded edges are removed?
  ++epoch_;
  queue_.clear();
  queue_.push_back(s);
  visit_epoch_[s] = epoch_;
  bool t_reachable = false;
  for (size_t head = 0; head < queue_.size() && !t_reachable; ++head) {
    const NodeId v = queue_[head];
    for (const AdjEntry& a : graph_.OutEdges(v)) {
      if (states[a.edge] == EdgeState::kExcluded) continue;
      if (a.neighbor == t) {
        t_reachable = true;
        break;
      }
      if (visit_epoch_[a.neighbor] != epoch_) {
        visit_epoch_[a.neighbor] = epoch_;
        queue_.push_back(a.neighbor);
      }
    }
  }
  if (!t_reachable) return 0.0;  // E2 contains an s-t cut

  if (selected == kInvalidEdge) {
    // t is reachable via non-excluded edges, so some residual s-t path exists
    // and its first undetermined edge leaves the certain component — the DFS
    // above must have seen it. Defensive fallback: scan for any undetermined
    // edge out of the certain region.
    return 0.0;
  }

  const double p = graph_.prob(selected);
  // Deterministic proportional allocation (Hansen-Hurwitz). floor() follows
  // Alg. 4; we clamp both branches to >= 1 sample so neither branch's
  // estimate is undefined (the paper inherits the floor from [20]).
  uint32_t k1 = static_cast<uint32_t>(static_cast<double>(k) * p);
  k1 = std::min(std::max<uint32_t>(k1, 1), k - 1);
  const uint32_t k2 = k - k1;

  states[selected] = EdgeState::kIncluded;
  const double r1 = Recurse(s, t, k1, states, rng, memory, depth + 1);
  states[selected] = EdgeState::kExcluded;
  const double r2 = Recurse(s, t, k2, states, rng, memory, depth + 1);
  states[selected] = EdgeState::kUndetermined;

  return p * r1 + (1.0 - p) * r2;
}

double RecursiveEstimator::BaseMonteCarlo(NodeId s, NodeId t, uint32_t k,
                                          const std::vector<EdgeState>& states,
                                          Rng& rng) {
  if (k == 0) return 0.0;
  uint32_t hits = 0;
  for (uint32_t i = 0; i < k; ++i) {
    ++epoch_;
    queue_.clear();
    queue_.push_back(s);
    visit_epoch_[s] = epoch_;
    bool reached = false;
    for (size_t head = 0; head < queue_.size() && !reached; ++head) {
      const NodeId v = queue_[head];
      for (const AdjEntry& a : graph_.OutEdges(v)) {
        if (visit_epoch_[a.neighbor] == epoch_) continue;
        const EdgeState st = states[a.edge];
        if (st == EdgeState::kExcluded) continue;
        if (st == EdgeState::kUndetermined && !rng.Bernoulli(a.prob)) continue;
        if (a.neighbor == t) {
          reached = true;
          break;
        }
        visit_epoch_[a.neighbor] = epoch_;
        queue_.push_back(a.neighbor);
      }
    }
    if (reached) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

}  // namespace relcomp
