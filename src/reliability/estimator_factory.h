#pragma once

#include <memory>
#include <vector>

#include "reliability/bfs_sharing.h"
#include "reliability/estimator.h"
#include "reliability/lazy_propagation.h"
#include "reliability/prob_tree.h"
#include "reliability/recursive_sampling.h"
#include "reliability/recursive_stratified.h"

namespace relcomp {

/// \brief The estimators of the study, plus the coupled variants of
/// Section 3.8 and the uncorrected LP of Figure 5.
enum class EstimatorKind {
  kMonteCarlo = 0,        ///< MC (Alg. 1)
  kBfsSharing,            ///< BFS Sharing index (Alg. 2+3)
  kProbTree,              ///< FWD ProbTree + MC (Alg. 7+8)
  kLazyPropagationPlus,   ///< LP+ (Alg. 6, corrected)
  kRecursive,             ///< RHH (Alg. 4)
  kRecursiveStratified,   ///< RSS (Alg. 5)
  kLazyPropagation,       ///< LP, the original buggy re-arm (Figure 5)
  kProbTreeLpPlus,        ///< ProbTree + LP+ (Table 16)
  kProbTreeRhh,           ///< ProbTree + RHH (Table 16)
  kProbTreeRss,           ///< ProbTree + RSS (Table 16)
};

/// Display name matching Estimator::name().
const char* EstimatorKindName(EstimatorKind kind);

/// The six estimators of the paper's headline comparison, in the row order
/// of Tables 3-14: MC, BFS Sharing, ProbTree, LP+, RHH, RSS.
std::vector<EstimatorKind> TheSixEstimators();

/// \brief Construction knobs for MakeEstimator.
struct FactoryOptions {
  BfsSharingOptions bfs_sharing;       ///< L = 1500 by default (Section 3.7)
  RecursiveSamplingOptions recursive;  ///< threshold = 5 [20]
  RssOptions rss;                      ///< r = 50, threshold = 5 [28]
  ProbTreeOptions prob_tree;           ///< w = 2 (lossless) [32]
  /// Seed for offline index sampling (BFS Sharing worlds).
  uint64_t index_seed = 0x5EED;

  /// \name Preloaded indexes (persistence tier)
  /// When set, MakeEstimatorReplicas hands every replica the preloaded
  /// index instead of building one — the snapshot cold-start path. The
  /// caller (PersistentStore) is responsible for having matched the index
  /// against the graph and these options; the factory still validates
  /// shapes. MakeEstimator (single instance) ignores these.
  /// @{
  std::shared_ptr<const BfsSharingIndex> preloaded_bfs_index;
  std::shared_ptr<const ProbTreeIndex> preloaded_prob_tree;
  /// @}
};

/// Builds an estimator of `kind` over `graph` (building any index it needs).
Result<std::unique_ptr<Estimator>> MakeEstimator(EstimatorKind kind,
                                                 const UncertainGraph& graph,
                                                 const FactoryOptions& options = {});

/// \brief Replica path for concurrent serving: builds `count` interchangeable
/// instances of `kind` over `graph`, one per worker thread (Estimator
/// instances are not thread-safe; the engine routes every task to its
/// worker's private replica).
///
/// Replicas are bit-identical: index construction is deterministic in
/// FactoryOptions (BFS Sharing worlds come from `index_seed`, ProbTree
/// decomposition is seed-free), so a query answered by replica 3 returns the
/// same result as one answered by replica 0.
///
/// Index-carrying kinds (BFS Sharing, ProbTree and its coupled variants)
/// build their index **once** and hand every replica a
/// `shared_ptr<const>` to it: construction cost and index memory are O(1) in
/// `count`, and the serving path reads the index without synchronization.
/// Each replica keeps only private scratch. BFS Sharing replicas later
/// diverge onto private generations as PrepareForNextQuery resamples
/// (generation swap) — that is per-query state, not build cost.
Result<std::vector<std::unique_ptr<Estimator>>> MakeEstimatorReplicas(
    EstimatorKind kind, const UncertainGraph& graph, size_t count,
    const FactoryOptions& options = {});

/// Deduplicated index footprint of a replica set: each distinct shared index
/// (by Estimator::SharedIndexIdentity) is counted once; replica-private index
/// bytes are summed. Use this instead of summing IndexMemoryBytes() whenever
/// replicas may share an index.
IndexMemoryReport ReportIndexMemory(
    const std::vector<std::unique_ptr<Estimator>>& replicas);

}  // namespace relcomp
