#include "reliability/prob_tree.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "common/format.h"
#include "common/timer.h"
#include "common/wire.h"
#include "graph/graph_builder.h"
#include "reliability/lazy_propagation.h"
#include "reliability/mc_sampling.h"
#include "reliability/recursive_sampling.h"
#include "reliability/recursive_stratified.h"

namespace relcomp {

namespace {

constexpr char kIndexMagic[8] = {'R', 'E', 'L', 'P', 'T', 'R', 'E', 'E'};

inline uint64_t PairKey(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

/// Union probability of the directed edges tail -> head in `edges`.
double DirectedUnion(const std::vector<ProbTreeEdge>& edges, NodeId tail,
                     NodeId head) {
  double none = 1.0;
  for (const ProbTreeEdge& e : edges) {
    if (e.tail == tail && e.head == head) none *= (1.0 - e.prob);
  }
  return 1.0 - none;
}

/// \name Distance-distribution machinery for the [32]-original ablation.
///
/// A route's distance distribution is kept as a survival function
/// s[l] = P(no path of length <= l+1). Parallel independent routes multiply
/// survivals; series composition convolves the length densities.
/// @{

/// Survival of the union of all tail->head edges in `edges`.
std::vector<double> UnionSurvival(const std::vector<ProbTreeEdge>& edges,
                                  NodeId tail, NodeId head, uint32_t d) {
  std::vector<double> s(d, 1.0);
  for (const ProbTreeEdge& e : edges) {
    if (e.tail != tail || e.head != head) continue;
    if (e.survival.empty()) {
      for (uint32_t l = 0; l < d; ++l) s[l] *= (1.0 - e.prob);
    } else {
      for (uint32_t l = 0; l < d; ++l) s[l] *= e.survival[l];
    }
  }
  return s;
}

/// Length density from a survival function: density[k] = P(dist == k),
/// k in [1, d] (density[0] unused).
std::vector<double> DensityFromSurvival(const std::vector<double>& s) {
  std::vector<double> density(s.size() + 1, 0.0);
  density[1] = 1.0 - s[0];
  for (size_t k = 2; k <= s.size(); ++k) density[k] = s[k - 2] - s[k - 1];
  return density;
}

/// Survival of the series composition (sum of lengths) of two routes.
std::vector<double> SeriesSurvival(const std::vector<double>& s1,
                                   const std::vector<double>& s2, uint32_t d) {
  const std::vector<double> d1 = DensityFromSurvival(s1);
  const std::vector<double> d2 = DensityFromSurvival(s2);
  std::vector<double> sum_density(d + 2, 0.0);
  for (size_t i = 1; i < d1.size(); ++i) {
    if (d1[i] == 0.0) continue;
    for (size_t j = 1; j < d2.size() && i + j <= d + 1; ++j) {
      sum_density[i + j] += d1[i] * d2[j];
    }
  }
  std::vector<double> s(d, 0.0);
  double cumulative = 0.0;
  for (uint32_t l = 0; l < d; ++l) {
    cumulative += sum_density[l + 1];
    s[l] = 1.0 - cumulative;
  }
  return s;
}

/// Elementwise product (parallel independent routes).
std::vector<double> ProductSurvival(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}
/// @}

}  // namespace

double ProbTreeEdge::DistanceProbability(uint32_t length) const {
  if (survival.empty() || length == 0 || length > survival.size()) return 0.0;
  const double before = length >= 2 ? survival[length - 2] : 1.0;
  return before - survival[length - 1];
}

Result<ProbTreeIndex> ProbTreeIndex::Build(const UncertainGraph& graph,
                                           const ProbTreeOptions& options) {
  if (options.width == 0) {
    return Status::InvalidArgument("ProbTree: width must be >= 1");
  }
  Timer timer;
  ProbTreeIndex index;
  const size_t n = graph.num_nodes();
  index.num_nodes_ = n;
  index.covered_in_.assign(n, -1);

  // Undirected skeleton + live directed-edge pool keyed by unordered pair.
  std::vector<std::unordered_set<NodeId>> adj(n);
  std::unordered_map<uint64_t, std::vector<ProbTreeEdge>> pool;
  pool.reserve(graph.num_edges());
  const bool with_distributions = options.precompute_distance_distributions;
  const uint32_t d = std::max<uint32_t>(2, options.max_distance);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const EdgeRecord& rec = graph.edge(e);
    if (rec.tail == rec.head) continue;  // self-loops never affect s-t paths
    adj[rec.tail].insert(rec.head);
    adj[rec.head].insert(rec.tail);
    ProbTreeEdge edge{rec.tail, rec.head, rec.prob, /*origin=*/-1, {}};
    if (with_distributions) {
      // A single edge connects at length 1 with probability p, else never.
      edge.survival.assign(d, 1.0 - rec.prob);
    }
    pool[PairKey(rec.tail, rec.head)].push_back(std::move(edge));
  }

  // Min-degree elimination of nodes with degree <= w. Lazy FIFO bucket
  // queue: entries are validated against the live degree when popped, and
  // FIFO order matches the paper's creation-order narrative (Example 2:
  // node 3, then node 4, ... — earlier-discovered low-degree nodes first).
  std::vector<std::vector<NodeId>> buckets(options.width + 1);
  std::vector<size_t> bucket_head(options.width + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    const size_t d = adj[v].size();
    if (d >= 1 && d <= options.width) buckets[d].push_back(v);
  }
  // Tracks which original nodes participate in bags, for parent assignment.
  std::vector<std::vector<int32_t>> node_bags(n);

  auto pop_candidate = [&]() -> NodeId {
    for (size_t d = 1; d <= options.width; ++d) {
      while (bucket_head[d] < buckets[d].size()) {
        const NodeId v = buckets[d][bucket_head[d]++];
        if (index.covered_in_[v] == -1 && adj[v].size() == d) return v;
      }
    }
    return kInvalidNode;
  };
  auto requeue = [&](NodeId v) {
    const size_t d = adj[v].size();
    if (index.covered_in_[v] == -1 && d >= 1 && d <= options.width) {
      buckets[d].push_back(v);
    }
  };

  for (NodeId v = pop_candidate(); v != kInvalidNode; v = pop_candidate()) {
    const int32_t bag_id = static_cast<int32_t>(index.bags_.size());
    Bag bag;
    bag.covered = v;
    bag.boundary.assign(adj[v].begin(), adj[v].end());
    std::sort(bag.boundary.begin(), bag.boundary.end());
    bag.nodes = bag.boundary;
    bag.nodes.push_back(v);

    // Absorb every live edge between nodes of the bag (Alg. 7 lines 7-9):
    // covered-boundary pairs plus boundary-boundary pairs.
    auto absorb_pair = [&](NodeId a, NodeId b) {
      const auto it = pool.find(PairKey(a, b));
      if (it == pool.end()) return;
      for (ProbTreeEdge& e : it->second) bag.edges.push_back(e);
      pool.erase(it);
    };
    for (size_t i = 0; i < bag.boundary.size(); ++i) {
      absorb_pair(v, bag.boundary[i]);
      for (size_t j = i + 1; j < bag.boundary.size(); ++j) {
        absorb_pair(bag.boundary[i], bag.boundary[j]);
      }
    }

    // Remove v from the skeleton.
    index.covered_in_[v] = bag_id;
    for (NodeId u : bag.boundary) adj[u].erase(v);
    adj[v].clear();

    // Add the clique between v's neighbors with aggregated probabilities:
    // virtual(a->b) = 1 - (1 - direct(a->b)) (1 - P(a->v) P(v->b))
    // — the paper's O(w^2) pairwise aggregation (Section 2.7).
    for (size_t i = 0; i < bag.boundary.size(); ++i) {
      for (size_t j = i + 1; j < bag.boundary.size(); ++j) {
        const NodeId a = bag.boundary[i];
        const NodeId b = bag.boundary[j];
        const double a_to_v = DirectedUnion(bag.edges, a, v);
        const double v_to_b = DirectedUnion(bag.edges, v, b);
        const double b_to_v = DirectedUnion(bag.edges, b, v);
        const double v_to_a = DirectedUnion(bag.edges, v, a);
        const double ab = 1.0 - (1.0 - DirectedUnion(bag.edges, a, b)) *
                                    (1.0 - a_to_v * v_to_b);
        const double ba = 1.0 - (1.0 - DirectedUnion(bag.edges, b, a)) *
                                    (1.0 - b_to_v * v_to_a);
        auto& pair_pool = pool[PairKey(a, b)];
        if (ab > 0.0) {
          ProbTreeEdge edge{a, b, std::min(ab, 1.0), bag_id, {}};
          if (with_distributions) {
            // [32]-original: full distance distribution per boundary pair —
            // direct routes in parallel with the two-hop series through v.
            edge.survival = ProductSurvival(
                UnionSurvival(bag.edges, a, b, d),
                SeriesSurvival(UnionSurvival(bag.edges, a, v, d),
                               UnionSurvival(bag.edges, v, b, d), d));
          }
          pair_pool.push_back(std::move(edge));
        }
        if (ba > 0.0) {
          ProbTreeEdge edge{b, a, std::min(ba, 1.0), bag_id, {}};
          if (with_distributions) {
            edge.survival = ProductSurvival(
                UnionSurvival(bag.edges, b, a, d),
                SeriesSurvival(UnionSurvival(bag.edges, b, v, d),
                               UnionSurvival(bag.edges, v, a, d), d));
          }
          pair_pool.push_back(std::move(edge));
        }
        adj[a].insert(b);
        adj[b].insert(a);
      }
    }
    for (NodeId u : bag.boundary) requeue(u);

    for (NodeId u : bag.nodes) node_bags[u].push_back(bag_id);
    index.bags_.push_back(std::move(bag));
  }

  // Root: all surviving pool edges (original unmarked + topmost virtual).
  for (auto& [key, edges] : pool) {
    (void)key;
    for (ProbTreeEdge& e : edges) index.root_edges_.push_back(e);
  }

  // Parent assignment (Alg. 7 lines 18-25): the earliest later-created bag
  // whose node set contains this bag's whole boundary; else the root.
  for (int32_t b = 0; b < static_cast<int32_t>(index.bags_.size()); ++b) {
    Bag& bag = index.bags_[b];
    int32_t parent = -1;
    if (!bag.boundary.empty()) {
      // Intersect the creation-ordered bag lists of all boundary nodes.
      int32_t best = INT32_MAX;
      const std::vector<int32_t>& first = node_bags[bag.boundary[0]];
      for (int32_t candidate : first) {
        if (candidate <= b || candidate >= best) continue;
        bool in_all = true;
        for (size_t i = 1; i < bag.boundary.size() && in_all; ++i) {
          const auto& list = node_bags[bag.boundary[i]];
          in_all = std::binary_search(list.begin(), list.end(), candidate);
        }
        if (in_all) best = candidate;
      }
      if (best != INT32_MAX) parent = best;
    }
    bag.parent = parent;
  }

  index.stats_.build_seconds = timer.ElapsedSeconds();
  index.stats_.num_bags = index.bags_.size();
  size_t covered = 0;
  for (int32_t c : index.covered_in_) covered += (c >= 0);
  index.stats_.root_nodes = n - covered;
  index.stats_.root_edges = index.root_edges_.size();
  return index;
}

Result<RootedGraph> ProbTreeIndex::ExtractQueryGraph(NodeId s, NodeId t) const {
  if (s >= num_nodes_ || t >= num_nodes_) {
    return Status::InvalidArgument("ProbTree: query node out of range");
  }
  // Bags to merge: the root-paths of the bags covering s and t (Alg. 8).
  std::unordered_set<int32_t> merged;
  for (const NodeId x : {s, t}) {
    int32_t b = covered_in_[x];
    while (b >= 0 && merged.insert(b).second) b = bags_[b].parent;
  }

  GraphBuilder builder;
  std::unordered_map<NodeId, NodeId> remap;
  auto map_node = [&](NodeId v) {
    const auto [it, inserted] = remap.emplace(v, 0);
    if (inserted) it->second = builder.AddNode();
    return it->second;
  };
  const NodeId ms = map_node(s);
  const NodeId mt = map_node(t);

  // A virtual edge is dropped iff the bag that produced it is merged back in
  // ("delete the reliability in parent(B) resulting from B").
  auto add_edges = [&](const std::vector<ProbTreeEdge>& edges) -> Status {
    for (const ProbTreeEdge& e : edges) {
      if (e.origin >= 0 && merged.count(e.origin) > 0) continue;
      RELCOMP_RETURN_NOT_OK(builder.AddEdge(map_node(e.tail), map_node(e.head),
                                            e.prob));
    }
    return Status::OK();
  };
  RELCOMP_RETURN_NOT_OK(add_edges(root_edges_));
  // Deterministic order: hash-set iteration order must not leak into the
  // extracted graph (it drives downstream RNG consumption).
  std::vector<int32_t> merged_sorted(merged.begin(), merged.end());
  std::sort(merged_sorted.begin(), merged_sorted.end());
  for (const int32_t b : merged_sorted) {
    RELCOMP_RETURN_NOT_OK(add_edges(bags_[b].edges));
  }

  RootedGraph rooted;
  RELCOMP_ASSIGN_OR_RETURN(rooted.graph, builder.Build());
  rooted.source = ms;
  rooted.target = mt;
  return rooted;
}

size_t ProbTreeIndex::MemoryBytes() const {
  auto edge_bytes = [](const std::vector<ProbTreeEdge>& edges) {
    size_t total = edges.size() * sizeof(ProbTreeEdge);
    for (const ProbTreeEdge& e : edges) {
      total += e.survival.size() * sizeof(double);
    }
    return total;
  };
  size_t total =
      covered_in_.size() * sizeof(int32_t) + edge_bytes(root_edges_);
  for (const Bag& bag : bags_) {
    total += sizeof(Bag) + bag.nodes.size() * sizeof(NodeId) +
             bag.boundary.size() * sizeof(NodeId) + edge_bytes(bag.edges);
  }
  return total;
}

Status ProbTreeIndex::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open for writing: " + path);
  auto write_u64 = [&out](uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto write_i32 = [&out](int32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto write_edges = [&](const std::vector<ProbTreeEdge>& edges) {
    write_u64(edges.size());
    for (const ProbTreeEdge& e : edges) {
      out.write(reinterpret_cast<const char*>(&e.tail), sizeof(e.tail));
      out.write(reinterpret_cast<const char*>(&e.head), sizeof(e.head));
      out.write(reinterpret_cast<const char*>(&e.prob), sizeof(e.prob));
      write_i32(e.origin);
    }
  };
  out.write(kIndexMagic, sizeof(kIndexMagic));
  write_u64(num_nodes_);
  write_u64(bags_.size());
  for (const Bag& bag : bags_) {
    out.write(reinterpret_cast<const char*>(&bag.covered), sizeof(bag.covered));
    write_i32(bag.parent);
    write_u64(bag.boundary.size());
    for (NodeId u : bag.boundary) {
      out.write(reinterpret_cast<const char*>(&u), sizeof(u));
    }
    write_edges(bag.edges);
  }
  write_edges(root_edges_);
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<ProbTreeIndex> ProbTreeIndex::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open for reading: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kIndexMagic, sizeof(magic)) != 0) {
    return Status::IOError("not a ProbTree index: " + path);
  }
  auto read_u64 = [&in]() {
    uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  auto read_i32 = [&in]() {
    int32_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  auto read_edges = [&](std::vector<ProbTreeEdge>& edges) {
    const uint64_t count = read_u64();
    edges.resize(count);
    for (auto& e : edges) {
      in.read(reinterpret_cast<char*>(&e.tail), sizeof(e.tail));
      in.read(reinterpret_cast<char*>(&e.head), sizeof(e.head));
      in.read(reinterpret_cast<char*>(&e.prob), sizeof(e.prob));
      e.origin = read_i32();
    }
  };
  ProbTreeIndex index;
  index.num_nodes_ = read_u64();
  index.covered_in_.assign(index.num_nodes_, -1);
  const uint64_t num_bags = read_u64();
  index.bags_.resize(num_bags);
  for (uint64_t b = 0; b < num_bags; ++b) {
    Bag& bag = index.bags_[b];
    in.read(reinterpret_cast<char*>(&bag.covered), sizeof(bag.covered));
    bag.parent = read_i32();
    const uint64_t boundary = read_u64();
    bag.boundary.resize(boundary);
    for (auto& u : bag.boundary) {
      in.read(reinterpret_cast<char*>(&u), sizeof(u));
    }
    bag.nodes = bag.boundary;
    bag.nodes.push_back(bag.covered);
    read_edges(bag.edges);
    if (!in.good()) return Status::IOError("truncated ProbTree index: " + path);
    index.covered_in_[bag.covered] = static_cast<int32_t>(b);
  }
  read_edges(index.root_edges_);
  if (!in.good()) return Status::IOError("truncated ProbTree index: " + path);
  index.stats_.num_bags = index.bags_.size();
  index.stats_.root_edges = index.root_edges_.size();
  size_t covered = 0;
  for (int32_t c : index.covered_in_) covered += (c >= 0);
  index.stats_.root_nodes = index.num_nodes_ - covered;
  return index;
}

void ProbTreeIndex::AppendBlock(std::string* out) const {
  WireWriter writer(out);
  auto write_edges = [&writer](const std::vector<ProbTreeEdge>& edges) {
    writer.PutU64(edges.size());
    for (const ProbTreeEdge& e : edges) {
      writer.PutU32(e.tail);
      writer.PutU32(e.head);
      writer.PutF64(e.prob);
      writer.PutI32(e.origin);
    }
  };
  writer.PutU64(num_nodes_);
  writer.PutU64(bags_.size());
  for (const Bag& bag : bags_) {
    writer.PutU32(bag.covered);
    writer.PutI32(bag.parent);
    writer.PutU64(bag.boundary.size());
    for (const NodeId u : bag.boundary) writer.PutU32(u);
    write_edges(bag.edges);
  }
  write_edges(root_edges_);
}

Result<ProbTreeIndex> ProbTreeIndex::FromBlock(const void* data, size_t size) {
  WireReader reader(data, size);
  bool ok = true;
  auto read_edges = [&reader, &ok](std::vector<ProbTreeEdge>& edges) {
    uint64_t count = 0;
    ok = ok && reader.ReadU64(&count);
    // 20 bytes per serialized edge: a declared count beyond the remaining
    // bytes is corruption, not a resize request.
    if (!ok || count > reader.remaining() / 20) {
      ok = false;
      return;
    }
    edges.resize(count);
    for (auto& e : edges) {
      ok = ok && reader.ReadU32(&e.tail) && reader.ReadU32(&e.head) &&
           reader.ReadF64(&e.prob) && reader.ReadI32(&e.origin);
    }
  };
  ProbTreeIndex index;
  uint64_t num_nodes = 0, num_bags = 0;
  ok = reader.ReadU64(&num_nodes) && reader.ReadU64(&num_bags);
  // Sanity bounds before the allocations they size.
  if (!ok || num_bags > num_nodes || num_nodes > (size_t{1} << 40)) {
    return Status::IOError("ProbTree block: malformed header");
  }
  index.num_nodes_ = num_nodes;
  index.covered_in_.assign(num_nodes, -1);
  index.bags_.resize(num_bags);
  for (uint64_t b = 0; ok && b < num_bags; ++b) {
    Bag& bag = index.bags_[b];
    uint64_t boundary = 0;
    ok = reader.ReadU32(&bag.covered) && reader.ReadI32(&bag.parent) &&
         reader.ReadU64(&boundary);
    if (!ok || boundary > reader.remaining() / sizeof(NodeId) ||
        bag.covered >= num_nodes) {
      ok = false;
      break;
    }
    bag.boundary.resize(boundary);
    for (auto& u : bag.boundary) ok = ok && reader.ReadU32(&u);
    bag.nodes = bag.boundary;
    bag.nodes.push_back(bag.covered);
    read_edges(bag.edges);
    if (ok) index.covered_in_[bag.covered] = static_cast<int32_t>(b);
  }
  if (ok) read_edges(index.root_edges_);
  if (!ok) return Status::IOError("ProbTree block: truncated or malformed");
  index.stats_.num_bags = index.bags_.size();
  index.stats_.root_edges = index.root_edges_.size();
  size_t covered = 0;
  for (const int32_t c : index.covered_in_) covered += (c >= 0);
  index.stats_.root_nodes = index.num_nodes_ - covered;
  return index;
}

Result<std::shared_ptr<const ProbTreeIndex>> ProbTreeIndex::BuildShared(
    const UncertainGraph& graph, const ProbTreeOptions& options) {
  RELCOMP_ASSIGN_OR_RETURN(ProbTreeIndex index, Build(graph, options));
  return std::make_shared<const ProbTreeIndex>(std::move(index));
}

ProbTreeEstimator::ProbTreeEstimator(const UncertainGraph& graph,
                                     std::shared_ptr<const ProbTreeIndex> index,
                                     ProbTreeInner inner)
    : graph_(graph), index_(std::move(index)), inner_(inner) {
  switch (inner_) {
    case ProbTreeInner::kMonteCarlo:
      name_ = "ProbTree";
      break;
    case ProbTreeInner::kLazyPropagationPlus:
      name_ = "ProbTree+LP+";
      break;
    case ProbTreeInner::kRecursive:
      name_ = "ProbTree+RHH";
      break;
    case ProbTreeInner::kRecursiveStratified:
      name_ = "ProbTree+RSS";
      break;
  }
}

Result<std::unique_ptr<ProbTreeEstimator>> ProbTreeEstimator::Create(
    const UncertainGraph& graph, const ProbTreeOptions& options,
    ProbTreeInner inner) {
  RELCOMP_ASSIGN_OR_RETURN(std::shared_ptr<const ProbTreeIndex> index,
                           ProbTreeIndex::BuildShared(graph, options));
  return CreateWithIndex(graph, std::move(index), inner);
}

Result<std::unique_ptr<ProbTreeEstimator>> ProbTreeEstimator::CreateWithIndex(
    const UncertainGraph& graph, std::shared_ptr<const ProbTreeIndex> index,
    ProbTreeInner inner) {
  if (index == nullptr) {
    return Status::InvalidArgument("ProbTree: index must not be null");
  }
  return std::unique_ptr<ProbTreeEstimator>(
      new ProbTreeEstimator(graph, std::move(index), inner));
}

Result<double> ProbTreeEstimator::DoEstimate(const ReliabilityQuery& query,
                                             const EstimateOptions& options,
                                             MemoryTracker* memory) {
  if (query.source == query.target) return 1.0;
  RELCOMP_ASSIGN_OR_RETURN(RootedGraph rooted,
                           index_->ExtractQueryGraph(query.source, query.target));
  ScopedAllocation extracted(memory, rooted.graph.MemoryBytes());

  std::unique_ptr<Estimator> inner;
  switch (inner_) {
    case ProbTreeInner::kMonteCarlo:
      inner = std::make_unique<MonteCarloEstimator>(rooted.graph);
      break;
    case ProbTreeInner::kLazyPropagationPlus:
      inner = std::make_unique<LazyPropagationEstimator>(rooted.graph);
      break;
    case ProbTreeInner::kRecursive:
      inner = std::make_unique<RecursiveEstimator>(rooted.graph);
      break;
    case ProbTreeInner::kRecursiveStratified:
      inner = std::make_unique<RecursiveStratifiedEstimator>(rooted.graph);
      break;
  }
  RELCOMP_ASSIGN_OR_RETURN(
      EstimateResult result,
      inner->Estimate(ReliabilityQuery{rooted.source, rooted.target}, options));
  if (memory != nullptr) {
    memory->Add(result.peak_memory_bytes);
    memory->Release(result.peak_memory_bytes);
  }
  return result.reliability;
}

}  // namespace relcomp
