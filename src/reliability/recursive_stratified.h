#pragma once

#include <vector>

#include "graph/subgraph.h"
#include "reliability/estimator.h"

namespace relcomp {

class Rng;

/// \brief Options for recursive stratified sampling.
struct RssOptions {
  /// r: number of edges selected per stratification level (Table 1). The
  /// paper recommends r = 50 and finds running time insensitive to it
  /// (Figure 17).
  uint32_t num_strata = 50;
  /// Budget below which a stratum is finished with plain MC (Alg. 5 line 2).
  uint32_t threshold = 5;
};

/// \brief Recursive stratified sampling "RSS" (Algorithm 5; Li et al. [28]).
///
/// Each level selects r edges by BFS from s and partitions the probability
/// space into r+1 strata by the first existing selected edge (Table 1).
/// Stratum i receives a deterministic share K_i = pi_i * K of the budget,
/// the graph is simplified under the stratum's fixed edge states
/// (super-source contraction + pruning), and the method recurses. Variance
/// is provably below MC's (Theorems 4.2/4.3 in [28]); RHH is the special
/// case r = 1.
class RecursiveStratifiedEstimator : public Estimator {
 public:
  RecursiveStratifiedEstimator(const UncertainGraph& graph,
                               const RssOptions& options = {});

  std::string_view name() const override { return "RSS"; }
  const UncertainGraph& graph() const override { return graph_; }

  /// Like RHH, with r-way stratification amortizing the per-branch
  /// simplification a little better.
  CostHints cost_hints() const override {
    CostHints hints;
    hints.per_sample_edge_cost = 1.1;
    return hints;
  }

 protected:
  Result<double> DoEstimate(const ReliabilityQuery& query,
                            const EstimateOptions& options,
                            MemoryTracker* memory) override;

 private:
  /// Recursive body; `g` is the current simplified graph (the original at
  /// depth 0), with s/t already remapped.
  Result<double> Recurse(const UncertainGraph& g, NodeId s, NodeId t, uint32_t k,
                         Rng& rng, MemoryTracker* memory);

  /// Plain MC over `g` (probability-1 edges always exist).
  double PlainMonteCarlo(const UncertainGraph& g, NodeId s, NodeId t, uint32_t k,
                         Rng& rng);

  /// MC over `g` conditioned on `states` (included edges certain, excluded
  /// absent). Used for strata whose budget is already below the threshold:
  /// running the base case on the parent graph is equivalent to building the
  /// simplified child first (Alg. 5 hits line 2 immediately) and skips the
  /// per-stratum graph copy.
  double ConditionedMonteCarlo(const UncertainGraph& g, NodeId s, NodeId t,
                               uint32_t k, const std::vector<EdgeState>& states,
                               Rng& rng);

  /// First `r` tossable (p < 1) edges in BFS order from s (Alg. 5 line 9).
  std::vector<EdgeId> SelectEdgesBfs(const UncertainGraph& g, NodeId s,
                                     uint32_t r) const;

  const UncertainGraph& graph_;
  RssOptions options_;
};

}  // namespace relcomp
