// Probabilistic road-network reachability (the paper's road-network
// motivation [19]): on a grid of intersections whose road segments fail
// independently (congestion/closure), estimate the probability that a
// destination is reachable from a source, and show how ProbTree's index
// accelerates repeated queries against the same network.

#include <cstdio>

#include "common/rng.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "reliability/estimator_factory.h"

using namespace relcomp;

int main() {
  // 30 x 30 grid city; each segment is open with probability 0.75-0.95.
  const uint32_t rows = 30;
  const uint32_t cols = 30;
  const Topology topo = MakeGrid(rows, cols);
  Rng rng(99);
  std::vector<double> probs;
  probs.reserve(topo.num_edges());
  for (size_t i = 0; i < topo.num_edges(); ++i) {
    // Paired edges (two directions of one segment) share reliability.
    if (i % 2 == 1) {
      probs.push_back(probs.back());
    } else {
      probs.push_back(0.75 + 0.20 * rng.NextDouble());
    }
  }
  const UncertainGraph city = BuildFromTopology(topo, probs).MoveValue();
  std::printf("Road network: %u x %u grid, %s\n\n", rows, cols,
              city.Describe().c_str());

  auto at = [cols](uint32_t r, uint32_t c) { return r * cols + c; };
  const ReliabilityQuery commutes[] = {
      {at(0, 0), at(4, 4)},        // short diagonal hop
      {at(0, 0), at(15, 15)},      // mid-city
      {at(0, 0), at(29, 29)},      // full diagonal
      {at(29, 0), at(0, 29)},      // anti-diagonal
  };

  // Index the city once; answer many route queries fast (Algorithm 8).
  Timer build_timer;
  auto prob_tree = MakeEstimator(EstimatorKind::kProbTree, city).MoveValue();
  std::printf("ProbTree index built in %.1f ms (%zu B)\n\n",
              build_timer.ElapsedMillis(), prob_tree->IndexMemoryBytes());

  auto mc = MakeEstimator(EstimatorKind::kMonteCarlo, city).MoveValue();
  EstimateOptions options;
  options.num_samples = 2000;
  options.seed = 5;

  std::printf("%-22s %-12s %-12s %-10s %-10s\n", "Route", "ProbTree R",
              "MC R", "PT ms", "MC ms");
  for (const ReliabilityQuery& q : commutes) {
    const EstimateResult pt = prob_tree->Estimate(q, options).MoveValue();
    const EstimateResult plain = mc->Estimate(q, options).MoveValue();
    std::printf("(%4u) -> (%4u)        %-12.4f %-12.4f %-10.2f %-10.2f\n",
                q.source, q.target, pt.reliability, plain.reliability,
                pt.seconds * 1e3, plain.seconds * 1e3);
  }
  std::printf(
      "\nLong routes compound segment failures: reliability decays with\n"
      "distance, matching the paper's distance sensitivity study (Sec 3.9).\n");
  return 0;
}
