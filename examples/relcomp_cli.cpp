// relcomp_cli: command-line front end for the library. Loads an uncertain
// graph from a text edge list (or generates one of the six paper-analogue
// datasets), then answers s-t reliability queries, top-k reliability
// searches, or prints polynomial-time bounds.
//
// Examples:
//   relcomp_cli --dataset lastfm --scale tiny --query 3 17
//   relcomp_cli --graph my.edges --estimator rss --query 0 42 --samples 2000
//   relcomp_cli --dataset biomine --topk 10 --source 5
//   relcomp_cli --dataset as_topology --bounds 1 99
//   relcomp_cli --dataset dblp02 --workload 20 --estimator probtree
//   relcomp_cli --graph my.edges --info

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "common/format.h"
#include "eval/query_gen.h"
#include "graph/datasets.h"
#include "graph/graph_io.h"
#include "reliability/bounds.h"
#include "reliability/estimator_factory.h"
#include "reliability/top_k.h"

using namespace relcomp;

namespace {

struct CliOptions {
  std::string graph_path;
  std::string dataset;
  std::string scale = "tiny";
  std::string estimator = "probtree";
  uint64_t seed = 42;
  uint32_t samples = 1000;
  std::optional<std::pair<NodeId, NodeId>> query;
  std::optional<std::pair<NodeId, NodeId>> bounds;
  std::optional<uint32_t> topk;
  NodeId source = 0;
  std::optional<uint32_t> workload;
  bool info = false;
};

void PrintUsage() {
  std::printf(
      "usage: relcomp_cli (--graph FILE | --dataset NAME) [options] ACTION\n"
      "\n"
      "input:\n"
      "  --graph FILE         text edge list: 'tail head prob' per line\n"
      "  --dataset NAME       lastfm|nethept|as_topology|dblp02|dblp005|biomine\n"
      "  --scale S            tiny|small|medium|large (default tiny)\n"
      "  --seed N             generation / sampling seed (default 42)\n"
      "options:\n"
      "  --estimator NAME     mc|bfs|probtree|lp+|lp|rhh|rss|probtree+lp+|\n"
      "                       probtree+rhh|probtree+rss (default probtree)\n"
      "  --samples K          samples per query (default 1000)\n"
      "actions:\n"
      "  --query S T          estimate R(S, T)\n"
      "  --bounds S T         polynomial-time lower/upper bounds + best path\n"
      "  --topk K --source S  the K most reliable targets from S\n"
      "  --workload N         generate N 2-hop pairs and estimate each\n"
      "  --info               print graph statistics\n");
}

Result<EstimatorKind> ParseEstimator(const std::string& name) {
  if (name == "mc") return EstimatorKind::kMonteCarlo;
  if (name == "bfs") return EstimatorKind::kBfsSharing;
  if (name == "probtree") return EstimatorKind::kProbTree;
  if (name == "lp+") return EstimatorKind::kLazyPropagationPlus;
  if (name == "lp") return EstimatorKind::kLazyPropagation;
  if (name == "rhh") return EstimatorKind::kRecursive;
  if (name == "rss") return EstimatorKind::kRecursiveStratified;
  if (name == "probtree+lp+") return EstimatorKind::kProbTreeLpPlus;
  if (name == "probtree+rhh") return EstimatorKind::kProbTreeRhh;
  if (name == "probtree+rss") return EstimatorKind::kProbTreeRss;
  return Status::InvalidArgument("unknown estimator: " + name);
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  auto need_value = [&](int& i) -> Result<std::string> {
    if (i + 1 >= argc) {
      return Status::InvalidArgument(std::string(argv[i]) + " needs a value");
    }
    return std::string(argv[++i]);
  };
  auto need_u64 = [&](int& i) -> Result<uint64_t> {
    RELCOMP_ASSIGN_OR_RETURN(const std::string text, need_value(i));
    uint64_t value = 0;
    if (!ParseUint64(text, &value)) {
      return Status::InvalidArgument("not a number: " + text);
    }
    return value;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--graph") {
      RELCOMP_ASSIGN_OR_RETURN(options.graph_path, need_value(i));
    } else if (arg == "--dataset") {
      RELCOMP_ASSIGN_OR_RETURN(options.dataset, need_value(i));
    } else if (arg == "--scale") {
      RELCOMP_ASSIGN_OR_RETURN(options.scale, need_value(i));
    } else if (arg == "--estimator") {
      RELCOMP_ASSIGN_OR_RETURN(options.estimator, need_value(i));
    } else if (arg == "--seed") {
      RELCOMP_ASSIGN_OR_RETURN(options.seed, need_u64(i));
    } else if (arg == "--samples") {
      RELCOMP_ASSIGN_OR_RETURN(const uint64_t k, need_u64(i));
      options.samples = static_cast<uint32_t>(k);
    } else if (arg == "--query" || arg == "--bounds") {
      RELCOMP_ASSIGN_OR_RETURN(const uint64_t s, need_u64(i));
      RELCOMP_ASSIGN_OR_RETURN(const uint64_t t, need_u64(i));
      const auto pair = std::make_pair(static_cast<NodeId>(s),
                                       static_cast<NodeId>(t));
      if (arg == "--query") {
        options.query = pair;
      } else {
        options.bounds = pair;
      }
    } else if (arg == "--topk") {
      RELCOMP_ASSIGN_OR_RETURN(const uint64_t k, need_u64(i));
      options.topk = static_cast<uint32_t>(k);
    } else if (arg == "--source") {
      RELCOMP_ASSIGN_OR_RETURN(const uint64_t s, need_u64(i));
      options.source = static_cast<NodeId>(s);
    } else if (arg == "--workload") {
      RELCOMP_ASSIGN_OR_RETURN(const uint64_t n, need_u64(i));
      options.workload = static_cast<uint32_t>(n);
    } else if (arg == "--info") {
      options.info = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      return Status::InvalidArgument("unknown argument: " + arg);
    }
  }
  if (options.graph_path.empty() == options.dataset.empty()) {
    return Status::InvalidArgument("provide exactly one of --graph / --dataset");
  }
  return options;
}

Result<UncertainGraph> LoadInput(const CliOptions& options) {
  if (!options.graph_path.empty()) {
    return LoadEdgeListText(options.graph_path);
  }
  RELCOMP_ASSIGN_OR_RETURN(const Scale scale, ParseScale(options.scale));
  for (DatasetId id : AllDatasetIds()) {
    if (options.dataset == DatasetName(id)) {
      RELCOMP_ASSIGN_OR_RETURN(Dataset dataset,
                               MakeDataset(id, scale, options.seed));
      return std::move(dataset.graph);
    }
  }
  return Status::InvalidArgument("unknown dataset: " + options.dataset);
}

Status RunCli(const CliOptions& options) {
  RELCOMP_ASSIGN_OR_RETURN(const UncertainGraph graph, LoadInput(options));
  std::printf("graph: %s\n", graph.Describe().c_str());

  if (options.info) {
    size_t max_out = 0;
    NodeId hub = 0;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (graph.OutDegree(v) > max_out) {
        max_out = graph.OutDegree(v);
        hub = v;
      }
    }
    std::printf("memory: %s; max out-degree: %zu (node %u)\n",
                HumanBytes(graph.MemoryBytes()).c_str(), max_out, hub);
  }

  if (options.bounds.has_value()) {
    const auto [s, t] = *options.bounds;
    RELCOMP_ASSIGN_OR_RETURN(const ReliabilityBounds bounds,
                             ComputeReliabilityBounds(graph, s, t));
    RELCOMP_ASSIGN_OR_RETURN(const ReliablePath path,
                             MostReliablePath(graph, s, t));
    std::printf("bounds R(%u, %u): [%.6f, %.6f]\n", s, t, bounds.lower,
                bounds.upper);
    if (path.exists()) {
      std::string nodes;
      for (NodeId v : path.nodes) {
        if (!nodes.empty()) nodes += " -> ";
        nodes += StrFormat("%u", v);
      }
      std::printf("most reliable path (p=%.6f): %s\n", path.probability,
                  nodes.c_str());
    } else {
      std::printf("no s-t path exists\n");
    }
  }

  const bool needs_estimator =
      options.query.has_value() || options.workload.has_value();
  std::unique_ptr<Estimator> estimator;
  if (needs_estimator) {
    RELCOMP_ASSIGN_OR_RETURN(const EstimatorKind kind,
                             ParseEstimator(options.estimator));
    FactoryOptions factory;
    factory.bfs_sharing.index_samples = std::max(options.samples, 1500u);
    factory.index_seed = options.seed;
    RELCOMP_ASSIGN_OR_RETURN(estimator, MakeEstimator(kind, graph, factory));
    std::printf("estimator: %s (K=%u)\n", std::string(estimator->name()).c_str(),
                options.samples);
  }

  EstimateOptions opts;
  opts.num_samples = options.samples;
  opts.seed = options.seed;

  if (options.query.has_value()) {
    const auto [s, t] = *options.query;
    RELCOMP_ASSIGN_OR_RETURN(const EstimateResult result,
                             estimator->Estimate({s, t}, opts));
    std::printf("R(%u, %u) ~= %.6f   (%s, %s working memory)\n", s, t,
                result.reliability, HumanSeconds(result.seconds).c_str(),
                HumanBytes(result.peak_memory_bytes).c_str());
  }

  if (options.workload.has_value()) {
    QueryGenOptions qopts;
    qopts.num_pairs = *options.workload;
    qopts.seed = options.seed;
    RELCOMP_ASSIGN_OR_RETURN(const std::vector<ReliabilityQuery> queries,
                             GenerateQueries(graph, qopts));
    double sum = 0.0;
    for (const ReliabilityQuery& q : queries) {
      RELCOMP_RETURN_NOT_OK(estimator->PrepareForNextQuery(opts.seed ^ q.source));
      RELCOMP_ASSIGN_OR_RETURN(const EstimateResult result,
                               estimator->Estimate(q, opts));
      std::printf("R(%u, %u) ~= %.6f\n", q.source, q.target, result.reliability);
      sum += result.reliability;
    }
    std::printf("average over %zu pairs: %.6f\n", queries.size(),
                sum / static_cast<double>(queries.size()));
  }

  if (options.topk.has_value()) {
    RELCOMP_ASSIGN_OR_RETURN(
        const std::vector<ReliableTarget> top,
        TopKReliableTargetsMonteCarlo(graph, options.source, *options.topk,
                                      options.samples, options.seed));
    std::printf("top-%u reliable targets from node %u:\n", *options.topk,
                options.source);
    for (size_t i = 0; i < top.size(); ++i) {
      std::printf("  %2zu. node %-8u R ~= %.4f\n", i + 1, top[i].node,
                  top[i].reliability);
    }
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc <= 1) {
    PrintUsage();
    return 1;
  }
  const Result<CliOptions> options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "error: %s\n", options.status().ToString().c_str());
    return 1;
  }
  const Status status = RunCli(*options);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
