// Social influence evaluation (the paper's social-network motivation [23]):
// on a LastFM-style musical social network where edge probabilities model
// influence strength, estimate how reliably a campaign seeded at one user
// reaches specific target users, and how that decays with social distance.

#include <cstdio>
#include <vector>

#include "graph/datasets.h"
#include "graph/possible_world.h"
#include "reliability/estimator_factory.h"

using namespace relcomp;

int main() {
  const Dataset dataset =
      MakeDataset(DatasetId::kLastFm, Scale::kTiny, /*seed=*/77).MoveValue();
  const UncertainGraph& network = dataset.graph;
  std::printf("Social network (LastFM analogue): %s\n\n",
              network.Describe().c_str());

  // Seed user: the highest-degree hub (a typical campaign choice).
  NodeId seed_user = 0;
  for (NodeId v = 0; v < network.num_nodes(); ++v) {
    if (network.OutDegree(v) > network.OutDegree(seed_user)) seed_user = v;
  }
  std::printf("Campaign seed: user %u (degree %zu)\n\n", seed_user,
              network.OutDegree(seed_user));

  // LP+ is a good fit: low-probability influence edges are exactly where
  // lazy geometric probing saves work (Section 2.6).
  auto estimator =
      MakeEstimator(EstimatorKind::kLazyPropagationPlus, network).MoveValue();
  EstimateOptions options;
  options.num_samples = 3000;
  options.seed = 3;

  const std::vector<uint32_t> dist = HopDistances(network, seed_user);
  std::printf("%-10s %-10s %-22s\n", "Distance", "Targets",
              "Avg influence probability");
  for (uint32_t h = 1; h <= 5; ++h) {
    double sum = 0.0;
    uint32_t count = 0;
    for (NodeId v = 0; v < network.num_nodes() && count < 20; ++v) {
      if (dist[v] != h) continue;
      sum += estimator->Estimate({seed_user, v}, options)->reliability;
      ++count;
    }
    if (count == 0) continue;
    std::printf("%-10u %-10u %.4f\n", h, count, sum / count);
  }
  std::printf(
      "\nInfluence reliability decays with social distance — the same shape\n"
      "the paper measures when varying s-t distance (Figures 14-15).\n");
  return 0;
}
