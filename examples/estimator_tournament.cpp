// Estimator tournament: run all six estimators of the study on one dataset
// and one workload, print the comparison table, and ask the paper's decision
// tree (Figure 18) for a recommendation. A miniature version of the whole
// benchmark, runnable in seconds.
//
// Usage: estimator_tournament [dataset] — dataset in
//   {lastfm, nethept, as_topology, dblp02, dblp005, biomine}, default lastfm.

#include <cstdio>
#include <cstring>

#include "common/format.h"
#include "eval/convergence.h"
#include "eval/query_gen.h"
#include "eval/recommendation.h"
#include "eval/table.h"
#include "graph/datasets.h"
#include "reliability/estimator_factory.h"

using namespace relcomp;

int main(int argc, char** argv) {
  DatasetId id = DatasetId::kLastFm;
  if (argc > 1) {
    bool found = false;
    for (DatasetId candidate : AllDatasetIds()) {
      if (std::strcmp(argv[1], DatasetName(candidate)) == 0) {
        id = candidate;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown dataset '%s'\n", argv[1]);
      return 1;
    }
  }

  const Dataset dataset = MakeDataset(id, Scale::kTiny, /*seed=*/1).MoveValue();
  std::printf("Tournament on %s: %s\n\n", DatasetDisplayName(id),
              dataset.graph.Describe().c_str());

  QueryGenOptions qopts;
  qopts.num_pairs = 10;
  qopts.seed = 4;
  const std::vector<ReliabilityQuery> queries =
      GenerateQueries(dataset.graph, qopts).MoveValue();

  ConvergenceOptions copts;
  copts.initial_k = 250;
  copts.step_k = 250;
  copts.max_k = 2000;
  copts.repeats = 10;
  copts.dispersion_threshold = 2e-3;
  copts.seed = 12;

  TextTable table({"Estimator", "K@conv", "Reliability", "Variance (x1e-4)",
                   "Query time (ms)", "Memory (KB)"});
  FactoryOptions factory;
  factory.bfs_sharing.index_samples = copts.max_k;
  for (const EstimatorKind kind : TheSixEstimators()) {
    auto estimator = MakeEstimator(kind, dataset.graph, factory).MoveValue();
    const ConvergenceReport report =
        RunConvergence(*estimator, queries, copts).MoveValue();
    const KPoint& conv = report.FinalPoint();
    table.AddRow(
        {std::string(estimator->name()),
         report.converged() ? StrFormat("%u", report.converged_k) : ">max",
         StrFormat("%.4f", conv.avg_reliability),
         StrFormat("%.3f", conv.avg_variance * 1e4),
         StrFormat("%.3f", conv.avg_query_seconds * 1e3),
         StrFormat("%.1f", static_cast<double>(conv.peak_memory_bytes +
                                               estimator->IndexMemoryBytes()) /
                               1024.0)});
  }
  std::printf("%s\n", table.ToString().c_str());

  ScenarioConstraints constraints;
  constraints.memory_constrained = true;
  constraints.need_fast_queries = true;
  const Recommendation rec = RecommendEstimator(constraints);
  std::printf("Recommendation for a memory-tight, latency-sensitive service:\n");
  std::printf("  %s\n", rec.explanation.c_str());
  for (EstimatorKind kind : rec.estimators) {
    std::printf("  -> %s\n", EstimatorKindName(kind));
  }
  return 0;
}
