// Estimator tournament: run all six estimators of the study on one dataset
// and one workload, print the comparison table, and ask the paper's decision
// tree (Figure 18) for a recommendation. A miniature version of the whole
// benchmark, runnable in seconds.
//
// Usage: estimator_tournament [dataset] [--json] — dataset in
//   {lastfm, nethept, as_topology, dblp02, dblp005, biomine}, default lastfm.
//
// --json emits the machine-readable calibration profile instead of the
// table: per-backend latency/accuracy curves in the sample budget K, in
// exactly the document shape RouterModel::FromJson consumes — feed it to
// EngineOptions::router_profile_json to run the engine's adaptive router on
// measured curves instead of the CostHints prior.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/format.h"
#include "eval/convergence.h"
#include "eval/query_gen.h"
#include "eval/recommendation.h"
#include "eval/table.h"
#include "graph/datasets.h"
#include "reliability/estimator_factory.h"

using namespace relcomp;

int main(int argc, char** argv) {
  DatasetId id = DatasetId::kLastFm;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      continue;
    }
    bool found = false;
    for (DatasetId candidate : AllDatasetIds()) {
      if (std::strcmp(argv[i], DatasetName(candidate)) == 0) {
        id = candidate;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return 1;
    }
  }

  const Dataset dataset = MakeDataset(id, Scale::kTiny, /*seed=*/1).MoveValue();
  if (!json) {
    std::printf("Tournament on %s: %s\n\n", DatasetDisplayName(id),
                dataset.graph.Describe().c_str());
  }

  QueryGenOptions qopts;
  qopts.num_pairs = 10;
  qopts.seed = 4;
  const std::vector<ReliabilityQuery> queries =
      GenerateQueries(dataset.graph, qopts).MoveValue();

  ConvergenceOptions copts;
  copts.initial_k = 250;
  copts.step_k = 250;
  copts.max_k = 2000;
  copts.repeats = 10;
  copts.dispersion_threshold = 2e-3;
  copts.seed = 12;

  TextTable table({"Estimator", "K@conv", "Reliability", "Variance (x1e-4)",
                   "Query time (ms)", "Memory (KB)"});
  std::string profiles;  // the "backends" array body in --json mode
  FactoryOptions factory;
  factory.bfs_sharing.index_samples = copts.max_k;
  for (const EstimatorKind kind : TheSixEstimators()) {
    auto estimator = MakeEstimator(kind, dataset.graph, factory).MoveValue();
    const ConvergenceReport report =
        RunConvergence(*estimator, queries, copts).MoveValue();
    const KPoint& conv = report.FinalPoint();
    if (json) {
      std::string curve;
      for (const KPoint& point : report.points) {
        curve += StrFormat(
            "%s\n        {\"k\": %u, \"seconds\": %.9g, \"variance\": %.9g}",
            curve.empty() ? "" : ",", point.k, point.avg_query_seconds,
            point.avg_variance);
      }
      profiles += StrFormat(
          "%s\n    {\n      \"kind\": \"%s\",\n      \"converged_k\": %u,\n"
          "      \"curve\": [%s\n      ]\n    }",
          profiles.empty() ? "" : ",", EstimatorKindName(kind),
          report.converged() ? report.converged_k : copts.max_k, curve.c_str());
      continue;
    }
    table.AddRow(
        {std::string(estimator->name()),
         report.converged() ? StrFormat("%u", report.converged_k) : ">max",
         StrFormat("%.4f", conv.avg_reliability),
         StrFormat("%.3f", conv.avg_variance * 1e4),
         StrFormat("%.3f", conv.avg_query_seconds * 1e3),
         StrFormat("%.1f", static_cast<double>(conv.peak_memory_bytes +
                                               estimator->IndexMemoryBytes()) /
                               1024.0)});
  }
  if (json) {
    std::printf(
        "{\n  \"dataset\": \"%s\",\n  \"workload\": \"st\",\n"
        "  \"backends\": [%s\n  ]\n}\n",
        DatasetName(id), profiles.c_str());
    return 0;
  }
  std::printf("%s\n", table.ToString().c_str());

  ScenarioConstraints constraints;
  constraints.memory_constrained = true;
  constraints.need_fast_queries = true;
  const Recommendation rec = RecommendEstimator(constraints);
  std::printf("Recommendation for a memory-tight, latency-sensitive service:\n");
  std::printf("  %s\n", rec.explanation.c_str());
  for (EstimatorKind kind : rec.estimators) {
    std::printf("  -> %s\n", EstimatorKindName(kind));
  }
  return 0;
}
