// reliability_server: replays a generated mixed workload through the
// concurrent QueryEngine, the way a serving frontend would — a Zipf-skewed
// stream of repeated parametrized requests spanning all four workload kinds
// (s-t, top-k, reliable-set, distance-constrained), worker-thread estimator
// replicas, a result cache absorbing the hot keys, and the sweep-sharing
// layer collapsing every top-k / reliable-set parameterization of one hot
// source into a single per-source sweep. The catalogue deliberately asks for
// two different k and eta per source so the sweep sharing is visible in the
// printed stats.
//
// The serving loop is fault-tolerant the way the engine is: load shedding
// is always armed (a full queue answers kUnavailable with a retry-after
// hint instead of blocking the client), and the client side answers each
// shed with a bounded, seeded exponential backoff — base 1 ms doubling to a
// 64 ms cap over at most 6 retries, each delay jittered uniformly in
// [delay/2, delay] from a dedicated RNG so a replay backs off identically.
// A request still shed after the last retry is dropped and counted, never
// fatal.
//
//   ./build/examples/reliability_server [dataset] [threads] [requests] [kind]
//                                       [strata] [--stats-json <path>]
//                                       [--slow-query-ms <n>]
//                                       [--deadline-ms <n>] [--shed-depth <n>]
//
//   dataset  : lastfm | nethept | astopo | dblp02 | dblp005 | biomine
//   threads  : worker threads (default 4)
//   requests : total stream length (default 2000)
//   kind     : mc | bfs (default mc; bfs also exercises the background
//              generation prebuilder)
//   strata   : stratified-partition width S of every sweep (default 8).
//              Deliberately NOT tied to the thread count: results are a
//              canonical function of (query content, S), so the same S at
//              any thread count answers bit-identically — the threads only
//              decide how many workers steal strata of a hot sweep.
//
//   --stats-json <path>   : write one MetricsRegistry::ExportJson() scrape —
//                           every engine counter, gauge, and latency
//                           histogram — to <path> at shutdown.
//   --slow-query-ms <n>   : arm per-query tracing and dump the span tree of
//                           every query slower than n ms (answers are
//                           bit-identical with tracing on or off).
//   --deadline-ms <n>     : per-query deadline (default 0 = none). Expired
//                           requests fail with kDeadlineExceeded — counted
//                           in the cycle stats, never cached, never fatal.
//   --shed-depth <n>      : queue depth past which compute-bound requests
//                           are shed (default 0 = shed only when the queue
//                           is completely full).
//   --persist-dir <path>  : arm the crash-safe persistence tier
//                           (src/persist/): snapshots + warm-state journal
//                           live under <path>. The startup line reports the
//                           cold-start time and whether the index came from
//                           the mmapped snapshot or a rebuild; after the
//                           replay the server runs one kill-and-restart
//                           cycle — the engine is destroyed (its destructor
//                           flushes the warm journal, exactly what a clean
//                           SIGTERM does), recreated from disk, and fed a
//                           replay sample — reporting the restarted
//                           cold-start ms, the restored entry counts, and
//                           the warm-hit rate the restored caches served.
//                           Run the binary twice with the same flags to see
//                           a real cross-process restart: the second run's
//                           *initial* cold start is already warm.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "common/format.h"
#include "common/rng.h"
#include "common/timer.h"
#include "engine/query_engine.h"
#include "eval/query_gen.h"
#include "graph/datasets.h"

using namespace relcomp;

namespace {

DatasetId ParseDataset(const char* name) {
  for (DatasetId id : AllDatasetIds()) {
    if (std::strcmp(name, DatasetName(id)) == 0) return id;
  }
  std::fprintf(stderr, "unknown dataset '%s', using lastfm\n", name);
  return DatasetId::kLastFm;
}

void PrintResponse(const EngineResult& r) {
  const char* how = r.cache_hit   ? "cache hit"
                    : r.coalesced ? "coalesced"
                                  : "computed";
  if (!r.ok()) {
    // Per-query status: a failed request reports itself without having
    // discarded the rest of the drain cycle.
    std::printf("  %s FAILED: %s\n", r.query.Describe().c_str(),
                r.status.ToString().c_str());
    return;
  }
  switch (r.query.workload) {
    case WorkloadKind::kSt:
    case WorkloadKind::kDistance:
      std::printf("  %s = %.4f  (%s, seed %016llx)\n",
                  r.query.Describe().c_str(), r.reliability, how,
                  static_cast<unsigned long long>(r.seed));
      break;
    case WorkloadKind::kTopK:
    case WorkloadKind::kReliableSet: {
      std::string head;
      for (size_t i = 0; i < r.targets.size() && i < 3; ++i) {
        head += StrFormat("%s%u:%.3f", i == 0 ? "" : ", ",
                          r.targets[i].node, r.targets[i].reliability);
      }
      std::printf("  %s -> %zu targets [%s%s]  (%s)\n",
                  r.query.Describe().c_str(), r.targets.size(), head.c_str(),
                  r.targets.size() > 3 ? ", ..." : "", how);
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Flags may appear anywhere; everything else is positional, in order.
  std::string stats_json_path;
  std::string persist_dir;
  double slow_query_ms = 0.0;
  double deadline_ms = 0.0;
  long shed_depth = 0;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats-json") == 0 && i + 1 < argc) {
      stats_json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--slow-query-ms") == 0 && i + 1 < argc) {
      slow_query_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--shed-depth") == 0 && i + 1 < argc) {
      shed_depth = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--persist-dir") == 0 && i + 1 < argc) {
      persist_dir = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  const DatasetId dataset_id = positional.size() > 0
                                   ? ParseDataset(positional[0])
                                   : DatasetId::kLastFm;
  const long threads_arg = positional.size() > 1 ? std::atol(positional[1]) : 4;
  const long requests_arg =
      positional.size() > 2 ? std::atol(positional[2]) : 2000;
  EstimatorKind kind = EstimatorKind::kMonteCarlo;
  if (positional.size() > 3) {
    if (std::strcmp(positional[3], "bfs") == 0) {
      kind = EstimatorKind::kBfsSharing;
    } else if (std::strcmp(positional[3], "mc") != 0) {
      std::fprintf(stderr, "unknown kind '%s', using mc\n", positional[3]);
    }
  }
  const long strata_arg = positional.size() > 4 ? std::atol(positional[4]) : 8;
  if (threads_arg < 0 || threads_arg > 1024 || requests_arg < 0 ||
      strata_arg < 1 || strata_arg > 4096 || slow_query_ms < 0 ||
      deadline_ms < 0 || shed_depth < 0) {
    std::fprintf(stderr,
                 "usage: reliability_server [dataset] [threads 0-1024] "
                 "[requests >= 0] [mc|bfs] [strata 1-4096] "
                 "[--stats-json <path>] [--slow-query-ms <n>] "
                 "[--deadline-ms <n>] [--shed-depth <n>] "
                 "[--persist-dir <path>]\n");
    return 2;
  }
  const size_t threads = static_cast<size_t>(threads_arg);
  const size_t requests = static_cast<size_t>(requests_arg);

  Dataset dataset = MakeDataset(dataset_id, Scale::kSmall, 20190410).MoveValue();
  std::printf("serving %s: %s\n", dataset.name.c_str(),
              dataset.graph.Describe().c_str());

  // The catalogue of distinct queries users may ask — a mixed-workload
  // stream over the paper's h=2 pairs — hit with a skewed popularity
  // distribution.
  MixedWorkloadOptions mix;
  mix.pairs.num_pairs = 100;
  mix.pairs.seed = 7;
  mix.num_queries = 200;
  mix.k = 10;
  mix.eta = 0.2;
  mix.max_hops = 4;
  std::vector<EngineQuery> catalogue =
      GenerateMixedWorkload(dataset.graph, mix).MoveValue();
  // A second parameterization of the same sources: the sweep-sharing layer
  // answers top-k(s, 5) / reliable-set(s, 0.5) from the very sweeps the
  // first parameterization already ran.
  mix.k = 5;
  mix.eta = 0.5;
  mix.seed = 100;
  const std::vector<EngineQuery> second =
      GenerateMixedWorkload(dataset.graph, mix).MoveValue();
  catalogue.insert(catalogue.end(), second.begin(), second.end());

  EngineOptions options;
  options.num_threads = threads;
  options.kind = kind;
  options.num_samples = kind == EstimatorKind::kBfsSharing ? 500 : 1000;
  options.num_strata = static_cast<uint32_t>(strata_arg);
  options.factory.bfs_sharing.index_samples = 500;
  options.seed = 20190410;
  options.cache_capacity = 4096;
  options.cache_max_bytes = size_t{16} << 20;  // ranked payloads, by bytes
  options.slow_query_ms = slow_query_ms;
  options.default_deadline_ms = deadline_ms;
  // Shedding is always armed: a full queue refuses work with a retry-after
  // hint instead of blocking the submit loop; the client backs off below.
  options.enable_load_shedding = true;
  options.shed_queue_depth = static_cast<size_t>(shed_depth);
  // Crash-safe persistence: snapshots + warm journal under --persist-dir.
  options.persist_dir = persist_dir;
  Timer cold_start;
  auto engine = QueryEngine::Create(dataset.graph, options).MoveValue();
  const double cold_start_ms = cold_start.ElapsedSeconds() * 1e3;
  if (!persist_dir.empty()) {
    const QueryEngine::WarmRestoreReport& report =
        engine->warm_restore_report();
    std::printf(
        "persistence: dir %s, cold start %.1f ms (%s), warm restore %llu "
        "results + %llu sweeps (%llu skipped%s)\n",
        persist_dir.c_str(), cold_start_ms,
        report.snapshot_restored ? "index mmapped from snapshot"
                                 : "rebuilt from source, snapshot published",
        static_cast<unsigned long long>(report.result_entries),
        static_cast<unsigned long long>(report.sweep_entries),
        static_cast<unsigned long long>(report.skipped),
        report.torn_tail ? ", torn journal tail discarded" : "");
  }
  std::printf(
      "engine up: %s estimator, %zu workers, S=%u strata per sweep, cache "
      "%zu entries / %zu MB, sweep cache %zu MB, scout %s, prebuilder %s, "
      "K=%u\n\n",
      EstimatorKindName(kind), engine->num_threads(), options.num_strata,
      options.cache_capacity, options.cache_max_bytes >> 20,
      options.sweep_cache_max_bytes >> 20,
      options.enable_sweep_scout ? "on" : "off",
      engine->prebuilder() != nullptr
          ? StrFormat("on (%zu builders)", options.prebuild_threads).c_str()
          : "off (kind has no prepared generations)",
      options.num_samples);

  // Replay: popularity ~ 1/rank over the catalogue, like repeated users
  // asking about the same few queries.
  Rng rng(42);
  std::vector<double> cumulative(catalogue.size());
  double total = 0.0;
  for (size_t i = 0; i < catalogue.size(); ++i) {
    total += 1.0 / static_cast<double>(i + 1);
    cumulative[i] = total;
  }
  // The stream drains in cycles, with a periodic one-line stats scrape after
  // each — the registry is cumulative, so every line is a strict progression
  // of the last.
  constexpr size_t kDrainCycles = 4;
  const size_t cycle_len = requests < kDrainCycles ? requests
                                                   : requests / kDrainCycles;
  // Client-side fault handling: a shed submit (kUnavailable) retries with
  // bounded exponential backoff — 1 ms base doubling to a 64 ms cap over at
  // most 6 retries — jittered uniformly in [delay/2, delay] from a seeded
  // RNG (deterministic replays, decorrelated retry waves). Requests still
  // shed after the last retry are dropped, not fatal. The retry / drop
  // counters land in the engine's own registry so one --stats-json scrape
  // carries the client picture next to engine_shed_total.
  constexpr int kMaxRetries = 6;
  Rng backoff_rng(0xB0FF5EED);
  obs::Counter* retried_counter =
      engine->metrics().GetCounter("client_retried_total");
  obs::Counter* dropped_counter =
      engine->metrics().GetCounter("client_dropped_total");
  size_t submitted = 0;
  std::vector<EngineResult> responses;
  while (submitted < requests) {
    const size_t batch = std::min(cycle_len > 0 ? cycle_len : size_t{1},
                                  requests - submitted);
    for (size_t i = 0; i < batch; ++i) {
      const double u = rng.NextDouble() * total;
      size_t pick = 0;
      while (pick + 1 < cumulative.size() && cumulative[pick] < u) ++pick;
      Status status = engine->Submit(catalogue[pick]);
      for (int attempt = 0;
           !status.ok() && status.code() == StatusCode::kUnavailable &&
           attempt < kMaxRetries;
           ++attempt) {
        const double base_ms =
            std::min(64.0, static_cast<double>(1u << attempt));
        const double delay_ms =
            base_ms * (0.5 + 0.5 * backoff_rng.NextDouble());
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
        retried_counter->Inc();
        status = engine->Submit(catalogue[pick]);
      }
      if (!status.ok()) {
        if (status.code() == StatusCode::kUnavailable) {
          // Still shed after the retry budget: drop this request and move
          // on — overload is a degraded mode, not a crash.
          dropped_counter->Inc();
          ++submitted;
          continue;
        }
        std::fprintf(stderr, "submit failed: %s\n", status.ToString().c_str());
        return 1;
      }
      ++submitted;
    }
    std::vector<EngineResult> cycle = engine->Drain().MoveValue();
    responses.insert(responses.end(),
                     std::make_move_iterator(cycle.begin()),
                     std::make_move_iterator(cycle.end()));
    const EngineStatsSnapshot s = engine->StatsSnapshot();
    std::printf(
        "[stats] queries=%llu qps=%.0f p50=%.2fms p99=%.2fms cache=%.0f%% "
        "sweeps x/h/c=%llu/%llu/%llu shed=%llu retried=%llu dropped=%llu "
        "deadline=%llu stale=%llu slow=%llu\n",
        static_cast<unsigned long long>(s.queries), s.span_qps, s.p50_ms,
        s.p99_ms, s.cache.hit_rate() * 100.0,
        static_cast<unsigned long long>(s.sweep_executed),
        static_cast<unsigned long long>(s.sweep_hits),
        static_cast<unsigned long long>(s.sweep_coalesced),
        static_cast<unsigned long long>(s.shed),
        static_cast<unsigned long long>(retried_counter->Value()),
        static_cast<unsigned long long>(dropped_counter->Value()),
        static_cast<unsigned long long>(s.deadline_exceeded),
        static_cast<unsigned long long>(s.stale_served),
        static_cast<unsigned long long>(engine->tracer().slow_queries()));
  }
  std::printf("\nreplayed %zu requests over %zu distinct queries\n\n",
              submitted, catalogue.size());

  // One sample response per workload kind (first occurrence in the stream).
  std::printf("sample responses:\n");
  bool seen[kNumWorkloadKinds] = {};
  for (const EngineResult& r : responses) {
    bool& done = seen[static_cast<size_t>(r.query.workload)];
    if (done) continue;
    done = true;
    PrintResponse(r);
  }
  const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
  std::printf("\n%s\n",
              EngineStatsTable({{StrFormat("%zu threads", threads), snapshot}})
                  .ToString()
                  .c_str());
  const uint64_t sweep_queries = snapshot.queries_of(WorkloadKind::kTopK) +
                                 snapshot.queries_of(WorkloadKind::kReliableSet);
  std::printf(
      "sweep sharing: %llu top-k/reliable-set queries -> %llu sweeps "
      "executed, %llu memo hits, %llu coalesced (%zu vectors / %zu KB "
      "resident)\n",
      static_cast<unsigned long long>(sweep_queries),
      static_cast<unsigned long long>(snapshot.sweep_executed),
      static_cast<unsigned long long>(snapshot.sweep_hits),
      static_cast<unsigned long long>(snapshot.sweep_coalesced),
      snapshot.sweep_cache.entries, snapshot.sweep_cache.bytes_in_use >> 10);
  std::printf(
      "stratified sweeps: %llu strata executed (%llu stolen by coalesced "
      "waiters), %llu scout warms, per-sweep p50/p95 %.2f/%.2f ms\n",
      static_cast<unsigned long long>(snapshot.strata_executed),
      static_cast<unsigned long long>(snapshot.strata_stolen),
      static_cast<unsigned long long>(snapshot.scout_warms),
      snapshot.sweep_p50_ms, snapshot.sweep_p95_ms);
  std::printf(
      "fault tolerance: %llu shed at admission, %llu client retries, %llu "
      "dropped after backoff, %llu deadline-exceeded, %llu stale served\n",
      static_cast<unsigned long long>(snapshot.shed),
      static_cast<unsigned long long>(retried_counter->Value()),
      static_cast<unsigned long long>(dropped_counter->Value()),
      static_cast<unsigned long long>(snapshot.deadline_exceeded),
      static_cast<unsigned long long>(snapshot.stale_served));
  if (engine->prebuilder() != nullptr) {
    std::printf(
        "generation prebuild: %llu requested, %llu built on %zu background "
        "builders, %llu adopted by workers (%zu KB ready pool)\n",
        static_cast<unsigned long long>(snapshot.prebuilder.requested),
        static_cast<unsigned long long>(snapshot.prebuilder.built),
        snapshot.prebuilder.builders,
        static_cast<unsigned long long>(snapshot.prebuilt_used),
        snapshot.prebuilder.ready_bytes >> 10);
  }

  // Span trees of the slowest requests (only when --slow-query-ms armed the
  // tracer).
  const std::vector<std::string> slow_log = engine->tracer().SlowQueryLog();
  if (!slow_log.empty()) {
    std::printf("\nslow queries (> %.3f ms): %llu total, last %zu dumps:\n",
                slow_query_ms,
                static_cast<unsigned long long>(engine->tracer().slow_queries()),
                slow_log.size());
    for (const std::string& dump : slow_log) {
      std::printf("%s\n", dump.c_str());
    }
  }

  // The full registry, Prometheus-style — the same scrape a /metrics
  // endpoint would serve.
  std::printf("\n%s", engine->metrics().ExportText().c_str());

  if (!stats_json_path.empty()) {
    std::ofstream out(stats_json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write stats json to '%s'\n",
                   stats_json_path.c_str());
      return 1;
    }
    out << engine->metrics().ExportJson() << "\n";
    std::printf("\nwrote metrics scrape to %s\n", stats_json_path.c_str());
  }

  // Kill-and-restart cycle (--persist-dir): destroy the engine — its
  // destructor flushes the warm journal, exactly what a clean SIGTERM does —
  // recreate it from disk, and replay a sample of the same Zipf stream. The
  // line this prints is the persistence tier's value proposition in two
  // numbers: the restarted cold-start ms (mmap, not rebuild) and the
  // warm-hit rate yesterday's journaled caches serve today's traffic at.
  if (!persist_dir.empty()) {
    engine.reset();
    Timer restart_timer;
    auto restarted = QueryEngine::Create(dataset.graph, options).MoveValue();
    const double restart_ms = restart_timer.ElapsedSeconds() * 1e3;
    const QueryEngine::WarmRestoreReport& report =
        restarted->warm_restore_report();
    const size_t sample =
        std::min<size_t>(512, std::max<size_t>(64, requests / 4));
    Rng replay_rng(42);  // the same stream head the original replay served
    size_t replayed = 0;
    for (size_t i = 0; i < sample; ++i) {
      const double u = replay_rng.NextDouble() * total;
      size_t pick = 0;
      while (pick + 1 < cumulative.size() && cumulative[pick] < u) ++pick;
      if (restarted->Submit(catalogue[pick]).ok()) ++replayed;
    }
    const std::vector<EngineResult> replay_results =
        restarted->Drain().MoveValue();
    size_t replay_failures = 0;
    for (const EngineResult& r : replay_results) {
      if (!r.ok()) ++replay_failures;
    }
    const EngineStatsSnapshot rs = restarted->StatsSnapshot();
    std::printf(
        "\nkill-and-restart cycle: cold start %.1f ms (%s), %llu results + "
        "%llu sweeps restored (%llu skipped%s); %zu-request replay -> "
        "warm-hit rate %.0f%% (%llu hits / %llu lookups), %llu sweep memo "
        "hits, %zu failures\n",
        restart_ms,
        report.snapshot_restored ? "index mmapped from snapshot"
                                 : "index rebuilt from source",
        static_cast<unsigned long long>(report.result_entries),
        static_cast<unsigned long long>(report.sweep_entries),
        static_cast<unsigned long long>(report.skipped),
        report.torn_tail ? ", torn journal tail discarded" : "", replayed,
        rs.cache.hit_rate() * 100.0,
        static_cast<unsigned long long>(rs.cache.hits),
        static_cast<unsigned long long>(rs.cache.lookups()),
        static_cast<unsigned long long>(rs.sweep_hits), replay_failures);
  }
  return 0;
}
