// Quickstart: build a small uncertain graph, ask for an s-t reliability
// estimate with two different estimators, and compare with the exact value.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "graph/graph_builder.h"
#include "reliability/estimator_factory.h"
#include "reliability/exact.h"

using namespace relcomp;

int main() {
  // A 6-node uncertain graph: two braided paths from 0 to 5.
  //
  //      0 --0.8--> 1 --0.6--> 3
  //      0 --0.5--> 2 --0.7--> 3 --0.9--> 5
  //      1 --0.4--> 4 --0.8--> 5
  GraphBuilder builder(6);
  builder.AddEdge(0, 1, 0.8).CheckOK();
  builder.AddEdge(1, 3, 0.6).CheckOK();
  builder.AddEdge(0, 2, 0.5).CheckOK();
  builder.AddEdge(2, 3, 0.7).CheckOK();
  builder.AddEdge(3, 5, 0.9).CheckOK();
  builder.AddEdge(1, 4, 0.4).CheckOK();
  builder.AddEdge(4, 5, 0.8).CheckOK();
  const UncertainGraph graph = builder.Build().MoveValue();
  std::printf("Graph: %s\n\n", graph.Describe().c_str());

  const ReliabilityQuery query{0, 5};

  // Ground truth via exhaustive possible-world enumeration (tiny graph only).
  const double exact = ExactReliabilityEnumeration(graph, 0, 5).MoveValue();
  std::printf("Exact R(0, 5)                : %.6f\n", exact);

  // Monte Carlo sampling (Algorithm 1 of the paper).
  EstimateOptions options;
  options.num_samples = 20000;
  options.seed = 42;
  auto mc = MakeEstimator(EstimatorKind::kMonteCarlo, graph).MoveValue();
  const EstimateResult mc_result = mc->Estimate(query, options).MoveValue();
  std::printf("MC estimate   (K=%u)     : %.6f  (%.2f ms, %zu B working set)\n",
              mc_result.num_samples, mc_result.reliability,
              mc_result.seconds * 1e3, mc_result.peak_memory_bytes);

  // Recursive stratified sampling — the study's lowest-variance estimator.
  auto rss =
      MakeEstimator(EstimatorKind::kRecursiveStratified, graph).MoveValue();
  const EstimateResult rss_result = rss->Estimate(query, options).MoveValue();
  std::printf("RSS estimate  (K=%u)     : %.6f  (%.2f ms)\n",
              rss_result.num_samples, rss_result.reliability,
              rss_result.seconds * 1e3);

  // ProbTree: index once, query fast — the paper's overall recommendation.
  auto prob_tree = MakeEstimator(EstimatorKind::kProbTree, graph).MoveValue();
  const EstimateResult pt_result = prob_tree->Estimate(query, options).MoveValue();
  std::printf("ProbTree estimate (K=%u) : %.6f  (%.2f ms, index %zu B)\n",
              pt_result.num_samples, pt_result.reliability,
              pt_result.seconds * 1e3, prob_tree->IndexMemoryBytes());
  return 0;
}
