// Protein-interaction search (the paper's PPI motivation, Section 1): given
// a protein in an uncertain interaction network, rank the proteins in its
// neighbourhood by the probability of being connected to it.
//
// Uses the BioMine-style analogue dataset and the RSS estimator (lowest
// variance at a fixed budget), exactly how a biologist would shortlist
// interaction candidates for wet-lab validation.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/datasets.h"
#include "graph/possible_world.h"
#include "reliability/estimator_factory.h"

using namespace relcomp;

int main() {
  const Dataset dataset =
      MakeDataset(DatasetId::kBioMine, Scale::kTiny, /*seed=*/2024).MoveValue();
  const UncertainGraph& graph = dataset.graph;
  std::printf("Protein network (BioMine analogue): %s\n\n",
              graph.Describe().c_str());

  // Pick a well-connected "protein of interest".
  NodeId protein = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.OutDegree(v) > graph.OutDegree(protein)) protein = v;
  }
  std::printf("Protein of interest: node %u (out-degree %zu)\n", protein,
              graph.OutDegree(protein));

  // Candidates: everything within 2 hops (the paper's workload distance).
  const std::vector<uint32_t> dist = HopDistances(graph, protein);
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (v != protein && dist[v] == 2) candidates.push_back(v);
  }
  if (candidates.size() > 25) candidates.resize(25);
  std::printf("Scoring %zu candidate proteins at 2 hops...\n\n",
              candidates.size());

  auto estimator =
      MakeEstimator(EstimatorKind::kRecursiveStratified, graph).MoveValue();
  EstimateOptions options;
  options.num_samples = 1000;
  options.seed = 7;

  std::vector<std::pair<double, NodeId>> scored;
  for (const NodeId candidate : candidates) {
    const EstimateResult result =
        estimator->Estimate({protein, candidate}, options).MoveValue();
    scored.emplace_back(result.reliability, candidate);
  }
  std::sort(scored.rbegin(), scored.rend());

  std::printf("%-6s %-10s %s\n", "Rank", "Protein", "Connection probability");
  for (size_t i = 0; i < std::min<size_t>(scored.size(), 10); ++i) {
    std::printf("%-6zu %-10u %.4f\n", i + 1, scored[i].second, scored[i].first);
  }
  std::printf("\nTop candidates are the most promising interaction partners "
              "to validate experimentally.\n");
  return 0;
}
