// Mixed-workload coverage for the workload-polymorphic QueryEngine: one
// engine answering s-t, top-k, reliable-set, and distance-constrained
// queries in a single batch, with the determinism, cache-isolation, and
// standalone-equivalence contracts of src/engine/README.md.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "eval/query_gen.h"
#include "reliability/distance_constrained.h"
#include "reliability/estimator_factory.h"
#include "reliability/reliable_set.h"
#include "reliability/top_k.h"
#include "reliability/workload.h"
#include "test_util.h"

namespace relcomp {
namespace {

using ::relcomp::testing::RandomSmallGraph;

EngineOptions BaseOptions(size_t threads, EstimatorKind kind,
                          bool cache = true) {
  EngineOptions options;
  options.num_threads = threads;
  options.kind = kind;
  options.num_samples = 300;
  options.seed = 20190411;
  options.enable_cache = cache;
  return options;
}

/// A deterministic mixed batch touching every workload kind.
std::vector<EngineQuery> MixedBatch(const UncertainGraph& graph,
                                    size_t limit) {
  std::vector<EngineQuery> queries;
  for (NodeId s = 0; s < graph.num_nodes() && queries.size() < limit; ++s) {
    const NodeId t = (s + 3) % graph.num_nodes();
    if (s == t) continue;
    queries.push_back(EngineQuery::St(s, t));
    queries.push_back(EngineQuery::TopK(s, 5));
    queries.push_back(EngineQuery::ReliableSet(s, 0.25));
    queries.push_back(EngineQuery::Distance(s, t, 3));
  }
  queries.resize(std::min(queries.size(), limit));
  return queries;
}

void ExpectBitIdenticalResults(const std::vector<EngineResult>& a,
                               const std::vector<EngineResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].query.Describe());
    EXPECT_EQ(a[i].status.code(), b[i].status.code()) << "query " << i;
    EXPECT_EQ(std::memcmp(&a[i].reliability, &b[i].reliability,
                          sizeof(double)),
              0)
        << "query " << i;
    EXPECT_EQ(a[i].num_samples, b[i].num_samples) << "query " << i;
    EXPECT_EQ(a[i].seed, b[i].seed) << "query " << i;
    ASSERT_EQ(a[i].targets.size(), b[i].targets.size()) << "query " << i;
    for (size_t j = 0; j < a[i].targets.size(); ++j) {
      EXPECT_EQ(a[i].targets[j].node, b[i].targets[j].node);
      EXPECT_EQ(std::memcmp(&a[i].targets[j].reliability,
                            &b[i].targets[j].reliability, sizeof(double)),
                0);
    }
  }
}

TEST(EngineWorkloadTest, MixedBatchDeterministicAcrossThreadCounts) {
  const UncertainGraph graph = RandomSmallGraph(30, 90, 0.2, 0.9, 31);
  const std::vector<EngineQuery> queries = MixedBatch(graph, 60);

  for (const EstimatorKind kind :
       {EstimatorKind::kMonteCarlo, EstimatorKind::kBfsSharing}) {
    SCOPED_TRACE(EstimatorKindName(kind));
    auto serial = QueryEngine::Create(graph, BaseOptions(1, kind)).MoveValue();
    const std::vector<EngineResult> expected =
        serial->RunBatch(queries).MoveValue();
    // 1/2/8 threads x cache on/off x coalescing on/off: all bit-identical.
    for (const size_t threads : {1u, 2u, 8u}) {
      for (const bool cache : {true, false}) {
        for (const bool coalescing : {true, false}) {
          SCOPED_TRACE(threads);
          SCOPED_TRACE(cache);
          SCOPED_TRACE(coalescing);
          EngineOptions options = BaseOptions(threads, kind, cache);
          options.enable_coalescing = coalescing;
          auto engine = QueryEngine::Create(graph, options).MoveValue();
          const std::vector<EngineResult> results =
              engine->RunBatch(queries).MoveValue();
          ExpectBitIdenticalResults(expected, results);
        }
      }
    }
  }
}

TEST(EngineWorkloadTest, TopKMatchesStandaloneApisBitwise) {
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.2, 0.9, 33);
  for (const EstimatorKind kind :
       {EstimatorKind::kMonteCarlo, EstimatorKind::kBfsSharing}) {
    SCOPED_TRACE(EstimatorKindName(kind));
    auto engine = QueryEngine::Create(graph, BaseOptions(4, kind)).MoveValue();
    std::vector<EngineQuery> queries;
    for (NodeId s = 0; s < 8; ++s) queries.push_back(EngineQuery::TopK(s, 6));
    const std::vector<EngineResult> results =
        engine->RunBatch(queries).MoveValue();

    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status;
      std::vector<ReliableTarget> expected;
      if (kind == EstimatorKind::kMonteCarlo) {
        expected = TopKReliableTargetsMonteCarlo(
                       graph, queries[i].source, queries[i].k,
                       engine->options().num_samples,
                       engine->QuerySeed(queries[i]))
                       .MoveValue();
      } else {
        // A bare BFS Sharing estimator re-armed with the engine's prepare
        // seed reproduces the engine's sweep exactly.
        auto bare = BfsSharingEstimator::Create(
                        graph, engine->options().factory.bfs_sharing,
                        engine->options().factory.index_seed)
                        .MoveValue();
        ASSERT_TRUE(
            bare->PrepareForNextQuery(engine->PrepareSeed(queries[i])).ok());
        expected = TopKReliableTargetsBfsSharing(
                       *bare, queries[i].source, queries[i].k,
                       engine->options().num_samples)
                       .MoveValue();
      }
      ASSERT_EQ(results[i].targets.size(), expected.size()) << "query " << i;
      for (size_t j = 0; j < expected.size(); ++j) {
        EXPECT_EQ(results[i].targets[j].node, expected[j].node);
        EXPECT_EQ(std::memcmp(&results[i].targets[j].reliability,
                              &expected[j].reliability, sizeof(double)),
                  0);
      }
    }
  }
}

TEST(EngineWorkloadTest, ReliableSetMatchesStandaloneApisBitwise) {
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.2, 0.9, 34);
  auto engine =
      QueryEngine::Create(graph, BaseOptions(4, EstimatorKind::kMonteCarlo))
          .MoveValue();
  std::vector<EngineQuery> queries;
  for (NodeId s = 0; s < 8; ++s) {
    queries.push_back(EngineQuery::ReliableSet(s, 0.3));
  }
  const std::vector<EngineResult> results =
      engine->RunBatch(queries).MoveValue();
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status;
    const ReliableSetResult expected =
        ReliableSetMonteCarlo(graph, queries[i].source, queries[i].eta,
                              engine->options().num_samples,
                              engine->QuerySeed(queries[i]))
            .MoveValue();
    ASSERT_EQ(results[i].targets.size(), expected.members.size());
    for (size_t j = 0; j < expected.members.size(); ++j) {
      EXPECT_EQ(results[i].targets[j].node, expected.members[j].node);
      EXPECT_EQ(std::memcmp(&results[i].targets[j].reliability,
                            &expected.members[j].reliability, sizeof(double)),
                0);
    }
  }
}

TEST(EngineWorkloadTest, DistanceMatchesStandaloneSamplerBitwise) {
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.2, 0.9, 35);
  auto engine =
      QueryEngine::Create(graph, BaseOptions(4, EstimatorKind::kMonteCarlo))
          .MoveValue();
  std::vector<EngineQuery> queries;
  for (NodeId s = 0; s < 8; ++s) {
    queries.push_back(EngineQuery::Distance(s, (s + 5) % 24, 3));
  }
  const std::vector<EngineResult> results =
      engine->RunBatch(queries).MoveValue();
  DistanceConstrainedMonteCarlo standalone(graph);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status;
    const double expected =
        standalone
            .Estimate(DistanceConstrainedQuery{queries[i].source,
                                               queries[i].target,
                                               queries[i].max_hops},
                      engine->options().num_samples,
                      engine->QuerySeed(queries[i]))
            .MoveValue();
    EXPECT_EQ(std::memcmp(&results[i].reliability, &expected, sizeof(double)),
              0)
        << "query " << i;
  }
}

TEST(EngineWorkloadTest, CacheKeysIsolateWorkloadKinds) {
  // Same source/target/parameter bits, different workload tags: four
  // distinct cache entries, four executions, zero cross-workload hits.
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 36);
  auto engine =
      QueryEngine::Create(graph, BaseOptions(2, EstimatorKind::kMonteCarlo))
          .MoveValue();
  // t == k == max_hops == 5, eta with a tiny payload-field overlap too.
  const std::vector<EngineQuery> queries = {
      EngineQuery::St(0, 5), EngineQuery::TopK(0, 5),
      EngineQuery::ReliableSet(0, 0.5), EngineQuery::Distance(0, 5, 5)};
  const std::vector<EngineResult> first =
      engine->RunBatch(queries).MoveValue();
  for (const EngineResult& r : first) {
    EXPECT_TRUE(r.ok()) << r.status;
    EXPECT_FALSE(r.cache_hit);
  }
  // St and distance seeds fold the workload tag and every field, so they
  // differ from each other and from the sweep seed. The two sweep kinds
  // (top-k, reliable-set) over one source share the per-source sweep seed by
  // design — that is the sweep-sharing contract — while their cache entries
  // stay distinct (the full EngineQuery is in the key).
  EXPECT_NE(first[0].seed, first[1].seed);
  EXPECT_EQ(first[1].seed, first[2].seed);
  EXPECT_EQ(first[1].seed, engine->SweepSeed(0));
  EXPECT_NE(first[2].seed, first[3].seed);
  EXPECT_NE(first[0].seed, first[3].seed);

  const std::vector<EngineResult> second =
      engine->RunBatch(queries).MoveValue();
  for (const EngineResult& r : second) EXPECT_TRUE(r.cache_hit);
  ExpectBitIdenticalResults(first, second);
  const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
  EXPECT_EQ(snapshot.executed, queries.size());
  EXPECT_EQ(engine->cache()->Stats().hits, queries.size());
  // Exactly one EstimateFromSource ran for source 0's sweep — led either by
  // the warm-ahead scout (source 0 appears twice among the sweep kinds, so
  // the scout pass warms it) or by the first sweep-kind query; the other
  // sweep queries derived from the memo or the in-flight sweep. The
  // arithmetic: each of the two sweep queries resolved as a hit/coalesced
  // share unless it led the sweep itself, and a scout-led sweep adds one
  // scout_warms to account for the leaderless execution.
  EXPECT_EQ(snapshot.sweep_executed, 1u);
  EXPECT_EQ(snapshot.sweep_hits + snapshot.sweep_coalesced,
            1u + snapshot.scout_warms);
}

TEST(EngineWorkloadTest, StaleUnusedFieldsDoNotChangeQueryIdentity) {
  // Equality and hashing consider only the fields the workload tag uses: a
  // hand-built query carrying stale values in unused fields is the same
  // query (same seed, same cache key) as its factory-built twin.
  EngineQuery stale = EngineQuery::St(3, 9);
  stale.workload = WorkloadKind::kTopK;
  stale.k = 5;  // target = 9 left over from the St factory
  const EngineQuery clean = EngineQuery::TopK(3, 5);
  EXPECT_TRUE(stale == clean);
  EXPECT_EQ(HashWorkloadQuery(7, stale), HashWorkloadQuery(7, clean));

  // -0.0 vs 0.0 eta: distinct bit patterns are distinct queries, in both
  // equality and hash (equal-keys-hash-equal must never break).
  const EngineQuery pos = EngineQuery::ReliableSet(3, 0.0);
  const EngineQuery neg = EngineQuery::ReliableSet(3, -0.0);
  EXPECT_FALSE(pos == neg);
  EXPECT_NE(HashWorkloadQuery(7, pos), HashWorkloadQuery(7, neg));

  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 45);
  auto engine =
      QueryEngine::Create(graph, BaseOptions(2, EstimatorKind::kMonteCarlo))
          .MoveValue();
  EXPECT_EQ(engine->QuerySeed(stale), engine->QuerySeed(clean));
  const std::vector<EngineResult> first =
      engine->RunBatch(std::vector<EngineQuery>{clean}).MoveValue();
  const std::vector<EngineResult> second =
      engine->RunBatch(std::vector<EngineQuery>{stale}).MoveValue();
  EXPECT_TRUE(second[0].cache_hit);  // same cache key as the clean twin
  ASSERT_EQ(first[0].targets.size(), second[0].targets.size());
}

TEST(EngineWorkloadTest, PerWorkloadStatsCountEveryKind) {
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 37);
  auto engine =
      QueryEngine::Create(graph, BaseOptions(2, EstimatorKind::kMonteCarlo))
          .MoveValue();
  std::vector<EngineQuery> queries;
  for (int i = 0; i < 4; ++i) queries.push_back(EngineQuery::St(0, 7));
  for (int i = 0; i < 3; ++i) queries.push_back(EngineQuery::TopK(1, 4));
  for (int i = 0; i < 2; ++i) {
    queries.push_back(EngineQuery::ReliableSet(2, 0.4));
  }
  queries.push_back(EngineQuery::Distance(3, 9, 2));
  ASSERT_EQ(engine->RunBatch(queries).MoveValue().size(), queries.size());
  const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
  EXPECT_EQ(snapshot.queries_of(WorkloadKind::kSt), 4u);
  EXPECT_EQ(snapshot.queries_of(WorkloadKind::kTopK), 3u);
  EXPECT_EQ(snapshot.queries_of(WorkloadKind::kReliableSet), 2u);
  EXPECT_EQ(snapshot.queries_of(WorkloadKind::kDistance), 1u);
  EXPECT_EQ(snapshot.queries, queries.size());
}

TEST(EngineWorkloadTest, UnsupportedWorkloadFailsPerQueryNotPerBatch) {
  // RSS answers st queries but has no sweep surface: the top-k query in the
  // middle fails alone with NotSupported while its neighbors succeed.
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 38);
  auto engine =
      QueryEngine::Create(graph,
                          BaseOptions(2, EstimatorKind::kRecursiveStratified))
          .MoveValue();
  const std::vector<EngineQuery> queries = {
      EngineQuery::St(0, 7), EngineQuery::TopK(0, 5), EngineQuery::St(1, 8)};
  const std::vector<EngineResult> results =
      engine->RunBatch(queries).MoveValue();
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status.code(), StatusCode::kNotSupported);
  EXPECT_TRUE(results[2].ok());
  EXPECT_EQ(engine->StatsSnapshot().failures, 1u);
}

TEST(EngineWorkloadTest, RhhAnswersDistanceQueries) {
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 39);
  auto engine =
      QueryEngine::Create(graph, BaseOptions(2, EstimatorKind::kRecursive))
          .MoveValue();
  const std::vector<EngineQuery> queries = {EngineQuery::Distance(0, 7, 3)};
  const std::vector<EngineResult> results =
      engine->RunBatch(queries).MoveValue();
  ASSERT_TRUE(results[0].ok()) << results[0].status;
  EXPECT_GE(results[0].reliability, 0.0);
  EXPECT_LE(results[0].reliability, 1.0);
}

TEST(EngineWorkloadTest, RejectsMalformedWorkloadQueriesUpFront) {
  const UncertainGraph graph = RandomSmallGraph(10, 30, 0.3, 0.9, 40);
  auto engine =
      QueryEngine::Create(graph, BaseOptions(2, EstimatorKind::kMonteCarlo))
          .MoveValue();
  EXPECT_EQ(engine->RunBatch({EngineQuery::TopK(0, 0)}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->RunBatch({EngineQuery::ReliableSet(0, 1.5)})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->RunBatch({EngineQuery::Distance(0, 99, 3)})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->Submit(EngineQuery::TopK(99, 5)).code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineWorkloadTest, NegativeCachingServesFailuresWithoutRecompute) {
  // K = 300 exceeds L = 100 indexed worlds: every s != t query fails inside
  // the estimator. With negative caching on, the repeats are served from the
  // cache as negative hits instead of recomputing (and re-failing).
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.2, 0.8, 41);
  EngineOptions options = BaseOptions(2, EstimatorKind::kBfsSharing);
  options.factory.bfs_sharing.index_samples = 100;
  options.negative_cache_ttl = 60.0;  // long enough to span the test
  options.enable_coalescing = false;  // isolate the negative-cache path
  auto engine = QueryEngine::Create(graph, options).MoveValue();

  const std::vector<EngineQuery> queries(4, EngineQuery::St(0, 5));
  const std::vector<EngineResult> first =
      engine->RunBatch(queries).MoveValue();
  for (const EngineResult& r : first) {
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  }
  const ResultCacheStats stats = engine->cache()->Stats();
  // The first miss computed and cached the error; the repeats hit it.
  EXPECT_GE(stats.negative_hits, 1u);
  const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
  EXPECT_EQ(snapshot.executed, 0u);
  EXPECT_EQ(snapshot.failures, queries.size());
  // Every query resolved exactly once across the outcome counters.
  EXPECT_EQ(snapshot.executed + snapshot.coalesced + snapshot.failures +
                snapshot.cache.hits,
            snapshot.queries);

  // Backoff expires: with a tiny TTL the failure is recomputed on re-ask.
  EngineOptions expiring = options;
  expiring.negative_cache_ttl = 1e-9;
  auto retry_engine = QueryEngine::Create(graph, expiring).MoveValue();
  ASSERT_EQ(retry_engine->RunBatch(queries).MoveValue().size(),
            queries.size());
  EXPECT_GE(retry_engine->cache()->Stats().expired, 1u);
}

TEST(EngineWorkloadTest, NegativeCachingOffRecomputesEveryFailure) {
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.2, 0.8, 42);
  EngineOptions options = BaseOptions(2, EstimatorKind::kBfsSharing);
  options.factory.bfs_sharing.index_samples = 100;
  options.negative_cache_ttl = 0.0;
  options.enable_coalescing = false;
  auto engine = QueryEngine::Create(graph, options).MoveValue();
  const std::vector<EngineQuery> queries(3, EngineQuery::St(0, 5));
  ASSERT_EQ(engine->RunBatch(queries).MoveValue().size(), queries.size());
  EXPECT_EQ(engine->cache()->Stats().negative_hits, 0u);
  EXPECT_EQ(engine->StatsSnapshot().failures, queries.size());
}

TEST(EngineWorkloadTest, MixedWorkloadGeneratorIsDeterministicAndValid) {
  const UncertainGraph graph = RandomSmallGraph(40, 160, 0.3, 0.9, 43);
  MixedWorkloadOptions options;
  options.num_queries = 120;
  options.pairs.num_pairs = 20;
  const std::vector<EngineQuery> a =
      GenerateMixedWorkload(graph, options).MoveValue();
  const std::vector<EngineQuery> b =
      GenerateMixedWorkload(graph, options).MoveValue();
  ASSERT_EQ(a.size(), 120u);
  EXPECT_TRUE(a == b);

  size_t counts[kNumWorkloadKinds] = {};
  for (const EngineQuery& q : a) {
    ASSERT_TRUE(ValidateWorkload(graph, q).ok()) << q.Describe();
    ++counts[static_cast<size_t>(q.workload)];
  }
  // Every kind shows up under the default weights.
  for (size_t i = 0; i < kNumWorkloadKinds; ++i) {
    EXPECT_GT(counts[i], 0u) << WorkloadKindName(static_cast<WorkloadKind>(i));
  }

  // The engine serves the generated mix end-to-end.
  auto engine =
      QueryEngine::Create(graph, BaseOptions(4, EstimatorKind::kMonteCarlo))
          .MoveValue();
  const std::vector<EngineResult> results = engine->RunBatch(a).MoveValue();
  for (const EngineResult& r : results) EXPECT_TRUE(r.ok()) << r.status;

  // Zero weights remove kinds; all-zero is rejected.
  MixedWorkloadOptions st_only = options;
  st_only.top_k_weight = 0.0;
  st_only.reliable_set_weight = 0.0;
  st_only.distance_weight = 0.0;
  for (const EngineQuery& q :
       GenerateMixedWorkload(graph, st_only).MoveValue()) {
    EXPECT_EQ(q.workload, WorkloadKind::kSt);
  }
  MixedWorkloadOptions none = options;
  none.st_weight = none.top_k_weight = 0.0;
  none.reliable_set_weight = none.distance_weight = 0.0;
  EXPECT_EQ(GenerateMixedWorkload(graph, none).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineWorkloadTest, StreamServesMixedWorkloads) {
  const UncertainGraph graph = RandomSmallGraph(30, 90, 0.2, 0.9, 44);
  const std::vector<EngineQuery> queries = MixedBatch(graph, 40);
  auto batch_engine =
      QueryEngine::Create(graph, BaseOptions(3, EstimatorKind::kMonteCarlo))
          .MoveValue();
  const std::vector<EngineResult> batch =
      batch_engine->RunBatch(queries).MoveValue();
  auto stream_engine =
      QueryEngine::Create(graph, BaseOptions(3, EstimatorKind::kMonteCarlo))
          .MoveValue();
  for (const EngineQuery& query : queries) {
    ASSERT_TRUE(stream_engine->Submit(query).ok());
  }
  ExpectBitIdenticalResults(batch, stream_engine->Drain().MoveValue());
}

}  // namespace
}  // namespace relcomp
