#include "engine/query_engine.h"

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "reliability/estimator_factory.h"
#include "test_util.h"

namespace relcomp {
namespace {

using ::relcomp::testing::DiamondGraph;
using ::relcomp::testing::RandomSmallGraph;

std::vector<ReliabilityQuery> AllPairsWorkload(const UncertainGraph& graph,
                                               size_t limit) {
  std::vector<ReliabilityQuery> queries;
  for (NodeId s = 0; s < graph.num_nodes() && queries.size() < limit; ++s) {
    for (NodeId t = 0; t < graph.num_nodes() && queries.size() < limit; ++t) {
      if (s != t) queries.push_back({s, t});
    }
  }
  return queries;
}

EngineOptions BaseOptions(size_t threads, EstimatorKind kind,
                          bool cache = true) {
  EngineOptions options;
  options.num_threads = threads;
  options.kind = kind;
  options.num_samples = 400;
  options.seed = 20190410;
  options.enable_cache = cache;
  return options;
}

void ExpectBitIdentical(const std::vector<EngineResult>& a,
                        const std::vector<EngineResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // Bitwise double comparison: scheduling must not perturb even the last
    // ulp of any estimate.
    EXPECT_EQ(std::memcmp(&a[i].reliability, &b[i].reliability,
                          sizeof(double)),
              0)
        << "query " << i << ": " << a[i].reliability << " vs "
        << b[i].reliability;
    EXPECT_EQ(a[i].num_samples, b[i].num_samples) << "query " << i;
    EXPECT_EQ(a[i].seed, b[i].seed) << "query " << i;
  }
}

TEST(QueryEngineTest, BatchMatchesBareEstimatorBitwise) {
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.2, 0.9, 11);
  const std::vector<ReliabilityQuery> queries = AllPairsWorkload(graph, 40);

  auto engine =
      QueryEngine::Create(graph, BaseOptions(4, EstimatorKind::kMonteCarlo))
          .MoveValue();
  const std::vector<EngineResult> results =
      engine->RunBatch(queries).MoveValue();

  // Serial reference: a bare MC estimator fed the engine's derived seeds.
  auto reference =
      MakeEstimator(EstimatorKind::kMonteCarlo, graph).MoveValue();
  for (size_t i = 0; i < queries.size(); ++i) {
    EstimateOptions options;
    options.num_samples = 400;
    options.seed = engine->QuerySeed(queries[i]);
    const EstimateResult expected =
        reference->Estimate(queries[i], options).MoveValue();
    EXPECT_EQ(std::memcmp(&results[i].reliability, &expected.reliability,
                          sizeof(double)),
              0)
        << "query " << i;
  }
}

TEST(QueryEngineTest, DeterministicAcrossThreadCounts) {
  const UncertainGraph graph = RandomSmallGraph(30, 90, 0.1, 0.9, 23);
  const std::vector<ReliabilityQuery> queries = AllPairsWorkload(graph, 60);

  for (const EstimatorKind kind :
       {EstimatorKind::kMonteCarlo, EstimatorKind::kBfsSharing,
        EstimatorKind::kRecursiveStratified}) {
    SCOPED_TRACE(EstimatorKindName(kind));
    auto serial = QueryEngine::Create(graph, BaseOptions(1, kind)).MoveValue();
    const std::vector<EngineResult> expected =
        serial->RunBatch(queries).MoveValue();
    for (const size_t threads : {2u, 8u}) {
      auto engine =
          QueryEngine::Create(graph, BaseOptions(threads, kind)).MoveValue();
      const std::vector<EngineResult> results =
          engine->RunBatch(queries).MoveValue();
      ExpectBitIdentical(expected, results);
    }
  }
}

TEST(QueryEngineTest, CacheDoesNotChangeResults) {
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.2, 0.8, 5);
  std::vector<ReliabilityQuery> queries = AllPairsWorkload(graph, 30);
  // Duplicate the workload so half the queries are repeats.
  const size_t distinct = queries.size();
  queries.insert(queries.end(), queries.begin(), queries.begin() + distinct);

  auto cached = QueryEngine::Create(
                    graph, BaseOptions(4, EstimatorKind::kMonteCarlo, true))
                    .MoveValue();
  auto uncached = QueryEngine::Create(
                      graph, BaseOptions(4, EstimatorKind::kMonteCarlo, false))
                      .MoveValue();
  const std::vector<EngineResult> with_cache =
      cached->RunBatch(queries).MoveValue();
  const std::vector<EngineResult> without_cache =
      uncached->RunBatch(queries).MoveValue();
  ExpectBitIdentical(with_cache, without_cache);

  // A repeated query returns the same estimate as its first occurrence.
  for (size_t i = 0; i < distinct; ++i) {
    EXPECT_DOUBLE_EQ(with_cache[i].reliability,
                     with_cache[i + distinct].reliability);
  }
  EXPECT_EQ(uncached->cache(), nullptr);
  ASSERT_NE(cached->cache(), nullptr);
  // Every distinct query missed once; every repeat could hit (a repeat only
  // misses if it raced its twin's first execution).
  const ResultCacheStats stats = cached->cache()->Stats();
  EXPECT_EQ(stats.lookups(), queries.size());
  EXPECT_GE(stats.misses, distinct);
}

TEST(QueryEngineTest, RepeatedBatchIsServedFromCache) {
  const UncertainGraph graph = DiamondGraph(0.6);
  const std::vector<ReliabilityQuery> queries = {{0, 3}, {0, 3}, {1, 3}};
  auto engine =
      QueryEngine::Create(graph, BaseOptions(2, EstimatorKind::kMonteCarlo))
          .MoveValue();
  const std::vector<EngineResult> first =
      engine->RunBatch(queries).MoveValue();
  const std::vector<EngineResult> second =
      engine->RunBatch(queries).MoveValue();
  ExpectBitIdentical(first, second);
  for (const EngineResult& result : second) EXPECT_TRUE(result.cache_hit);
}

TEST(QueryEngineTest, StreamMatchesBatch) {
  const UncertainGraph graph = RandomSmallGraph(16, 48, 0.3, 0.9, 99);
  const std::vector<ReliabilityQuery> queries = AllPairsWorkload(graph, 25);

  auto batch_engine = QueryEngine::Create(
                          graph, BaseOptions(3, EstimatorKind::kMonteCarlo))
                          .MoveValue();
  const std::vector<EngineResult> batch =
      batch_engine->RunBatch(queries).MoveValue();

  auto stream_engine = QueryEngine::Create(
                           graph, BaseOptions(3, EstimatorKind::kMonteCarlo))
                           .MoveValue();
  for (const ReliabilityQuery& query : queries) {
    ASSERT_TRUE(stream_engine->Submit(query).ok());
  }
  const std::vector<EngineResult> stream =
      stream_engine->Drain().MoveValue();
  ExpectBitIdentical(batch, stream);

  // Drain is a reset: a second drain returns nothing.
  EXPECT_TRUE(stream_engine->Drain().MoveValue().empty());
}

TEST(QueryEngineTest, RejectsInvalidQueries) {
  const UncertainGraph graph = DiamondGraph();
  auto engine =
      QueryEngine::Create(graph, BaseOptions(2, EstimatorKind::kMonteCarlo))
          .MoveValue();
  const Result<std::vector<EngineResult>> batch =
      engine->RunBatch({{0, 3}, {0, 99}});
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->Submit({99, 0}).code(), StatusCode::kInvalidArgument);

  EngineOptions zero_samples = BaseOptions(1, EstimatorKind::kMonteCarlo);
  zero_samples.num_samples = 0;
  EXPECT_EQ(QueryEngine::Create(graph, zero_samples).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, StatsTrackThroughputAndLatency) {
  const UncertainGraph graph = RandomSmallGraph(16, 48, 0.3, 0.9, 3);
  const std::vector<ReliabilityQuery> queries = AllPairsWorkload(graph, 20);
  auto engine =
      QueryEngine::Create(graph, BaseOptions(2, EstimatorKind::kMonteCarlo))
          .MoveValue();
  ASSERT_EQ(engine->RunBatch(queries).MoveValue().size(), queries.size());
  const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
  EXPECT_EQ(snapshot.queries, queries.size());
  EXPECT_GT(snapshot.wall_seconds, 0.0);
  EXPECT_GT(snapshot.throughput_qps, 0.0);
  EXPECT_GE(snapshot.p99_ms, snapshot.p50_ms);
  EXPECT_GE(snapshot.max_ms, snapshot.p99_ms);
  engine->ResetStats();
  EXPECT_EQ(engine->StatsSnapshot().queries, 0u);
}

TEST(QueryEngineTest, ConcurrentClientsShareOneEngine) {
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.2, 0.8, 41);
  const std::vector<ReliabilityQuery> queries = AllPairsWorkload(graph, 30);
  EngineOptions options = BaseOptions(4, EstimatorKind::kMonteCarlo);
  options.num_samples = 64;
  auto engine = QueryEngine::Create(graph, options).MoveValue();

  // Reference from a quiet engine run.
  const std::vector<EngineResult> expected =
      engine->RunBatch(queries).MoveValue();

  // Two clients hammer RunBatch concurrently; a third streams. Each batch
  // must return its own results untouched by the others' load.
  std::vector<std::vector<EngineResult>> batches(2);
  std::thread client_a([&] {
    for (int i = 0; i < 5; ++i) batches[0] = engine->RunBatch(queries).MoveValue();
  });
  std::thread client_b([&] {
    for (int i = 0; i < 5; ++i) batches[1] = engine->RunBatch(queries).MoveValue();
  });
  client_a.join();
  client_b.join();
  ExpectBitIdentical(expected, batches[0]);
  ExpectBitIdentical(expected, batches[1]);

  for (const ReliabilityQuery& query : queries) {
    ASSERT_TRUE(engine->Submit(query).ok());
  }
  ExpectBitIdentical(expected, engine->Drain().MoveValue());
}

TEST(QueryEngineTest, StressTenThousandQueries) {
  const UncertainGraph graph = RandomSmallGraph(40, 120, 0.2, 0.9, 77);
  // 10k queries over ~1.5k distinct pairs: heavy repetition, small queue to
  // exercise backpressure, more threads than cores is fine.
  std::vector<ReliabilityQuery> queries;
  queries.reserve(10000);
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(40));
    NodeId t = static_cast<NodeId>(rng.UniformInt(40));
    if (s == t) t = (t + 1) % 40;
    queries.push_back({s, t});
  }

  EngineOptions options = BaseOptions(8, EstimatorKind::kMonteCarlo);
  options.num_samples = 64;
  options.queue_capacity = 32;
  auto engine = QueryEngine::Create(graph, options).MoveValue();
  const std::vector<EngineResult> first =
      engine->RunBatch(queries).MoveValue();
  ASSERT_EQ(first.size(), queries.size());
  for (const EngineResult& result : first) {
    EXPECT_GE(result.reliability, 0.0);
    EXPECT_LE(result.reliability, 1.0);
  }

  // A fresh engine (cold cache, different thread count) reproduces the batch.
  EngineOptions rerun_options = options;
  rerun_options.num_threads = 3;
  auto rerun_engine = QueryEngine::Create(graph, rerun_options).MoveValue();
  const std::vector<EngineResult> second =
      rerun_engine->RunBatch(queries).MoveValue();
  ExpectBitIdentical(first, second);

  const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
  EXPECT_EQ(snapshot.queries, 10000u);
  EXPECT_GT(snapshot.cache.hits, 0u);
}

}  // namespace
}  // namespace relcomp
