#include "engine/query_engine.h"

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "reliability/estimator_factory.h"
#include "test_util.h"

namespace relcomp {
namespace {

using ::relcomp::testing::DiamondGraph;
using ::relcomp::testing::RandomSmallGraph;

std::vector<ReliabilityQuery> AllPairsWorkload(const UncertainGraph& graph,
                                               size_t limit) {
  std::vector<ReliabilityQuery> queries;
  for (NodeId s = 0; s < graph.num_nodes() && queries.size() < limit; ++s) {
    for (NodeId t = 0; t < graph.num_nodes() && queries.size() < limit; ++t) {
      if (s != t) queries.push_back({s, t});
    }
  }
  return queries;
}

EngineOptions BaseOptions(size_t threads, EstimatorKind kind,
                          bool cache = true) {
  EngineOptions options;
  options.num_threads = threads;
  options.kind = kind;
  options.num_samples = 400;
  options.seed = 20190410;
  options.enable_cache = cache;
  return options;
}

void ExpectBitIdentical(const std::vector<EngineResult>& a,
                        const std::vector<EngineResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // Bitwise double comparison: scheduling must not perturb even the last
    // ulp of any estimate.
    EXPECT_EQ(std::memcmp(&a[i].reliability, &b[i].reliability,
                          sizeof(double)),
              0)
        << "query " << i << ": " << a[i].reliability << " vs "
        << b[i].reliability;
    EXPECT_EQ(a[i].num_samples, b[i].num_samples) << "query " << i;
    EXPECT_EQ(a[i].seed, b[i].seed) << "query " << i;
  }
}

TEST(QueryEngineTest, BatchMatchesBareEstimatorBitwise) {
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.2, 0.9, 11);
  const std::vector<ReliabilityQuery> queries = AllPairsWorkload(graph, 40);

  auto engine =
      QueryEngine::Create(graph, BaseOptions(4, EstimatorKind::kMonteCarlo))
          .MoveValue();
  const std::vector<EngineResult> results =
      engine->RunBatch(queries).MoveValue();

  // Serial reference: a bare MC estimator fed the engine's derived seeds.
  auto reference =
      MakeEstimator(EstimatorKind::kMonteCarlo, graph).MoveValue();
  for (size_t i = 0; i < queries.size(); ++i) {
    EstimateOptions options;
    options.num_samples = 400;
    options.seed = engine->QuerySeed(queries[i]);
    const EstimateResult expected =
        reference->Estimate(queries[i], options).MoveValue();
    EXPECT_EQ(std::memcmp(&results[i].reliability, &expected.reliability,
                          sizeof(double)),
              0)
        << "query " << i;
  }
}

TEST(QueryEngineTest, DeterministicAcrossThreadCounts) {
  const UncertainGraph graph = RandomSmallGraph(30, 90, 0.1, 0.9, 23);
  const std::vector<ReliabilityQuery> queries = AllPairsWorkload(graph, 60);

  for (const EstimatorKind kind :
       {EstimatorKind::kMonteCarlo, EstimatorKind::kBfsSharing,
        EstimatorKind::kRecursiveStratified}) {
    SCOPED_TRACE(EstimatorKindName(kind));
    auto serial = QueryEngine::Create(graph, BaseOptions(1, kind)).MoveValue();
    const std::vector<EngineResult> expected =
        serial->RunBatch(queries).MoveValue();
    // 1/2/8 threads, coalescing on and off: all bit-identical.
    for (const size_t threads : {1u, 2u, 8u}) {
      for (const bool coalescing : {true, false}) {
        SCOPED_TRACE(threads);
        SCOPED_TRACE(coalescing);
        EngineOptions options = BaseOptions(threads, kind);
        options.enable_coalescing = coalescing;
        auto engine = QueryEngine::Create(graph, options).MoveValue();
        const std::vector<EngineResult> results =
            engine->RunBatch(queries).MoveValue();
        ExpectBitIdentical(expected, results);
      }
    }
  }
}

TEST(QueryEngineTest, SharedIndexRepliesMatchIndependentPerReplicaBuilds) {
  // The engine's replicas share one immutable BFS Sharing index; a bare
  // estimator built independently (its own index) and re-armed with the
  // engine's prepare seed must reproduce every engine answer bitwise — the
  // shared-index refactor changes memory, never results.
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.2, 0.9, 57);
  const std::vector<ReliabilityQuery> queries = AllPairsWorkload(graph, 30);
  for (const size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(threads);
    auto engine =
        QueryEngine::Create(graph, BaseOptions(threads, EstimatorKind::kBfsSharing))
            .MoveValue();
    const std::vector<EngineResult> results =
        engine->RunBatch(queries).MoveValue();
    auto bare = MakeEstimator(EstimatorKind::kBfsSharing, graph,
                              engine->options().factory)
                    .MoveValue();
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(bare->PrepareForNextQuery(engine->PrepareSeed(queries[i])).ok());
      EstimateOptions opts;
      opts.num_samples = engine->options().num_samples;
      opts.seed = engine->QuerySeed(queries[i]);
      const EstimateResult expected =
          bare->Estimate(queries[i], opts).MoveValue();
      EXPECT_EQ(std::memcmp(&results[i].reliability, &expected.reliability,
                            sizeof(double)),
                0)
          << "query " << i;
    }
  }
}

TEST(QueryEngineTest, SharedIndexIsReportedOnceAcrossReplicas) {
  const UncertainGraph graph = RandomSmallGraph(30, 90, 0.2, 0.8, 58);
  for (const EstimatorKind kind :
       {EstimatorKind::kBfsSharing, EstimatorKind::kProbTree}) {
    SCOPED_TRACE(EstimatorKindName(kind));
    EngineOptions options = BaseOptions(8, kind);
    options.factory.bfs_sharing.index_samples = 400;
    auto engine = QueryEngine::Create(graph, options).MoveValue();
    auto single = MakeEstimator(kind, graph, options.factory).MoveValue();

    // Eight replicas cost one index, not eight: the deduped footprint equals
    // a single estimator's index (the per-replica baseline would be 8x).
    const IndexMemoryReport report = engine->IndexMemory();
    EXPECT_EQ(report.shared_indexes, 1u);
    EXPECT_EQ(report.shared_bytes, single->IndexMemoryBytes());
    EXPECT_EQ(report.replica_bytes, 0u);
    EXPECT_EQ(report.total_bytes(), single->IndexMemoryBytes());
    EXPECT_EQ(engine->StatsSnapshot().index_memory.total_bytes(),
              report.total_bytes());
  }
  // Index-free kinds report an empty footprint.
  auto mc_engine =
      QueryEngine::Create(graph, BaseOptions(4, EstimatorKind::kMonteCarlo))
          .MoveValue();
  EXPECT_EQ(mc_engine->IndexMemory().total_bytes(), 0u);
  EXPECT_EQ(mc_engine->IndexMemory().shared_indexes, 0u);
}

TEST(QueryEngineTest, BfsSharingCreateBuildsIndexExactlyOnce) {
  const UncertainGraph graph = RandomSmallGraph(30, 90, 0.2, 0.8, 59);
  EngineOptions options = BaseOptions(8, EstimatorKind::kBfsSharing);
  options.factory.bfs_sharing.index_samples = 400;
  const uint64_t builds_before = BfsSharingIndex::BuildCount();
  auto engine = QueryEngine::Create(graph, options).MoveValue();
  EXPECT_EQ(BfsSharingIndex::BuildCount() - builds_before, 1u);
  EXPECT_EQ(engine->num_threads(), 8u);
}

TEST(QueryEngineTest, CoalescingCollapsesConcurrentIdenticalMisses) {
  const UncertainGraph graph = RandomSmallGraph(30, 90, 0.2, 0.8, 61);
  EngineOptions options = BaseOptions(8, EstimatorKind::kMonteCarlo);
  options.num_samples = 2000;
  auto engine = QueryEngine::Create(graph, options).MoveValue();

  // 32 copies of one query land on 8 workers at once. The cache-or-flight
  // rendezvous guarantees exactly one estimator invocation; every other copy
  // is a cache hit or a coalesced share of the leader's computation.
  const std::vector<ReliabilityQuery> queries(32, ReliabilityQuery{0, 17});
  const std::vector<EngineResult> results =
      engine->RunBatch(queries).MoveValue();
  ASSERT_EQ(results.size(), queries.size());
  const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
  EXPECT_EQ(snapshot.queries, queries.size());
  EXPECT_EQ(snapshot.executed, 1u);
  EXPECT_EQ(snapshot.coalesced + snapshot.cache.hits, queries.size() - 1);
  size_t leaders = 0;
  for (const EngineResult& result : results) {
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(std::memcmp(&result.reliability, &results[0].reliability,
                          sizeof(double)),
              0);
    if (!result.cache_hit && !result.coalesced) ++leaders;
  }
  EXPECT_EQ(leaders, 1u);

  // Coalescing shows up only under concurrency; the answers match a quiet
  // engine's.
  EngineOptions quiet = options;
  quiet.num_threads = 1;
  quiet.enable_coalescing = false;
  auto reference = QueryEngine::Create(graph, quiet).MoveValue();
  const std::vector<EngineResult> expected =
      reference->RunBatch(queries).MoveValue();
  ExpectBitIdentical(expected, results);
}

TEST(QueryEngineTest, PerQueryStatusIsolatesFailures) {
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.2, 0.8, 62);
  // K = 400 exceeds L = 100 indexed worlds: every s != t query fails inside
  // the estimator, while s == t short-circuits to 1.0 before touching the
  // index. The batch must carry both outcomes side by side.
  EngineOptions options = BaseOptions(4, EstimatorKind::kBfsSharing);
  options.factory.bfs_sharing.index_samples = 100;
  auto engine = QueryEngine::Create(graph, options).MoveValue();

  const std::vector<ReliabilityQuery> queries = {{0, 5}, {3, 3}, {1, 7}, {4, 4}};
  const Result<std::vector<EngineResult>> batch = engine->RunBatch(queries);
  ASSERT_TRUE(batch.ok()) << batch.status();
  const std::vector<EngineResult>& results = *batch;
  ASSERT_EQ(results.size(), queries.size());
  EXPECT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[1].ok());
  EXPECT_DOUBLE_EQ(results[1].reliability, 1.0);
  EXPECT_FALSE(results[2].ok());
  EXPECT_TRUE(results[3].ok());
  EXPECT_DOUBLE_EQ(results[3].reliability, 1.0);
  EXPECT_EQ(engine->StatsSnapshot().failures, 2u);

  // Stream cycle: finished answers survive failing neighbors the same way.
  for (const ReliabilityQuery& query : queries) {
    ASSERT_TRUE(engine->Submit(query).ok());
  }
  const std::vector<EngineResult> stream = engine->Drain().MoveValue();
  ASSERT_EQ(stream.size(), queries.size());
  EXPECT_FALSE(stream[0].ok());
  EXPECT_TRUE(stream[1].ok());
  EXPECT_DOUBLE_EQ(stream[1].reliability, 1.0);
}

TEST(QueryEngineTest, TrueSpanTracksFirstStartToLastEnd) {
  const UncertainGraph graph = RandomSmallGraph(16, 48, 0.3, 0.9, 63);
  const std::vector<ReliabilityQuery> queries = AllPairsWorkload(graph, 20);
  EngineOptions options = BaseOptions(2, EstimatorKind::kMonteCarlo);
  options.num_samples = 64;
  auto engine = QueryEngine::Create(graph, options).MoveValue();

  EXPECT_EQ(engine->StatsSnapshot().span_seconds, 0.0);
  ASSERT_EQ(engine->RunBatch(queries).MoveValue().size(), queries.size());
  ASSERT_EQ(engine->RunBatch(queries).MoveValue().size(), queries.size());
  const EngineStatsSnapshot solo = engine->StatsSnapshot();
  EXPECT_GT(solo.span_seconds, 0.0);
  // One client, two sequential batches: the span covers both calls plus the
  // gap between them, so it is at least the summed per-call wall time.
  EXPECT_GE(solo.span_seconds, solo.wall_seconds * 0.99);
  EXPECT_GT(solo.span_qps, 0.0);

  // Two clients: each batch contributes its full duration to wall_seconds
  // (over-counting under overlap), while the span measures real elapsed
  // time — the exact denominator for aggregate throughput. Whether or not
  // the scheduler actually overlaps them, span >= wall/2 always holds
  // (equality-ish at full overlap, span >= wall when serialized).
  engine->ResetStats();
  std::thread client_a([&] { engine->RunBatch(queries).MoveValue(); });
  std::thread client_b([&] { engine->RunBatch(queries).MoveValue(); });
  client_a.join();
  client_b.join();
  const EngineStatsSnapshot overlapped = engine->StatsSnapshot();
  EXPECT_EQ(overlapped.queries, 2 * queries.size());
  EXPECT_GT(overlapped.span_seconds, 0.0);
  EXPECT_GT(overlapped.span_qps, 0.0);
  EXPECT_GE(overlapped.span_seconds, overlapped.wall_seconds * 0.49);
  engine->ResetStats();
  EXPECT_EQ(engine->StatsSnapshot().span_seconds, 0.0);
}

TEST(QueryEngineTest, CacheDoesNotChangeResults) {
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.2, 0.8, 5);
  std::vector<ReliabilityQuery> queries = AllPairsWorkload(graph, 30);
  // Duplicate the workload so half the queries are repeats.
  const size_t distinct = queries.size();
  queries.insert(queries.end(), queries.begin(), queries.begin() + distinct);

  auto cached = QueryEngine::Create(
                    graph, BaseOptions(4, EstimatorKind::kMonteCarlo, true))
                    .MoveValue();
  auto uncached = QueryEngine::Create(
                      graph, BaseOptions(4, EstimatorKind::kMonteCarlo, false))
                      .MoveValue();
  const std::vector<EngineResult> with_cache =
      cached->RunBatch(queries).MoveValue();
  const std::vector<EngineResult> without_cache =
      uncached->RunBatch(queries).MoveValue();
  ExpectBitIdentical(with_cache, without_cache);

  // A repeated query returns the same estimate as its first occurrence.
  for (size_t i = 0; i < distinct; ++i) {
    EXPECT_DOUBLE_EQ(with_cache[i].reliability,
                     with_cache[i + distinct].reliability);
  }
  EXPECT_EQ(uncached->cache(), nullptr);
  ASSERT_NE(cached->cache(), nullptr);
  // Every distinct query missed once; every repeat could hit (a repeat only
  // misses if it raced its twin's first execution).
  const ResultCacheStats stats = cached->cache()->Stats();
  EXPECT_EQ(stats.lookups(), queries.size());
  EXPECT_GE(stats.misses, distinct);
}

TEST(QueryEngineTest, RepeatedBatchIsServedFromCache) {
  const UncertainGraph graph = DiamondGraph(0.6);
  const std::vector<ReliabilityQuery> queries = {{0, 3}, {0, 3}, {1, 3}};
  auto engine =
      QueryEngine::Create(graph, BaseOptions(2, EstimatorKind::kMonteCarlo))
          .MoveValue();
  const std::vector<EngineResult> first =
      engine->RunBatch(queries).MoveValue();
  const std::vector<EngineResult> second =
      engine->RunBatch(queries).MoveValue();
  ExpectBitIdentical(first, second);
  for (const EngineResult& result : second) EXPECT_TRUE(result.cache_hit);
}

TEST(QueryEngineTest, StreamMatchesBatch) {
  const UncertainGraph graph = RandomSmallGraph(16, 48, 0.3, 0.9, 99);
  const std::vector<ReliabilityQuery> queries = AllPairsWorkload(graph, 25);

  auto batch_engine = QueryEngine::Create(
                          graph, BaseOptions(3, EstimatorKind::kMonteCarlo))
                          .MoveValue();
  const std::vector<EngineResult> batch =
      batch_engine->RunBatch(queries).MoveValue();

  auto stream_engine = QueryEngine::Create(
                           graph, BaseOptions(3, EstimatorKind::kMonteCarlo))
                           .MoveValue();
  for (const ReliabilityQuery& query : queries) {
    ASSERT_TRUE(stream_engine->Submit(query).ok());
  }
  const std::vector<EngineResult> stream =
      stream_engine->Drain().MoveValue();
  ExpectBitIdentical(batch, stream);

  // Drain is a reset: a second drain returns nothing.
  EXPECT_TRUE(stream_engine->Drain().MoveValue().empty());
}

TEST(QueryEngineTest, RejectsInvalidQueries) {
  const UncertainGraph graph = DiamondGraph();
  auto engine =
      QueryEngine::Create(graph, BaseOptions(2, EstimatorKind::kMonteCarlo))
          .MoveValue();
  const Result<std::vector<EngineResult>> batch =
      engine->RunBatch({{0, 3}, {0, 99}});
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->Submit({99, 0}).code(), StatusCode::kInvalidArgument);

  EngineOptions zero_samples = BaseOptions(1, EstimatorKind::kMonteCarlo);
  zero_samples.num_samples = 0;
  EXPECT_EQ(QueryEngine::Create(graph, zero_samples).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, StatsTrackThroughputAndLatency) {
  const UncertainGraph graph = RandomSmallGraph(16, 48, 0.3, 0.9, 3);
  const std::vector<ReliabilityQuery> queries = AllPairsWorkload(graph, 20);
  auto engine =
      QueryEngine::Create(graph, BaseOptions(2, EstimatorKind::kMonteCarlo))
          .MoveValue();
  ASSERT_EQ(engine->RunBatch(queries).MoveValue().size(), queries.size());
  const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
  EXPECT_EQ(snapshot.queries, queries.size());
  EXPECT_GT(snapshot.wall_seconds, 0.0);
  EXPECT_GT(snapshot.throughput_qps, 0.0);
  EXPECT_GE(snapshot.p99_ms, snapshot.p50_ms);
  EXPECT_GE(snapshot.max_ms, snapshot.p99_ms);
  engine->ResetStats();
  EXPECT_EQ(engine->StatsSnapshot().queries, 0u);
}

TEST(QueryEngineTest, ConcurrentClientsShareOneEngine) {
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.2, 0.8, 41);
  const std::vector<ReliabilityQuery> queries = AllPairsWorkload(graph, 30);
  EngineOptions options = BaseOptions(4, EstimatorKind::kMonteCarlo);
  options.num_samples = 64;
  auto engine = QueryEngine::Create(graph, options).MoveValue();

  // Reference from a quiet engine run.
  const std::vector<EngineResult> expected =
      engine->RunBatch(queries).MoveValue();

  // Two clients hammer RunBatch concurrently; a third streams. Each batch
  // must return its own results untouched by the others' load.
  std::vector<std::vector<EngineResult>> batches(2);
  std::thread client_a([&] {
    for (int i = 0; i < 5; ++i) batches[0] = engine->RunBatch(queries).MoveValue();
  });
  std::thread client_b([&] {
    for (int i = 0; i < 5; ++i) batches[1] = engine->RunBatch(queries).MoveValue();
  });
  client_a.join();
  client_b.join();
  ExpectBitIdentical(expected, batches[0]);
  ExpectBitIdentical(expected, batches[1]);

  for (const ReliabilityQuery& query : queries) {
    ASSERT_TRUE(engine->Submit(query).ok());
  }
  ExpectBitIdentical(expected, engine->Drain().MoveValue());
}

TEST(QueryEngineTest, StressTenThousandQueries) {
  const UncertainGraph graph = RandomSmallGraph(40, 120, 0.2, 0.9, 77);
  // 10k queries over ~1.5k distinct pairs: heavy repetition, small queue to
  // exercise backpressure, more threads than cores is fine.
  std::vector<ReliabilityQuery> queries;
  queries.reserve(10000);
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(40));
    NodeId t = static_cast<NodeId>(rng.UniformInt(40));
    if (s == t) t = (t + 1) % 40;
    queries.push_back({s, t});
  }

  EngineOptions options = BaseOptions(8, EstimatorKind::kMonteCarlo);
  options.num_samples = 64;
  options.queue_capacity = 32;
  auto engine = QueryEngine::Create(graph, options).MoveValue();
  const std::vector<EngineResult> first =
      engine->RunBatch(queries).MoveValue();
  ASSERT_EQ(first.size(), queries.size());
  for (const EngineResult& result : first) {
    EXPECT_GE(result.reliability, 0.0);
    EXPECT_LE(result.reliability, 1.0);
  }

  // A fresh engine (cold cache, different thread count) reproduces the batch.
  EngineOptions rerun_options = options;
  rerun_options.num_threads = 3;
  auto rerun_engine = QueryEngine::Create(graph, rerun_options).MoveValue();
  const std::vector<EngineResult> second =
      rerun_engine->RunBatch(queries).MoveValue();
  ExpectBitIdentical(first, second);

  const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
  EXPECT_EQ(snapshot.queries, 10000u);
  EXPECT_GT(snapshot.cache.hits, 0u);
}

}  // namespace
}  // namespace relcomp
