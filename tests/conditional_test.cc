#include "reliability/conditional.h"

#include <gtest/gtest.h>

#include "reliability/exact.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::DiamondGraph;
using testing::LineGraph3;
using testing::RandomSmallGraph;
using testing::SamplingTolerance;

TEST(ConditionalExact, EmptyConditionEqualsPlainReliability) {
  for (uint64_t seed = 950; seed < 958; ++seed) {
    const UncertainGraph g = RandomSmallGraph(6, 12, 0.2, 0.8, seed);
    EXPECT_NEAR(*ExactConditionalReliability(g, 0, 5, {}),
                *ExactReliabilityEnumeration(g, 0, 5), 1e-12)
        << seed;
  }
}

TEST(ConditionalExact, ForcedPresentPathGivesCertainty) {
  const UncertainGraph g = LineGraph3(0.5, 0.25);
  ReliabilityCondition condition;
  condition.present = {0, 1};
  EXPECT_DOUBLE_EQ(*ExactConditionalReliability(g, 0, 2, condition), 1.0);
}

TEST(ConditionalExact, ForcedAbsentCutGivesZero) {
  const UncertainGraph g = LineGraph3(0.5, 0.25);
  ReliabilityCondition condition;
  condition.absent = {1};
  EXPECT_DOUBLE_EQ(*ExactConditionalReliability(g, 0, 2, condition), 0.0);
}

TEST(ConditionalExact, PartialConditionOnDiamond) {
  // Knock out one branch of the diamond: R collapses to the other path.
  const UncertainGraph g = DiamondGraph(0.5);  // edges: 0-1, 1-3, 0-2, 2-3
  ReliabilityCondition condition;
  condition.absent = {0};  // edge 0 -> 1 down
  EXPECT_NEAR(*ExactConditionalReliability(g, 0, 3, condition), 0.25, 1e-12);
  condition.absent.clear();
  condition.present = {0, 1};  // left path observed up
  EXPECT_DOUBLE_EQ(*ExactConditionalReliability(g, 0, 3, condition), 1.0);
}

TEST(ConditionalExact, LawOfTotalProbability) {
  // R = p * R(e present) + (1-p) * R(e absent) for any edge e.
  for (uint64_t seed = 960; seed < 968; ++seed) {
    const UncertainGraph g = RandomSmallGraph(6, 12, 0.2, 0.8, seed);
    const double plain = *ExactReliabilityEnumeration(g, 0, 5);
    ReliabilityCondition present;
    present.present = {0};
    ReliabilityCondition absent;
    absent.absent = {0};
    const double p = g.prob(0);
    EXPECT_NEAR(p * *ExactConditionalReliability(g, 0, 5, present) +
                    (1.0 - p) * *ExactConditionalReliability(g, 0, 5, absent),
                plain, 1e-10)
        << seed;
  }
}

TEST(ConditionalMc, MatchesExactOracle) {
  for (uint64_t seed = 970; seed < 976; ++seed) {
    const UncertainGraph g = RandomSmallGraph(7, 14, 0.2, 0.8, seed);
    ReliabilityCondition condition;
    condition.present = {0};
    condition.absent = {1};
    const double exact = *ExactConditionalReliability(g, 0, 6, condition);
    const double estimate =
        *ConditionalReliabilityMonteCarlo(g, 0, 6, condition, 12000, seed);
    EXPECT_NEAR(estimate, exact, SamplingTolerance(exact, 12000, 4.5)) << seed;
  }
}

TEST(ConditionalMc, ValidatesArguments) {
  const UncertainGraph g = LineGraph3();
  EXPECT_FALSE(ConditionalReliabilityMonteCarlo(g, 0, 99, {}, 10, 1).ok());
  EXPECT_FALSE(ConditionalReliabilityMonteCarlo(g, 0, 2, {}, 0, 1).ok());
  ReliabilityCondition contradictory;
  contradictory.present = {0};
  contradictory.absent = {0};
  EXPECT_FALSE(
      ConditionalReliabilityMonteCarlo(g, 0, 2, contradictory, 10, 1).ok());
  ReliabilityCondition out_of_range;
  out_of_range.present = {99};
  EXPECT_FALSE(
      ConditionalReliabilityMonteCarlo(g, 0, 2, out_of_range, 10, 1).ok());
  EXPECT_FALSE(ExactConditionalReliability(g, 0, 2, out_of_range).ok());
}

TEST(ConditionalExact, FreeEdgeBudgetEnforced) {
  const UncertainGraph g = RandomSmallGraph(10, 30, 0.2, 0.8, 980);
  const auto result = ExactConditionalReliability(g, 0, 9, {}, /*max_free=*/10);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace relcomp
