#include "eval/query_gen.h"

#include <set>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/possible_world.h"
#include "test_util.h"

namespace relcomp {
namespace {

TEST(QueryGen, PairsAreAtRequestedHopDistance) {
  const Dataset d = MakeDataset(DatasetId::kLastFm, Scale::kTiny, 1).MoveValue();
  QueryGenOptions options;
  options.num_pairs = 30;
  options.hop_distance = 2;
  const auto queries = GenerateQueries(d.graph, options);
  ASSERT_TRUE(queries.ok());
  EXPECT_GT(queries->size(), 10u);
  for (const ReliabilityQuery& q : *queries) {
    const std::vector<uint32_t> dist = HopDistances(d.graph, q.source);
    EXPECT_EQ(dist[q.target], 2u) << q.source << "->" << q.target;
  }
}

TEST(QueryGen, SupportsLargerDistances) {
  const Dataset d = MakeDataset(DatasetId::kNetHept, Scale::kTiny, 2).MoveValue();
  for (const uint32_t h : {3u, 4u}) {
    QueryGenOptions options;
    options.num_pairs = 10;
    options.hop_distance = h;
    const auto queries = GenerateQueries(d.graph, options);
    if (!queries.ok()) continue;  // very tight tiny graphs may lack far pairs
    for (const ReliabilityQuery& q : *queries) {
      EXPECT_EQ(HopDistances(d.graph, q.source)[q.target], h);
    }
  }
}

TEST(QueryGen, PairsAreDistinct) {
  const Dataset d = MakeDataset(DatasetId::kAsTopology, Scale::kTiny, 3).MoveValue();
  QueryGenOptions options;
  options.num_pairs = 50;
  const auto queries = GenerateQueries(d.graph, options);
  ASSERT_TRUE(queries.ok());
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const ReliabilityQuery& q : *queries) {
    EXPECT_TRUE(seen.insert({q.source, q.target}).second);
    EXPECT_NE(q.source, q.target);
  }
}

TEST(QueryGen, DeterministicPerSeed) {
  const Dataset d = MakeDataset(DatasetId::kLastFm, Scale::kTiny, 4).MoveValue();
  QueryGenOptions options;
  options.num_pairs = 20;
  options.seed = 77;
  const auto a = GenerateQueries(d.graph, options);
  const auto b = GenerateQueries(d.graph, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].source, (*b)[i].source);
    EXPECT_EQ((*a)[i].target, (*b)[i].target);
  }
}

TEST(QueryGen, FailsWhenNoPairExists) {
  // Two isolated nodes: no 2-hop pair anywhere.
  GraphBuilder b(2);
  const UncertainGraph g = b.Build().MoveValue();
  QueryGenOptions options;
  options.num_pairs = 5;
  options.max_attempts = 200;
  EXPECT_FALSE(GenerateQueries(g, options).ok());
}

TEST(QueryGen, ValidatesArguments) {
  const UncertainGraph tiny = testing::LineGraph3();
  QueryGenOptions options;
  options.hop_distance = 0;
  EXPECT_FALSE(GenerateQueries(tiny, options).ok());
  GraphBuilder b(1);
  const UncertainGraph one = b.Build().MoveValue();
  QueryGenOptions ok_options;
  EXPECT_FALSE(GenerateQueries(one, ok_options).ok());
}

TEST(QueryGen, WorksOnEveryDataset) {
  for (DatasetId id : AllDatasetIds()) {
    const Dataset d = MakeDataset(id, Scale::kTiny, 5).MoveValue();
    QueryGenOptions options;
    options.num_pairs = 15;
    const auto queries = GenerateQueries(d.graph, options);
    ASSERT_TRUE(queries.ok()) << DatasetName(id);
    EXPECT_GE(queries->size(), 5u) << DatasetName(id);
  }
}

}  // namespace
}  // namespace relcomp
