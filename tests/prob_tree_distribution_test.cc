// Tests for the ProbTree distance-distribution mode (the [32] original that
// the paper's Section 2.7 adaptation replaces).

#include <gtest/gtest.h>

#include "reliability/prob_tree.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::GraphFromString;
using testing::RandomSmallGraph;

ProbTreeOptions DistributionOptions() {
  ProbTreeOptions options;
  options.precompute_distance_distributions = true;
  return options;
}

// Anchors nodes 0 and 2 in a degree-3 core (with helpers 3 and 4) so the
// min-degree elimination covers the middle node 1 first and produces a
// virtual 0 -> 2 edge.
void AddCoreScaffolding(GraphBuilder& b) {
  b.AddBidirectedEdge(0, 3, 0.5).CheckOK();
  b.AddBidirectedEdge(0, 4, 0.5).CheckOK();
  b.AddBidirectedEdge(2, 3, 0.5).CheckOK();
  b.AddBidirectedEdge(2, 4, 0.5).CheckOK();
  b.AddBidirectedEdge(3, 4, 0.5).CheckOK();
}

TEST(ProbTreeDistributions, SingleCoveredPathHasLengthTwoMass) {
  // 0 -> 1 -> 2 with middle node 1 covered: the virtual 0 -> 2 edge must
  // carry P(dist = 2) = p1 * p2 and nothing at dist = 1.
  GraphBuilder b(5);
  b.AddEdge(0, 1, 0.5).CheckOK();
  b.AddEdge(1, 2, 0.4).CheckOK();
  AddCoreScaffolding(b);
  const UncertainGraph g = b.Build().MoveValue();
  const ProbTreeIndex index =
      ProbTreeIndex::Build(g, DistributionOptions()).MoveValue();
  bool found = false;
  auto scan = [&](const std::vector<ProbTreeEdge>& edges) {
    for (const ProbTreeEdge& e : edges) {
      if (e.origin >= 0 && e.tail == 0 && e.head == 2) {
        found = true;
        EXPECT_NEAR(e.DistanceProbability(1), 0.0, 1e-12);
        EXPECT_NEAR(e.DistanceProbability(2), 0.2, 1e-12);
        EXPECT_NEAR(e.prob, 0.2, 1e-12);
      }
    }
  };
  scan(index.root_edges());
  for (size_t b = 0; b < index.num_bags(); ++b) scan(index.bag(b).edges);
  EXPECT_TRUE(found);
}

TEST(ProbTreeDistributions, DirectPlusPathSplitsMassByLength) {
  // Figure 6 bag (D) shape: direct 6 -> 1 (0.75) in parallel with
  // 6 -> 2 -> 1 (0.25). P(dist=1) = 0.75; P(dist=2) = 0.25 * 0.25
  // (path exists AND direct absent); total 0.8125.
  GraphBuilder b(5);
  b.AddEdge(0, 2, 0.75).CheckOK();
  b.AddEdge(0, 1, 0.5).CheckOK();
  b.AddEdge(1, 2, 0.5).CheckOK();
  AddCoreScaffolding(b);
  const UncertainGraph g = b.Build().MoveValue();
  const ProbTreeIndex index =
      ProbTreeIndex::Build(g, DistributionOptions()).MoveValue();
  bool found = false;
  auto scan = [&](const std::vector<ProbTreeEdge>& edges) {
    for (const ProbTreeEdge& e : edges) {
      if (e.origin >= 0 && e.tail == 0 && e.head == 2) {
        found = true;
        EXPECT_NEAR(e.DistanceProbability(1), 0.75, 1e-12);
        EXPECT_NEAR(e.DistanceProbability(2), 0.25 * 0.25, 1e-12);
        EXPECT_NEAR(e.prob, 0.8125, 1e-12);
      }
    }
  };
  scan(index.root_edges());
  for (size_t s = 0; s < index.num_bags(); ++s) scan(index.bag(s).edges);
  EXPECT_TRUE(found);
}

TEST(ProbTreeDistributions, MassNeverExceedsOne) {
  const UncertainGraph g = RandomSmallGraph(30, 80, 0.2, 0.9, 81);
  const ProbTreeIndex index =
      ProbTreeIndex::Build(g, DistributionOptions()).MoveValue();
  auto check = [&](const std::vector<ProbTreeEdge>& edges) {
    for (const ProbTreeEdge& e : edges) {
      if (e.survival.empty()) continue;
      double total = 0.0;
      double prev = 1.0;
      for (size_t l = 0; l < e.survival.size(); ++l) {
        EXPECT_LE(e.survival[l], prev + 1e-12);  // survival is non-increasing
        prev = e.survival[l];
        total += e.DistanceProbability(static_cast<uint32_t>(l + 1));
      }
      EXPECT_LE(total, 1.0 + 1e-9);
      EXPECT_GE(total, 0.0);
    }
  };
  check(index.root_edges());
  for (size_t b = 0; b < index.num_bags(); ++b) check(index.bag(b).edges);
}

TEST(ProbTreeDistributions, QueriesIdenticalToReliabilityOnlyMode) {
  // The distributions are extra payload: extracted query graphs and scalar
  // probabilities must match the reliability-only build bit for bit.
  const UncertainGraph g = RandomSmallGraph(25, 70, 0.2, 0.8, 82);
  const ProbTreeIndex lean = ProbTreeIndex::Build(g, {}).MoveValue();
  const ProbTreeIndex full =
      ProbTreeIndex::Build(g, DistributionOptions()).MoveValue();
  ASSERT_EQ(lean.num_bags(), full.num_bags());
  for (const auto& [s, t] :
       std::vector<std::pair<NodeId, NodeId>>{{0, 24}, {3, 17}, {10, 11}}) {
    const RootedGraph a = lean.ExtractQueryGraph(s, t).MoveValue();
    const RootedGraph b = full.ExtractQueryGraph(s, t).MoveValue();
    ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
    for (EdgeId e = 0; e < a.graph.num_edges(); ++e) {
      EXPECT_DOUBLE_EQ(a.graph.edge(e).prob, b.graph.edge(e).prob);
    }
  }
}

TEST(ProbTreeDistributions, IndexIsLargerAndSlowerToBuild) {
  // The whole point of the paper's adaptation: distributions cost real build
  // time and space.
  const UncertainGraph g = RandomSmallGraph(400, 1200, 0.2, 0.9, 83);
  const ProbTreeIndex lean = ProbTreeIndex::Build(g, {}).MoveValue();
  const ProbTreeIndex full =
      ProbTreeIndex::Build(g, DistributionOptions()).MoveValue();
  EXPECT_GT(full.MemoryBytes(), lean.MemoryBytes());
}

TEST(ProbTreeDistributions, DistanceProbabilityEdgeCases) {
  ProbTreeEdge edge;
  EXPECT_DOUBLE_EQ(edge.DistanceProbability(1), 0.0);  // no distributions
  edge.survival = {0.4, 0.3};
  EXPECT_DOUBLE_EQ(edge.DistanceProbability(0), 0.0);
  EXPECT_NEAR(edge.DistanceProbability(1), 0.6, 1e-12);
  EXPECT_NEAR(edge.DistanceProbability(2), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(edge.DistanceProbability(3), 0.0);  // beyond cap
}

}  // namespace
}  // namespace relcomp
