#include "reliability/reliable_set.h"

#include <gtest/gtest.h>

#include "reliability/exact.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::GraphFromString;
using testing::RandomSmallGraph;

UncertainGraph FanGraph() {
  return GraphFromString("0 1 0.9\n0 2 0.5\n0 3 0.1\n1 4 0.9\n");
}

TEST(ReliableSetMc, FiltersByThreshold) {
  const UncertainGraph g = FanGraph();
  const ReliableSetResult result =
      ReliableSetMonteCarlo(g, 0, /*threshold=*/0.45, 20000, 1).MoveValue();
  // Qualifiers: node 1 (~0.9), node 4 (~0.81), node 2 (~0.5). Node 3 (~0.1)
  // is out.
  ASSERT_EQ(result.members.size(), 3u);
  EXPECT_EQ(result.members[0].node, 1u);
  EXPECT_EQ(result.members[1].node, 4u);
  EXPECT_EQ(result.members[2].node, 2u);
}

TEST(ReliableSetMc, ThresholdZeroReturnsAllReached) {
  const UncertainGraph g = FanGraph();
  const ReliableSetResult result =
      ReliableSetMonteCarlo(g, 0, 0.0, 5000, 2).MoveValue();
  EXPECT_EQ(result.members.size(), 4u);  // everything but the source
}

TEST(ReliableSetMc, ThresholdOneKeepsOnlyCertainNodes) {
  const UncertainGraph g = GraphFromString("0 1 1\n1 2 0.5\n");
  const ReliableSetResult result =
      ReliableSetMonteCarlo(g, 0, 1.0, 3000, 3).MoveValue();
  ASSERT_EQ(result.members.size(), 1u);
  EXPECT_EQ(result.members[0].node, 1u);
}

TEST(ReliableSetMc, ValuesMatchExactPerNode) {
  const UncertainGraph g = RandomSmallGraph(7, 14, 0.3, 0.8, 45);
  const ReliableSetResult result =
      ReliableSetMonteCarlo(g, 0, 0.2, 30000, 4).MoveValue();
  for (const ReliableTarget& member : result.members) {
    const double exact = *ExactReliabilityEnumeration(g, 0, member.node);
    EXPECT_NEAR(member.reliability, exact,
                testing::SamplingTolerance(exact, 30000, 5.0))
        << member.node;
  }
}

TEST(ReliableSetMc, ValidatesArguments) {
  const UncertainGraph g = FanGraph();
  EXPECT_FALSE(ReliableSetMonteCarlo(g, 99, 0.5, 100, 1).ok());
  EXPECT_FALSE(ReliableSetMonteCarlo(g, 0, -0.1, 100, 1).ok());
  EXPECT_FALSE(ReliableSetMonteCarlo(g, 0, 1.5, 100, 1).ok());
  EXPECT_FALSE(ReliableSetMonteCarlo(g, 0, 0.5, 0, 1).ok());
}

TEST(ReliableSetBfsSharing, AgreesWithMonteCarlo) {
  const UncertainGraph g = FanGraph();
  BfsSharingOptions options;
  options.index_samples = 20000;
  auto estimator = BfsSharingEstimator::Create(g, options, 11).MoveValue();
  const ReliableSetResult result =
      ReliableSetBfsSharing(*estimator, 0, 0.45, 20000).MoveValue();
  ASSERT_EQ(result.members.size(), 3u);
  EXPECT_EQ(result.members[0].node, 1u);
  EXPECT_NEAR(result.members[0].reliability, 0.9, 0.02);
}

TEST(ReliableSetBfsSharing, ValidatesArguments) {
  const UncertainGraph g = FanGraph();
  BfsSharingOptions options;
  options.index_samples = 100;
  auto estimator = BfsSharingEstimator::Create(g, options, 12).MoveValue();
  EXPECT_FALSE(ReliableSetBfsSharing(*estimator, 0, 0.5, 101).ok());
  EXPECT_FALSE(ReliableSetBfsSharing(*estimator, 99, 0.5, 100).ok());
}

}  // namespace
}  // namespace relcomp
