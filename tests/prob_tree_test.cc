#include "reliability/prob_tree.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "reliability/exact.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::Figure6Graph;
using testing::GraphFromString;
using testing::LineGraph3;
using testing::RandomSmallGraph;
using testing::SamplingTolerance;

ProbTreeIndex BuildIndex(const UncertainGraph& g, uint32_t width = 2) {
  ProbTreeOptions options;
  options.width = width;
  Result<ProbTreeIndex> index = ProbTreeIndex::Build(g, options);
  EXPECT_TRUE(index.ok()) << index.status();
  return index.MoveValue();
}

TEST(ProbTreeIndex, LineGraphDecomposesFully) {
  const UncertainGraph g = LineGraph3(0.5, 0.25);
  const ProbTreeIndex index = BuildIndex(g);
  // A 3-node path has two low-degree endpoints; everything gets covered or
  // lands in a small root.
  EXPECT_GE(index.num_bags(), 1u);
  EXPECT_LE(index.stats().root_nodes, 3u);
}

TEST(ProbTreeIndex, Figure6AggregationValue) {
  // The paper's worked example: reliability 6 -> 1 combines the direct edge
  // (0.75) with the path 6 -> 2 -> 1 (0.5 * 0.5):
  // 1 - (1 - 0.75)(1 - 0.25) = 0.8125.
  const UncertainGraph g = Figure6Graph();
  const ProbTreeIndex index = BuildIndex(g);
  // Find a virtual edge 6 -> 1 carrying exactly that probability, in any
  // bag or the root.
  bool found = false;
  auto scan = [&](const std::vector<ProbTreeEdge>& edges) {
    for (const ProbTreeEdge& e : edges) {
      if (e.tail == 6 && e.head == 1 && e.origin >= 0 &&
          std::abs(e.prob - 0.8125) < 1e-12) {
        found = true;
      }
    }
  };
  scan(index.root_edges());
  for (size_t b = 0; b < index.num_bags(); ++b) scan(index.bag(b).edges);
  EXPECT_TRUE(found);
}

TEST(ProbTreeIndex, EveryBagRespectsWidth) {
  const UncertainGraph g = RandomSmallGraph(40, 100, 0.2, 0.8, 21);
  const ProbTreeIndex index = BuildIndex(g, 2);
  for (size_t b = 0; b < index.num_bags(); ++b) {
    EXPECT_LE(index.bag(b).boundary.size(), 2u);
    EXPECT_EQ(index.bag(b).nodes.size(), index.bag(b).boundary.size() + 1);
  }
}

TEST(ProbTreeIndex, ParentsAreCreatedLaterOrRoot) {
  const UncertainGraph g = RandomSmallGraph(40, 100, 0.2, 0.8, 22);
  const ProbTreeIndex index = BuildIndex(g);
  for (size_t b = 0; b < index.num_bags(); ++b) {
    const int32_t parent = index.bag(b).parent;
    if (parent >= 0) {
      EXPECT_GT(parent, static_cast<int32_t>(b));
      // The parent must contain the child's entire boundary.
      const auto& pnodes = index.bag(parent).nodes;
      for (NodeId u : index.bag(b).boundary) {
        EXPECT_NE(std::find(pnodes.begin(), pnodes.end(), u), pnodes.end());
      }
    }
  }
}

TEST(ProbTreeIndex, CoveredNodesPartitionTheGraph) {
  const UncertainGraph g = RandomSmallGraph(40, 100, 0.2, 0.8, 23);
  const ProbTreeIndex index = BuildIndex(g);
  size_t covered = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const int32_t bag = index.CoveredIn(v);
    if (bag >= 0) {
      EXPECT_EQ(index.bag(bag).covered, v);
      ++covered;
    }
  }
  EXPECT_EQ(covered, index.num_bags());
  EXPECT_EQ(index.stats().root_nodes, g.num_nodes() - covered);
}

TEST(ProbTreeIndex, QueryGraphIsSmallerOnSparseGraphs) {
  // Tree-like graphs collapse almost entirely.
  GraphBuilder b(64);
  for (NodeId v = 1; v < 64; ++v) {
    b.AddBidirectedEdge(v, v / 2, 0.5).CheckOK();  // binary tree
  }
  const UncertainGraph g = b.Build().MoveValue();
  const ProbTreeIndex index = BuildIndex(g);
  const RootedGraph rooted = index.ExtractQueryGraph(40, 41).MoveValue();
  EXPECT_LT(rooted.graph.num_edges(), g.num_edges());
  EXPECT_LT(rooted.graph.num_nodes(), g.num_nodes());
}

TEST(ProbTreeIndex, QueryGraphPreservesReliabilityOnTrees) {
  // On trees there is a single path, so w=2 aggregation is exactly lossless.
  GraphBuilder b(16);
  for (NodeId v = 1; v < 16; ++v) {
    const double p = 0.3 + 0.04 * v;
    b.AddBidirectedEdge(v, v / 2, p).CheckOK();
  }
  const UncertainGraph g = b.Build().MoveValue();
  const ProbTreeIndex index = BuildIndex(g);
  for (const auto& [s, t] : std::vector<std::pair<NodeId, NodeId>>{
           {8, 9}, {1, 15}, {10, 3}, {0, 7}}) {
    const double exact = *ExactReliabilityFactoring(g, s, t);
    const RootedGraph rooted = index.ExtractQueryGraph(s, t).MoveValue();
    const double reduced = *ExactReliabilityFactoring(
        rooted.graph, rooted.source, rooted.target);
    EXPECT_NEAR(reduced, exact, 1e-9) << s << "->" << t;
  }
}

TEST(ProbTreeIndex, QueryGraphNearLosslessOnGeneralGraphs) {
  // With cycles, the w=2 direction-independence approximation may introduce
  // tiny error; it must stay far below sampling noise.
  for (uint64_t seed = 600; seed < 610; ++seed) {
    const UncertainGraph g = RandomSmallGraph(9, 18, 0.2, 0.8, seed);
    const double exact = *ExactReliabilityEnumeration(g, 0, 8);
    const ProbTreeIndex index = BuildIndex(g);
    const RootedGraph rooted = index.ExtractQueryGraph(0, 8).MoveValue();
    const double reduced = *ExactReliabilityFactoring(
        rooted.graph, rooted.source, rooted.target);
    EXPECT_NEAR(reduced, exact, 0.02) << seed;
  }
}

TEST(ProbTreeIndex, SaveLoadRoundTrip) {
  const UncertainGraph g = RandomSmallGraph(30, 80, 0.2, 0.8, 24);
  const ProbTreeIndex index = BuildIndex(g);
  const std::string path =
      (std::filesystem::temp_directory_path() / "relcomp_probtree.bin").string();
  ASSERT_TRUE(index.SaveToFile(path).ok());
  const Result<ProbTreeIndex> loaded = ProbTreeIndex::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_bags(), index.num_bags());
  EXPECT_EQ(loaded->root_edges().size(), index.root_edges().size());
  // Query graphs extracted from the loaded index match the original.
  const RootedGraph a = index.ExtractQueryGraph(0, 20).MoveValue();
  const RootedGraph b = loaded->ExtractQueryGraph(0, 20).MoveValue();
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  std::filesystem::remove(path);
}

TEST(ProbTreeIndex, MemoryBytesPositiveAndBounded) {
  const UncertainGraph g = RandomSmallGraph(50, 150, 0.2, 0.8, 25);
  const ProbTreeIndex index = BuildIndex(g);
  EXPECT_GT(index.MemoryBytes(), 0u);
  // O(|E|) space: within an order of magnitude of the raw edge data.
  EXPECT_LT(index.MemoryBytes(), g.MemoryBytes() * 10);
}

TEST(ProbTreeIndex, RejectsWidthZero) {
  ProbTreeOptions options;
  options.width = 0;
  EXPECT_FALSE(ProbTreeIndex::Build(LineGraph3(), options).ok());
}

TEST(ProbTreeIndex, ExtractValidatesNodes) {
  const ProbTreeIndex index = BuildIndex(LineGraph3());
  EXPECT_FALSE(index.ExtractQueryGraph(0, 99).ok());
}

TEST(ProbTreeEstimator, MatchesExactThroughFullPipeline) {
  for (uint64_t seed = 620; seed < 626; ++seed) {
    const UncertainGraph g = RandomSmallGraph(9, 18, 0.2, 0.8, seed);
    const double exact = *ExactReliabilityEnumeration(g, 0, 8);
    Result<std::unique_ptr<ProbTreeEstimator>> est =
        ProbTreeEstimator::Create(g, ProbTreeOptions{});
    ASSERT_TRUE(est.ok());
    EstimateOptions opts;
    opts.num_samples = 12000;
    opts.seed = seed;
    EXPECT_NEAR((*est)->Estimate({0, 8}, opts)->reliability, exact,
                SamplingTolerance(exact, 12000, 4.5) + 0.01)
        << seed;
  }
}

TEST(ProbTreeEstimator, InnerEstimatorNames) {
  const UncertainGraph g = LineGraph3();
  EXPECT_EQ(std::string(ProbTreeEstimator::Create(g, {}, ProbTreeInner::kMonteCarlo)
                            .MoveValue()
                            ->name()),
            "ProbTree");
  EXPECT_EQ(std::string(ProbTreeEstimator::Create(
                            g, {}, ProbTreeInner::kRecursiveStratified)
                            .MoveValue()
                            ->name()),
            "ProbTree+RSS");
}

TEST(ProbTreeEstimator, IndexIsReusedAcrossQueries) {
  const UncertainGraph g = RandomSmallGraph(30, 80, 0.2, 0.8, 26);
  auto est = ProbTreeEstimator::Create(g, ProbTreeOptions{}).MoveValue();
  const size_t index_bytes = est->IndexMemoryBytes();
  EstimateOptions opts;
  opts.num_samples = 200;
  opts.seed = 1;
  est->Estimate({0, 10}, opts)->reliability;
  est->Estimate({5, 20}, opts)->reliability;
  EXPECT_EQ(est->IndexMemoryBytes(), index_bytes);  // no index churn
}

TEST(ProbTreeEstimator, ReplicasShareOneIndex) {
  const UncertainGraph g = RandomSmallGraph(30, 80, 0.2, 0.8, 27);
  auto index = ProbTreeIndex::BuildShared(g, ProbTreeOptions{}).MoveValue();
  auto a = ProbTreeEstimator::CreateWithIndex(g, index).MoveValue();
  auto b = ProbTreeEstimator::CreateWithIndex(
               g, index, ProbTreeInner::kRecursiveStratified)
               .MoveValue();
  EXPECT_EQ(a->SharedIndexIdentity(), index.get());
  EXPECT_EQ(b->SharedIndexIdentity(), index.get());
  EXPECT_EQ(a->SharedIndexBytes(), index->MemoryBytes());
  EXPECT_EQ(&a->index(), index.get());

  // Same extracted query graph, same seed, same inner => same answer as an
  // estimator that built its own copy of the (seed-free) index.
  auto own = ProbTreeEstimator::Create(g, ProbTreeOptions{}).MoveValue();
  EstimateOptions opts;
  opts.num_samples = 300;
  opts.seed = 17;
  EXPECT_DOUBLE_EQ(a->Estimate({0, 12}, opts)->reliability,
                   own->Estimate({0, 12}, opts)->reliability);
  EXPECT_FALSE(ProbTreeEstimator::CreateWithIndex(g, nullptr).ok());
}

}  // namespace
}  // namespace relcomp
