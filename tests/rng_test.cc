#include "common/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace relcomp {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a.NextU64() == b.NextU64());
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(9);
  const uint64_t first = a.NextU64();
  a.NextU64();
  a.Reseed(9);
  EXPECT_EQ(a.NextU64(), first);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsHalf) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntBoundsAndUniformity) {
  Rng rng(6);
  std::vector<int> hist(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    ASSERT_LT(v, 7u);
    ++hist[v];
  }
  // Chi-square with 6 dof; bound is far above the 99.9% quantile (22.5).
  double chi2 = 0.0;
  for (int count : hist) {
    const double expected = 10000.0;
    chi2 += (count - expected) * (count - expected) / expected;
  }
  EXPECT_LT(chi2, 40.0);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 3000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(9);
  for (const double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    constexpr int kN = 50000;
    for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / kN, p, 0.01) << p;
  }
}

TEST(Rng, GeometricMeanMatchesTheory) {
  // E[X] = (1-p)/p for the failures-before-success support used by LP.
  Rng rng(10);
  for (const double p : {0.05, 0.3, 0.7}) {
    double sum = 0.0;
    constexpr int kN = 60000;
    for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.Geometric(p));
    const double expected = (1.0 - p) / p;
    EXPECT_NEAR(sum / kN, expected, expected * 0.05 + 0.02) << p;
  }
}

TEST(Rng, GeometricOfOneIsZero) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Geometric(1.0), 0u);
}

TEST(Rng, GeometricChiSquareGoodnessOfFit) {
  // P(X = k) = p (1-p)^k; buckets 0..5 plus tail => 6 dof.
  Rng rng(12);
  const double p = 0.4;
  constexpr int kN = 60000;
  std::vector<int> hist(7, 0);
  for (int i = 0; i < kN; ++i) {
    const uint64_t x = rng.Geometric(p);
    ++hist[std::min<uint64_t>(x, 6)];
  }
  double chi2 = 0.0;
  double tail = 1.0;
  for (int k = 0; k < 6; ++k) {
    const double pk = p * std::pow(1.0 - p, k);
    tail -= pk;
    const double expected = pk * kN;
    chi2 += (hist[k] - expected) * (hist[k] - expected) / expected;
  }
  const double expected_tail = tail * kN;
  chi2 += (hist[6] - expected_tail) * (hist[6] - expected_tail) / expected_tail;
  EXPECT_LT(chi2, 40.0);  // ~99.99% quantile of chi2(6) is 31.5
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(14);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(15);
  Rng child = parent.Split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (parent.NextU64() == child.NextU64());
  EXPECT_LT(equal, 2);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  uint64_t state = 0;
  const uint64_t a = SplitMix64(state);
  const uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
  uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64(state2), a);
}

}  // namespace
}  // namespace relcomp
