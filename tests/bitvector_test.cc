#include "common/bitvector.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace relcomp {
namespace {

TEST(BitVector, StartsAllZero) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.Count(), 0u);
  for (size_t i = 0; i < bv.size(); ++i) EXPECT_FALSE(bv.Get(i));
}

TEST(BitVector, SetGetClear) {
  BitVector bv(100);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(99);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(99));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.Count(), 4u);
  bv.Clear(63);
  EXPECT_FALSE(bv.Get(63));
  EXPECT_EQ(bv.Count(), 3u);
}

TEST(BitVector, SetAllRespectsTail) {
  BitVector bv(70);
  bv.SetAll();
  EXPECT_EQ(bv.Count(), 70u);  // bits beyond 70 must stay clear
  bv.ClearAll();
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVector, ExactWordBoundary) {
  BitVector bv(128);
  bv.SetAll();
  EXPECT_EQ(bv.Count(), 128u);
}

TEST(BitVector, OrWithDetectsChange) {
  BitVector a(80);
  BitVector b(80);
  b.Set(5);
  b.Set(77);
  EXPECT_TRUE(a.OrWith(b));
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_FALSE(a.OrWith(b));  // idempotent
}

TEST(BitVector, OrWithAndComputesMaskedUnion) {
  BitVector target(64);
  BitVector a(64);
  BitVector b(64);
  a.Set(1);
  a.Set(2);
  a.Set(3);
  b.Set(2);
  b.Set(3);
  b.Set(4);
  EXPECT_TRUE(target.OrWithAnd(a, b));
  EXPECT_FALSE(target.Get(1));
  EXPECT_TRUE(target.Get(2));
  EXPECT_TRUE(target.Get(3));
  EXPECT_FALSE(target.Get(4));
  EXPECT_FALSE(target.OrWithAnd(a, b));
}

TEST(BitVector, OrWithAndAllowsLongerOperands) {
  // BFS Sharing: K-bit node vector AND-ed against an L-bit edge vector.
  BitVector node(50);
  BitVector other(50);
  BitVector edge(1500);
  other.SetAll();
  edge.SetAll();
  EXPECT_TRUE(node.OrWithAnd(other, edge));
  EXPECT_EQ(node.Count(), 50u);  // no tail leakage past bit 50
}

TEST(BitVector, WouldGainFromAnd) {
  BitVector target(64);
  BitVector a(64);
  BitVector b(64);
  a.Set(7);
  b.Set(7);
  EXPECT_TRUE(target.WouldGainFromAnd(a, b));
  target.Set(7);
  EXPECT_FALSE(target.WouldGainFromAnd(a, b));
  EXPECT_EQ(target.Count(), 1u);  // non-mutating
}

TEST(BitVector, FillBernoulliExtremes) {
  Rng rng(3);
  BitVector bv(200);
  bv.FillBernoulli(0.0, rng);
  EXPECT_EQ(bv.Count(), 0u);
  bv.FillBernoulli(1.0, rng);
  EXPECT_EQ(bv.Count(), 200u);
}

TEST(BitVector, FillBernoulliDensityMatchesP) {
  Rng rng(4);
  // Covers both the geometric-skip path (p < 0.25) and the dense path.
  for (const double p : {0.02, 0.1, 0.5, 0.9}) {
    BitVector bv(20000);
    bv.FillBernoulli(p, rng);
    const double density = static_cast<double>(bv.Count()) / 20000.0;
    EXPECT_NEAR(density, p, 0.02) << p;
  }
}

TEST(BitVector, FillBernoulliOverwritesPreviousContent) {
  Rng rng(5);
  BitVector bv(100);
  bv.SetAll();
  bv.FillBernoulli(0.01, rng);
  EXPECT_LT(bv.Count(), 20u);
}

TEST(BitVector, EqualityComparesSizeAndBits) {
  BitVector a(10);
  BitVector b(10);
  EXPECT_EQ(a, b);
  a.Set(3);
  EXPECT_NE(a, b);
  b.Set(3);
  EXPECT_EQ(a, b);
  BitVector c(11);
  c.Set(3);
  EXPECT_NE(a, c);
}

TEST(BitVector, ResizeGrowsWithZeros) {
  BitVector bv(10);
  bv.SetAll();
  bv.Resize(100);
  EXPECT_EQ(bv.Count(), 10u);
  EXPECT_FALSE(bv.Get(50));
}

TEST(BitVector, ResizeShrinkMasksTail) {
  BitVector bv(100);
  bv.SetAll();
  bv.Resize(10);
  EXPECT_EQ(bv.Count(), 10u);
}

TEST(BitVector, MemoryBytesTracksWords) {
  EXPECT_EQ(BitVector(64).MemoryBytes(), 8u);
  EXPECT_EQ(BitVector(65).MemoryBytes(), 16u);
  EXPECT_EQ(BitVector(0).MemoryBytes(), 0u);
  EXPECT_EQ(BitVector(1500).MemoryBytes(), 192u);  // 24 words
}

TEST(BitVector, OrWithAndOffsetMatchesNaiveSlice) {
  // The stratified BFS Sharing step: this |= (a & (b >> offset)) over
  // this->size() bits — checked against a bit-by-bit oracle across word
  // boundaries, unaligned offsets, and short b tails.
  Rng rng(2026);
  for (const size_t len : {1u, 63u, 64u, 65u, 130u}) {
    for (const size_t offset : {0u, 1u, 63u, 64u, 65u, 100u}) {
      const size_t b_len = offset + len - (offset % 3);  // sometimes short
      BitVector dst(len);
      BitVector a(len);
      BitVector b(b_len);
      a.FillBernoulli(0.5, rng);
      b.FillBernoulli(0.5, rng);
      dst.FillBernoulli(0.3, rng);
      BitVector expected(len);
      for (size_t i = 0; i < len; ++i) {
        const bool b_bit = offset + i < b_len && b.Get(offset + i);
        if (dst.Get(i) || (a.Get(i) && b_bit)) expected.Set(i);
      }
      BitVector actual = dst;
      const bool changed = actual.OrWithAndOffset(a, b, offset);
      EXPECT_EQ(actual, expected) << "len " << len << " offset " << offset;
      EXPECT_EQ(changed, !(actual == dst));
    }
  }
}

TEST(WordPrimitives, PopcountMatchesNaive) {
  Rng rng(11);
  auto naive = [](uint64_t w) {
    uint32_t c = 0;
    for (uint32_t i = 0; i < 64; ++i) c += (w >> i) & 1u;
    return c;
  };
  for (const uint64_t w : {uint64_t{0}, ~uint64_t{0}, uint64_t{1},
                           uint64_t{1} << 63, uint64_t{0xAAAAAAAAAAAAAAAA}}) {
    EXPECT_EQ(Popcount(w), naive(w)) << w;
  }
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t w = rng.NextU64();
    EXPECT_EQ(Popcount(w), naive(w)) << w;
  }
}

TEST(WordPrimitives, Rank64MatchesNaive) {
  Rng rng(12);
  for (int trial = 0; trial < 100; ++trial) {
    const uint64_t w = rng.NextU64();
    uint32_t ones = 0;
    for (uint32_t i = 0; i <= 64; ++i) {
      EXPECT_EQ(Rank64(w, i), ones) << w << " i=" << i;
      if (i < 64) ones += (w >> i) & 1u;
    }
  }
}

TEST(WordPrimitives, Select64MatchesNaive) {
  Rng rng(13);
  // Select64(w, k) is the position of the k-th one; oracle by linear scan.
  // Includes sparse, dense, and boundary words.
  std::vector<uint64_t> words = {uint64_t{1}, uint64_t{1} << 63, ~uint64_t{0},
                                 uint64_t{0x8000000000000001}};
  for (int trial = 0; trial < 200; ++trial) words.push_back(rng.NextU64());
  for (const uint64_t w : words) {
    uint32_t k = 0;
    for (uint32_t i = 0; i < 64; ++i) {
      if ((w >> i) & 1u) {
        ++k;
        EXPECT_EQ(Select64(w, k), i) << w << " k=" << k;
        EXPECT_EQ(Rank64(w, Select64(w, k)), k - 1) << w;  // inverse law
      }
    }
  }
}

TEST(WordPrimitives, SliceWord64StitchesAcrossBoundary) {
  const uint64_t words[2] = {0xDEADBEEFCAFEF00D, 0x0123456789ABCDEF};
  for (uint32_t off = 0; off < 64; ++off) {
    uint64_t expected = words[0] >> off;
    if (off != 0) expected |= words[1] << (64 - off);
    EXPECT_EQ(SliceWord64(words, 2, 0, off), expected) << off;
  }
  // Bits past the span read as zero.
  EXPECT_EQ(SliceWord64(words, 2, 2, 0), 0u);
  EXPECT_EQ(SliceWord64(words, 2, 1, 8), words[1] >> 8);
}

TEST(BitVector, OrWithAndWordsMatchesOrWithAndOffset) {
  // The packed BFS-Sharing propagation form: raw word span instead of a
  // BitVector. Must be bit-identical for every length/offset combination.
  Rng rng(14);
  for (const size_t len : {1u, 64u, 65u, 130u, 200u}) {
    for (const size_t offset : {0u, 1u, 63u, 64u, 127u}) {
      BitVector a(len);
      BitVector b(offset + len + 30);
      a.FillBernoulli(0.5, rng);
      b.FillBernoulli(0.5, rng);
      BitVector x(len);
      x.FillBernoulli(0.2, rng);
      BitVector y = x;
      const bool cx = x.OrWithAndOffset(a, b, offset);
      const bool cy =
          y.OrWithAndWords(a, b.words().data(), b.words().size(), offset);
      EXPECT_EQ(cx, cy) << len << "/" << offset;
      EXPECT_EQ(x, y) << len << "/" << offset;
    }
  }
}

TEST(BitVector, FillBernoulliWordsMatchesMemberFill) {
  // Identical RNG stream contract: the packed index's word-block fill must
  // sample exactly the worlds the per-vector fill sampled.
  for (const double p : {0.05, 0.3, 0.8, 1.0}) {
    for (const size_t len : {1u, 64u, 100u, 1500u}) {
      Rng rng_a(99);
      Rng rng_b(99);
      BitVector bv(len);
      bv.FillBernoulli(p, rng_a);
      std::vector<uint64_t> words((len + 63) / 64, ~uint64_t{0});
      BitVector::FillBernoulliWords(words.data(), len, p, rng_b);
      EXPECT_EQ(words, bv.words()) << p << "/" << len;
      EXPECT_EQ(rng_a.NextU64(), rng_b.NextU64()) << "stream diverged";
    }
  }
}

TEST(BitVector, OrWithAndOffsetZeroEqualsOrWithAnd) {
  Rng rng(7);
  BitVector a(90);
  BitVector b(120);
  a.FillBernoulli(0.5, rng);
  b.FillBernoulli(0.5, rng);
  BitVector x(90);
  BitVector y(90);
  x.FillBernoulli(0.2, rng);
  y = x;
  EXPECT_EQ(x.OrWithAnd(a, b), y.OrWithAndOffset(a, b, 0));
  EXPECT_EQ(x, y);
}

}  // namespace
}  // namespace relcomp
