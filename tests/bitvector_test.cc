#include "common/bitvector.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace relcomp {
namespace {

TEST(BitVector, StartsAllZero) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.Count(), 0u);
  for (size_t i = 0; i < bv.size(); ++i) EXPECT_FALSE(bv.Get(i));
}

TEST(BitVector, SetGetClear) {
  BitVector bv(100);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(99);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(99));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.Count(), 4u);
  bv.Clear(63);
  EXPECT_FALSE(bv.Get(63));
  EXPECT_EQ(bv.Count(), 3u);
}

TEST(BitVector, SetAllRespectsTail) {
  BitVector bv(70);
  bv.SetAll();
  EXPECT_EQ(bv.Count(), 70u);  // bits beyond 70 must stay clear
  bv.ClearAll();
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVector, ExactWordBoundary) {
  BitVector bv(128);
  bv.SetAll();
  EXPECT_EQ(bv.Count(), 128u);
}

TEST(BitVector, OrWithDetectsChange) {
  BitVector a(80);
  BitVector b(80);
  b.Set(5);
  b.Set(77);
  EXPECT_TRUE(a.OrWith(b));
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_FALSE(a.OrWith(b));  // idempotent
}

TEST(BitVector, OrWithAndComputesMaskedUnion) {
  BitVector target(64);
  BitVector a(64);
  BitVector b(64);
  a.Set(1);
  a.Set(2);
  a.Set(3);
  b.Set(2);
  b.Set(3);
  b.Set(4);
  EXPECT_TRUE(target.OrWithAnd(a, b));
  EXPECT_FALSE(target.Get(1));
  EXPECT_TRUE(target.Get(2));
  EXPECT_TRUE(target.Get(3));
  EXPECT_FALSE(target.Get(4));
  EXPECT_FALSE(target.OrWithAnd(a, b));
}

TEST(BitVector, OrWithAndAllowsLongerOperands) {
  // BFS Sharing: K-bit node vector AND-ed against an L-bit edge vector.
  BitVector node(50);
  BitVector other(50);
  BitVector edge(1500);
  other.SetAll();
  edge.SetAll();
  EXPECT_TRUE(node.OrWithAnd(other, edge));
  EXPECT_EQ(node.Count(), 50u);  // no tail leakage past bit 50
}

TEST(BitVector, WouldGainFromAnd) {
  BitVector target(64);
  BitVector a(64);
  BitVector b(64);
  a.Set(7);
  b.Set(7);
  EXPECT_TRUE(target.WouldGainFromAnd(a, b));
  target.Set(7);
  EXPECT_FALSE(target.WouldGainFromAnd(a, b));
  EXPECT_EQ(target.Count(), 1u);  // non-mutating
}

TEST(BitVector, FillBernoulliExtremes) {
  Rng rng(3);
  BitVector bv(200);
  bv.FillBernoulli(0.0, rng);
  EXPECT_EQ(bv.Count(), 0u);
  bv.FillBernoulli(1.0, rng);
  EXPECT_EQ(bv.Count(), 200u);
}

TEST(BitVector, FillBernoulliDensityMatchesP) {
  Rng rng(4);
  // Covers both the geometric-skip path (p < 0.25) and the dense path.
  for (const double p : {0.02, 0.1, 0.5, 0.9}) {
    BitVector bv(20000);
    bv.FillBernoulli(p, rng);
    const double density = static_cast<double>(bv.Count()) / 20000.0;
    EXPECT_NEAR(density, p, 0.02) << p;
  }
}

TEST(BitVector, FillBernoulliOverwritesPreviousContent) {
  Rng rng(5);
  BitVector bv(100);
  bv.SetAll();
  bv.FillBernoulli(0.01, rng);
  EXPECT_LT(bv.Count(), 20u);
}

TEST(BitVector, EqualityComparesSizeAndBits) {
  BitVector a(10);
  BitVector b(10);
  EXPECT_EQ(a, b);
  a.Set(3);
  EXPECT_NE(a, b);
  b.Set(3);
  EXPECT_EQ(a, b);
  BitVector c(11);
  c.Set(3);
  EXPECT_NE(a, c);
}

TEST(BitVector, ResizeGrowsWithZeros) {
  BitVector bv(10);
  bv.SetAll();
  bv.Resize(100);
  EXPECT_EQ(bv.Count(), 10u);
  EXPECT_FALSE(bv.Get(50));
}

TEST(BitVector, ResizeShrinkMasksTail) {
  BitVector bv(100);
  bv.SetAll();
  bv.Resize(10);
  EXPECT_EQ(bv.Count(), 10u);
}

TEST(BitVector, MemoryBytesTracksWords) {
  EXPECT_EQ(BitVector(64).MemoryBytes(), 8u);
  EXPECT_EQ(BitVector(65).MemoryBytes(), 16u);
  EXPECT_EQ(BitVector(0).MemoryBytes(), 0u);
  EXPECT_EQ(BitVector(1500).MemoryBytes(), 192u);  // 24 words
}

TEST(BitVector, OrWithAndOffsetMatchesNaiveSlice) {
  // The stratified BFS Sharing step: this |= (a & (b >> offset)) over
  // this->size() bits — checked against a bit-by-bit oracle across word
  // boundaries, unaligned offsets, and short b tails.
  Rng rng(2026);
  for (const size_t len : {1u, 63u, 64u, 65u, 130u}) {
    for (const size_t offset : {0u, 1u, 63u, 64u, 65u, 100u}) {
      const size_t b_len = offset + len - (offset % 3);  // sometimes short
      BitVector dst(len);
      BitVector a(len);
      BitVector b(b_len);
      a.FillBernoulli(0.5, rng);
      b.FillBernoulli(0.5, rng);
      dst.FillBernoulli(0.3, rng);
      BitVector expected(len);
      for (size_t i = 0; i < len; ++i) {
        const bool b_bit = offset + i < b_len && b.Get(offset + i);
        if (dst.Get(i) || (a.Get(i) && b_bit)) expected.Set(i);
      }
      BitVector actual = dst;
      const bool changed = actual.OrWithAndOffset(a, b, offset);
      EXPECT_EQ(actual, expected) << "len " << len << " offset " << offset;
      EXPECT_EQ(changed, !(actual == dst));
    }
  }
}

TEST(BitVector, OrWithAndOffsetZeroEqualsOrWithAnd) {
  Rng rng(7);
  BitVector a(90);
  BitVector b(120);
  a.FillBernoulli(0.5, rng);
  b.FillBernoulli(0.5, rng);
  BitVector x(90);
  BitVector y(90);
  x.FillBernoulli(0.2, rng);
  y = x;
  EXPECT_EQ(x.OrWithAnd(a, b), y.OrWithAndOffset(a, b, 0));
  EXPECT_EQ(x, y);
}

}  // namespace
}  // namespace relcomp
