// Raw vs compact storage-layout parity: the two layouts must be
// observationally identical (same structure, bitwise-equal probabilities,
// bit-identical engine answers for every workload kind and thread count),
// with the compact layout strictly smaller on real datasets.

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "graph/compact_adjacency.h"
#include "graph/datasets.h"
#include "graph/graph_builder.h"
#include "graph/uncertain_graph.h"
#include "reliability/estimator_factory.h"
#include "reliability/workload.h"
#include "test_util.h"

namespace relcomp {
namespace {

using ::relcomp::testing::RandomSmallGraph;

UncertainGraph Rebuild(const UncertainGraph& g, StorageLayout layout) {
  return GraphBuilder::FromGraph(g).Build(layout).MoveValue();
}

/// Structural parity: node/edge counts, degrees, adjacency entries in the
/// same slot order, canonical edge records, bitwise-equal probabilities.
void ExpectStructurallyIdentical(const UncertainGraph& raw,
                                 const UncertainGraph& compact) {
  ASSERT_EQ(raw.num_nodes(), compact.num_nodes());
  ASSERT_EQ(raw.num_edges(), compact.num_edges());
  for (EdgeId e = 0; e < raw.num_edges(); ++e) {
    const EdgeRecord a = raw.edge(e);
    const EdgeRecord b = compact.edge(e);
    EXPECT_EQ(a.tail, b.tail) << "edge " << e;
    EXPECT_EQ(a.head, b.head) << "edge " << e;
    EXPECT_EQ(std::memcmp(&a.prob, &b.prob, sizeof(double)), 0) << "edge " << e;
    const double pa = raw.prob(e);
    const double pb = compact.prob(e);
    EXPECT_EQ(std::memcmp(&pa, &pb, sizeof(double)), 0) << "edge " << e;
  }
  for (NodeId v = 0; v < raw.num_nodes(); ++v) {
    ASSERT_EQ(raw.OutDegree(v), compact.OutDegree(v)) << "node " << v;
    ASSERT_EQ(raw.InDegree(v), compact.InDegree(v)) << "node " << v;
    const auto raw_out = raw.OutEdges(v);
    const auto cmp_out = compact.OutEdges(v);
    ASSERT_EQ(raw_out.size(), cmp_out.size());
    for (size_t i = 0; i < raw_out.size(); ++i) {
      const AdjEntry ra = raw_out[i];
      const AdjEntry ca = cmp_out[i];
      EXPECT_EQ(ra.neighbor, ca.neighbor) << v << "/" << i;
      EXPECT_EQ(ra.edge, ca.edge) << v << "/" << i;
      EXPECT_EQ(std::memcmp(&ra.prob, &ca.prob, sizeof(double)), 0)
          << v << "/" << i;
    }
    const auto raw_in = raw.InEdges(v);
    const auto cmp_in = compact.InEdges(v);
    ASSERT_EQ(raw_in.size(), cmp_in.size());
    for (size_t i = 0; i < raw_in.size(); ++i) {
      const AdjEntry ra = raw_in[i];
      const AdjEntry ca = cmp_in[i];
      EXPECT_EQ(ra.neighbor, ca.neighbor) << v << "/" << i;
      EXPECT_EQ(ra.edge, ca.edge) << v << "/" << i;
    }
  }
}

TEST(StorageLayout, CompactIsStructurallyIdenticalToRaw) {
  const UncertainGraph raw = RandomSmallGraph(40, 160, 0.1, 0.9, 71);
  ASSERT_EQ(raw.layout(), StorageLayout::kRaw);
  const UncertainGraph compact = Rebuild(raw, StorageLayout::kCompact);
  ASSERT_EQ(compact.layout(), StorageLayout::kCompact);
  ExpectStructurallyIdentical(raw, compact);
}

TEST(StorageLayout, CompactHandlesIsolatedNodesAndEmptyGraphs) {
  {
    GraphBuilder b(5);  // all isolated
    const UncertainGraph g = b.Build(StorageLayout::kCompact).MoveValue();
    EXPECT_EQ(g.num_nodes(), 5u);
    EXPECT_EQ(g.num_edges(), 0u);
    for (NodeId v = 0; v < 5; ++v) {
      EXPECT_EQ(g.OutDegree(v), 0u);
      EXPECT_TRUE(g.OutEdges(v).empty());
      EXPECT_TRUE(g.InEdges(v).empty());
    }
  }
  {
    GraphBuilder b(6);
    b.AddEdge(0, 5, 0.5).CheckOK();  // nodes 1..4 isolated
    const UncertainGraph raw = b.Build(StorageLayout::kRaw).MoveValue();
    const UncertainGraph compact = b.Build(StorageLayout::kCompact).MoveValue();
    ExpectStructurallyIdentical(raw, compact);
  }
}

TEST(StorageLayout, RrrOffsetPathIsExercisedAndIdentical) {
  // Dense multigraph: m >= 16n pushes the unary offset sequence below the
  // 1/16 ones-density threshold, so the builder picks the RRR variant.
  GraphBuilder b(10);
  Rng rng(77);
  for (int i = 0; i < 400; ++i) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(10));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(10));
    b.AddEdge(u, v, 0.1 + 0.8 * rng.NextDouble()).CheckOK();
  }
  const UncertainGraph raw = b.Build(StorageLayout::kRaw).MoveValue();
  const UncertainGraph compact = b.Build(StorageLayout::kCompact).MoveValue();
  EXPECT_TRUE(compact.compact().out().use_rrr);
  EXPECT_TRUE(compact.compact().in().use_rrr);
  ExpectStructurallyIdentical(raw, compact);
}

TEST(StorageLayout, ProbDictionaryIsExactOnBundledDatasets) {
  // The bundled generators use few distinct probabilities, so the dictionary
  // path must engage — and must reproduce every probability bitwise.
  for (const DatasetId id : {DatasetId::kLastFm, DatasetId::kNetHept}) {
    const Dataset d = MakeDataset(id, Scale::kTiny, 1234).MoveValue();
    const UncertainGraph compact = Rebuild(d.graph, StorageLayout::kCompact);
    SCOPED_TRACE(d.name);
    EXPECT_TRUE(compact.compact().uses_dictionary());
    EXPECT_LE(compact.compact().prob_dictionary().size(),
              CompactAdjacency::kMaxProbDictSize);
    ExpectStructurallyIdentical(d.graph, compact);
  }
}

TEST(StorageLayout, FullWidthFallbackStaysExactPastDictionaryCap) {
  // > 65536 distinct probabilities: the builder must fall back to full-width
  // storage rather than quantize — estimates never silently change.
  GraphBuilder b(300);
  Rng rng(88);
  for (int i = 0; i < 70000; ++i) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(300));
    NodeId v = static_cast<NodeId>(rng.UniformInt(300));
    if (u == v) v = (v + 1) % 300;
    b.AddEdge(u, v, 0.05 + 0.9 * rng.NextDouble()).CheckOK();
  }
  const UncertainGraph raw = b.Build(StorageLayout::kRaw).MoveValue();
  const UncertainGraph compact = b.Build(StorageLayout::kCompact).MoveValue();
  EXPECT_FALSE(compact.compact().uses_dictionary());
  for (EdgeId e = 0; e < raw.num_edges(); ++e) {
    const double pa = raw.prob(e);
    const double pb = compact.prob(e);
    ASSERT_EQ(std::memcmp(&pa, &pb, sizeof(double)), 0) << "edge " << e;
  }
}

TEST(StorageLayout, CompactShrinksBytesOnDataset) {
  const Dataset d =
      MakeDataset(DatasetId::kLastFm, Scale::kSmall, 42).MoveValue();
  const UncertainGraph compact = Rebuild(d.graph, StorageLayout::kCompact);
  EXPECT_EQ(d.graph.MemoryBytes(),
            Rebuild(d.graph, StorageLayout::kRaw).MemoryBytes());
  // The bench gate enforces <= 0.6x on every bundled dataset; structurally
  // the compact layout should land far below that.
  EXPECT_LT(static_cast<double>(compact.MemoryBytes()),
            0.6 * static_cast<double>(d.graph.MemoryBytes()))
      << "compact=" << compact.MemoryBytes()
      << " raw=" << d.graph.MemoryBytes();
  EXPECT_GT(compact.MemoryBytes(), 0u);
}

TEST(StorageLayout, FromGraphRoundTripsBothLayouts) {
  const UncertainGraph raw = RandomSmallGraph(25, 80, 0.2, 0.8, 99);
  const UncertainGraph compact = Rebuild(raw, StorageLayout::kCompact);
  // Rebuilding the raw layout from the compact graph must recover the
  // original bit for bit (edge ids, order, probabilities).
  const UncertainGraph back = Rebuild(compact, StorageLayout::kRaw);
  ExpectStructurallyIdentical(raw, back);
}

// ---------------------------------------------------------------------------
// Engine-level parity: bit-identical answers across layouts
// ---------------------------------------------------------------------------

std::vector<EngineQuery> MixedBatch(const UncertainGraph& graph,
                                    size_t limit) {
  std::vector<EngineQuery> queries;
  for (NodeId s = 0; s < graph.num_nodes() && queries.size() < limit; ++s) {
    const NodeId t = (s + 3) % graph.num_nodes();
    if (s == t) continue;
    queries.push_back(EngineQuery::St(s, t));
    queries.push_back(EngineQuery::TopK(s, 5));
    queries.push_back(EngineQuery::ReliableSet(s, 0.25));
    queries.push_back(EngineQuery::Distance(s, t, 3));
  }
  queries.resize(std::min(queries.size(), limit));
  return queries;
}

void ExpectBitIdenticalResults(const std::vector<EngineResult>& a,
                               const std::vector<EngineResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].query.Describe());
    EXPECT_EQ(a[i].status.code(), b[i].status.code());
    EXPECT_EQ(
        std::memcmp(&a[i].reliability, &b[i].reliability, sizeof(double)), 0);
    EXPECT_EQ(a[i].num_samples, b[i].num_samples);
    EXPECT_EQ(a[i].seed, b[i].seed);
    ASSERT_EQ(a[i].targets.size(), b[i].targets.size());
    for (size_t j = 0; j < a[i].targets.size(); ++j) {
      EXPECT_EQ(a[i].targets[j].node, b[i].targets[j].node);
      EXPECT_EQ(std::memcmp(&a[i].targets[j].reliability,
                            &b[i].targets[j].reliability, sizeof(double)),
                0);
    }
  }
}

TEST(StorageLayout, EngineAnswersAreBitIdenticalAcrossLayouts) {
  const UncertainGraph raw = RandomSmallGraph(30, 90, 0.2, 0.9, 31);
  const UncertainGraph compact = Rebuild(raw, StorageLayout::kCompact);
  const std::vector<EngineQuery> queries = MixedBatch(raw, 40);

  for (const EstimatorKind kind :
       {EstimatorKind::kMonteCarlo, EstimatorKind::kBfsSharing}) {
    SCOPED_TRACE(EstimatorKindName(kind));
    EngineOptions base;
    base.kind = kind;
    base.num_samples = 300;
    base.seed = 20190411;
    base.num_threads = 1;
    auto raw_engine = QueryEngine::Create(raw, base).MoveValue();
    const std::vector<EngineResult> expected =
        raw_engine->RunBatch(queries).MoveValue();
    for (const size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(threads);
      EngineOptions options = base;
      options.num_threads = threads;
      auto engine = QueryEngine::Create(compact, options).MoveValue();
      const std::vector<EngineResult> results =
          engine->RunBatch(queries).MoveValue();
      ExpectBitIdenticalResults(expected, results);
    }
  }
}

TEST(StorageLayout, EngineExportsBytesPerEdgeGauge) {
  const UncertainGraph compact = Rebuild(
      RandomSmallGraph(20, 60, 0.2, 0.8, 12), StorageLayout::kCompact);
  EngineOptions options;
  options.num_samples = 50;
  auto engine = QueryEngine::Create(compact, options).MoveValue();
  const double bytes =
      engine->metrics().GetGauge("graph_memory_bytes")->Value();
  const double per_edge = engine->metrics()
                              .GetGauge("graph_bytes_per_edge", "layout",
                                        "compact")
                              ->Value();
  EXPECT_EQ(bytes, static_cast<double>(compact.MemoryBytes()));
  EXPECT_NEAR(per_edge, bytes / static_cast<double>(compact.num_edges()),
              1e-9);
}

}  // namespace
}  // namespace relcomp
