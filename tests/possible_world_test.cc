#include "graph/possible_world.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace relcomp {
namespace {

using testing::DiamondGraph;
using testing::GraphFromString;
using testing::LineGraph3;

TEST(SampleWorld, ExtremeProbabilitiesAreDeterministic) {
  const UncertainGraph g = GraphFromString("0 1 1\n1 2 1\n");
  Rng rng(1);
  const WorldMask mask = SampleWorld(g, rng);
  EXPECT_EQ(mask[0], 1);
  EXPECT_EQ(mask[1], 1);
}

TEST(SampleWorld, FrequencyMatchesProbability) {
  const UncertainGraph g = GraphFromString("0 1 0.25\n");
  Rng rng(2);
  int present = 0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) present += SampleWorld(g, rng)[0];
  EXPECT_NEAR(static_cast<double>(present) / kN, 0.25, 0.01);
}

TEST(WorldProbability, MatchesEquationOne) {
  const UncertainGraph g = GraphFromString("0 1 0.5\n1 2 0.25\n");
  EXPECT_NEAR(WorldProbability(g, {1, 1}), 0.125, 1e-12);
  EXPECT_NEAR(WorldProbability(g, {1, 0}), 0.375, 1e-12);
  EXPECT_NEAR(WorldProbability(g, {0, 0}), 0.375, 1e-12);
}

TEST(WorldProbability, SumsToOneOverAllWorlds) {
  const UncertainGraph g = LineGraph3(0.3, 0.8);
  double total = 0.0;
  for (int w = 0; w < 4; ++w) {
    total += WorldProbability(
        g, {static_cast<uint8_t>(w & 1), static_cast<uint8_t>((w >> 1) & 1)});
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Reachable, RespectsMask) {
  const UncertainGraph g = LineGraph3();
  EXPECT_TRUE(Reachable(g, {1, 1}, 0, 2));
  EXPECT_FALSE(Reachable(g, {1, 0}, 0, 2));
  EXPECT_FALSE(Reachable(g, {0, 1}, 0, 2));
  EXPECT_TRUE(Reachable(g, {0, 0}, 1, 1));  // s == t
}

TEST(Reachable, FollowsDirection) {
  const UncertainGraph g = GraphFromString("0 1 0.5\n");
  EXPECT_TRUE(Reachable(g, {1}, 0, 1));
  EXPECT_FALSE(Reachable(g, {1}, 1, 0));
}

TEST(ReachableSet, CollectsComponent) {
  const UncertainGraph g = DiamondGraph(0.5);
  const std::vector<NodeId> all = ReachableSet(g, {1, 1, 1, 1}, 0);
  EXPECT_EQ(all.size(), 4u);
  const std::vector<NodeId> partial = ReachableSet(g, {1, 0, 0, 0}, 0);
  EXPECT_EQ(partial.size(), 2u);  // 0 and 1
}

TEST(ReachableIgnoringProbs, TreatsEveryEdgeAsPresent) {
  const UncertainGraph g = GraphFromString("0 1 0.001\n1 2 0.001\n");
  EXPECT_TRUE(ReachableIgnoringProbs(g, 0, 2));
  EXPECT_FALSE(ReachableIgnoringProbs(g, 2, 0));
}

TEST(HopDistances, BfsLevels) {
  const UncertainGraph g = DiamondGraph(0.5);
  const std::vector<uint32_t> dist = HopDistances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[3], 2u);
}

TEST(HopDistances, UnreachableIsInvalid) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.5).CheckOK();
  const UncertainGraph g = b.Build().MoveValue();
  const std::vector<uint32_t> dist = HopDistances(g, 0);
  EXPECT_EQ(dist[2], kInvalidDistance);
}

TEST(SampleWorld, EstimatedReliabilityMatchesExactOnDiamond) {
  // Full-world sampling + Reachable is itself an MC estimator; sanity-check
  // it against the closed form (independent of the estimator classes).
  const UncertainGraph g = DiamondGraph(0.6);
  Rng rng(5);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    hits += Reachable(g, SampleWorld(g, rng), 0, 3);
  }
  const double expected = 1.0 - (1.0 - 0.36) * (1.0 - 0.36);
  EXPECT_NEAR(static_cast<double>(hits) / kN, expected,
              testing::SamplingTolerance(expected, kN));
}

}  // namespace
}  // namespace relcomp
