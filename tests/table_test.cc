#include "eval/table.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace relcomp {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table({"Name", "Value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "22"});
  const std::string text = table.ToString();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find("Name"), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable table({"A", "B", "C"});
  table.AddRow({"x"});
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_NO_THROW(table.ToString());
  EXPECT_NO_THROW(table.ToCsv());
}

TEST(TextTable, CsvBasic) {
  TextTable table({"A", "B"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "A,B\n1,2\n");
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable table({"A"});
  table.AddRow({"va,lue"});
  table.AddRow({"say \"hi\""});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"va,lue\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(MaybeWriteCsv, NoOpWithoutEnvVar) {
  ::unsetenv("RELCOMP_CSV_DIR");
  TextTable table({"A"});
  table.AddRow({"1"});
  EXPECT_TRUE(MaybeWriteCsv(table, "unused").ok());
}

TEST(MaybeWriteCsv, WritesWhenEnvSet) {
  const auto dir = std::filesystem::temp_directory_path() / "relcomp_csv_test";
  std::filesystem::create_directories(dir);
  ::setenv("RELCOMP_CSV_DIR", dir.c_str(), 1);
  TextTable table({"A", "B"});
  table.AddRow({"1", "2"});
  ASSERT_TRUE(MaybeWriteCsv(table, "sample").ok());
  std::ifstream in(dir / "sample.csv");
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "A,B");
  ::unsetenv("RELCOMP_CSV_DIR");
  std::filesystem::remove_all(dir);
}

TEST(MaybeWriteCsv, FailsOnBadDirectory) {
  ::setenv("RELCOMP_CSV_DIR", "/nonexistent/definitely/missing", 1);
  TextTable table({"A"});
  table.AddRow({"1"});
  EXPECT_FALSE(MaybeWriteCsv(table, "x").ok());
  ::unsetenv("RELCOMP_CSV_DIR");
}

}  // namespace
}  // namespace relcomp
